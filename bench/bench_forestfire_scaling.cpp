// Forest Fire Simulation exemplar (Section III-B): the Monte Carlo
// probability sweep scientific result (burned fraction & burn duration vs
// spread probability — a sharp phase transition), the serial/threads/ranks
// equivalence, and measured scaling of the trial farm.

#include <cstdio>

#include "cluster/cost_model.hpp"
#include "exemplars/forestfire.hpp"
#include "support/bar_chart.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

int main() {
  using namespace pdc;

  constexpr int kGrid = 25;
  constexpr int kTrials = 200;
  constexpr std::uint64_t kSeed = 2020;

  std::puts("== Forest fire Monte Carlo sweep (25x25 forest, 200 trials "
            "per probability) ==\n");

  WallTimer serial_timer;
  const auto sweep = exemplars::sweep_serial(
      kGrid, exemplars::default_probabilities(), kTrials, kSeed);
  serial_timer.stop();
  const double t1 = serial_timer.elapsed_seconds();

  TextTable curve({"spread prob", "mean burned %", "mean burn time (steps)"});
  curve.set_align(1, Align::Right);
  curve.set_align(2, Align::Right);
  std::vector<std::string> labels;
  std::vector<double> burned;
  for (const auto& point : sweep) {
    curve.add_row({strings::fixed(point.probability, 1),
                   strings::fixed(point.mean_burned_fraction * 100.0, 1),
                   strings::fixed(point.mean_steps, 1)});
    labels.push_back("p=" + strings::fixed(point.probability, 1));
    burned.push_back(point.mean_burned_fraction * 100.0);
  }
  std::fputs(curve.render().c_str(), stdout);

  BarChart chart(labels);
  chart.set_title("\nburned fraction vs spread probability (phase transition):");
  chart.add_series({"% burned", burned});
  std::fputs(chart.render().c_str(), stdout);

  std::printf("\nserial sweep time: %.4f s\n", t1);

  TextTable scaling({"strategy", "workers", "seconds", "speedup",
                     "identical to serial"});
  scaling.set_align(2, Align::Right);
  scaling.set_align(3, Align::Right);
  const auto check = [&](const std::vector<exemplars::SweepPoint>& other) {
    for (std::size_t k = 0; k < sweep.size(); ++k) {
      if (other[k].mean_burned_fraction != sweep[k].mean_burned_fraction ||
          other[k].mean_steps != sweep[k].mean_steps) {
        return std::string("NO");
      }
    }
    return std::string("yes (bit-identical)");
  };
  for (std::size_t threads : {2u, 4u}) {
    WallTimer timer;
    const auto result = exemplars::sweep_smp(
        kGrid, exemplars::default_probabilities(), kTrials, kSeed, threads);
    timer.stop();
    scaling.add_row({"threads (smp)", std::to_string(threads),
                     strings::fixed(timer.elapsed_seconds(), 4),
                     strings::fixed(t1 / timer.elapsed_seconds(), 2),
                     check(result)});
  }
  for (int procs : {2, 4}) {
    WallTimer timer;
    const auto result = exemplars::sweep_mp(
        kGrid, exemplars::default_probabilities(), kTrials, kSeed, procs);
    timer.stop();
    scaling.add_row({"ranks (mp)", std::to_string(procs),
                     strings::fixed(timer.elapsed_seconds(), 4),
                     strings::fixed(t1 / timer.elapsed_seconds(), 2),
                     check(result)});
  }
  std::printf("\nparallel trial farming, measured on this host:\n%s\n",
              scaling.render().c_str());

  // Predicted scaling where the paper's learners ran it: a trial farm is
  // embarrassingly parallel with one reduction at the end.
  cluster::WorkloadSpec work;
  work.total_gflop = 0.05;
  work.serial_fraction = 0.002;
  work.num_supersteps = 1;
  work.bytes_per_exchange = 16000.0;  // the per-trial result vectors

  for (const auto& platform :
       {cluster::st_olaf_vm(), cluster::chameleon_cluster(4)}) {
    const cluster::CostModel model(platform);
    TextTable predicted({"procs", "speedup", "efficiency"});
    predicted.set_align(1, Align::Right);
    predicted.set_align(2, Align::Right);
    for (const auto& point : model.scaling_curve(
             work, cluster::power_of_two_procs(platform.total_cores()))) {
      predicted.add_row({std::to_string(point.procs),
                         strings::fixed(point.speedup, 2),
                         strings::fixed(point.efficiency, 2)});
    }
    std::printf("model-predicted scaling on %s:\n%s\n", platform.name.c_str(),
                predicted.render().c_str());
  }

  std::puts("expected shape: sharp burn-fraction transition near p ~ 0.5-0.6; "
            "burn duration peaks near the transition; trial farm scales "
            "nearly linearly on the cluster platforms.");
  return 0;
}
