// Transport-seam ablation: the SAME two-rank program measured over the
// three mp backends — in-process loopback (shared mailbox fabric), unix
// domain sockets, and TCP over 127.0.0.1. Latency is a small-message
// ping-pong (round-trip / 2); bandwidth is a stream of 1 MiB payloads with
// a trailing ack. The socket rows run real framing, writer threads and
// reader threads through the kernel, so the gap to the loopback row IS the
// cost of crossing a process boundary — the number EXPERIMENTS.md records.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mp/runtime.hpp"
#include "net/harness.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

constexpr std::size_t kBandwidthDoubles = 131072;  // 1 MiB per payload

/// The measured program: rank 0 times the exchanges and print()s the two
/// numbers; the harness/runtime hands the output back for parsing. Running
/// the measurement *inside* the job keeps wireup and teardown out of the
/// timed region on every backend.
std::function<void(pdc::mp::Communicator&)> measured_program(int lat_rounds,
                                                            int bw_rounds) {
  return [lat_rounds, bw_rounds](pdc::mp::Communicator& comm) {
    const int peer = 1 - comm.rank();
    // Warmup: one full exchange primes connections and codec paths.
    if (comm.rank() == 0) {
      comm.send(0, peer, 1);
      (void)comm.recv<int>(peer, 1);
    } else {
      (void)comm.recv<int>(peer, 1);
      comm.send(0, peer, 1);
    }

    pdc::WallTimer lat_timer;
    for (int i = 0; i < lat_rounds; ++i) {
      if (comm.rank() == 0) {
        comm.send(i, peer, 2);
        (void)comm.recv<int>(peer, 2);
      } else {
        (void)comm.recv<int>(peer, 2);
        comm.send(i, peer, 2);
      }
    }
    lat_timer.stop();

    std::vector<double> payload(kBandwidthDoubles, 1.0);
    pdc::WallTimer bw_timer;
    if (comm.rank() == 0) {
      for (int i = 0; i < bw_rounds; ++i) comm.send(payload, peer, 3);
      (void)comm.recv<int>(peer, 4);  // ack: all payloads really arrived
    } else {
      for (int i = 0; i < bw_rounds; ++i) {
        payload = comm.recv<std::vector<double>>(peer, 3);
      }
      comm.send(1, peer, 4);
    }
    bw_timer.stop();

    if (comm.rank() == 0) {
      const double half_rtt_us =
          lat_timer.elapsed_seconds() * 1e6 / (2.0 * lat_rounds);
      const double mib = static_cast<double>(bw_rounds) *
                         static_cast<double>(kBandwidthDoubles) *
                         sizeof(double) / (1024.0 * 1024.0);
      const double mib_s = mib / bw_timer.elapsed_seconds();
      comm.print("lat_us=" + pdc::strings::fixed(half_rtt_us, 2) +
                 " bw_mibs=" + pdc::strings::fixed(mib_s, 1));
    }
  };
}

struct Numbers {
  std::string lat = "?";
  std::string bw = "?";
};

Numbers parse(const std::vector<std::string>& lines) {
  Numbers n;
  for (const std::string& line : lines) {
    const auto lat = line.find("lat_us=");
    const auto bw = line.find(" bw_mibs=");
    if (lat == std::string::npos || bw == std::string::npos) continue;
    n.lat = line.substr(lat + 7, bw - (lat + 7));
    n.bw = line.substr(bw + 9);
  }
  return n;
}

Numbers run_loopback(int lat_rounds, int bw_rounds) {
  return parse(pdc::mp::run(2, measured_program(lat_rounds, bw_rounds)).output);
}

Numbers run_sockets(pdc::net::Endpoint::Kind kind, int lat_rounds,
                    int bw_rounds) {
  pdc::net::ClusterOptions options;
  options.kind = kind;
  options.np = 2;
  options.job = "bench";
  const pdc::net::ClusterResult result = pdc::net::run_socket_cluster(
      options, measured_program(lat_rounds, bw_rounds));
  if (!result.ok()) {
    for (const std::string& e : result.errors) {
      if (!e.empty()) std::fprintf(stderr, "bench rank failed: %s\n", e.c_str());
    }
    std::exit(1);
  }
  return parse(result.merged());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdc;

  // Optional scale factor (default 1): latency rounds = 2000*scale,
  // bandwidth payloads = 64*scale. The bench-smoke ctest entry passes a
  // fractional workload via scale 0 → minimal rounds, crash/hang canary.
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const int lat_rounds = scale > 0 ? 2000 * scale : 20;
  const int bw_rounds = scale > 0 ? 64 * scale : 2;

  std::printf("== Transport ablation: loopback vs unix vs tcp "
              "(np=2, %d pings, %d x 1 MiB) ==\n\n",
              lat_rounds, bw_rounds);

  TextTable table({"backend", "latency (1/2 RTT)", "bandwidth"});
  table.set_align(1, Align::Right);
  table.set_align(2, Align::Right);

  const Numbers loop = run_loopback(lat_rounds, bw_rounds);
  table.add_row({"loopback (in-process)", loop.lat + " us", loop.bw + " MiB/s"});
  const Numbers unix_n =
      run_sockets(net::Endpoint::Kind::Unix, lat_rounds, bw_rounds);
  table.add_row({"unix sockets", unix_n.lat + " us", unix_n.bw + " MiB/s"});
  const Numbers tcp =
      run_sockets(net::Endpoint::Kind::Tcp, lat_rounds, bw_rounds);
  table.add_row({"tcp 127.0.0.1", tcp.lat + " us", tcp.bw + " MiB/s"});

  std::fputs(table.render().c_str(), stdout);
  std::puts("");
  std::puts("same Communicator program on all three rows; the socket rows "
            "add framing, a writer thread, a reader thread and the kernel "
            "to every message.");
  return 0;
}
