// Transport-seam ablation: the SAME two-rank program measured over the
// four mp backends — in-process loopback (shared mailbox fabric), unix
// domain sockets, TCP over 127.0.0.1, and the lock-free shm rings. Latency
// is a small-message ping-pong (round-trip / 2, best timed batch of the
// run so a scheduler burst cannot masquerade as transport cost);
// bandwidth is a stream of
// 1 MiB payloads with a trailing ack. The socket rows run real framing,
// writer threads and reader threads through the kernel, so the gap to the
// loopback row IS the cost of crossing a process boundary — and the shm
// row shows how much of that cost was the kernel rather than the boundary
// itself. EXPERIMENTS.md records both gaps.
//
// A second section measures the topology-aware collectives at np=8: the
// same bcast+allreduce loop over flat socket schedules, Auto over sockets,
// Auto over shm, and Auto over shm with a forced 2-node topology (the
// hierarchical leader-per-node schedules).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mp/ops.hpp"
#include "mp/runtime.hpp"
#include "net/harness.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

constexpr std::size_t kBandwidthDoubles = 131072;  // 1 MiB per payload

/// The measured program: rank 0 times the exchanges and print()s the two
/// numbers; the harness/runtime hands the output back for parsing. Running
/// the measurement *inside* the job keeps wireup and teardown out of the
/// timed region on every backend.
std::function<void(pdc::mp::Communicator&)> measured_program(int lat_rounds,
                                                            int bw_rounds) {
  return [lat_rounds, bw_rounds](pdc::mp::Communicator& comm) {
    const int peer = 1 - comm.rank();
    // Warmup: one full exchange primes connections and codec paths.
    if (comm.rank() == 0) {
      comm.send(0, peer, 1);
      (void)comm.recv<int>(peer, 1);
    } else {
      (void)comm.recv<int>(peer, 1);
      comm.send(0, peer, 1);
    }

    // One long timed loop measures the scheduler as much as the transport
    // on a busy single core: a single preemption burst inflates the mean
    // for the whole run. Timing the pings in batches and reporting the
    // best batch keeps the averaging (a batch still amortizes timer and
    // cache effects) while filtering bursts the transport didn't cause.
    const int kLatBatches = 10;
    const int batch =
        lat_rounds >= kLatBatches ? lat_rounds / kLatBatches : lat_rounds;
    double best_batch_s = 0.0;
    for (int done = 0; done < lat_rounds;) {
      const int rounds = std::min(batch, lat_rounds - done);
      pdc::WallTimer lat_timer;
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(i, peer, 2);
          (void)comm.recv<int>(peer, 2);
        } else {
          (void)comm.recv<int>(peer, 2);
          comm.send(i, peer, 2);
        }
      }
      lat_timer.stop();
      const double per_round_s = lat_timer.elapsed_seconds() / rounds;
      if (done == 0 || per_round_s < best_batch_s) best_batch_s = per_round_s;
      done += rounds;
    }

    std::vector<double> payload(kBandwidthDoubles, 1.0);
    pdc::WallTimer bw_timer;
    if (comm.rank() == 0) {
      for (int i = 0; i < bw_rounds; ++i) comm.send(payload, peer, 3);
      (void)comm.recv<int>(peer, 4);  // ack: all payloads really arrived
    } else {
      for (int i = 0; i < bw_rounds; ++i) {
        payload = comm.recv<std::vector<double>>(peer, 3);
      }
      comm.send(1, peer, 4);
    }
    bw_timer.stop();

    if (comm.rank() == 0) {
      const double half_rtt_us = best_batch_s * 1e6 / 2.0;
      const double mib = static_cast<double>(bw_rounds) *
                         static_cast<double>(kBandwidthDoubles) *
                         sizeof(double) / (1024.0 * 1024.0);
      const double mib_s = mib / bw_timer.elapsed_seconds();
      comm.print("lat_us=" + pdc::strings::fixed(half_rtt_us, 2) +
                 " bw_mibs=" + pdc::strings::fixed(mib_s, 1));
    }
  };
}

struct Numbers {
  std::string lat = "?";
  std::string bw = "?";
};

Numbers parse(const std::vector<std::string>& lines) {
  Numbers n;
  for (const std::string& line : lines) {
    const auto lat = line.find("lat_us=");
    const auto bw = line.find(" bw_mibs=");
    if (lat == std::string::npos || bw == std::string::npos) continue;
    n.lat = line.substr(lat + 7, bw - (lat + 7));
    n.bw = line.substr(bw + 9);
  }
  return n;
}

Numbers run_loopback(int lat_rounds, int bw_rounds) {
  return parse(pdc::mp::run(2, measured_program(lat_rounds, bw_rounds)).output);
}

Numbers run_sockets(pdc::net::Endpoint::Kind kind, int lat_rounds,
                    int bw_rounds, bool use_shm = false) {
  pdc::net::ClusterOptions options;
  options.kind = kind;
  options.np = 2;
  options.job = "bench";
  options.use_shm = use_shm;
  const pdc::net::ClusterResult result = pdc::net::run_socket_cluster(
      options, measured_program(lat_rounds, bw_rounds));
  if (!result.ok()) {
    for (const std::string& e : result.errors) {
      if (!e.empty()) std::fprintf(stderr, "bench rank failed: %s\n", e.c_str());
    }
    std::exit(1);
  }
  return parse(result.merged());
}

// ---- topology-aware collectives at np=8 ---------------------------------

/// One np=8 cluster timing `rounds` bcasts (8 KiB payload) and `rounds`
/// scalar allreduces. The trailing barrier inside each timed region makes
/// the numbers completion times, not post times — a root that fires its
/// sends and returns early doesn't get to claim the win.
std::function<void(pdc::mp::Communicator&)> collective_program(
    int rounds, pdc::mp::Communicator::CollectiveAlgo bcast_algo,
    pdc::mp::Communicator::CollectiveAlgo allreduce_algo) {
  return [rounds, bcast_algo, allreduce_algo](pdc::mp::Communicator& comm) {
    std::vector<double> payload(1024, 1.0);  // 8 KiB
    comm.bcast(payload, 0, bcast_algo);      // warmup
    (void)comm.allreduce(1.0, pdc::mp::ops::Sum{}, allreduce_algo);
    comm.barrier();

    pdc::WallTimer bcast_timer;
    for (int i = 0; i < rounds; ++i) comm.bcast(payload, 0, bcast_algo);
    comm.barrier();
    bcast_timer.stop();

    pdc::WallTimer ar_timer;
    double acc = 1.0;
    for (int i = 0; i < rounds; ++i) {
      acc = comm.allreduce(acc, pdc::mp::ops::Max{}, allreduce_algo);
    }
    comm.barrier();
    ar_timer.stop();

    if (comm.rank() == 0) {
      const double us = 1e6 / rounds;
      comm.print(
          "bcast_us=" +
          pdc::strings::fixed(bcast_timer.elapsed_seconds() * us, 2) +
          " allreduce_us=" +
          pdc::strings::fixed(ar_timer.elapsed_seconds() * us, 2));
    }
  };
}

struct Variant {
  const char* name;
  bool use_shm;
  pdc::mp::Communicator::CollectiveAlgo bcast_algo;
  pdc::mp::Communicator::CollectiveAlgo allreduce_algo;
  std::vector<int> nodes;   // forced topology ({} = real hostnames)
};

std::string run_variant(const Variant& v, int rounds) {
  pdc::net::ClusterOptions options;
  options.kind = pdc::net::Endpoint::Kind::Unix;
  options.np = 8;
  options.job = "bench-hier";
  options.use_shm = v.use_shm;
  options.nodes = v.nodes;
  const pdc::net::ClusterResult result = pdc::net::run_socket_cluster(
      options, collective_program(rounds, v.bcast_algo, v.allreduce_algo));
  if (!result.ok()) {
    for (const std::string& e : result.errors) {
      if (!e.empty()) std::fprintf(stderr, "bench rank failed: %s\n", e.c_str());
    }
    std::exit(1);
  }
  for (const std::string& line : result.merged()) {
    if (line.find("bcast_us=") != std::string::npos) return line;
  }
  return "bcast_us=? allreduce_us=?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdc;

  // Optional scale factor (default 1): latency rounds = 2000*scale,
  // bandwidth payloads = 64*scale. The bench-smoke ctest entry passes a
  // fractional workload via scale 0 → minimal rounds, crash/hang canary.
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const int lat_rounds = scale > 0 ? 2000 * scale : 20;
  const int bw_rounds = scale > 0 ? 64 * scale : 2;

  std::printf("== Transport ablation: loopback vs unix vs tcp vs shm "
              "(np=2, %d pings, %d x 1 MiB) ==\n\n",
              lat_rounds, bw_rounds);

  TextTable table({"backend", "latency (1/2 RTT)", "bandwidth"});
  table.set_align(1, Align::Right);
  table.set_align(2, Align::Right);

  const Numbers loop = run_loopback(lat_rounds, bw_rounds);
  table.add_row({"loopback (in-process)", loop.lat + " us", loop.bw + " MiB/s"});
  const Numbers unix_n =
      run_sockets(net::Endpoint::Kind::Unix, lat_rounds, bw_rounds);
  table.add_row({"unix sockets", unix_n.lat + " us", unix_n.bw + " MiB/s"});
  const Numbers tcp =
      run_sockets(net::Endpoint::Kind::Tcp, lat_rounds, bw_rounds);
  table.add_row({"tcp 127.0.0.1", tcp.lat + " us", tcp.bw + " MiB/s"});
  const Numbers shm = run_sockets(net::Endpoint::Kind::Unix, lat_rounds,
                                  bw_rounds, /*use_shm=*/true);
  table.add_row({"shm rings", shm.lat + " us", shm.bw + " MiB/s"});

  std::fputs(table.render().c_str(), stdout);
  std::puts("");
  std::puts("same Communicator program on all four rows; the socket rows "
            "add framing, a writer thread, a reader thread and the kernel "
            "to every message. The shm row keeps the processes and drops "
            "the kernel: Data frames ride lock-free rings, sockets carry "
            "only control.");

  const int hier_rounds = scale > 0 ? 200 * scale : 5;
  std::printf("\n== Topology-aware collectives "
              "(np=8, 8 KiB bcast + scalar allreduce, %d rounds) ==\n\n",
              hier_rounds);
  using Algo = pdc::mp::Communicator::CollectiveAlgo;
  const std::vector<Variant> variants = {
      {"flat-unix", false, Algo::Flat, Algo::Flat, {}},
      {"binomial-unix", false, Algo::Binomial, Algo::Binomial, {}},
      {"rd-unix", false, Algo::Flat, Algo::RecursiveDoubling, {}},
      {"auto-unix", false, Algo::Auto, Algo::Auto, {}},
      {"auto-shm", true, Algo::Auto, Algo::Auto, {}},
      {"auto-shm-2node", true, Algo::Auto, Algo::Auto,
       {0, 0, 0, 0, 1, 1, 1, 1}},
  };
  for (const Variant& v : variants) {
    std::printf("HIER np=8 variant=%s %s\n", v.name,
                run_variant(v, hier_rounds).c_str());
  }
  std::puts("");
  std::puts("auto-shm-2node forces a 2-node topology map: Auto switches to "
            "the leader-per-node schedules and only the two delegates talk "
            "across the (socket) node boundary; everything else stays on "
            "the rings.");
  return 0;
}
