// Regenerates Fig. 1: the Runestone virtual-module view of section 2.3
// "Race Conditions" — the explanatory video followed by multiple-choice
// question sp_mc_2 — and demonstrates the auto-grading interaction.

#include <cstdio>

#include "courseware/pi_module.hpp"
#include "courseware/questions.hpp"
#include "courseware/session.hpp"

int main() {
  using namespace pdc::courseware;

  const auto module = build_raspberry_pi_module();

  std::puts("FIG. 1: view of small portion of Raspberry Pi virtual module\n");
  std::fputs(module->section("2.3").render().c_str(), stdout);

  // Reproduce the interaction: a learner picks B (wrong), then C (right).
  ModuleSession session(*module);
  const auto* question =
      dynamic_cast<const MultipleChoice*>(&module->question("sp_mc_2"));
  if (question == nullptr) {
    std::puts("ERROR: sp_mc_2 is not a multiple-choice question");
    return 1;
  }

  std::puts("learner selects B -> grading...");
  const bool first = session.submit_choice("sp_mc_2", std::size_t{1});
  std::printf("  incorrect (as expected: %s)\n  feedback: %s\n",
              first ? "BUG" : "ok", question->feedback_for(1).c_str());

  std::puts("learner selects C -> grading...");
  const bool second = session.submit_choice("sp_mc_2", std::size_t{2});
  std::printf("  correct (%s) after %d attempts\n  feedback: %s\n",
              second ? "ok" : "BUG", session.attempts("sp_mc_2"),
              question->feedback_for(2).c_str());

  int lab_minutes = 0;  // chapters 2-4; chapter 1 (setup) precedes the lab
  for (std::size_t c = 1; c < module->chapters().size(); ++c) {
    lab_minutes += module->chapters()[c]->expected_minutes();
  }
  std::printf("\nmodule: %zu questions; lab pacing %d minutes (the paper's "
              "2-hour period) + %d minutes of setup\n",
              module->question_count(), lab_minutes,
              module->expected_minutes() - lab_minutes);
  return (first || !second) ? 1 : 0;
}
