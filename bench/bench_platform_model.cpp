// The platform comparison behind Section III-B / IV-B: the single-core
// Colab VM "prevents learners from experiencing parallel speedup" while the
// Chameleon cluster and the St. Olaf 64-core VM "provided good parallel
// speedup and scalability". Regenerated from the analytic cost model.

#include <cstdio>

#include "cluster/cost_model.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace pdc;

  // A representative exemplar workload (forest-fire-scale Monte Carlo).
  cluster::WorkloadSpec work;
  work.total_gflop = 50.0;
  work.serial_fraction = 0.01;
  work.num_supersteps = 10;
  work.bytes_per_exchange = 64 * 1024.0;

  std::puts("== Platform comparison: predicted speedup of an exemplar "
            "workload ==\n");

  const std::vector<int> proc_counts = {1, 2, 4, 8, 16, 32, 64};
  TextTable table({"platform", "cores", "S(2)", "S(4)", "S(8)", "S(16)",
                   "S(32)", "S(64)"});
  for (std::size_t c = 1; c < 8; ++c) table.set_align(c, Align::Right);

  for (const auto& platform : cluster::all_presets()) {
    const cluster::CostModel model(platform);
    const auto curve = model.scaling_curve(work, proc_counts);
    std::vector<std::string> row{platform.name,
                                 std::to_string(platform.total_cores())};
    for (std::size_t i = 1; i < curve.size(); ++i) {
      row.push_back(strings::fixed(curve[i].speedup, 2));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("");
  std::puts("paper claims reproduced in shape:");
  std::puts("  - Colab VM (1 core): speedup pinned at 1.00 at every p");
  std::puts("  - Raspberry Pi: speedup to ~4 (its core count) -- enough for "
            "the multicore lessons");
  std::puts("  - St. Olaf 64-core VM & Chameleon: 'good parallel speedup and "
            "scalability' for the exemplars");
  std::puts("  - Chameleon crossing node boundaries pays inter-node latency, "
            "visible as a dip in efficiency past 24 cores");

  // Amdahl reference table the handout's benchmarking discussion uses.
  std::puts("");
  TextTable amdahl({"serial fraction", "S(4)", "S(16)", "S(64)", "S(inf)"});
  for (std::size_t c = 1; c < 5; ++c) amdahl.set_align(c, Align::Right);
  for (double s : {0.0, 0.01, 0.05, 0.1, 0.25}) {
    amdahl.add_row({strings::fixed(s, 2),
                    strings::fixed(cluster::amdahl_speedup(4, s), 2),
                    strings::fixed(cluster::amdahl_speedup(16, s), 2),
                    strings::fixed(cluster::amdahl_speedup(64, s), 2),
                    s == 0.0 ? "inf" : strings::fixed(1.0 / s, 1)});
  }
  std::printf("Amdahl's-law reference (module 4.2 benchmarking study):\n%s",
              amdahl.render().c_str());
  return 0;
}
