// Store bench: what the persistence layer costs and what a restart saves.
//
// Three phases, one fresh directory each:
//
//   1. append throughput — 4 threads journal durable (fsync'd) result
//      records through the group-commit WAL; reports appends/sec and the
//      fsync/append ratio (group commit means the fleet pays ~one fsync
//      per batch, not one per record).
//   2. recovery time — reopen the directory and time the replay, once
//      against the raw log and once after a compaction (snapshot replay);
//      reports ms and records/sec both ways.
//   3. warm-up ablation — the acceptance scenario end to end: replay a
//      student session stream (S submissions over D distinct jobs ≈ 90%
//      repeats) against a store-backed lab server, restart the server on
//      the same directory, replay the same stream again. The warm server
//      must serve the stream from its recovered cache: hit rate within 5
//      points of the pre-restart rate and ZERO re-executions of cached
//      jobs — both hard gates, exit nonzero on violation.
//
// Output: human tables plus one machine-readable
//   STORE appends=N appends_per_sec=X fsyncs=F log_recovery_ms=L
//         snapshot_recovery_ms=C recovered=N sessions=S distinct=D
//         cold_hit_rate=H warm_hit_rate=W warm_executions=0 warmed=K
// line (scripts/bench_snapshot parses it into BENCH_<n>.json).
//
// Scale: argv[1] (default 1). Scale 0 is the bench-smoke canary (hundreds
// of records, ~120 replayed submissions); scale N appends 5000*N records
// and replays 1000*N submissions.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lab/client.hpp"
#include "lab/server.hpp"
#include "store/store.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using pdc::strings::fixed;

std::string fresh_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = "/tmp/pdc-bench-store-" + tag + "-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(counter.fetch_add(1));
  (void)::system(("rm -rf " + dir).c_str());
  return dir;
}

pdc::store::ResultRecord record_at(std::uint64_t index) {
  pdc::store::ResultRecord record;
  record.digest = index + 1;
  record.tenant = "cohort-" + std::to_string(index % 8);
  record.kind = 2;
  record.name = "pi";
  record.np = 4;
  record.seed = index;
  record.exit_code = 0;
  record.exec_us = 1000;
  record.output = {"pi ~= 3.14159 (" + std::to_string(index) + " darts)"};
  return record;
}

struct WalNumbers {
  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;
  double appends_per_sec = 0.0;
  double log_recovery_ms = 0.0;
  double snapshot_recovery_ms = 0.0;
  std::uint64_t recovered = 0;
};

WalNumbers drive_wal(std::uint64_t records, int threads) {
  const std::string dir = fresh_dir("wal");
  pdc::store::StoreConfig config;
  config.dir = dir;
  config.fsync = true;
  config.group_commit_window_us = 200;

  WalNumbers numbers;
  {
    pdc::store::Store store(config);
    pdc::WallTimer timer;
    std::vector<std::thread> fleet;
    fleet.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      fleet.emplace_back([&store, t, threads, records] {
        for (std::uint64_t i = static_cast<std::uint64_t>(t); i < records;
             i += static_cast<std::uint64_t>(threads)) {
          store.put_result(record_at(i));
        }
      });
    }
    for (std::thread& thread : fleet) thread.join();
    timer.stop();
    numbers.appends = store.wal_appends();
    numbers.fsyncs = store.wal_fsyncs();
    numbers.appends_per_sec =
        timer.elapsed_seconds() > 0
            ? static_cast<double>(records) / timer.elapsed_seconds()
            : 0.0;
  }

  {
    pdc::WallTimer timer;
    pdc::store::Store reopened(config);
    timer.stop();
    numbers.log_recovery_ms = timer.elapsed_seconds() * 1e3;
    numbers.recovered = reopened.result_count();
    reopened.compact();
  }
  {
    pdc::WallTimer timer;
    pdc::store::Store reopened(config);
    timer.stop();
    numbers.snapshot_recovery_ms = timer.elapsed_seconds() * 1e3;
  }
  return numbers;
}

struct ReplayNumbers {
  int sessions = 0;
  int distinct = 0;
  double hit_rate = 0.0;       ///< cache hits / submissions, percent
  std::uint64_t executions = 0;
  std::uint64_t warmed = 0;
  double recovery_ms = 0.0;    ///< warm server's store-open time share
};

pdc::lab::protocol::Submit submit_at(int distinct, int index) {
  pdc::lab::protocol::Submit submit;
  submit.token = "hands-on";
  submit.tenant = "student-" + std::to_string(index % 16);
  submit.kind = pdc::lab::protocol::JobKind::Exemplar;
  submit.name = "pi";
  submit.np = 2;
  submit.seed = static_cast<std::uint64_t>(index % distinct);
  return submit;
}

ReplayNumbers replay(const std::string& dir, int sessions, int distinct) {
  pdc::lab::ServerConfig config;
  config.endpoint.kind = pdc::net::Endpoint::Kind::Unix;
  config.endpoint.path = "/tmp/pdc-bench-store-" + std::to_string(::getpid()) +
                         "-" + dir.substr(dir.rfind('-') + 1) + ".sock";
  config.workers = 2;
  config.cache_capacity = static_cast<std::size_t>(distinct) * 2;
  config.store.dir = dir;

  pdc::WallTimer open_timer;
  pdc::lab::Server server(config);
  server.start();
  open_timer.stop();

  {
    pdc::lab::ClientConfig client_config;
    client_config.endpoint = server.endpoint();
    pdc::lab::Client client(client_config);
    for (int i = 0; i < sessions; ++i) {
      const auto outcome = client.submit(submit_at(distinct, i));
      if (!outcome.accepted()) {
        std::fprintf(stderr, "bench_store: submission %d rejected: %s\n", i,
                     outcome.reject ? outcome.reject->reason.c_str() : "?");
        std::exit(1);
      }
      (void)client.wait_result(outcome.accept->job_id);
    }
  }

  ReplayNumbers numbers;
  numbers.sessions = sessions;
  numbers.distinct = distinct;
  const pdc::lab::ServerStats stats = server.stats();
  numbers.hit_rate = stats.submits > 0
                         ? 100.0 * static_cast<double>(stats.cache_hits) /
                               static_cast<double>(stats.submits)
                         : 0.0;
  numbers.executions = server.executor().executions();
  numbers.warmed = stats.warmed_results;
  numbers.recovery_ms = open_timer.elapsed_seconds() * 1e3;
  server.stop();
  ::unlink(config.endpoint.path.c_str());
  return numbers;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::uint64_t records = scale > 0 ? 5000ull * scale : 400;
  const int sessions = scale > 0 ? 1000 * scale : 120;
  const int distinct = scale > 0 ? 100 : 24;

  std::printf("== pdc::store: durable append, recovery, cache warm-up ==\n\n");

  const WalNumbers wal = drive_wal(records, /*threads=*/4);
  pdc::TextTable wal_table({"records", "appends/sec", "fsyncs",
                            "log recovery", "snapshot recovery"});
  for (int c = 0; c <= 4; ++c) wal_table.set_align(c, pdc::Align::Right);
  wal_table.add_row({std::to_string(wal.appends),
                     fixed(wal.appends_per_sec, 0),
                     std::to_string(wal.fsyncs),
                     fixed(wal.log_recovery_ms, 1) + " ms",
                     fixed(wal.snapshot_recovery_ms, 1) + " ms"});
  std::fputs(wal_table.render().c_str(), stdout);
  std::printf("\ngroup commit: %llu fsyncs covered %llu durable appends "
              "(%.1fx batching)\n\n",
              static_cast<unsigned long long>(wal.fsyncs),
              static_cast<unsigned long long>(wal.appends),
              wal.fsyncs > 0 ? static_cast<double>(wal.appends) /
                                   static_cast<double>(wal.fsyncs)
                             : 0.0);

  // The warm-up ablation: same directory, same stream, one restart apart.
  const std::string dir = fresh_dir("warm");
  const ReplayNumbers cold = replay(dir, sessions, distinct);
  const ReplayNumbers warm = replay(dir, sessions, distinct);

  pdc::TextTable warm_table({"phase", "submissions", "hit rate", "executions",
                             "warmed", "store open"});
  for (int c = 1; c <= 5; ++c) warm_table.set_align(c, pdc::Align::Right);
  warm_table.add_row({"cold", std::to_string(cold.sessions),
                      fixed(cold.hit_rate, 1) + " %",
                      std::to_string(cold.executions),
                      std::to_string(cold.warmed),
                      fixed(cold.recovery_ms, 1) + " ms"});
  warm_table.add_row({"warm restart", std::to_string(warm.sessions),
                      fixed(warm.hit_rate, 1) + " %",
                      std::to_string(warm.executions),
                      std::to_string(warm.warmed),
                      fixed(warm.recovery_ms, 1) + " ms"});
  std::fputs(warm_table.render().c_str(), stdout);
  std::puts("");

  std::printf("STORE appends=%llu appends_per_sec=%s fsyncs=%llu "
              "log_recovery_ms=%s snapshot_recovery_ms=%s recovered=%llu "
              "sessions=%d distinct=%d cold_hit_rate=%s warm_hit_rate=%s "
              "warm_executions=%llu warmed=%llu\n",
              static_cast<unsigned long long>(wal.appends),
              fixed(wal.appends_per_sec, 1).c_str(),
              static_cast<unsigned long long>(wal.fsyncs),
              fixed(wal.log_recovery_ms, 2).c_str(),
              fixed(wal.snapshot_recovery_ms, 2).c_str(),
              static_cast<unsigned long long>(wal.recovered),
              cold.sessions, cold.distinct, fixed(cold.hit_rate, 1).c_str(),
              fixed(warm.hit_rate, 1).c_str(),
              static_cast<unsigned long long>(warm.executions),
              static_cast<unsigned long long>(warm.warmed));

  bool ok = true;
  if (warm.hit_rate + 1e-9 < cold.hit_rate - 5.0) {
    std::fprintf(stderr,
                 "bench_store: warm hit rate %.1f%% fell more than 5 points "
                 "below the pre-restart %.1f%%\n",
                 warm.hit_rate, cold.hit_rate);
    ok = false;
  }
  if (warm.executions != 0) {
    std::fprintf(stderr,
                 "bench_store: the warm server re-executed %llu jobs its "
                 "recovered cache should have served\n",
                 static_cast<unsigned long long>(warm.executions));
    ok = false;
  }
  if (wal.recovered != records) {
    std::fprintf(stderr, "bench_store: recovery found %llu of %llu records\n",
                 static_cast<unsigned long long>(wal.recovered),
                 static_cast<unsigned long long>(records));
    ok = false;
  }
  if (wal.fsyncs >= wal.appends && wal.appends > 8) {
    std::fprintf(stderr, "bench_store: group commit never batched (%llu "
                         "fsyncs for %llu appends)\n",
                 static_cast<unsigned long long>(wal.fsyncs),
                 static_cast<unsigned long long>(wal.appends));
    ok = false;
  }

  std::puts(ok ? "\nevery acked record recovered; the restarted server "
                 "served the whole stream from its warmed cache."
               : "\nGATE VIOLATION (see stderr)");
  return ok ? 0 : 1;
}
