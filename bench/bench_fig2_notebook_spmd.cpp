// Regenerates Fig. 2: the Colab notebook's SPMD cells — `%%writefile
// 00spmd.py` followed by `!mpirun --allow-run-as-root -np 4 python
// 00spmd.py`, producing interleaved greetings from 4 ranks on the
// single-host Colab VM (container id d6ff4f902ed6).

#include <cstdio>

#include "notebook/colab.hpp"
#include "notebook/engine.hpp"

int main() {
  using namespace pdc::notebook;

  auto nb = build_mpi4py_notebook();
  ExecutionEngine engine(ProgramRegistry::mpi4py_standard());
  engine.run_all(*nb);

  std::puts("FIG. 2: view of small portion of colab notebook");
  std::puts("(full notebook executed; showing the SPMD cells)\n");

  // Print the first markdown + writefile + run triple, which is Fig. 2.
  int shown_code_cells = 0;
  for (const auto& cell : nb->cells()) {
    if (cell.kind == CellKind::Markdown) {
      if (shown_code_cells >= 2) break;
      std::printf("%s\n\n", cell.source.c_str());
      continue;
    }
    ++shown_code_cells;
    std::printf("[%d]: %s\n", cell.execution_count, cell.source.c_str());
    for (const auto& line : cell.outputs) {
      std::printf("  > %s\n", line.c_str());
    }
    std::puts("");
    if (shown_code_cells >= 2) break;
  }

  std::printf("notebook totals: %zu cells, %zu code cells, %zu files in the "
              "VM filesystem after run_all\n",
              nb->cells().size(), nb->code_cell_count(),
              engine.files().list().size());
  return 0;
}
