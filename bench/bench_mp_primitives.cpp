// google-benchmark microbenchmarks of the message-passing runtime: p2p
// latency/throughput and the collectives the mpi4py module teaches.

#include <benchmark/benchmark.h>

#include "mp/ops.hpp"
#include "mp/runtime.hpp"

namespace {

using namespace pdc;

void BM_JobLaunch(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator&) {});
  }
}
BENCHMARK(BM_JobLaunch)->Arg(2)->Arg(4)->Arg(8);

void BM_PingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(2, [&](mp::Communicator& comm) {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(i, 1);
          benchmark::DoNotOptimize(comm.recv<int>(1));
        } else {
          const int v = comm.recv<int>(0);
          comm.send(v, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_PingPong)->Arg(100);

void BM_LargePayloadSend(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::vector<char> payload(bytes, 'x');
  for (auto _ : state) {
    mp::run(2, [&](mp::Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send(payload, 1);
      } else {
        benchmark::DoNotOptimize(comm.recv<std::vector<char>>(0));
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LargePayloadSend)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Broadcast(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator& comm) {
      std::vector<int> data;
      if (comm.rank() == 0) data.assign(256, 7);
      comm.bcast(data, 0);
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_Broadcast)->Arg(2)->Arg(4)->Arg(8);

void BM_Allreduce(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator& comm) {
      benchmark::DoNotOptimize(comm.allreduce(comm.rank(), mp::ops::Sum{}));
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(4, [&](mp::Communicator& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(50);

void BM_ScatterGatherChunks(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == 0) data.assign(4096, 1.5);
      const auto mine = comm.scatter_chunks(data, 0);
      const auto back = comm.gather_chunks(mine, 0);
      benchmark::DoNotOptimize(back.data());
    });
  }
}
BENCHMARK(BM_ScatterGatherChunks)->Arg(2)->Arg(4);

void BM_CommSplit(benchmark::State& state) {
  for (auto _ : state) {
    mp::run(8, [](mp::Communicator& comm) {
      auto sub = comm.split(comm.rank() % 2, comm.rank());
      benchmark::DoNotOptimize(sub.rank());
    });
  }
}
BENCHMARK(BM_CommSplit);

}  // namespace

BENCHMARK_MAIN();
