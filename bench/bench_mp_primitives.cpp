// google-benchmark microbenchmarks of the message-passing runtime: p2p
// latency/throughput and the collectives the mpi4py module teaches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "mp/ops.hpp"
#include "mp/runtime.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

namespace {

using namespace pdc;

/// The mailbox-congestion scenario: rank 1 preloads `cold_comms`
/// duplicated communicators with kDepth pending messages each, then the
/// two ranks ping `kRounds` messages over one more ("hot") communicator.
/// Every hot-side match must get past the cold backlog, so the cost of
/// matching is what this measures. The trace counters mailbox.scanned /
/// mailbox.matched turn the backlog traversal into a number.
constexpr int kCongestDepth = 32;
constexpr int kCongestRounds = 64;

void congested_match_round(int cold_comms) {
  mp::run(2, [&](mp::Communicator& comm) {
    std::vector<mp::Communicator> cold;
    cold.reserve(static_cast<std::size_t>(cold_comms));
    for (int c = 0; c < cold_comms; ++c) cold.push_back(comm.dup());
    mp::Communicator hot = comm.dup();
    if (comm.rank() == 1) {
      for (auto& backlog : cold) {
        for (int i = 0; i < kCongestDepth; ++i) backlog.send(i, 0);
      }
      comm.barrier();  // backlog is pending at rank 0 from here on
      for (int i = 0; i < kCongestRounds; ++i) {
        hot.send(i, 0);
        benchmark::DoNotOptimize(hot.recv<int>(0));
      }
    } else {
      comm.barrier();
      for (int i = 0; i < kCongestRounds; ++i) {
        const int v = hot.recv<int>(1);
        hot.send(v, 1);
      }
      // Drain the backlog so the job shuts down with empty mailboxes.
      for (auto& backlog : cold) {
        for (int i = 0; i < kCongestDepth; ++i) {
          benchmark::DoNotOptimize(backlog.recv<int>(1));
        }
      }
    }
  });
}

void BM_JobLaunch(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator&) {});
  }
}
BENCHMARK(BM_JobLaunch)->Arg(2)->Arg(4)->Arg(8);

void BM_PingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(2, [&](mp::Communicator& comm) {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(i, 1);
          benchmark::DoNotOptimize(comm.recv<int>(1));
        } else {
          const int v = comm.recv<int>(0);
          comm.send(v, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_PingPong)->Arg(100);

void BM_LargePayloadSend(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::vector<char> payload(bytes, 'x');
  for (auto _ : state) {
    mp::run(2, [&](mp::Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send(payload, 1);
      } else {
        benchmark::DoNotOptimize(comm.recv<std::vector<char>>(0));
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LargePayloadSend)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Broadcast(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator& comm) {
      std::vector<int> data;
      if (comm.rank() == 0) data.assign(256, 7);
      comm.bcast(data, 0);
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_Broadcast)->Arg(2)->Arg(4)->Arg(8);

void BM_Allreduce(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator& comm) {
      benchmark::DoNotOptimize(comm.allreduce(comm.rank(), mp::ops::Sum{}));
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(4, [&](mp::Communicator& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(50);

void BM_ScatterGatherChunks(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::run(procs, [](mp::Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == 0) data.assign(4096, 1.5);
      const auto mine = comm.scatter_chunks(data, 0);
      const auto back = comm.gather_chunks(mine, 0);
      benchmark::DoNotOptimize(back.data());
    });
  }
}
BENCHMARK(BM_ScatterGatherChunks)->Arg(2)->Arg(4);

void BM_MailboxCongestedMatch(benchmark::State& state) {
  const int cold_comms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    congested_match_round(cold_comms);
  }
  state.SetItemsProcessed(state.iterations() * kCongestRounds);
}
BENCHMARK(BM_MailboxCongestedMatch)->Arg(1)->Arg(8)->Arg(64);

/// The many-senders variant of the congestion scenario: the backlog sits on
/// the SAME communicator as the timed traffic, spread over many sources.
/// Ranks 2..p-1 each park kSenderDepth messages at rank 0, then ranks 0 and
/// 1 ping-pong targeted receives. A matcher that scans the whole comm queue
/// pays for the entire backlog on every match; a per-source index pays only
/// for rank 1's own queue.
constexpr int kSenderDepth = 32;
constexpr int kSenderRounds = 64;

void many_senders_round(int senders) {
  const int procs = senders + 2;
  mp::run(procs, [&](mp::Communicator& comm) {
    if (comm.rank() >= 2) {
      for (int i = 0; i < kSenderDepth; ++i) comm.send(i, 0, 5);
      comm.barrier();  // backlog is queued at rank 0 from here on
    } else if (comm.rank() == 1) {
      comm.barrier();
      for (int i = 0; i < kSenderRounds; ++i) {
        comm.send(i, 0, 0);
        benchmark::DoNotOptimize(comm.recv<int>(0, 0));
      }
    } else {
      comm.barrier();
      for (int i = 0; i < kSenderRounds; ++i) {
        const int v = comm.recv<int>(1, 0);  // targeted match past the backlog
        comm.send(v, 1, 0);
      }
      // Drain the backlog so the job shuts down with empty mailboxes.
      for (int s = 2; s < procs; ++s) {
        for (int i = 0; i < kSenderDepth; ++i) {
          benchmark::DoNotOptimize(comm.recv<int>(s, 5));
        }
      }
    }
  });
}

void BM_MailboxManySenders(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  for (auto _ : state) {
    many_senders_round(senders);
  }
  state.SetItemsProcessed(state.iterations() * kSenderRounds);
}
BENCHMARK(BM_MailboxManySenders)->Arg(2)->Arg(8)->Arg(16);

/// Root-side fan-out cost of a flat broadcast: the root serializes a
/// 4096-double payload for its p-1 destinations every round.
void BM_BcastFanout(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  constexpr int kRounds = 8;
  for (auto _ : state) {
    mp::run(procs, [&](mp::Communicator& comm) {
      std::vector<double> payload;
      for (int i = 0; i < kRounds; ++i) {
        if (comm.rank() == 0) payload.assign(4096, 1.0);
        comm.bcast(payload, 0, mp::Communicator::CollectiveAlgo::Flat);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_BcastFanout)->Arg(4)->Arg(8)->Arg(16);

/// Gather with a deliberate straggler: rank 1 sleeps before contributing its
/// 2 MiB chunk while ranks 2 and 3 deliver immediately. A root that drains
/// in strict rank order sits idle through the sleep and only then starts
/// deserializing the (long-queued) later chunks; an arrival-order drain
/// overlaps that work with the straggler's delay.
void BM_GatherStraggler(benchmark::State& state) {
  const auto chunk_len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mp::run(4, [&](mp::Communicator& comm) {
      std::vector<double> chunk(chunk_len, comm.rank() + 0.5);
      if (comm.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      benchmark::DoNotOptimize(comm.gather_chunks(chunk, 0));
    });
  }
}
BENCHMARK(BM_GatherStraggler)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_CommSplit(benchmark::State& state) {
  for (auto _ : state) {
    mp::run(8, [](mp::Communicator& comm) {
      auto sub = comm.split(comm.rank() % 2, comm.rank());
      benchmark::DoNotOptimize(sub.rank());
    });
  }
}
BENCHMARK(BM_CommSplit);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Traced replay of the worst congestion cases: the mailbox.scanned /
  // mailbox.matched ratio is the mean number of queued envelopes each
  // receive had to consider before finding its match, and
  // mp.payload_encodes counts how many times a fan-out serialized a payload.
  {
    pdc::trace::TraceSession session;
    session.start();
    congested_match_round(/*cold_comms=*/64);
    session.stop();

    const double matched = session.counter_total("mailbox.matched");
    const double scanned = session.counter_total("mailbox.scanned");
    std::printf("\n-- traced replay: congested match, 64 cold comms --\n");
    std::printf("envelopes matched: %.0f, scanned while matching: %.0f "
                "(%.1f scanned per match)\n\n",
                matched, scanned, matched > 0 ? scanned / matched : 0.0);
    std::fputs(pdc::trace::summary_report(session).c_str(), stdout);
  }
  {
    pdc::trace::TraceSession session;
    session.start();
    many_senders_round(/*senders=*/16);
    session.stop();

    const double matched = session.counter_total("mailbox.matched");
    const double scanned = session.counter_total("mailbox.scanned");
    std::printf("\n-- traced replay: 16 senders congesting one comm --\n");
    std::printf("envelopes matched: %.0f, scanned while matching: %.0f "
                "(%.1f scanned per match)\n",
                matched, scanned, matched > 0 ? scanned / matched : 0.0);
  }
  {
    pdc::trace::TraceSession session;
    session.start();
    pdc::mp::run(16, [](pdc::mp::Communicator& comm) {
      std::vector<double> payload;
      if (comm.rank() == 0) payload.assign(4096, 1.0);
      comm.bcast(payload, 0, pdc::mp::Communicator::CollectiveAlgo::Flat);
    });
    session.stop();
    std::printf("\n-- traced replay: flat bcast of 4096 doubles, p=16 --\n");
    std::printf("payload encodes: %.0f (of 15 messages sent)\n",
                session.counter_total("mp.payload_encodes"));
  }
  return 0;
}
