// Regenerates Fig. 3: pre/post-workshop confidence histograms plus the
// paired t-test. Paper: pre = 2.82, post = 3.59, p = 0.0004.

#include <cstdio>

#include "assessment/report.hpp"
#include "assessment/stats.hpp"

int main() {
  using namespace pdc::assessment;
  const WorkshopEvaluation eval = WorkshopEvaluation::july_2020();

  std::fputs(render_figure_3(eval).c_str(), stdout);

  const PairedTTest test = paired_t_test(eval.confidence_pre().as_doubles(),
                                         eval.confidence_post().as_doubles());
  std::puts("");
  std::puts("paper:      pre_m = 2.82, post_m = 3.59, p = 0.0004");
  std::printf("reproduced: pre_m = %.2f, post_m = %.2f, p = %.2g  "
              "(t(%d) = %.2f, Cohen's d = %.2f)\n",
              test.mean_pre, test.mean_post, test.p_two_tailed,
              static_cast<int>(test.df), test.t, test.cohens_d);
  return 0;
}
