// Regenerates Table I: "Approximate cost breakdown of mailed Raspberry Pi
// kit". Paper total: $100.66.

#include <cstdio>

#include "kit/kit.hpp"
#include "support/strings.hpp"

int main() {
  using namespace pdc;

  const kit::Catalog catalog = kit::Catalog::year_2020();
  const kit::Kit kit = kit::Kit::standard_2020(catalog);

  std::puts("TABLE I: APPROXIMATE COST BREAKDOWN OF MAILED RASPBERRY PI KIT");
  std::fputs(kit.bill_of_materials().render().c_str(), stdout);

  std::printf("\npaper total: $100.66 | reproduced total: %s\n",
              strings::money(kit.total_cost_bulk()).c_str());
  std::printf("retail (non-bulk) total for comparison: %s\n",
              strings::money(kit.total_cost_retail()).c_str());

  const auto problems = kit.validate();
  if (problems.empty()) {
    std::puts("kit validation: OK (image/hardware compatible, I/O path "
              "complete, within budget)");
  } else {
    for (const auto& problem : problems) {
      std::printf("kit validation problem: %s\n", problem.c_str());
    }
    return 1;
  }
  return 0;
}
