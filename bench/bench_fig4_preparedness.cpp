// Regenerates Fig. 4: pre/post-workshop preparedness histograms plus the
// paired t-test. Paper: pre = 2.59, post = 3.77, p = 4.18e-08.

#include <cstdio>

#include "assessment/report.hpp"
#include "assessment/stats.hpp"

int main() {
  using namespace pdc::assessment;
  const WorkshopEvaluation eval = WorkshopEvaluation::july_2020();

  std::fputs(render_figure_4(eval).c_str(), stdout);

  const PairedTTest test =
      paired_t_test(eval.preparedness_pre().as_doubles(),
                    eval.preparedness_post().as_doubles());
  std::puts("");
  std::puts("paper:      pre_m = 2.59, post_m = 3.77, p = 4.18e-08");
  std::printf("reproduced: pre_m = %.2f, post_m = %.2f, p = %.2g  "
              "(t(%d) = %.2f, Cohen's d = %.2f)\n",
              test.mean_pre, test.mean_post, test.p_two_tailed,
              static_cast<int>(test.df), test.t, test.cohens_d);
  std::puts("(reconstruction matches the reported order of magnitude; raw "
            "responses were not published — see DESIGN.md)");
  return 0;
}
