// Drug-design exemplar scaling and the static-vs-dynamic scheduling
// ablation the module teaches: ligand scoring cost varies with length, so
// dynamic scheduling balances load where static chunks cannot. Measured on
// this host, then simulated (discrete-event) on the paper's platforms.

#include <cstdio>

#include "cluster/cost_model.hpp"
#include "cluster/master_worker_sim.hpp"
#include "exemplars/drugdesign.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

int main() {
  using namespace pdc;

  exemplars::DrugDesignConfig config;
  config.num_ligands = 6000;
  config.max_ligand_length = 48;
  // A longer protein makes each LCS non-trivial (as in the real exemplar,
  // which screens against a full protein sequence).
  const std::string base = config.protein;
  for (int i = 0; i < 9; ++i) config.protein += base;

  std::puts("== Drug design exemplar (LCS ligand screening) ==\n");

  WallTimer serial_timer;
  const exemplars::DrugResult serial = exemplars::screen_serial(config);
  serial_timer.stop();
  const double t1 = serial_timer.elapsed_seconds();
  std::printf("serial: %.4f s, best score %d (%zu ligand(s))\n\n", t1,
              serial.max_score, serial.best_ligands.size());

  TextTable measured({"threads", "schedule", "seconds", "speedup", "match"});
  measured.set_align(2, Align::Right);
  measured.set_align(3, Align::Right);
  for (std::size_t threads : {1u, 2u, 4u}) {
    WallTimer timer;
    const exemplars::DrugResult result =
        exemplars::screen_smp(config, threads, /*chunk=*/4);
    timer.stop();
    measured.add_row({std::to_string(threads), "dynamic,4",
                      strings::fixed(timer.elapsed_seconds(), 4),
                      strings::fixed(t1 / timer.elapsed_seconds(), 2),
                      result == serial ? "yes" : "NO"});
  }
  std::printf("measured on this host:\n%s\n", measured.render().c_str());

  // Scheduling ablation on modeled platforms. Scoring cost scales with
  // ligand length x protein length; the longest candidates dominate, so the
  // task bag is heavily skewed — exactly the situation the module uses to
  // motivate dynamic scheduling.
  const auto ligands = exemplars::make_ligands(config);
  std::vector<double> task_cost;
  task_cost.reserve(ligands.size());
  for (const auto& ligand : ligands) {
    const auto len = static_cast<double>(ligand.size());
    // Quadratic in ligand length: long ligands also get rescored against
    // sub-windows in the full exemplar.
    task_cost.push_back(1e-6 * len * len *
                        static_cast<double>(config.protein.size()));
  }

  for (const auto& platform :
       {cluster::raspberry_pi_4(), cluster::st_olaf_vm()}) {
    const cluster::MasterWorkerSim sim(platform);
    TextTable ablation(
        {"workers", "static makespan", "dynamic makespan", "dynamic wins by",
         "dynamic utilization"});
    for (std::size_t c = 1; c < 5; ++c) ablation.set_align(c, Align::Right);
    for (int workers : cluster::power_of_two_procs(platform.total_cores())) {
      if (workers == 1) continue;
      const auto fixed = sim.simulate_static(task_cost, workers);
      const auto dynamic = sim.simulate_dynamic(task_cost, workers);
      ablation.add_row(
          {std::to_string(workers), strings::fixed(fixed.makespan, 5) + " s",
           strings::fixed(dynamic.makespan, 5) + " s",
           strings::fixed(fixed.makespan / dynamic.makespan, 2) + "x",
           strings::fixed(dynamic.busy_fraction * 100.0, 1) + "%"});
    }
    std::printf("scheduling ablation (discrete-event sim) on %s:\n%s\n",
                platform.name.c_str(), ablation.render().c_str());
  }

  std::puts("expected shape: dynamic scheduling beats static block "
            "assignment whenever ligand lengths (task costs) are skewed.");
  return 0;
}
