// Autograder throughput driver: grade a synthesized class of mutant
// submissions on a bounded worker fleet and report submissions/sec and
// schedules/sec per worker count — the number that says whether one
// workshop VM can grade a cohort between lab sessions.
//
// The corpus is synthesize_corpus(): every patternlet base crossed with
// every mutation kind (clean controls, wrong answers, seeded races, stale
// reads, deadlocks, crashes), `per_cell` simulated students each. Every
// submission explores K chaos schedules under its own bound plan; a
// deadlock mutant costs one watchdog timeout (Hang short-circuits the
// remaining schedules), so the watchdog is the knob that keeps hostile
// submissions from starving honest ones.
//
// Two hard gates, both exit nonzero on violation:
//   - ZERO lost verdicts: every submission in every row must come back
//     with a grade (Report::lost() == 0).
//   - determinism: every worker-count row must produce the byte-identical
//     canonical report (the fleet size is a throughput knob, not a grading
//     policy).
//
// Output: a human table plus one machine-readable
//   GRADE_LOAD workers=W submissions=N k=K subs_per_sec=X
//              schedules_per_sec=Y hangs=H lost=0
// line per row (scripts/bench_snapshot parses these into BENCH_<n>.json).
//
// Scale: argv[1] (default 1). Scale 0 is the bench-smoke canary (one row,
// one student per cell); scale N grades 2*N students per cell over a
// 1/2/4/8-worker sweep.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "grade/grader.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using pdc::grade::GraderConfig;
using pdc::grade::MutantSpec;
using pdc::grade::Report;
using pdc::grade::Verdict;

struct RowResult {
  int workers = 0;
  std::size_t submissions = 0;
  std::uint64_t schedules = 0;
  std::uint64_t hangs = 0;
  std::uint64_t lost = 0;
  double seconds = 0.0;
  std::string report_text;  ///< canonical report, the determinism gate
};

RowResult drive(const std::vector<MutantSpec>& corpus, int workers, int k) {
  GraderConfig cfg;
  cfg.seeds = k;
  cfg.workers = workers;
  cfg.watchdog_ms = 150;  // one short leash per deadlock mutant
  cfg.keep_grades = false;  // cohort-scale: only the aggregate matters

  pdc::WallTimer timer;
  const Report report = grade_corpus(corpus, cfg);
  timer.stop();

  RowResult row;
  row.workers = workers;
  row.submissions = corpus.size();
  row.schedules = report.stats.explored_schedules;
  row.hangs = report.count(Verdict::Hang);
  row.lost = report.lost();
  row.seconds = timer.elapsed_seconds();
  row.report_text = report.to_text();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using pdc::strings::fixed;

  // Scale 0: smoke (one row, 90 submissions). Scale N: 2*N students per
  // corpus cell over a worker sweep — the EXPERIMENTS.md throughput table.
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const int per_cell = scale > 0 ? 2 * scale : 1;
  const int k = 8;
  const std::vector<int> worker_rows =
      scale > 0 ? std::vector<int>{1, 2, 4, 8} : std::vector<int>{4};

  const std::vector<MutantSpec> corpus =
      pdc::grade::synthesize_corpus(per_cell, 4);
  std::printf("== Autograding a class: %zu submissions (%d per cell), "
              "K=%d schedules each ==\n\n",
              corpus.size(), per_cell, k);

  pdc::TextTable table({"workers", "submissions", "subs/sec", "schedules/sec",
                        "hangs", "lost", "wall"});
  for (int c = 1; c <= 6; ++c) table.set_align(c, pdc::Align::Right);

  bool ok = true;
  std::string canonical;
  for (const int workers : worker_rows) {
    const RowResult row = drive(corpus, workers, k);
    const double subs_per_sec =
        row.seconds > 0 ? static_cast<double>(row.submissions) / row.seconds
                        : 0.0;
    const double sched_per_sec =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0.0;
    table.add_row({std::to_string(row.workers),
                   std::to_string(row.submissions), fixed(subs_per_sec, 1),
                   fixed(sched_per_sec, 0), std::to_string(row.hangs),
                   std::to_string(row.lost),
                   fixed(row.seconds, 2) + " s"});
    std::printf("GRADE_LOAD workers=%d submissions=%zu k=%d subs_per_sec=%s "
                "schedules_per_sec=%s hangs=%llu lost=%llu\n",
                row.workers, row.submissions, k, fixed(subs_per_sec, 1).c_str(),
                fixed(sched_per_sec, 1).c_str(),
                static_cast<unsigned long long>(row.hangs),
                static_cast<unsigned long long>(row.lost));
    if (row.lost != 0) {
      std::fprintf(stderr, "grade-load: %llu verdicts LOST at %d workers\n",
                   static_cast<unsigned long long>(row.lost), row.workers);
      ok = false;
    }
    if (canonical.empty()) {
      canonical = row.report_text;
    } else if (row.report_text != canonical) {
      std::fprintf(stderr,
                   "grade-load: report at %d workers differs from the first "
                   "row — fleet size changed a grade\n",
                   row.workers);
      ok = false;
    }
  }

  std::puts("");
  std::fputs(table.render().c_str(), stdout);
  std::puts("");
  std::puts("every submission explores K seeded schedules under its own "
            "bound chaos plan; a deadlock mutant costs exactly one watchdog "
            "timeout (Hang short-circuits the rest). The canonical report "
            "is byte-identical across all worker counts.");
  return ok ? 0 : 1;
}
