// Design-choice ablation: flat vs binomial-tree collectives. Both send the
// same p-1 messages for a broadcast, but the flat algorithm serializes them
// through the root (critical path p-1) while the binomial tree pipelines
// them (critical path ceil(log2 p)) — the reason real MPI libraries use
// trees. Measured in-process, then costed on the modeled Chameleon network.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cluster/specs.hpp"
#include "mp/ops.hpp"
#include "mp/runtime.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using Algo = pdc::mp::Communicator::CollectiveAlgo;

double time_bcast(int procs, Algo algo, int rounds) {
  pdc::WallTimer timer;
  pdc::mp::run(procs, [&](pdc::mp::Communicator& comm) {
    std::vector<double> payload;
    for (int i = 0; i < rounds; ++i) {
      if (comm.rank() == 0) payload.assign(64, 1.0);
      comm.bcast(payload, 0, algo);
    }
  });
  timer.stop();
  return timer.elapsed_seconds() / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdc;

  // Optional round count (default 50); the bench-smoke ctest entry passes 2
  // so the ablation doubles as a fast crash/hang canary for the collectives.
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 50;
  if (rounds < 1) {
    std::fprintf(stderr, "usage: %s [rounds>=1]\n", argv[0]);
    return 2;
  }

  std::puts("== Ablation: flat vs binomial-tree collectives ==\n");

  const cluster::NetworkSpec net = cluster::chameleon_cluster(4).inter_node;
  constexpr double kMsgBytes = 64 * sizeof(double);

  TextTable table({"ranks", "flat (measured)", "binomial (measured)",
                   "flat depth", "tree depth", "flat @Chameleon",
                   "tree @Chameleon", "model speedup"});
  for (std::size_t c = 1; c < 8; ++c) table.set_align(c, Align::Right);

  for (int procs : {2, 4, 8, 16, 32}) {
    const double flat_s = time_bcast(procs, Algo::Flat, rounds);
    const double tree_s = time_bcast(procs, Algo::Binomial, rounds);
    const int flat_depth = procs - 1;
    const int tree_depth =
        static_cast<int>(std::ceil(std::log2(static_cast<double>(procs))));
    const double flat_model = flat_depth * net.transfer_seconds(kMsgBytes);
    const double tree_model = tree_depth * net.transfer_seconds(kMsgBytes);
    table.add_row({std::to_string(procs),
                   strings::fixed(flat_s * 1e6, 1) + " us",
                   strings::fixed(tree_s * 1e6, 1) + " us",
                   std::to_string(flat_depth), std::to_string(tree_depth),
                   strings::fixed(flat_model * 1e6, 1) + " us",
                   strings::fixed(tree_model * 1e6, 1) + " us",
                   strings::fixed(flat_model / tree_model, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("");
  std::puts("both algorithms send exactly p-1 messages; the tree shortens "
            "the critical path from p-1 to ceil(log2 p) rounds.");
  std::puts("(in-process measurements share one mailbox fabric, so the "
            "modeled network column carries the cluster-scale lesson.)");
  return 0;
}
