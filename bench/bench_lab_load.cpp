// Lab-server load driver: replay thousands of student sessions against a
// running pdc::lab::Server and report what the paper's remote-workshop
// story needs numbers for — jobs/sec through a bounded worker fleet, the
// p50/p99 submit-to-result latency a student terminal feels, and how much
// of the load the result cache absorbs (a class runs the SAME patternlets,
// so identical submissions dominate).
//
// Each replayed session is one student terminal: connect, submit one or
// two jobs, wait for the results, disconnect. A bounded pool of session
// threads drives `sessions` such replays concurrently. The driver asserts
// ZERO lost jobs — every accepted submission must produce a terminal
// Result — and exits nonzero otherwise, so the ctest entries double as a
// correctness gate.
//
// Output: a human table per worker-count row plus one machine-readable
//   LAB_LOAD workers=W sessions=N jobs=J jobs_per_sec=X p50_us=A p99_us=B
//            cache_hit_rate=H lost=0
// line per row (scripts/bench_snapshot parses these into BENCH_<n>.json).
//
// Scale: argv[1] (default 1). Scale 0 is the bench-smoke canary (a few
// dozen sessions, one worker row); scale N drives 1000*N sessions over a
// worker-count sweep.
//
// Mode: argv[2] "multiproc" serves the same replay through the shard pool
// (ExecMode::Socket — every execution in a forked worker process) with a
// chaos monkey SIGKILLing a live worker every few ms the whole run. The
// zero-lost-jobs gate still applies: crash recovery (reap + respawn +
// redispatch) must be invisible to the student terminals. Machine line:
//   LAB_LOAD_MULTIPROC ... respawns=R kills=K lost=0

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lab/client.hpp"
#include "lab/server.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using pdc::lab::Client;
using pdc::lab::ClientConfig;
using pdc::lab::Server;
using pdc::lab::ServerConfig;
namespace protocol = pdc::lab::protocol;

constexpr const char* kToken = "hands-on";

pdc::net::Endpoint bench_endpoint(int worker_row) {
  pdc::net::Endpoint endpoint;
  endpoint.kind = pdc::net::Endpoint::Kind::Unix;
  endpoint.path = "/tmp/pdclab-bench-" + std::to_string(::getpid()) + "-" +
                  std::to_string(worker_row) + ".sock";
  return endpoint;
}

/// The submission mix for one session. A class of students mostly runs the
/// handful of jobs the instructor assigned (identical submissions → cache
/// hits); a minority tweaks the seed and pays for a real execution.
std::vector<protocol::Submit> session_jobs(int session_index) {
  std::vector<protocol::Submit> jobs;
  protocol::Submit submit;
  submit.token = kToken;
  submit.tenant = "student-" + std::to_string(session_index % 64);
  submit.kind = protocol::JobKind::Exemplar;
  submit.name = "pi";
  submit.np = 2;
  // 7 of 8 sessions replay one of 4 assigned seeds; the 8th explores.
  submit.seed = (session_index % 8 != 0)
                    ? 100 + static_cast<std::uint64_t>(session_index % 4)
                    : 10000 + static_cast<std::uint64_t>(session_index);
  jobs.push_back(submit);
  if (session_index % 2 == 0) {
    // Half the sessions also run the assigned spmd patternlet.
    protocol::Submit second = submit;
    second.kind = protocol::JobKind::Patternlet;
    second.name = "spmd";
    second.np = 4;
    second.seed = 0;
    jobs.push_back(second);
  }
  return jobs;
}

struct RowResult {
  int workers = 0;
  int sessions = 0;
  std::uint64_t jobs = 0;
  std::uint64_t lost = 0;     ///< accepted but never answered — must be 0
  std::uint64_t rejected = 0; ///< admission rejects (quota under pressure)
  std::uint64_t respawns = 0; ///< worker processes respawned (multiproc)
  std::uint64_t kills = 0;    ///< SIGKILLs the chaos monkey landed
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double cache_hit_rate = 0.0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

RowResult drive(int workers, int sessions, int concurrency, bool multiproc) {
  ServerConfig config;
  config.endpoint = bench_endpoint(workers);
  config.workers = workers;
  config.token = kToken;
  config.cache_capacity = 512;
  config.queue.max_queued_per_tenant = 64;
  if (multiproc) {
    config.executor.mode = pdc::lab::ExecMode::Socket;
    config.shard.worker_bin = PDCLAB_BENCH_WORKER_BIN;
    config.shard.heartbeat_ms = 50;
    // The monkey kills round-robin on a fixed cadence; a loaded one-core
    // machine can stall a respawn past the cadence and land several kills
    // on one job's attempts, so give the redispatch budget real headroom —
    // the gate is zero LOST jobs, not a kill-free run.
    config.shard.max_attempts = 10;
  }
  Server server(std::move(config));
  server.start();

  // The chaos monkey: SIGKILL a live worker process round-robin every few
  // ms for the whole run. Recovery (reap + respawn + redispatch) must keep
  // the zero-lost-jobs gate green.
  std::atomic<bool> monkey_stop{false};
  std::atomic<std::uint64_t> kills{0};
  std::thread monkey;
  if (multiproc) {
    monkey = std::thread([&, workers] {
      int slot = 0;
      while (!monkey_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const pid_t victim = server.shard_pool()->slot_pid(slot);
        slot = (slot + 1) % workers;
        if (victim > 0 && ::kill(victim, SIGKILL) == 0) {
          kills.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::atomic<int> next_session{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> lost{0};
  std::atomic<std::uint64_t> rejected{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(sessions) * 2);

  const auto endpoint = server.endpoint();
  pdc::WallTimer timer;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(concurrency));
  for (int t = 0; t < concurrency; ++t) {
    pool.emplace_back([&] {
      std::vector<double> local_us;
      for (int s = next_session.fetch_add(1); s < sessions;
           s = next_session.fetch_add(1)) {
        try {
          ClientConfig client_config;
          client_config.endpoint = endpoint;
          client_config.reply_timeout_ms = 60000;
          Client client(client_config);
          for (const protocol::Submit& submit : session_jobs(s)) {
            const auto start = std::chrono::steady_clock::now();
            const auto outcome = client.submit(submit);
            if (!outcome.accepted()) {
              rejected.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const protocol::Result result =
                client.wait_result(outcome.accept->job_id);
            const double us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (result.exit_code != 0) {
              std::fprintf(stderr, "lab-load: job failed: %s\n",
                           result.error.c_str());
              lost.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            local_us.push_back(us);
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const pdc::Error& error) {
          // A session that could not finish its conversation is a lost job.
          std::fprintf(stderr, "lab-load: session %d lost: %s\n", s,
                       error.what());
          lost.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard lock(latencies_mutex);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  for (std::thread& thread : pool) thread.join();
  timer.stop();
  if (monkey.joinable()) {
    monkey_stop.store(true);
    monkey.join();
  }

  const auto stats = server.stats();
  server.stop();

  RowResult row;
  row.workers = workers;
  row.sessions = sessions;
  row.jobs = completed.load();
  row.lost = lost.load() + stats.lost_results;
  row.rejected = rejected.load();
  row.respawns = stats.worker_respawns;
  row.kills = kills.load();
  row.seconds = timer.elapsed_seconds();
  std::sort(latencies_us.begin(), latencies_us.end());
  row.p50_us = percentile(latencies_us, 50.0);
  row.p99_us = percentile(latencies_us, 99.0);
  const std::uint64_t lookups = stats.cache_hits + stats.executed;
  row.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.cache_hits) /
                         static_cast<double>(lookups);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using pdc::strings::fixed;

  // Scale 0: smoke (seconds, one row). Scale N: 1000*N sessions per row
  // over a worker sweep — the EXPERIMENTS.md load table. Mode "multiproc"
  // serves through the forked-worker shard pool with the kill monkey on.
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const bool multiproc =
      argc > 2 && std::string(argv[2]) == "multiproc";
  const int sessions = scale > 0 ? 1000 * scale : 40;
  const int concurrency = scale > 0 ? 16 : 8;
  const std::vector<int> worker_rows =
      scale > 0 ? std::vector<int>{1, 2, 4} : std::vector<int>{2};

  std::printf("== Lab server load replay: %d student sessions, %d concurrent "
              "terminals%s ==\n\n",
              sessions, concurrency,
              multiproc ? ", shard pool + worker-kill monkey" : "");

  pdc::TextTable table({"workers", "jobs", "jobs/sec", "p50 latency",
                        "p99 latency", "cache hits", "kills", "respawns",
                        "lost"});
  for (int c = 1; c <= 8; ++c) table.set_align(c, pdc::Align::Right);

  bool ok = true;
  for (const int workers : worker_rows) {
    const RowResult row = drive(workers, sessions, concurrency, multiproc);
    const double jobs_per_sec =
        row.seconds > 0 ? static_cast<double>(row.jobs) / row.seconds : 0.0;
    table.add_row({std::to_string(row.workers), std::to_string(row.jobs),
                   fixed(jobs_per_sec, 0), fixed(row.p50_us / 1000.0, 2) + " ms",
                   fixed(row.p99_us / 1000.0, 2) + " ms",
                   fixed(row.cache_hit_rate * 100.0, 1) + " %",
                   std::to_string(row.kills), std::to_string(row.respawns),
                   std::to_string(row.lost)});
    if (multiproc) {
      std::printf(
          "LAB_LOAD_MULTIPROC workers=%d sessions=%d jobs=%llu "
          "jobs_per_sec=%s p50_us=%s p99_us=%s cache_hit_rate=%s "
          "kills=%llu respawns=%llu lost=%llu\n",
          row.workers, row.sessions,
          static_cast<unsigned long long>(row.jobs),
          fixed(jobs_per_sec, 1).c_str(), fixed(row.p50_us, 1).c_str(),
          fixed(row.p99_us, 1).c_str(),
          fixed(row.cache_hit_rate, 4).c_str(),
          static_cast<unsigned long long>(row.kills),
          static_cast<unsigned long long>(row.respawns),
          static_cast<unsigned long long>(row.lost));
    } else {
      std::printf("LAB_LOAD workers=%d sessions=%d jobs=%llu jobs_per_sec=%s "
                  "p50_us=%s p99_us=%s cache_hit_rate=%s lost=%llu\n",
                  row.workers, row.sessions,
                  static_cast<unsigned long long>(row.jobs),
                  fixed(jobs_per_sec, 1).c_str(), fixed(row.p50_us, 1).c_str(),
                  fixed(row.p99_us, 1).c_str(),
                  fixed(row.cache_hit_rate, 4).c_str(),
                  static_cast<unsigned long long>(row.lost));
    }
    if (row.lost != 0) {
      std::fprintf(stderr, "lab-load: %llu jobs LOST at %d workers\n",
                   static_cast<unsigned long long>(row.lost), row.workers);
      ok = false;
    }
  }

  std::puts("");
  std::fputs(table.render().c_str(), stdout);
  std::puts("");
  std::puts(multiproc
                ? "every execution ran in a forked worker process while the "
                  "monkey SIGKILLed a worker every 50 ms; reap + respawn + "
                  "redispatch kept every accepted job terminal."
                : "every session is a fresh connection; identical submissions "
                  "(the assigned seeds) are served from the LRU result cache "
                  "without touching the worker fleet.");
  return ok ? 0 : 1;
}
