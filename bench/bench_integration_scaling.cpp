// The in-module benchmarking study (Section III-A): trapezoidal
// numerical-integration scaling. Measured on this host (honest numbers —
// a 1-core CI container shows efficiency ~ 1/p) and predicted by the
// platform cost model for the Raspberry Pi 4, where the paper's learners
// ran it (near-linear shape to 4 cores).

#include <cstdio>

#include "cluster/cost_model.hpp"
#include "exemplars/integration.hpp"
#include "smp/config.hpp"
#include "support/text_table.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace {

double time_once(const std::function<double()>& fn, double* result) {
  pdc::WallTimer timer;
  *result = fn();
  timer.stop();
  return timer.elapsed_seconds();
}

}  // namespace

int main() {
  using namespace pdc;
  constexpr std::int64_t kIntervals = 2'000'000;

  std::puts("== Numerical integration scaling (trapezoid, sqrt(1-x^2) on "
            "[-1,1], 2e6 intervals; 2*integral -> pi) ==\n");

  double serial_result = 0.0;
  const double t1 = time_once(
      [&] {
        return exemplars::trapezoid_serial(exemplars::half_circle, -1.0, 1.0,
                                           kIntervals);
      },
      &serial_result);
  std::printf("serial: %.6f s, 2*integral = %.9f\n\n", t1, 2.0 * serial_result);

  TextTable measured({"threads", "seconds", "speedup", "efficiency", "value"});
  for (std::size_t c = 1; c < 5; ++c) measured.set_align(c, Align::Right);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    double value = 0.0;
    const double tp = time_once(
        [&] {
          return exemplars::trapezoid_smp(exemplars::half_circle, -1.0, 1.0,
                                          kIntervals, threads);
        },
        &value);
    measured.add_row({std::to_string(threads), strings::fixed(tp, 4),
                      strings::fixed(t1 / tp, 2),
                      strings::fixed(t1 / tp / threads, 2),
                      strings::fixed(2.0 * value, 9)});
  }
  std::printf("measured on this host (%zu hardware threads):\n%s\n",
              smp::hardware_threads(), measured.render().c_str());

  // Model prediction on the learners' platform: Raspberry Pi 4 and the
  // larger systems used for the distributed module.
  cluster::WorkloadSpec work;
  work.total_gflop = 0.02;        // ~10 flops per interval
  work.serial_fraction = 0.001;   // endpoint handling + loop setup
  work.num_supersteps = 1;        // single final reduction
  work.bytes_per_exchange = 8.0;

  for (const auto& platform :
       {cluster::raspberry_pi_4(), cluster::st_olaf_vm(),
        cluster::chameleon_cluster(4)}) {
    const cluster::CostModel model(platform);
    TextTable predicted({"procs", "seconds", "speedup", "efficiency"});
    for (std::size_t c = 1; c < 4; ++c) predicted.set_align(c, Align::Right);
    for (const auto& point : model.scaling_curve(
             work, cluster::power_of_two_procs(platform.total_cores()))) {
      predicted.add_row({std::to_string(point.procs),
                         strings::fixed(point.seconds, 6),
                         strings::fixed(point.speedup, 2),
                         strings::fixed(point.efficiency, 2)});
    }
    std::printf("model-predicted scaling on %s:\n%s\n", platform.name.c_str(),
                predicted.render().c_str());
  }

  std::puts("expected shape: near-linear speedup to the core count "
            "(embarrassingly parallel loop + one reduction).");
  return 0;
}
