// Regenerates Table II: session usefulness means on the 1..5 Likert scale.
// Paper: OpenMP/Pi 4.55 / 4.45; MPI & cluster 4.38 / 4.29.

#include <cstdio>

#include "assessment/report.hpp"

int main() {
  using namespace pdc::assessment;
  const WorkshopEvaluation eval = WorkshopEvaluation::july_2020();

  std::fputs(render_demographics(eval).c_str(), stdout);
  std::puts("");
  std::fputs(render_table_ii(eval).c_str(), stdout);

  std::puts("");
  std::printf("paper:      OpenMP/Pi 4.55 / 4.45 ; MPI & cluster 4.38 / 4.29\n");
  std::printf("reproduced: OpenMP/Pi %.2f / %.2f ; MPI & cluster %.2f / %.2f\n",
              eval.openmp_usefulness_courses().mean_2dp(),
              eval.openmp_usefulness_development().mean_2dp(),
              eval.mpi_usefulness_courses().mean_2dp(),
              eval.mpi_usefulness_development().mean_2dp());
  std::puts("(MPI items: n = 21 — the reported means are only consistent "
            "with one non-respondent; see DESIGN.md)");
  return 0;
}
