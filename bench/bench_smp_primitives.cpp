// google-benchmark microbenchmarks of the shared-memory runtime: the cost
// of the constructs the OpenMP module teaches (fork-join, worksharing
// schedules, reduction, barrier, critical vs atomic).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>

#include "smp/config.hpp"
#include "smp/parallel.hpp"
#include "smp/thread_pool.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

namespace {

using namespace pdc;

void BM_ForkJoin(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    smp::parallel(threads, [](smp::TeamContext&) {});
  }
}
BENCHMARK(BM_ForkJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The fork-join hot-path acceptance measurement: per-region overhead of a
// repeated small parallel_for at p=8, cached worker team (arg 1) vs the
// spawn-per-region baseline engine (arg 0: fresh threads per region plus
// the pre-overhaul mutex+CV barrier — what every region paid before this
// engine). The work per region is deliberately tiny (~0.2 us serially) so
// the region machinery dominates; compare the two time/iter numbers
// directly.
void BM_RegionPerParallelFor(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  smp::set_team_reuse(cached);
  std::vector<double> data(1024, 1.0);
  for (auto _ : state) {
    smp::parallel_for_ranges(
        0, static_cast<std::int64_t>(data.size()),
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
          }
        },
        smp::Schedule::static_blocks(), 8);
    benchmark::DoNotOptimize(data.data());
  }
  smp::set_team_reuse(true);
  state.SetLabel(cached ? "cached team" : "spawn per region");
}
BENCHMARK(BM_RegionPerParallelFor)->Arg(1)->Arg(0);

// Barrier round-trip cost as the team grows: `rounds` arrive_and_wait
// cycles inside one region, reported per round. Exercises the centralized
// sense-reversing barrier's spin/yield/futex ladder at each width.
void BM_BarrierRoundTrip(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr int kRounds = 64;
  for (auto _ : state) {
    smp::parallel(threads, [&](smp::TeamContext& ctx) {
      for (int i = 0; i < kRounds; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_BarrierRoundTrip)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Dynamic-schedule chunk-claim throughput: the slot ring's fetch_add
// dispatch cursor under a team hammering an empty-bodied loop. items/s is
// claimed chunks per second.
void BM_DynamicClaims(benchmark::State& state) {
  constexpr std::int64_t kChunk = 16;
  constexpr std::int64_t kN = 1 << 16;
  for (auto _ : state) {
    smp::parallel(4, [&](smp::TeamContext& ctx) {
      ctx.for_ranges(
          0, kN, smp::Schedule::dynamic(kChunk),
          [](std::int64_t begin, std::int64_t) {
            benchmark::DoNotOptimize(begin);
          });
    });
  }
  state.SetItemsProcessed(state.iterations() * (kN / kChunk));
}
BENCHMARK(BM_DynamicClaims);

void BM_ParallelForStatic(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    smp::parallel_for_ranges(
        0, n,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
          }
        },
        smp::Schedule::static_blocks(), 4);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForStatic)->Arg(1 << 12)->Arg(1 << 16);

void BM_ParallelForDynamic(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    smp::parallel_for_ranges(
        0, n,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
          }
        },
        smp::Schedule::dynamic(64), 4);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForDynamic)->Arg(1 << 12)->Arg(1 << 16);

void BM_ParallelSum(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    const double sum = smp::parallel_sum<double>(
        0, n, [](std::int64_t i) { return static_cast<double>(i); },
        smp::Schedule::static_blocks(), 4);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSum)->Arg(1 << 14)->Arg(1 << 18);

void BM_Barrier(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    smp::parallel(4, [&](smp::TeamContext& ctx) {
      for (int i = 0; i < rounds; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(16)->Arg(64);

void BM_CriticalIncrement(benchmark::State& state) {
  const int per_thread = static_cast<int>(state.range(0));
  for (auto _ : state) {
    long balance = 0;
    smp::parallel(4, [&](smp::TeamContext& ctx) {
      for (int i = 0; i < per_thread; ++i) {
        ctx.critical([&] { ++balance; });
      }
    });
    benchmark::DoNotOptimize(balance);
  }
  state.SetItemsProcessed(state.iterations() * per_thread * 4);
}
BENCHMARK(BM_CriticalIncrement)->Arg(1000);

void BM_AtomicIncrement(benchmark::State& state) {
  const int per_thread = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<long> balance{0};
    smp::parallel(4, [&](smp::TeamContext&) {
      for (int i = 0; i < per_thread; ++i) {
        balance.fetch_add(1, std::memory_order_relaxed);
      }
    });
    benchmark::DoNotOptimize(balance.load());
  }
  state.SetItemsProcessed(state.iterations() * per_thread * 4);
}
BENCHMARK(BM_AtomicIncrement)->Arg(1000);

void BM_TeamReduce(benchmark::State& state) {
  for (auto _ : state) {
    smp::parallel(4, [](smp::TeamContext& ctx) {
      const int total = ctx.reduce_sum(static_cast<int>(ctx.thread_num()));
      benchmark::DoNotOptimize(total);
    });
  }
}
BENCHMARK(BM_TeamReduce);

void BM_ThreadPoolSubmit(benchmark::State& state) {
  smp::ThreadPool pool(2);
  for (auto _ : state) {
    auto future = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(future.get());
  }
}
BENCHMARK(BM_ThreadPoolSubmit);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Traced replay of a representative mixed workload: a dynamic-schedule
  // worksharing loop plus a burst of thread-pool submissions, so the
  // report shows queue-wait vs run time and barrier costs side by side.
  pdc::trace::TraceSession session;
  session.start();
  smp::parallel(4, [](smp::TeamContext& ctx) {
    ctx.for_each(
        0, 1 << 12, smp::Schedule::dynamic(64),
        [](std::int64_t i) { benchmark::DoNotOptimize(i * i); });
    ctx.barrier();
  });
  {
    smp::ThreadPool pool(2);
    std::vector<std::future<int>> results;
    results.reserve(256);
    for (int i = 0; i < 256; ++i) {
      results.push_back(pool.submit([i] { return i; }));
    }
    for (auto& r : results) benchmark::DoNotOptimize(r.get());
  }
  session.stop();

  std::printf("\n-- traced replay: dynamic for + 256 pool submissions --\n\n");
  std::fputs(pdc::trace::summary_report(session).c_str(), stdout);
  return 0;
}
