// google-benchmark microbenchmarks of the shared-memory runtime: the cost
// of the constructs the OpenMP module teaches (fork-join, worksharing
// schedules, reduction, barrier, critical vs atomic).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>

#include "smp/parallel.hpp"
#include "smp/thread_pool.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

namespace {

using namespace pdc;

void BM_ForkJoin(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    smp::parallel(threads, [](smp::TeamContext&) {});
  }
}
BENCHMARK(BM_ForkJoin)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelForStatic(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    smp::parallel_for_ranges(
        0, n,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
          }
        },
        smp::Schedule::static_blocks(), 4);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForStatic)->Arg(1 << 12)->Arg(1 << 16);

void BM_ParallelForDynamic(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    smp::parallel_for_ranges(
        0, n,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
          }
        },
        smp::Schedule::dynamic(64), 4);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForDynamic)->Arg(1 << 12)->Arg(1 << 16);

void BM_ParallelSum(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    const double sum = smp::parallel_sum<double>(
        0, n, [](std::int64_t i) { return static_cast<double>(i); },
        smp::Schedule::static_blocks(), 4);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSum)->Arg(1 << 14)->Arg(1 << 18);

void BM_Barrier(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    smp::parallel(4, [&](smp::TeamContext& ctx) {
      for (int i = 0; i < rounds; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(16)->Arg(64);

void BM_CriticalIncrement(benchmark::State& state) {
  const int per_thread = static_cast<int>(state.range(0));
  for (auto _ : state) {
    long balance = 0;
    smp::parallel(4, [&](smp::TeamContext& ctx) {
      for (int i = 0; i < per_thread; ++i) {
        ctx.critical([&] { ++balance; });
      }
    });
    benchmark::DoNotOptimize(balance);
  }
  state.SetItemsProcessed(state.iterations() * per_thread * 4);
}
BENCHMARK(BM_CriticalIncrement)->Arg(1000);

void BM_AtomicIncrement(benchmark::State& state) {
  const int per_thread = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<long> balance{0};
    smp::parallel(4, [&](smp::TeamContext&) {
      for (int i = 0; i < per_thread; ++i) {
        balance.fetch_add(1, std::memory_order_relaxed);
      }
    });
    benchmark::DoNotOptimize(balance.load());
  }
  state.SetItemsProcessed(state.iterations() * per_thread * 4);
}
BENCHMARK(BM_AtomicIncrement)->Arg(1000);

void BM_TeamReduce(benchmark::State& state) {
  for (auto _ : state) {
    smp::parallel(4, [](smp::TeamContext& ctx) {
      const int total = ctx.reduce_sum(static_cast<int>(ctx.thread_num()));
      benchmark::DoNotOptimize(total);
    });
  }
}
BENCHMARK(BM_TeamReduce);

void BM_ThreadPoolSubmit(benchmark::State& state) {
  smp::ThreadPool pool(2);
  for (auto _ : state) {
    auto future = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(future.get());
  }
}
BENCHMARK(BM_ThreadPoolSubmit);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Traced replay of a representative mixed workload: a dynamic-schedule
  // worksharing loop plus a burst of thread-pool submissions, so the
  // report shows queue-wait vs run time and barrier costs side by side.
  pdc::trace::TraceSession session;
  session.start();
  smp::parallel(4, [](smp::TeamContext& ctx) {
    ctx.for_each(
        0, 1 << 12, smp::Schedule::dynamic(64),
        [](std::int64_t i) { benchmark::DoNotOptimize(i * i); });
    ctx.barrier();
  });
  {
    smp::ThreadPool pool(2);
    std::vector<std::future<int>> results;
    results.reserve(256);
    for (int i = 0; i < 256; ++i) {
      results.push_back(pool.submit([i] { return i; }));
    }
    for (auto& r : results) benchmark::DoNotOptimize(r.get());
  }
  session.stop();

  std::printf("\n-- traced replay: dynamic for + 256 pool submissions --\n\n");
  std::fputs(pdc::trace::summary_report(session).c_str(), stdout);
  return 0;
}
