// patternlet — run one message-passing patternlet by name.
//
// Two modes, one binary:
//   - Under pdcrun (the PDCRUN_* contract is in the environment), the
//     process is ONE rank of a socket job:
//         pdcrun -np 4 ./patternlet spmd
//   - Standalone, it runs the whole patternlet in-process with the loopback
//     runtime (handy for diffing the two paths by eye):
//         ./patternlet spmd 4

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mp/runtime.hpp"
#include "net/runner.hpp"
#include "patternlets/mpi_programs.hpp"
#include "support/error.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <program> [np]\nprograms:", argv0);
  for (const std::string& name : pdc::patternlets::mpi_program_names()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return pdc::net::kRankConfig;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  pdc::patternlets::MpProgram program;
  try {
    program = pdc::patternlets::mpi_program(argv[1]);
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return usage(argv[0]);
  }

  pdc::net::RankEnv env;
  try {
    env = pdc::net::rank_env_from_environment();
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "patternlet: bad PDCRUN environment: %s\n",
                 error.what());
    return pdc::net::kRankConfig;
  }
  if (env.present) return pdc::net::run_rank(env, program);

  const int np = argc > 2 ? std::atoi(argv[2]) : 4;
  try {
    const pdc::mp::RunResult result = pdc::mp::run(np, program);
    for (const std::string& line : result.output) {
      std::printf("%s\n", line.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "patternlet: %s\n", error.what());
    return pdc::net::kRankProgram;
  }
  return 0;
}
