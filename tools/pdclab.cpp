// pdclab — the multi-tenant lab server and its command-line client.
//
//   pdclab serve --listen unix:/tmp/pdclab.sock --workers 4
//   pdclab serve --listen tcp:127.0.0.1:7070 --executor socket
//
//   pdclab submit --connect unix:/tmp/pdclab.sock --tenant ada
//          patternlet spmd --np 4 [--stream]
//   pdclab submit --connect ... --tenant ada exemplar pi --np 4 --seed 7
//   pdclab submit --connect ... --tenant ada notebook --source '!mpirun -np 2 python 00spmd.py'
//   pdclab submit --connect ... --tenant ada grade 'spmd~race#0@np4' --seed 1 --source 'k=8'
//   pdclab cancel --connect ... --tenant ada --job 7
//   pdclab watch --connect ... --job 7
//   pdclab report --connect ... --tenant ada [--cohort ada]
//
// `pdclab worker` is the shard-pool side of `serve --executor socket`: the
// server forks one `pdclab worker` process per worker thread and feeds it
// Dispatch frames; it is not meant to be invoked by hand.
//
// Exit codes (submit): 0 job ran, 1 job failed on the server, 2 rejected,
// 3 could not reach/speak to the server, 64 usage error. cancel: 0 the
// cancel took, 2 rejected, 3/64 as above. watch: 0 the job finished.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "lab/client.hpp"
#include "lab/server.hpp"
#include "lab/shard.hpp"
#include "net/errors.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "pdclab: %s\n", error);
  std::fputs(
      "usage:\n"
      "  pdclab serve --listen <unix:PATH|tcp:HOST:PORT> [--workers N]\n"
      "               [--token T] [--executor inline|socket] [--cache N]\n"
      "               [--quota N] [--max-np N] [--worker-bin PATH]\n"
      "               [--store DIR] [--compact-every N]\n"
      "  pdclab submit --connect <unix:PATH|tcp:HOST:PORT> --tenant NAME\n"
      "                [--token T] (patternlet|exemplar) PROGRAM [--np N]\n"
      "                [--seed S] [--stream]\n"
      "  pdclab submit --connect ... --tenant NAME notebook --source TEXT\n"
      "  pdclab submit --connect ... --tenant NAME grade MUTANT_ID\n"
      "                [--seed S] [--source 'k=N watchdog_ms=N']\n"
      "  pdclab cancel --connect ... --tenant NAME [--token T] --job ID\n"
      "  pdclab watch --connect ... --job ID [--poll-ms N]\n"
      "  pdclab report --connect ... --tenant NAME [--token T] [--cohort C]\n"
      "  pdclab worker --connect <unix:PATH> --slot N  (internal: shard pool)\n",
      stderr);
  return 64;
}

/// --flag VALUE puller; advances i. Returns nullptr when exhausted.
const char* value_of(int argc, char** argv, int& i) {
  if (i + 1 >= argc) return nullptr;
  return argv[++i];
}

int run_serve(int argc, char** argv) {
  pdc::lab::ServerConfig config;
  bool listened = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      const char* v = value_of(argc, argv, i);
      if (v == nullptr) {
        std::fprintf(stderr, "pdclab: %s needs a value\n", flag);
      }
      return v;
    };
    try {
      if (arg == "--listen") {
        const char* v = need("--listen");
        if (v == nullptr) return 64;
        config.endpoint = pdc::net::Endpoint::parse(v);
        listened = true;
      } else if (arg == "--workers") {
        const char* v = need("--workers");
        if (v == nullptr) return 64;
        config.workers = std::atoi(v);
      } else if (arg == "--token") {
        const char* v = need("--token");
        if (v == nullptr) return 64;
        config.token = v;
      } else if (arg == "--cache") {
        const char* v = need("--cache");
        if (v == nullptr) return 64;
        config.cache_capacity = static_cast<std::size_t>(std::atol(v));
      } else if (arg == "--quota") {
        const char* v = need("--quota");
        if (v == nullptr) return 64;
        config.queue.max_queued_per_tenant =
            static_cast<std::size_t>(std::atol(v));
      } else if (arg == "--max-np") {
        const char* v = need("--max-np");
        if (v == nullptr) return 64;
        config.executor.max_np = std::atoi(v);
      } else if (arg == "--executor") {
        const char* v = need("--executor");
        if (v == nullptr) return 64;
        if (std::strcmp(v, "inline") == 0) {
          config.executor.mode = pdc::lab::ExecMode::Inline;
        } else if (std::strcmp(v, "socket") == 0) {
          config.executor.mode = pdc::lab::ExecMode::Socket;
        } else {
          return usage("--executor must be 'inline' or 'socket'");
        }
      } else if (arg == "--worker-bin") {
        const char* v = need("--worker-bin");
        if (v == nullptr) return 64;
        config.shard.worker_bin = v;
      } else if (arg == "--store") {
        const char* v = need("--store");
        if (v == nullptr) return 64;
        config.store.dir = v;
      } else if (arg == "--compact-every") {
        const char* v = need("--compact-every");
        if (v == nullptr) return 64;
        config.store.compact_every = static_cast<std::uint64_t>(std::atoll(v));
      } else {
        return usage(("unknown serve option '" + arg + "'").c_str());
      }
    } catch (const pdc::Error& error) {
      std::fprintf(stderr, "pdclab: %s\n", error.what());
      return 64;
    }
  }
  if (!listened) return usage("serve needs --listen");
  if (config.workers < 1) return usage("--workers must be >= 1");

  const int workers = config.workers;
  const pdc::lab::ExecMode mode = config.executor.mode;
  pdc::lab::Server server(std::move(config));
  try {
    server.start();
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "pdclab: cannot listen: %s\n", error.what());
    return 3;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("pdclab: serving at %s (%d workers, executor %s)\n",
              server.endpoint().to_string().c_str(), workers,
              pdc::lab::exec_mode_name(mode));
  if (const pdc::store::Store* store = server.store()) {
    const pdc::store::RecoverStats recovered = store->recover_stats();
    std::printf(
        "pdclab: store %s recovered %llu results + %llu grades "
        "(%llu dropped tail bytes), warmed %llu cache entries\n",
        store->dir().c_str(),
        static_cast<unsigned long long>(recovered.results),
        static_cast<unsigned long long>(recovered.grades),
        static_cast<unsigned long long>(recovered.dropped_bytes),
        static_cast<unsigned long long>(server.stats().warmed_results));
  }
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // SIGTERM/SIGINT land here: stop() drains the fleet, journals the drain
  // Results, then flushes and fsyncs the store — a clean WAL close, not a
  // torn tail (the recovery path tolerates that too, but a graceful exit
  // should not need it).
  server.stop();
  const pdc::lab::ServerStats stats = server.stats();
  std::printf(
      "pdclab: served %llu submits (%llu accepted, %llu rejected, "
      "%llu cache hits, %llu executed, %llu lockouts) over %llu sessions\n",
      static_cast<unsigned long long>(stats.submits),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.executed),
      static_cast<unsigned long long>(stats.lockouts),
      static_cast<unsigned long long>(stats.sessions));
  return 0;
}

int run_submit(int argc, char** argv) {
  pdc::lab::ClientConfig client_config;
  pdc::lab::protocol::Submit submit;
  submit.token = "hands-on";
  bool connected = false;
  bool kind_set = false;
  bool stream = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* { return value_of(argc, argv, i); };
    try {
      if (arg == "--connect") {
        const char* v = need();
        if (v == nullptr) return usage("--connect needs a value");
        client_config.endpoint = pdc::net::Endpoint::parse(v);
        connected = true;
      } else if (arg == "--tenant") {
        const char* v = need();
        if (v == nullptr) return usage("--tenant needs a value");
        submit.tenant = v;
      } else if (arg == "--token") {
        const char* v = need();
        if (v == nullptr) return usage("--token needs a value");
        submit.token = v;
      } else if (arg == "--np") {
        const char* v = need();
        if (v == nullptr) return usage("--np needs a value");
        submit.np = std::atoi(v);
      } else if (arg == "--seed") {
        const char* v = need();
        if (v == nullptr) return usage("--seed needs a value");
        submit.seed = static_cast<std::uint64_t>(std::atoll(v));
      } else if (arg == "--source") {
        const char* v = need();
        if (v == nullptr) return usage("--source needs a value");
        submit.source = v;
      } else if (arg == "--stream") {
        stream = true;
      } else if (arg == "patternlet" || arg == "exemplar" ||
                 arg == "notebook" || arg == "grade") {
        kind_set = true;
        if (arg == "patternlet") {
          submit.kind = pdc::lab::protocol::JobKind::Patternlet;
        } else if (arg == "exemplar") {
          submit.kind = pdc::lab::protocol::JobKind::Exemplar;
        } else if (arg == "grade") {
          submit.kind = pdc::lab::protocol::JobKind::Grade;
        } else {
          submit.kind = pdc::lab::protocol::JobKind::Notebook;
        }
        // A program name (or mutant id) follows for all but notebook.
        if (arg != "notebook") {
          const char* v = need();
          if (v == nullptr) return usage("program name missing");
          submit.name = v;
        }
      } else {
        return usage(("unknown submit option '" + arg + "'").c_str());
      }
    } catch (const pdc::Error& error) {
      std::fprintf(stderr, "pdclab: %s\n", error.what());
      return 64;
    }
  }
  if (!connected) return usage("submit needs --connect");
  if (submit.tenant.empty()) return usage("submit needs --tenant");
  if (!kind_set) return usage("submit needs a job kind");

  try {
    pdc::lab::Client client(client_config);
    const auto outcome = client.submit(submit);
    if (!outcome.accepted()) {
      std::fprintf(stderr, "pdclab: rejected (%s): %s\n",
                   pdc::lab::protocol::reject_code_name(outcome.reject->code),
                   outcome.reject->reason.c_str());
      return 2;
    }
    std::size_t streamed = 0;
    pdc::lab::Client::StatusSink on_status;
    if (stream) {
      on_status = [&streamed](const pdc::lab::protocol::Status& status) {
        for (const std::string& line : status.output) {
          std::printf("%s\n", line.c_str());
        }
        std::fflush(stdout);
        streamed += status.output.size();
      };
    }
    const auto result = client.wait_result(outcome.accept->job_id, on_status);
    // Streamed lines are already on the terminal (the worker flushes its
    // tail before the Result); a job that never streamed (cache hit,
    // notebook, grade, inline server) prints the terminal output instead.
    if (streamed == 0) {
      for (const std::string& line : result.output) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (result.exit_code != 0) {
      std::fprintf(stderr, "pdclab: job failed (exit %d): %s\n",
                   result.exit_code, result.error.c_str());
      return 1;
    }
    if (result.cached) {
      std::fprintf(stderr, "pdclab: served from cache (%llu us original)\n",
                   static_cast<unsigned long long>(result.exec_us));
    }
    return 0;
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "pdclab: %s\n", error.what());
    return 3;
  }
}

int run_cancel(int argc, char** argv) {
  pdc::lab::ClientConfig client_config;
  std::string tenant;
  std::string token = "hands-on";
  std::uint64_t job_id = 0;
  bool connected = false;
  bool job_set = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* { return value_of(argc, argv, i); };
    try {
      if (arg == "--connect") {
        const char* v = need();
        if (v == nullptr) return usage("--connect needs a value");
        client_config.endpoint = pdc::net::Endpoint::parse(v);
        connected = true;
      } else if (arg == "--tenant") {
        const char* v = need();
        if (v == nullptr) return usage("--tenant needs a value");
        tenant = v;
      } else if (arg == "--token") {
        const char* v = need();
        if (v == nullptr) return usage("--token needs a value");
        token = v;
      } else if (arg == "--job") {
        const char* v = need();
        if (v == nullptr) return usage("--job needs a value");
        job_id = static_cast<std::uint64_t>(std::atoll(v));
        job_set = true;
      } else {
        return usage(("unknown cancel option '" + arg + "'").c_str());
      }
    } catch (const pdc::Error& error) {
      std::fprintf(stderr, "pdclab: %s\n", error.what());
      return 64;
    }
  }
  if (!connected) return usage("cancel needs --connect");
  if (tenant.empty()) return usage("cancel needs --tenant");
  if (!job_set) return usage("cancel needs --job");

  try {
    pdc::lab::Client client(client_config);
    const auto outcome = client.cancel(job_id, token, tenant);
    if (!outcome.cancelled()) {
      std::fprintf(stderr, "pdclab: cancel rejected (%s): %s\n",
                   pdc::lab::protocol::reject_code_name(outcome.reject->code),
                   outcome.reject->reason.c_str());
      return 2;
    }
    std::printf("pdclab: job %llu cancelled\n",
                static_cast<unsigned long long>(job_id));
    return 0;
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "pdclab: %s\n", error.what());
    return 3;
  }
}

int run_watch(int argc, char** argv) {
  pdc::lab::ClientConfig client_config;
  std::uint64_t job_id = 0;
  int poll_ms = 200;
  bool connected = false;
  bool job_set = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* { return value_of(argc, argv, i); };
    try {
      if (arg == "--connect") {
        const char* v = need();
        if (v == nullptr) return usage("--connect needs a value");
        client_config.endpoint = pdc::net::Endpoint::parse(v);
        connected = true;
      } else if (arg == "--job") {
        const char* v = need();
        if (v == nullptr) return usage("--job needs a value");
        job_id = static_cast<std::uint64_t>(std::atoll(v));
        job_set = true;
      } else if (arg == "--poll-ms") {
        const char* v = need();
        if (v == nullptr) return usage("--poll-ms needs a value");
        poll_ms = std::atoi(v);
        if (poll_ms < 1) poll_ms = 1;
      } else {
        return usage(("unknown watch option '" + arg + "'").c_str());
      }
    } catch (const pdc::Error& error) {
      std::fprintf(stderr, "pdclab: %s\n", error.what());
      return 64;
    }
  }
  if (!connected) return usage("watch needs --connect");
  if (!job_set) return usage("watch needs --job");

  try {
    pdc::lab::Client client(client_config);
    pdc::lab::protocol::JobState last =
        pdc::lab::protocol::JobState::Unknown;
    for (;;) {
      const auto status = client.query_status(job_id);
      for (const std::string& line : status.output) {
        std::printf("%s\n", line.c_str());
      }
      if (status.state != last) {
        last = status.state;
        const char* name = "unknown";
        switch (status.state) {
          case pdc::lab::protocol::JobState::Queued: name = "queued"; break;
          case pdc::lab::protocol::JobState::Running: name = "running"; break;
          case pdc::lab::protocol::JobState::Done: name = "done"; break;
          case pdc::lab::protocol::JobState::Unknown: break;
        }
        std::fprintf(stderr, "pdclab: job %llu %s (queue depth %u)\n",
                     static_cast<unsigned long long>(job_id), name,
                     status.queue_depth);
      }
      if (status.state == pdc::lab::protocol::JobState::Unknown) {
        std::fprintf(stderr, "pdclab: server knows no job %llu\n",
                     static_cast<unsigned long long>(job_id));
        return 2;
      }
      if (status.state == pdc::lab::protocol::JobState::Done) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "pdclab: %s\n", error.what());
    return 3;
  }
}

int run_report(int argc, char** argv) {
  pdc::lab::ClientConfig client_config;
  std::string tenant;
  std::string token = "hands-on";
  std::string cohort;
  bool connected = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* { return value_of(argc, argv, i); };
    try {
      if (arg == "--connect") {
        const char* v = need();
        if (v == nullptr) return usage("--connect needs a value");
        client_config.endpoint = pdc::net::Endpoint::parse(v);
        connected = true;
      } else if (arg == "--tenant") {
        const char* v = need();
        if (v == nullptr) return usage("--tenant needs a value");
        tenant = v;
      } else if (arg == "--token") {
        const char* v = need();
        if (v == nullptr) return usage("--token needs a value");
        token = v;
      } else if (arg == "--cohort") {
        const char* v = need();
        if (v == nullptr) return usage("--cohort needs a value");
        cohort = v;
      } else {
        return usage(("unknown report option '" + arg + "'").c_str());
      }
    } catch (const pdc::Error& error) {
      std::fprintf(stderr, "pdclab: %s\n", error.what());
      return 64;
    }
  }
  if (!connected) return usage("report needs --connect");
  if (tenant.empty()) return usage("report needs --tenant");

  try {
    pdc::lab::Client client(client_config);
    const auto outcome = client.report(token, tenant, cohort);
    if (!outcome.ok()) {
      std::fprintf(stderr, "pdclab: report rejected (%s): %s\n",
                   pdc::lab::protocol::reject_code_name(outcome.reject->code),
                   outcome.reject->reason.c_str());
      return 2;
    }
    // The canonical rendering: deterministic for a given record set, which
    // is exactly what the kill sweep diffs against an uninterrupted run.
    bool first = true;
    for (const auto& reply : outcome.cohorts) {
      if (!first) std::printf("\n");
      first = false;
      for (const std::string& line :
           pdc::store::render_report(reply.aggregate)) {
        std::printf("%s\n", line.c_str());
      }
    }
    return 0;
  } catch (const pdc::Error& error) {
    std::fprintf(stderr, "pdclab: %s\n", error.what());
    return 3;
  }
}

/// The shard-pool worker process (forked by `serve --executor socket`).
int run_worker(int argc, char** argv) {
  pdc::net::Endpoint endpoint;
  pdc::lab::ExecutorConfig executor;
  int slot = 0;
  int heartbeat_ms = 250;
  bool connected = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* { return value_of(argc, argv, i); };
    try {
      if (arg == "--connect") {
        const char* v = need();
        if (v == nullptr) return usage("--connect needs a value");
        endpoint = pdc::net::Endpoint::parse(v);
        connected = true;
      } else if (arg == "--slot") {
        const char* v = need();
        if (v == nullptr) return usage("--slot needs a value");
        slot = std::atoi(v);
      } else if (arg == "--executor") {
        const char* v = need();
        if (v == nullptr) return usage("--executor needs a value");
        if (std::strcmp(v, "inline") == 0) {
          executor.mode = pdc::lab::ExecMode::Inline;
        } else if (std::strcmp(v, "socket") == 0) {
          // A worker process runs its jobs with the in-process harness; the
          // process boundary *is* the socket executor's isolation.
          executor.mode = pdc::lab::ExecMode::Inline;
        } else {
          return usage("--executor must be 'inline' or 'socket'");
        }
      } else if (arg == "--max-np") {
        const char* v = need();
        if (v == nullptr) return usage("--max-np needs a value");
        executor.max_np = std::atoi(v);
      } else if (arg == "--heartbeat-ms") {
        const char* v = need();
        if (v == nullptr) return usage("--heartbeat-ms needs a value");
        heartbeat_ms = std::atoi(v);
        if (heartbeat_ms < 1) heartbeat_ms = 1;
      } else {
        return usage(("unknown worker option '" + arg + "'").c_str());
      }
    } catch (const pdc::Error& error) {
      std::fprintf(stderr, "pdclab: %s\n", error.what());
      return 64;
    }
  }
  if (!connected) return usage("worker needs --connect");
  return pdc::lab::worker_main(endpoint, slot, executor, heartbeat_ms);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(nullptr);
  const std::string mode = argv[1];
  if (mode == "serve") return run_serve(argc, argv);
  if (mode == "submit") return run_submit(argc, argv);
  if (mode == "cancel") return run_cancel(argc, argv);
  if (mode == "watch") return run_watch(argc, argv);
  if (mode == "report") return run_report(argc, argv);
  if (mode == "worker") return run_worker(argc, argv);
  return usage(("unknown mode '" + mode + "'").c_str());
}
