// pdcrun — the mpirun of this codebase. Launches N ranks of a binary as
// real OS processes connected by the pdc::net socket transport:
//
//   pdcrun -np 4 ./patternlet spmd
//   pdcrun -np 4 --transport tcp ./patternlet ring
//
// See net/launcher.hpp for the option and exit-code contract.

#include <cstdio>
#include <string>

#include "net/launcher.hpp"

int main(int argc, char** argv) {
  pdc::net::LaunchOptions options;
  std::string error;
  if (const int code =
          pdc::net::parse_pdcrun_args(argc, argv, &options, &error);
      code != 0) {
    std::fputs(error.c_str(), stderr);
    return code;
  }
  return pdc::net::launch(options).exit_code;
}
