// The drug-design exemplar three ways: serial, shared-memory with a
// dynamic schedule, and the message-passing master-worker version — all
// producing the identical best-binder result.

#include <cstdio>

#include "exemplars/drugdesign.hpp"
#include <algorithm>
#include "mp/runtime.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

int main() {
  using namespace pdc;
  using namespace pdc::exemplars;

  DrugDesignConfig config;
  config.num_ligands = 2000;
  config.max_ligand_length = 18;

  std::printf("screening %d random ligands (length 2..%d) against a "
              "%zu-base protein\n\n",
              config.num_ligands, config.max_ligand_length,
              config.protein.size());

  const auto report = [](const char* label, const DrugResult& result,
                         double seconds) {
    std::vector<std::string> shown(
        result.best_ligands.begin(),
        result.best_ligands.begin() +
            static_cast<std::ptrdiff_t>(
                std::min<std::size_t>(4, result.best_ligands.size())));
    std::string ligands = strings::join(shown, ", ");
    if (result.best_ligands.size() > shown.size()) {
      ligands += ", ... (" +
                 std::to_string(result.best_ligands.size() - shown.size()) +
                 " more tied)";
    }
    std::printf("%-28s %.4f s  best score %d  best ligand(s): %s\n", label,
                seconds, result.max_score, ligands.c_str());
  };

  WallTimer serial_timer;
  const DrugResult serial = screen_serial(config);
  serial_timer.stop();
  report("serial:", serial, serial_timer.elapsed_seconds());

  WallTimer smp_timer;
  const DrugResult smp = screen_smp(config, 4, /*chunk=*/4);
  smp_timer.stop();
  report("4 threads, dynamic sched:", smp, smp_timer.elapsed_seconds());

  WallTimer mw_timer;
  DrugResult master_worker;
  mp::run(5, [&](mp::Communicator& comm) {
    DrugResult mine = screen_master_worker(comm, config);
    if (comm.rank() == 0) master_worker = std::move(mine);
  });
  mw_timer.stop();
  report("1 master + 4 workers (mp):", master_worker,
         mw_timer.elapsed_seconds());

  const bool agree = smp == serial && master_worker == serial;
  std::printf("\nall three strategies agree: %s\n", agree ? "yes" : "NO");
  return agree ? 0 : 1;
}
