// Regenerate the paper's full Section IV evaluation report from the
// reconstructed dataset: demographics, Table II, Figures 3 and 4, and the
// paired t-tests, in one run.

#include <cstdio>

#include "assessment/report.hpp"
#include "assessment/stats.hpp"

int main() {
  using namespace pdc::assessment;
  const WorkshopEvaluation eval = WorkshopEvaluation::july_2020();

  std::puts("========= CSinParallel virtual workshop, July 2020 =========\n");
  std::fputs(render_demographics(eval).c_str(), stdout);

  std::printf("\nfall-2020 plans: %.0f%% fully remote, %.0f%% hybrid, "
              "%.0f%% in-person\n\n",
              eval.fraction_planning_remote() * 100.0,
              eval.fraction_planning_hybrid() * 100.0,
              eval.fraction_planning_in_person() * 100.0);

  std::fputs(render_table_ii(eval).c_str(), stdout);
  std::puts("");
  std::fputs(render_figure_3(eval).c_str(), stdout);
  std::puts("");
  std::fputs(render_figure_4(eval).c_str(), stdout);

  // The headline finding, in the paper's own terms.
  const PairedTTest conf = paired_t_test(eval.confidence_pre().as_doubles(),
                                         eval.confidence_post().as_doubles());
  const PairedTTest prep =
      paired_t_test(eval.preparedness_pre().as_doubles(),
                    eval.preparedness_post().as_doubles());
  std::puts("");
  std::printf("Participants experienced a significant increase in confidence "
              "(pre_m = %.2f, post_m = %.2f, p = %.2g)\n",
              conf.mean_pre, conf.mean_post, conf.p_two_tailed);
  std::printf("and in preparedness (pre_m = %.2f, post_m = %.2f, "
              "p = %.2g).\n",
              prep.mean_pre, prep.mean_post, prep.p_two_tailed);
  return 0;
}
