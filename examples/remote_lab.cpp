// Replay Section IV-B's remote-lab incident: an "eager beaver" participant
// races ahead of the instructions, locks their client out of VNC, falls
// back to ssh (the documented workaround), and still completes the
// exercise on the 64-core St. Olaf VM.

#include <cstdio>

#include "remote/lab.hpp"

int main() {
  using namespace pdc::remote;

  RemoteVm vm = RemoteVm::st_olaf();

  std::puts("== participant 9, diligent: reads the instructions first ==");
  {
    const ConnectionOutcome outcome = connect_with_fallback(
        vm, {"participant9", "workshop2020-9"}, "ip-9", 0.0);
    for (const auto& line : render_transcript(outcome)) {
      std::printf("  %s\n", line.c_str());
    }
  }

  std::puts("\n== participant 3, eager beaver: three guesses first ==");
  const ConnectionOutcome outcome = connect_with_fallback(
      vm, {"participant3", "workshop2020-3"}, "ip-3", 5.0,
      /*wrong_attempts_first=*/3);
  for (const auto& line : render_transcript(outcome)) {
    std::printf("  %s\n", line.c_str());
  }

  if (!outcome.connected) return 1;

  std::puts("\n== completing the exercise over the ssh session ==");
  for (const auto& command :
       {"ls", "mpirun -np 16 python 09reduce.py",
        "mpirun -np 64 python 00spmd.py"}) {
    std::printf("$ %s\n", command);
    const auto output = vm.run_command(*outcome.session_id, command);
    std::size_t shown = 0;
    for (const auto& line : output) {
      if (shown++ == 6) {
        std::printf("  ... (%zu more lines)\n", output.size() - 6);
        break;
      }
      std::printf("  %s\n", line.c_str());
    }
  }

  std::puts("\n(the lesson from the paper: 'eager beaver' students who "
            "neglect to follow directions may cause issues, which can be "
            "especially problematic when learners work asynchronously)");
  return 0;
}
