// Execute the reconstructed "mpi4py patternlets" Colab notebook end to end
// on the in-process message-passing runtime, then render it — the complete
// Fig. 2 experience, including a cluster-backed re-run (the Chameleon
// configuration from Section III-B).

#include <cstdio>

#include "notebook/colab.hpp"
#include "notebook/engine.hpp"

int main() {
  using namespace pdc::notebook;

  // Pass 1: the Colab single-host VM (default engine config).
  {
    auto nb = build_mpi4py_notebook();
    ExecutionEngine engine(ProgramRegistry::mpi4py_standard());
    engine.run_all(*nb);
    std::fputs(nb->render().c_str(), stdout);
  }

  // Pass 2: the same notebook backed by a 4-node cluster — what learners
  // saw through the Chameleon-backed Jupyter notebook.
  {
    std::puts("==================================================");
    std::puts("re-running the SPMD cell on a simulated 4-node cluster");
    std::puts("(the Jupyter-on-Chameleon configuration)\n");
    EngineConfig config;
    config.cluster_hosts = {"chameleon-node0", "chameleon-node1",
                            "chameleon-node2", "chameleon-node3"};
    ExecutionEngine engine(ProgramRegistry::mpi4py_standard(), config);
    engine.execute_source(
        "%%writefile 00spmd.py\n(see notebook for the mpi4py source)");
    for (const auto& line : engine.execute_source(
             "! mpirun --allow-run-as-root -np 8 python 00spmd.py")) {
      std::printf("  > %s\n", line.c_str());
    }
  }
  return 0;
}
