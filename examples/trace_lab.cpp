// Tracing a lab run end to end: run the drug-design exemplar (smp +
// master-worker mp) and the forest-fire sweep under an active
// pdc::trace session, write Chrome-trace JSON for each, and print the
// aggregated text report that summarizes where the time went.
//
// Open the .json files at chrome://tracing (or https://ui.perfetto.dev):
// each mp rank gets its own pid lane, each thread its own tid row.

#include <cstdio>
#include <exception>
#include <string>

#include "exemplars/drugdesign.hpp"
#include "exemplars/forestfire.hpp"
#include "mp/runtime.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

namespace {

void divider(const char* title) {
  std::printf("\n==== %s ====\n\n", title);
}

int run() {
  using namespace pdc;
  using namespace pdc::exemplars;

  // --- Part 1: drug design, shared-memory then master-worker. -----------
  {
    trace::TraceSession session;
    session.start();

    DrugDesignConfig config;
    config.num_ligands = 400;
    config.max_ligand_length = 18;

    const DrugResult smp = screen_smp(config, 4, /*chunk=*/4);

    DrugResult master_worker;
    mp::run(5, [&](mp::Communicator& comm) {
      DrugResult mine = screen_master_worker(comm, config);
      if (comm.rank() == 0) master_worker = std::move(mine);
    });

    session.stop();

    const std::string path = "drugdesign_trace.json";
    trace::write_chrome_json(session, path);
    divider("drug design (4 threads, then 1 master + 4 workers)");
    std::printf("best score %d (strategies agree: %s)\n", smp.max_score,
                smp == master_worker ? "yes" : "NO");
    std::printf("%zu trace events -> %s\n", session.event_count(),
                path.c_str());
    std::printf("\n%s", trace::summary_report(session).c_str());
    if (!(smp == master_worker)) return 1;
  }

  // --- Part 2: forest fire probability sweep over 4 ranks. --------------
  {
    trace::TraceSession session;
    session.start();

    const auto sweep =
        sweep_mp(/*grid_size=*/31, default_probabilities(), /*trials=*/10,
                 /*seed=*/2021, /*num_procs=*/4);

    session.stop();

    const std::string path = "forestfire_trace.json";
    trace::write_chrome_json(session, path);
    divider("forest fire sweep (4 ranks, 10 trials per probability)");
    for (const auto& point : sweep) {
      std::printf("p=%.1f  burned %5.1f%%  in %5.1f steps\n",
                  point.probability, 100.0 * point.mean_burned_fraction,
                  point.mean_steps);
    }
    std::printf("\n%zu trace events -> %s\n", session.event_count(),
                path.c_str());
    std::printf("\n%s", trace::summary_report(session).c_str());
  }

  return 0;
}

}  // namespace

int main() {
  // The trace files land in the current directory; fail politely (instead of
  // terminating) if they can't be written there.
  try {
    return run();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_lab: %s\n", error.what());
    return 1;
  }
}
