// Quickstart: the five-minute tour of pdclab — run a shared-memory
// patternlet, a message-passing patternlet, and one exemplar computation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exemplars/integration.hpp"
#include "patternlets/patternlets.hpp"

int main() {
  using namespace pdc;

  const auto& registry = patternlets::global_registry();
  patterns::RunOptions options;
  options.num_threads = 4;
  options.num_procs = 4;

  // 1. A shared-memory patternlet (the OpenMP module's first example).
  std::puts("== omp/00-spmd: hello from every thread ==");
  for (const auto& line : registry.at("omp/00-spmd").run(options)) {
    std::printf("  %s\n", line.c_str());
  }

  // 2. A message-passing patternlet (the Colab notebook's first example —
  //    the paper's Fig. 2).
  std::puts("\n== mpi/00-spmd: greetings from every process ==");
  for (const auto& line : registry.at("mpi/00-spmd").run(options)) {
    std::printf("  %s\n", line.c_str());
  }

  // 3. An exemplar: approximate pi three ways and compare.
  std::puts("\n== numerical integration exemplar: pi via trapezoid rule ==");
  constexpr std::int64_t kIntervals = 1'000'000;
  const double serial = 2.0 * exemplars::trapezoid_serial(
                                  exemplars::half_circle, -1.0, 1.0, kIntervals);
  const double smp = 2.0 * exemplars::trapezoid_smp(exemplars::half_circle,
                                                    -1.0, 1.0, kIntervals, 4);
  const double mp = 2.0 * exemplars::trapezoid_mp(exemplars::half_circle, -1.0,
                                                  1.0, kIntervals, 4);
  std::printf("  serial:          pi ~= %.9f\n", serial);
  std::printf("  4 threads (smp): pi ~= %.9f\n", smp);
  std::printf("  4 ranks (mp):    pi ~= %.9f\n", mp);

  // 4. Where to go next.
  std::puts("\nNext steps:");
  std::printf("  - %zu patternlets are registered; list them via "
              "patternlets::global_registry().all()\n",
              registry.size());
  std::puts("  - ./build/examples/virtual_module walks the Runestone-style "
            "handout");
  std::puts("  - ./build/examples/mpi4py_notebook executes the Colab "
            "notebook end to end");
  return 0;
}
