// pdclab_cli — the instructor's shell driver for the teaching materials:
//
//   pdclab_cli list [omp|mpi]             catalog of patternlets
//   pdclab_cli show <id>                  description + source listing
//   pdclab_cli run <id> [-t N] [-p N]     execute a patternlet
//   pdclab_cli glossary                   the pattern vocabulary
//   pdclab_cli module <pi|distributed>    a module's table of contents
//
// Exit code 0 on success, 1 on usage errors or unknown ids.

#include <cstdio>
#include <cstring>
#include <string>

#include "courseware/mpi_module.hpp"
#include "courseware/pi_module.hpp"
#include "patterns/taxonomy.hpp"
#include "patternlets/patternlets.hpp"

namespace {

using namespace pdc;

int usage() {
  std::puts(
      "usage:\n"
      "  pdclab_cli list [omp|mpi]\n"
      "  pdclab_cli show <patternlet-id>\n"
      "  pdclab_cli run <patternlet-id> [-t threads] [-p procs]\n"
      "  pdclab_cli glossary\n"
      "  pdclab_cli module <pi|distributed>");
  return 1;
}

int cmd_list(int argc, char** argv) {
  const auto& registry = patternlets::global_registry();
  std::vector<const patterns::Patternlet*> items;
  if (argc >= 3 && std::strcmp(argv[2], "omp") == 0) {
    items = registry.by_paradigm(patterns::Paradigm::SharedMemory);
  } else if (argc >= 3 && std::strcmp(argv[2], "mpi") == 0) {
    items = registry.by_paradigm(patterns::Paradigm::MessagePassing);
  } else {
    items = registry.all();
  }
  for (const auto* patternlet : items) {
    std::printf("%-34s %s\n", patternlet->info().id.c_str(),
                patternlet->info().title.c_str());
  }
  std::printf("(%zu patternlets)\n", items.size());
  return 0;
}

int cmd_show(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto& registry = patternlets::global_registry();
  if (!registry.contains(argv[2])) {
    std::fprintf(stderr, "no patternlet '%s' (try: pdclab_cli list)\n",
                 argv[2]);
    return 1;
  }
  const auto& info = registry.at(argv[2]).info();
  std::printf("%s — %s\n", info.id.c_str(), info.title.c_str());
  std::printf("paradigm: %s\npatterns: ",
              patterns::to_string(info.paradigm).c_str());
  for (std::size_t i = 0; i < info.patterns.size(); ++i) {
    std::printf("%s%s", i ? ", " : "",
                patterns::to_string(info.patterns[i]).c_str());
  }
  std::printf("\n\n%s\n\n--- source ---\n%s\n", info.description.c_str(),
              info.source_listing.c_str());
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto& registry = patternlets::global_registry();
  if (!registry.contains(argv[2])) {
    std::fprintf(stderr, "no patternlet '%s' (try: pdclab_cli list)\n",
                 argv[2]);
    return 1;
  }
  patterns::RunOptions options;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "-t") == 0) {
      options.num_threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "-p") == 0) {
      options.num_procs = std::atoi(argv[i + 1]);
    } else {
      return usage();
    }
  }
  if (options.num_threads < 1 || options.num_procs < 1) {
    std::fputs("thread and process counts must be positive\n", stderr);
    return 1;
  }
  for (const auto& line : registry.at(argv[2]).run(options)) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_glossary() {
  for (patterns::Pattern p : patterns::all_patterns()) {
    std::printf("%-30s [%s]\n    %s\n", patterns::to_string(p).c_str(),
                patterns::to_string(patterns::category_of(p)).c_str(),
                patterns::definition_of(p).c_str());
  }
  return 0;
}

int cmd_module(int argc, char** argv) {
  if (argc < 3) return usage();
  std::unique_ptr<courseware::Module> module;
  if (std::strcmp(argv[2], "pi") == 0) {
    module = courseware::build_raspberry_pi_module();
  } else if (std::strcmp(argv[2], "distributed") == 0) {
    module = courseware::build_distributed_module();
  } else {
    return usage();
  }
  std::fputs(module->table_of_contents().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "list") return cmd_list(argc, argv);
  if (command == "show") return cmd_show(argc, argv);
  if (command == "run") return cmd_run(argc, argv);
  if (command == "glossary") return cmd_glossary();
  if (command == "module") return cmd_module(argc, argv);
  return usage();
}
