// The Forest Fire Simulation exemplar as a learner would explore it:
// watch one fire burn step by step (ASCII animation frames), then run the
// Monte Carlo probability sweep on 4 message-passing ranks and plot the
// phase transition.

#include <cstdio>

#include "exemplars/forestfire.hpp"
#include "support/bar_chart.hpp"
#include "support/strings.hpp"

int main() {
  using namespace pdc;
  using namespace pdc::exemplars;

  // Part 1: one fire, frame by frame.
  std::puts("== one fire, spread probability 0.7, 21x21 forest ==");
  FireSim sim(FireParams{21, 0.7, 4242});
  int frame = 0;
  const auto show = [&](const FireSim& s) {
    std::printf("\nstep %d: burning=%d burnt=%d\n", frame, s.count(Cell::Burning),
                s.count(Cell::Burnt));
    for (const auto& row : s.render()) std::printf("  %s\n", row.c_str());
  };
  show(sim);
  while (sim.step()) {
    ++frame;
    if (frame % 5 == 0) show(sim);  // every 5th frame
  }
  ++frame;
  show(sim);
  std::printf("\nfire died after %d steps; %.1f%% of the forest burned\n",
              sim.steps(),
              100.0 * sim.count(Cell::Burnt) / (21.0 * 21.0));

  // Part 2: the Monte Carlo sweep, farmed across 4 ranks.
  std::puts("\n== probability sweep: 300 trials per point on 4 mp ranks ==");
  const auto sweep =
      sweep_mp(21, default_probabilities(), 300, 2020, /*num_procs=*/4);

  std::vector<std::string> labels;
  std::vector<double> burned, steps;
  for (const auto& point : sweep) {
    labels.push_back("p=" + strings::fixed(point.probability, 1));
    burned.push_back(point.mean_burned_fraction * 100.0);
    steps.push_back(point.mean_steps);
  }
  BarChart burn_chart(labels);
  burn_chart.set_title("\nmean burned fraction (%):");
  burn_chart.add_series({"% burned", burned});
  std::fputs(burn_chart.render().c_str(), stdout);

  BarChart time_chart(labels);
  time_chart.set_title("\nmean burn duration (steps) -- peaks near the "
                       "phase transition:");
  time_chart.add_series({"steps", steps});
  std::fputs(time_chart.render().c_str(), stdout);
  return 0;
}
