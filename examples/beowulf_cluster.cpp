// Build a Beowulf teaching cluster out of the paper's $100 Pi kits, price
// it, validate it, and ask the performance model what the finished cluster
// will deliver — the "connect multiple SBCs to form their own Beowulf
// cluster" thread of Section II, end to end.

#include <cstdio>

#include "cluster/cost_model.hpp"
#include "kit/beowulf.hpp"
#include "support/strings.hpp"

int main() {
  using namespace pdc;

  const kit::Catalog catalog = kit::Catalog::year_2020();

  for (int nodes : {2, 4, 6}) {
    const auto cluster = kit::BeowulfCluster::pi_teaching_cluster(catalog, nodes);
    std::printf("== %s ==\n", cluster.name().c_str());
    std::fputs(cluster.bill_of_materials().render().c_str(), stdout);
    std::printf("cost per core: %s   (%d cores total)\n",
                strings::money(cluster.cost_per_core()).c_str(), 4 * nodes);

    const auto problems = cluster.validate();
    if (problems.empty()) {
      std::puts("build check: OK");
    } else {
      for (const auto& problem : problems) {
        std::printf("build problem: %s\n", problem.c_str());
      }
    }

    // What will it deliver? Ask the cost model about the forest-fire sweep.
    const cluster::CostModel model(cluster.as_cluster_spec());
    cluster::WorkloadSpec work{20.0, 0.01, 5, 8192.0};
    std::printf("predicted speedup on the full cluster (%d ranks): %.1fx\n\n",
                4 * nodes,
                model.scaling_curve(work, {4 * nodes})[0].speedup);
  }

  // And the classic mistake: six nodes on a five-port switch.
  kit::BeowulfCluster overfull("overfull build",
                               kit::Kit::standard_2020(catalog), 6);
  overfull.add_shared_part(catalog.at("switch-5port"));
  std::puts("== deliberately broken build ==");
  for (const auto& problem : overfull.validate()) {
    std::printf("build problem: %s\n", problem.c_str());
  }
  return 0;
}
