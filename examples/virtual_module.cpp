// Walk the "Raspberry Pi virtual handout" the way a remote learner would:
// read the table of contents, watch (well, list) the setup videos, run the
// hands-on patternlet activities, and answer every quiz question — then
// print the session's gradebook.

#include <cstdio>

#include "courseware/pi_module.hpp"
#include "courseware/questions.hpp"
#include "courseware/session.hpp"
#include "patternlets/patternlets.hpp"

int main() {
  using namespace pdc::courseware;

  const auto module = build_raspberry_pi_module();
  const auto& registry = pdc::patternlets::global_registry();

  std::puts("================ table of contents ================");
  std::fputs(module->table_of_contents().c_str(), stdout);

  ModuleSession session(*module);

  std::puts("\n================ working through the module ================");
  for (const auto& chapter : module->chapters()) {
    std::printf("\n--- %s ---\n", chapter->title().c_str());
    for (const auto& section : chapter->sections()) {
      std::printf("\n[%s %s]\n", section->number().c_str(),
                  section->title().c_str());
      for (const auto& item : section->items()) {
        if (const auto* activity =
                dynamic_cast<const HandsOnActivity*>(item.get())) {
          std::printf("  hands-on %s -> running %s:\n",
                      activity->activity_id().c_str(),
                      activity->patternlet_id().c_str());
          const auto output = activity->execute(registry);
          // Show at most 4 lines per activity to keep the walkthrough tight.
          std::size_t shown = 0;
          for (const auto& line : output) {
            if (shown++ == 4) {
              std::printf("    ... (%zu more lines)\n", output.size() - 4);
              break;
            }
            std::printf("    %s\n", line.c_str());
          }
        } else if (item->kind() == "video") {
          std::printf("  %s", item->render().c_str());
        }
      }
      session.record_time(section->number(),
                          static_cast<double>(section->expected_minutes()));
      session.complete_section(section->number());
    }
  }

  std::puts("\n================ answering the quizzes ================");
  // This learner is diligent but misses sp_mc_2 on the first try (picking
  // B, the mutual-exclusion distractor), exactly the Fig. 1 interaction.
  session.submit_blank("setup_fib_1", "3B");
  session.submit_choice("setup_mc_1", std::size_t{1});
  session.submit_choice("sp_mc_1", std::size_t{2});
  {
    const auto* dnd =
        dynamic_cast<const DragAndDrop*>(&module->question("sp_dd_1"));
    session.submit_matching("sp_dd_1", dnd->pairs());
  }
  session.submit_choice("sp_mc_2", std::size_t{1});  // wrong first try
  session.submit_choice("sp_mc_2", std::size_t{2});
  session.submit_choice("sp_mc_3", std::size_t{1});
  session.submit_blank("sp_fib_1", "13");
  session.submit_choice("sp_mc_4", std::size_t{1});
  session.submit_blank("ex_fib_1", "4");
  session.submit_choice("ex_mc_1", std::size_t{0});

  std::printf("score:        %.0f%%\n", session.score() * 100.0);
  std::printf("completion:   %.0f%% of sections\n",
              session.completion_fraction() * 100.0);
  std::printf("time on task: %.0f minutes (budgeted: %d)\n",
              session.total_minutes(), module->expected_minutes());
  std::printf("attempts on the Fig. 1 race-condition question: %d\n",
              session.attempts("sp_mc_2"));
  std::printf("finished: %s\n", session.finished() ? "yes" : "no");
  return session.finished() ? 0 : 1;
}
