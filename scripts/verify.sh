#!/usr/bin/env bash
# Full verification ladder. Run from the repository root:
#
#   scripts/verify.sh [build-dir-prefix]
#
# 1. tier-1      — regular build, the whole test suite (fast, seeds at
#                  defaults)
# 2. bench-smoke — the mp + smp bench binaries in a 1-rep/2-round
#                  configuration (ctest -L bench-smoke): a crash/hang canary
#                  for the measurement harness (including the cached-vs-spawn
#                  fork-join region benchmarks), not a measurement
# 3. tsan        — ThreadSanitizer build, concurrency suites (ctest -L tsan),
#                  which now include the smp team poison/abort regression
#                  tests (test_smp carries the tsan label)
# 4. stress      — chaos seed sweeps at full depth (ctest -L stress with
#                  PDCLAB_CHAOS_SEEDS=80: acceptance scenarios x 80 seeds,
#                  plus the patternlet sweep at a quarter depth)
#
# Set PDCLAB_CHAOS_SEEDS before invoking to sweep deeper or shallower.

set -euo pipefail

prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"
seeds="${PDCLAB_CHAOS_SEEDS:-80}"

echo "==> [1/4] tier-1: build + full test suite (${prefix})"
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo "==> [2/4] bench-smoke: 1-rep mp + smp bench canaries (${prefix})"
ctest --test-dir "${prefix}" --output-on-failure -L bench-smoke

echo "==> [3/4] tsan: ThreadSanitizer build + concurrency suites (${prefix}-tsan)"
cmake -B "${prefix}-tsan" -S . -DPDCLAB_SANITIZE=thread \
  -DPDCLAB_BUILD_BENCH=OFF -DPDCLAB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${prefix}-tsan" -j "${jobs}"
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" -L tsan

echo "==> [4/4] stress: chaos seed sweeps, PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -L stress

echo "==> verify.sh: all four stages passed"
