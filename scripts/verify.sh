#!/usr/bin/env bash
# Full verification ladder. Run from the repository root:
#
#   scripts/verify.sh [build-dir-prefix]
#
# 1. tier-1      — regular build, the whole test suite (fast, seeds at
#                  defaults)
# 2. bench-smoke — scripts/bench_snapshot: the bench binaries in a
#                  1-rep/2-round configuration (ctest -L bench-smoke) as a
#                  crash/hang canary, then six representative probes
#                  (mailbox match cost, fork-join overhead, the four-way
#                  transport ping ablation incl. shm rings plus the np=8
#                  hierarchical collective ablation, lab jobs/sec both
#                  inline and through the forked shard pool under the
#                  worker-kill monkey, grader submissions/sec) distilled
#                  into BENCH_<n>.json — trend data, not a measurement
# 3. tsan        — ThreadSanitizer build, concurrency suites (ctest -L tsan),
#                  which include the smp team poison/abort regression tests,
#                  the in-process socket-cluster suites (test_net carries the
#                  tsan label), the lab server end-to-end suite
#                  (test_lab_server carries lab-tsan), and the grade-report
#                  determinism suite (grade-tsan)
# 4. stress      — chaos seed sweeps at full depth (ctest -L stress with
#                  PDCLAB_CHAOS_SEEDS: acceptance scenarios x N seeds, the
#                  patternlet sweep at a quarter depth, the socket AND shm
#                  chaos sweeps — noise/lossy/hostile/targeted-kill — the lab
#                  admission/dispatch sweep (lab-stress), and the grader
#                  dispatch sweep (grade-stress))
# 5. net         — the transport suites (ctest -L net): wire-protocol
#                  hostile inputs, in-process socket AND shm-ring clusters,
#                  the dial-backoff/partial-send regressions, pdcrun
#                  end-to-end, the socket and shm golden variants (the shm
#                  one includes the real --chaos-kill SIGKILL postmortem
#                  check), and the net chaos sweeps at PDCLAB_CHAOS_SEEDS
#                  depth; every test is bounded by watchdog/handshake
#                  timeouts so this stage cannot hang the ladder
# 6. lab         — the lab-server suites (ctest -L lab): protocol clamps and
#                  hostile frames, fair queue + quotas, result cache, server
#                  end-to-end over unix/tcp (incl. cancellation), the shard
#                  worker-pool suite (forked pdclab workers: crash/hang
#                  detection, respawn, cancel kills), the pdclab CLI
#                  exit-code contract, the chaos sweeps over the admission/
#                  dispatch/worker-kill/cancel-race hooks at
#                  PDCLAB_CHAOS_SEEDS depth, and the 1000-session
#                  load-replay acceptance runs — inline AND multi-process
#                  with the worker-kill monkey (zero lost jobs required)
# 7. grade       — the autograder suites (ctest -L grade): mutant synthesis,
#                  verdict classification, the golden verdict suite, the
#                  byte-identical-report determinism suite, the hostile
#                  chaos sweep over the grader dispatch path at
#                  PDCLAB_CHAOS_SEEDS depth (zero hangs, zero lost
#                  verdicts), and the cohort throughput acceptance run
# 8. store       — the persistence suites (ctest -L store): WAL framing and
#                  torn-tail/corruption recovery, snapshot compaction,
#                  store-backed server integration (journal-before-ack,
#                  warm start, streamed cohort reports, SIGTERM flush), the
#                  kill-during-append/compact sweep at PDCLAB_CHAOS_SEEDS
#                  depth (zero lost acked records, byte-identical recovered
#                  reports), and the recovery/warm-up acceptance run
#
# Set PDCLAB_CHAOS_SEEDS before invoking to sweep deeper or shallower.

set -euo pipefail

prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"
seeds="${PDCLAB_CHAOS_SEEDS:-80}"

echo "==> [1/8] tier-1: build + full test suite (${prefix})"
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo "==> [2/8] bench-smoke: bench canaries + BENCH snapshot (${prefix})"
scripts/bench_snapshot "${prefix}" 10

echo "==> [3/8] tsan: ThreadSanitizer build + concurrency suites (${prefix}-tsan)"
cmake -B "${prefix}-tsan" -S . -DPDCLAB_SANITIZE=thread \
  -DPDCLAB_BUILD_BENCH=OFF -DPDCLAB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${prefix}-tsan" -j "${jobs}"
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" -L tsan

echo "==> [4/8] stress: chaos seed sweeps, PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -L stress

echo "==> [5/8] net: socket + shm transports, pdcrun, goldens," \
     "PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}" -L net

echo "==> [6/8] lab: lab server suites + chaos sweeps + load acceptance" \
     "(inline + multiproc), PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -L lab

echo "==> [7/8] grade: autograder suites + golden verdicts + dispatch" \
     "sweep + throughput acceptance, PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -L grade

echo "==> [8/8] store: WAL/recovery suites + server integration + kill" \
     "sweep + warm-up acceptance, PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -L store

echo "==> verify.sh: all eight stages passed"
