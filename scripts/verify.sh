#!/usr/bin/env bash
# Full verification ladder. Run from the repository root:
#
#   scripts/verify.sh [build-dir-prefix]
#
# 1. tier-1      — regular build, the whole test suite (fast, seeds at
#                  defaults)
# 2. net         — the socket-transport suites (ctest -L net): wire-protocol
#                  hostile inputs, in-process socket clusters, pdcrun
#                  end-to-end and the socket golden variant; every socket
#                  test is bounded by watchdog/handshake timeouts so this
#                  stage cannot hang the ladder
# 3. bench-smoke — the mp + smp + net-transport bench binaries in a
#                  1-rep/2-round configuration (ctest -L bench-smoke): a
#                  crash/hang canary for the measurement harness (including
#                  the cached-vs-spawn fork-join region benchmarks and the
#                  loopback/unix/tcp ablation), not a measurement
# 4. tsan        — ThreadSanitizer build, concurrency suites (ctest -L tsan),
#                  which include the smp team poison/abort regression tests
#                  and the in-process socket-cluster suites (test_net
#                  carries the tsan label)
# 5. stress      — chaos seed sweeps at full depth (ctest -L stress with
#                  PDCLAB_CHAOS_SEEDS=80: acceptance scenarios x 80 seeds,
#                  the patternlet sweep at a quarter depth, and the socket
#                  chaos sweeps — noise/lossy/hostile/targeted-kill)
#
# Set PDCLAB_CHAOS_SEEDS before invoking to sweep deeper or shallower.

set -euo pipefail

prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"
seeds="${PDCLAB_CHAOS_SEEDS:-80}"

echo "==> [1/5] tier-1: build + full test suite (${prefix})"
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo "==> [2/5] net: socket transport, pdcrun, goldens (${prefix})"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}" -L net

echo "==> [3/5] bench-smoke: 1-rep mp + smp + net bench canaries (${prefix})"
ctest --test-dir "${prefix}" --output-on-failure -L bench-smoke

echo "==> [4/5] tsan: ThreadSanitizer build + concurrency suites (${prefix}-tsan)"
cmake -B "${prefix}-tsan" -S . -DPDCLAB_SANITIZE=thread \
  -DPDCLAB_BUILD_BENCH=OFF -DPDCLAB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${prefix}-tsan" -j "${jobs}"
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" -L tsan

echo "==> [5/5] stress: chaos seed sweeps, PDCLAB_CHAOS_SEEDS=${seeds}"
PDCLAB_CHAOS_SEEDS="${seeds}" \
  ctest --test-dir "${prefix}" --output-on-failure -L stress

echo "==> verify.sh: all five stages passed"
