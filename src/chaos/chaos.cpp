#include "chaos/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace pdc::chaos {

namespace {

/// The process-wide active plan (same protocol as trace::g_active).
std::atomic<Plan*> g_active{nullptr};

/// Monotonic id per Plan object, so the per-thread decision counter below
/// can detect "a different plan is active now" even if a new Plan reuses a
/// dead one's address.
std::atomic<std::uint64_t> g_next_epoch{1};

thread_local int tl_actor = 0;

/// The calling thread's bound plan (BoundScope), shadowing g_active.
thread_local Plan* tl_bound = nullptr;

/// Per-thread decision counter, reset whenever the active plan changes.
/// A thread serves one actor at a time, and each actor's operation sequence
/// is deterministic for deterministic programs, so (actor, counter) names a
/// decision point reproducibly across runs.
struct ThreadCounter {
  std::uint64_t epoch = 0;
  std::uint64_t ops = 0;
};
thread_local ThreadCounter tl_counter;

std::uint64_t fnv1a(const char* text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char* p = text; *p != '\0'; ++p) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*p));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Trace marker names, indexed by FaultKind.
constexpr const char* kMarkerNames[] = {
    "chaos.delay", "chaos.reorder", "chaos.drop", "chaos.abort", "chaos.yield",
};
constexpr const char* kKindNames[] = {
    "delay", "reorder", "drop", "abort", "yield",
};

void sleep_us(std::int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

Plan::Plan(Config config) : config_(std::move(config)) {
  // Stamp the epoch at construction so bound-only plans (BoundScope without
  // activate()) also restart every thread's decision counter on first use.
  epoch_ = g_next_epoch.fetch_add(1, std::memory_order_relaxed);
}

Plan::~Plan() { deactivate(); }

void Plan::activate() {
  Plan* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    if (expected == this) return;  // already active: no-op
    throw InvalidArgument("chaos::Plan::activate: another plan is active");
  }
  // Re-stamp so every thread's decision counter restarts for this
  // activation (threads created before activation included).
  epoch_ = g_next_epoch.fetch_add(1, std::memory_order_relaxed);
}

void Plan::deactivate() {
  Plan* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed);
}

Plan* Plan::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

std::vector<InjectedFault> Plan::faults() const {
  std::lock_guard lock(mutex_);
  return faults_;
}

std::vector<InjectedFault> Plan::normalized_faults() const {
  std::vector<InjectedFault> sorted = faults();
  std::sort(sorted.begin(), sorted.end(),
            [](const InjectedFault& a, const InjectedFault& b) {
              if (a.actor != b.actor) return a.actor < b.actor;
              return a.seq < b.seq;
            });
  return sorted;
}

std::size_t Plan::fault_count() const {
  std::lock_guard lock(mutex_);
  return faults_.size();
}

std::size_t Plan::fault_count(FaultKind kind) const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(faults_.begin(), faults_.end(),
                    [&](const InjectedFault& f) { return f.kind == kind; }));
}

double Plan::draw(const char* site, int actor, std::uint64_t counter,
                  std::uint64_t salt) const noexcept {
  // One independent SplitMix64 draw per (seed, site, actor, counter, salt):
  // no shared stream, so cross-thread timing cannot shift any decision.
  std::uint64_t key = config_.seed;
  key ^= fnv1a(site) * 0x9e3779b97f4a7c15ULL;
  key ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(actor)) + 1) *
         0xbf58476d1ce4e5b9ULL;
  key ^= (counter + 1) * 0x94d049bb133111ebULL;
  key ^= (salt + 1) * 0xd6e8feb86659fd93ULL;
  SplitMix64 mixer(key);
  // 53 uniformly random mantissa bits -> [0, 1).
  return static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
}

void Plan::record(FaultKind kind, int actor, std::uint64_t seq,
                  const char* site, std::int64_t magnitude) {
  {
    std::lock_guard lock(mutex_);
    faults_.push_back(InjectedFault{kind, actor, seq, site, magnitude});
  }
  trace::instant(kMarkerNames[static_cast<std::size_t>(kind)], "chaos");
}

std::uint64_t Plan::next_op() const noexcept {
  if (tl_counter.epoch != epoch_) {
    tl_counter.epoch = epoch_;
    tl_counter.ops = 0;
  }
  return tl_counter.ops++;
}

bool Plan::perturb_delivery(const char* site) {
  const int actor = tl_actor;
  const std::uint64_t seq = next_op();

  // Bounded drop-with-retry: the envelope is "lost" a deterministic number
  // of times and resent after a backoff, then goes through — the in-process
  // analogue of a reliable transport retrying over a flaky link. Realized
  // as sender-side latency plus markers, so delivery is still guaranteed
  // (no protocol can hang on a permanently lost message).
  if (config_.drop_probability > 0.0 &&
      draw(site, actor, seq, 0) < config_.drop_probability) {
    const int retries =
        1 + static_cast<int>(draw(site, actor, seq, 1) *
                             std::max(1, config_.max_redeliveries));
    record(FaultKind::Drop, actor, seq, site, retries);
    const auto backoff = static_cast<std::int64_t>(
        1 + draw(site, actor, seq, 2) * std::max(1, config_.max_delay_us));
    sleep_us(backoff * retries);
  }

  if (config_.delay_probability > 0.0 &&
      draw(site, actor, seq, 3) < config_.delay_probability) {
    const auto delay = static_cast<std::int64_t>(
        1 + draw(site, actor, seq, 4) * std::max(1, config_.max_delay_us));
    record(FaultKind::Delay, actor, seq, site, delay);
    sleep_us(delay);
  }

  if (config_.reorder_probability > 0.0 &&
      draw(site, actor, seq, 5) < config_.reorder_probability) {
    record(FaultKind::Reorder, actor, seq, site, 0);
    return true;
  }
  return false;
}

void Plan::checkpoint(const char* site) {
  const int actor = tl_actor;
  const std::uint64_t seq = next_op();

  const bool targeted =
      config_.abort_actor >= 0 && actor == config_.abort_actor &&
      seq == config_.abort_at_op;
  const bool drawn = config_.abort_probability > 0.0 &&
                     draw(site, actor, seq, 6) < config_.abort_probability;
  if (targeted || drawn) {
    record(FaultKind::Abort, actor, seq, site, 0);
    throw InjectedAbort(actor, seq, site);
  }
}

void Plan::perturb_schedule(const char* site) {
  if (config_.yield_probability <= 0.0) return;
  const int actor = tl_actor;
  const std::uint64_t seq = next_op();
  if (draw(site, actor, seq, 7) >= config_.yield_probability) return;

  // Half the injections are a pure yield, half a short sleep — both widen
  // race windows the way an oversubscribed remote VM does.
  const double spin = draw(site, actor, seq, 8);
  if (spin < 0.5) {
    record(FaultKind::Yield, actor, seq, site, 0);
    std::this_thread::yield();
  } else {
    const auto delay = static_cast<std::int64_t>(
        1 + spin * std::max(1, config_.max_delay_us));
    record(FaultKind::Yield, actor, seq, site, delay);
    sleep_us(delay);
  }
}

Config Config::noise(std::uint64_t seed) {
  Config config;
  config.seed = seed;
  config.delay_probability = 0.10;
  config.max_delay_us = 80;
  config.reorder_probability = 0.15;
  config.yield_probability = 0.05;
  return config;
}

Config Config::lossy(std::uint64_t seed) {
  Config config = noise(seed);
  config.drop_probability = 0.08;
  config.max_redeliveries = 3;
  return config;
}

Config Config::hostile(std::uint64_t seed) {
  Config config = lossy(seed);
  config.abort_probability = 0.002;
  return config;
}

Plan* current() noexcept {
  if (tl_bound != nullptr) return tl_bound;
  return g_active.load(std::memory_order_acquire);
}

Plan* bound() noexcept { return tl_bound; }

BoundScope::BoundScope(Plan& plan) noexcept : previous_(tl_bound) {
  tl_bound = &plan;
  bound_ = true;
}

BoundScope::BoundScope(Plan* plan) noexcept : previous_(tl_bound) {
  if (plan != nullptr) {
    tl_bound = plan;
    bound_ = true;
  }
}

BoundScope::~BoundScope() {
  if (bound_) tl_bound = previous_;
}

bool enabled() noexcept {
  return tl_bound != nullptr ||
         g_active.load(std::memory_order_relaxed) != nullptr;
}

int current_actor() noexcept { return tl_actor; }

ActorScope::ActorScope(int actor) noexcept
    : previous_(tl_actor), previous_ops_(tl_counter.ops) {
  tl_actor = actor;
  tl_counter.ops = 0;
}

ActorScope::~ActorScope() {
  tl_actor = previous_;
  tl_counter.ops = previous_ops_;
}

}  // namespace pdc::chaos
