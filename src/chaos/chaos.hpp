#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace pdc::chaos {

/// What a chaos plan injected at one decision point.
enum class FaultKind : std::uint8_t {
  Delay,    ///< message delivery (or scheduling step) held back
  Reorder,  ///< envelope jumped ahead of other senders' queued traffic
  Drop,     ///< message dropped and redelivered after a bounded retry
  Abort,    ///< a rank was killed mid-operation (throws InjectedAbort)
  Yield,    ///< a thread was forced to yield the core
};

/// Name of a fault kind ("delay", "reorder", ...), as used in the
/// "chaos.<kind>" trace markers.
const char* fault_kind_name(FaultKind kind) noexcept;

/// One injected fault. `actor` + `seq` identify the decision point
/// deterministically: actor is the injecting rank/thread's chaos lane and
/// seq is that actor's decision counter at the moment of injection, so two
/// runs of the same seeded plan over the same program produce the same
/// (actor, seq, kind, site, magnitude) tuples — the property the replay
/// tests assert. Wall-clock order across actors is *not* part of the
/// contract (it depends on the host scheduler); compare normalized logs.
struct InjectedFault {
  FaultKind kind = FaultKind::Delay;
  int actor = 0;
  std::uint64_t seq = 0;
  const char* site = "";       ///< decision point, e.g. "mp.deliver"
  std::int64_t magnitude = 0;  ///< delay in us / redelivery count / 0

  bool operator==(const InjectedFault&) const = default;
};

/// Thrown out of a rank when the plan injects an abort — the in-process
/// stand-in for a Colab VM killing a rank mid-collective. mp::run treats it
/// like any other rank error: peers are unblocked and the exception is
/// rethrown to the caller.
class InjectedAbort : public Error {
 public:
  InjectedAbort(int actor, std::uint64_t seq, const char* site)
      : Error("chaos: injected abort of actor " + std::to_string(actor) +
              " at op " + std::to_string(seq) + " (" + site + ")"),
        actor_(actor),
        seq_(seq) {}

  [[nodiscard]] int actor() const noexcept { return actor_; }
  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }

 private:
  int actor_;
  std::uint64_t seq_;
};

/// Knobs of a chaos plan. All probabilities are per decision point; the
/// decisions themselves are drawn from a counter-keyed hash of the seed, so
/// a Config + seed fully determines every injection (see Plan).
struct Config {
  std::uint64_t seed = 1;

  // ---- message-passing faults (Mailbox::deliver / Communicator ops) -----
  double delay_probability = 0.0;    ///< hold a delivery back briefly
  int max_delay_us = 100;            ///< delays are uniform in [1, max]
  double reorder_probability = 0.0;  ///< legally jump the receive queue
  double drop_probability = 0.0;     ///< drop + redeliver (bounded retries)
  int max_redeliveries = 2;          ///< attempts before a drop gives up
                                     ///< and the envelope goes through
  double abort_probability = 0.0;    ///< kill the op's rank (InjectedAbort)

  // Targeted abort: kill exactly `abort_actor` at its `abort_at_op`-th
  // checkpoint (deterministic alternative to abort_probability; -1 = off).
  int abort_actor = -1;
  std::uint64_t abort_at_op = 0;

  // ---- shared-memory faults (pool/barrier/task scheduling) --------------
  double yield_probability = 0.0;  ///< force a yield or a short sleep

  /// Result-preserving noise: delays, reorders and yields only. Safe for
  /// result-invariance sweeps — a deterministic program must produce its
  /// chaos-off answer under this preset.
  static Config noise(std::uint64_t seed);

  /// noise() plus bounded drops-with-retry: still delivery-preserving, but
  /// exercises the retry path and much longer delivery tails.
  static Config lossy(std::uint64_t seed);

  /// lossy() plus probabilistic rank aborts: jobs are expected to *fail*
  /// cleanly (InjectedAbort, no hangs) rather than succeed.
  static Config hostile(std::uint64_t seed);
};

/// A seeded, deterministic fault-injection plan.
///
/// At most one plan is *globally* active process-wide (mirroring
/// trace::TraceSession); while active, the mp/smp runtimes consult it at
/// their injection points. With no plan active every hook costs one relaxed
/// atomic load — the same "compiled to near-zero" budget the trace probes
/// hold to.
///
/// A plan may instead be *bound* to a thread (BoundScope): the binding
/// shadows the global plan for that thread and for every mp rank thread
/// spawned under it (mp::run re-binds the launcher's plan in each rank).
/// Bindings are how the pdc::grade worker fleet explores a different seeded
/// schedule on every worker concurrently — something a single process-wide
/// plan cannot express.
///
/// Determinism: each decision is drawn from SplitMix64 seeded with
/// (seed, site hash, actor, actor-local counter), never from a shared
/// stream, so the decisions an actor sees depend only on its own operation
/// sequence — not on cross-thread timing. For a program whose per-rank /
/// per-thread behaviour is deterministic, the same seed therefore injects
/// the identical fault sequence on every run.
class Plan {
 public:
  explicit Plan(Config config);
  ~Plan();

  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// Make this the process-wide active plan. Throws pdc::InvalidArgument if
  /// a different plan is already active.
  void activate();

  /// Deactivate (idempotent). Faults recorded so far remain readable.
  void deactivate();

  /// The globally active plan, or nullptr when no plan was activate()d.
  /// Thread bindings are not consulted — use current() for decisions.
  static Plan* active() noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Every fault injected so far, in arrival order.
  [[nodiscard]] std::vector<InjectedFault> faults() const;

  /// Faults sorted by (actor, seq) — the deterministic view to diff between
  /// runs (arrival order across actors is scheduler-dependent).
  [[nodiscard]] std::vector<InjectedFault> normalized_faults() const;

  /// Number of faults injected so far.
  [[nodiscard]] std::size_t fault_count() const;

  /// Faults of one kind injected so far.
  [[nodiscard]] std::size_t fault_count(FaultKind kind) const;

  // ---- decision points (called via the free hooks below) ----------------

  /// Decide the perturbation for one message delivery. May sleep (on the
  /// sender's thread) to realize delays and drop-retries; returns true when
  /// the envelope should additionally be enqueued out of order.
  bool perturb_delivery(const char* site);

  /// Decide whether to kill the calling actor at this operation; throws
  /// InjectedAbort when the plan says so.
  void checkpoint(const char* site);

  /// Decide a scheduling perturbation (yield or short sleep) for the
  /// calling thread.
  void perturb_schedule(const char* site);

 private:
  /// Uniform [0,1) draw for decision `counter` of `actor` at `site`.
  [[nodiscard]] double draw(const char* site, int actor,
                            std::uint64_t counter,
                            std::uint64_t salt) const noexcept;

  void record(FaultKind kind, int actor, std::uint64_t seq, const char* site,
              std::int64_t magnitude);

  /// The calling thread's next decision index under this plan (resets the
  /// thread's counter when it last decided under a different plan).
  [[nodiscard]] std::uint64_t next_op() const noexcept;

  const Config config_;
  std::uint64_t epoch_ = 0;  ///< stamped by activate()

  mutable std::mutex mutex_;
  std::vector<InjectedFault> faults_;
};

/// RAII activation: `chaos::Scope scope(config);` runs the enclosed code
/// under a fresh plan and deactivates on scope exit. The plan stays
/// readable (scope.plan().faults()) after deactivation.
class Scope {
 public:
  explicit Scope(Config config) : plan_(std::move(config)) {
    plan_.activate();
  }
  ~Scope() { plan_.deactivate(); }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  [[nodiscard]] Plan& plan() noexcept { return plan_; }

 private:
  Plan plan_;
};

/// The plan the calling thread's decisions go to: its bound plan when a
/// BoundScope is open (directly or inherited from the launching thread by
/// mp::run), the globally active plan otherwise, nullptr when chaos is off
/// for this thread. One thread-local read plus one relaxed atomic load.
[[nodiscard]] Plan* current() noexcept;

/// The calling thread's bound plan, or nullptr when none is bound. Used by
/// mp::run to capture the launcher's binding for its rank threads.
[[nodiscard]] Plan* bound() noexcept;

/// RAII: bind `plan` to the calling thread, shadowing the global plan for
/// the scope's lifetime. Unlike activate(), any number of threads may each
/// bind their own plan concurrently — the pdc::grade fleet runs one seeded
/// schedule exploration per worker this way. The null-pointer form is a
/// no-op binding, so propagating "whatever the launcher had" (possibly
/// nothing) is one unconditional line.
class BoundScope {
 public:
  explicit BoundScope(Plan& plan) noexcept;
  explicit BoundScope(Plan* plan) noexcept;  ///< nullptr → no-op
  ~BoundScope();

  BoundScope(const BoundScope&) = delete;
  BoundScope& operator=(const BoundScope&) = delete;

 private:
  Plan* previous_;
  bool bound_ = false;
};

/// True iff the calling thread has a plan (bound or global).
[[nodiscard]] bool enabled() noexcept;

// ---- actor identity ------------------------------------------------------

/// Actor lanes: mp ranks use their world rank directly; smp threads get
/// offset lanes so a hybrid job's streams never collide.
inline constexpr int kTeamActorBase = 1 << 16;  ///< smp::parallel members
inline constexpr int kPoolActorBase = 1 << 17;  ///< ThreadPool workers

/// The calling thread's chaos lane (0 when outside any scope).
[[nodiscard]] int current_actor() noexcept;

/// RAII: route the calling thread's chaos decisions to `actor`'s
/// deterministic stream. Opened by mp::run (per rank), smp::parallel (per
/// team member) and ThreadPool (per worker). Entering a scope restarts the
/// actor-local decision counter — `seq` counts decisions since the lane was
/// entered, so a lane's stream does not depend on what the host thread did
/// before it took on the actor's role.
class ActorScope {
 public:
  explicit ActorScope(int actor) noexcept;
  ~ActorScope();

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  int previous_;
  std::uint64_t previous_ops_;
};

// ---- runtime hooks -------------------------------------------------------
// No-ops (a relaxed load) when no plan is active; the runtimes call these
// unconditionally.

/// Mailbox::deliver hook; returns true when the envelope should be enqueued
/// ahead of other senders' traffic (the caller enforces the non-overtaking
/// contract — see Mailbox::deliver).
[[nodiscard]] inline bool on_deliver(const char* site) {
  if (Plan* plan = current()) return plan->perturb_delivery(site);
  return false;
}

/// Communicator operation hook; may throw InjectedAbort.
inline void on_op(const char* site) {
  if (Plan* plan = current()) plan->checkpoint(site);
}

/// smp scheduling hook (pool dispatch, barrier arrival, task spawn).
inline void on_schedule_point(const char* site) {
  if (Plan* plan = current()) plan->perturb_schedule(site);
}

}  // namespace pdc::chaos
