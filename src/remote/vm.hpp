#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "notebook/engine.hpp"
#include "remote/firewall.hpp"

namespace pdc::remote {

/// How a learner reaches the remote VM. VNC (the graphical desktop route
/// the instructions prescribed) sits behind the firewall; SSH does not.
enum class AccessMethod { Vnc, Ssh };

std::string to_string(AccessMethod method);

/// A login attempt's credentials.
struct Credentials {
  std::string username;
  std::string password;
};

/// Outcome of a login attempt.
struct LoginResult {
  bool success = false;
  std::optional<int> session_id;  ///< set on success
  std::string message;            ///< human-readable outcome
};

/// The remote multicore VM of Section III-B option 3: "a VNC connection to
/// a 64-core VM running on a large server at St. Olaf". Models accounts,
/// VNC/SSH gateways (VNC firewalled), login sessions, and an execution
/// environment (the same engine that backs the notebook, configured with
/// the VM's core count) so a logged-in session can actually run the
/// mpi4py exemplar files.
class RemoteVm {
 public:
  RemoteVm(std::string hostname, int cores,
           Firewall::Policy vnc_policy = Firewall::Policy{});

  /// The standard workshop configuration: host "stolaf-vm", 64 cores,
  /// 3-strike / 30-minute VNC firewall, one account per participant
  /// ("participant1".."participantN" with per-user passwords), and the
  /// mpi4py teaching files preloaded.
  static RemoteVm st_olaf(int num_participants = 22);

  /// Create a user account.
  void add_account(const std::string& username, const std::string& password);

  /// Attempt a login from `client` (an IP-ish client id) at workshop time
  /// `now_minutes`. VNC consults the firewall; SSH does not.
  LoginResult login(AccessMethod method, const Credentials& credentials,
                    const std::string& client, double now_minutes);

  /// End a session; returns false if the id is unknown.
  bool logout(int session_id);

  /// Run a shell-style command line ("mpirun -np 16 python 09reduce.py",
  /// "ls", ...) inside a session. Throws pdc::NotFound for a dead session.
  std::vector<std::string> run_command(int session_id,
                                       const std::string& command);

  /// Live session count.
  [[nodiscard]] int active_sessions() const;

  /// Sessions currently held by `username`.
  [[nodiscard]] int sessions_of(const std::string& username) const;

  [[nodiscard]] const std::string& hostname() const noexcept {
    return hostname_;
  }
  [[nodiscard]] int cores() const noexcept { return cores_; }

  /// The VNC gateway's firewall (exposed for administration and tests).
  [[nodiscard]] Firewall& vnc_firewall() noexcept { return vnc_firewall_; }

 private:
  struct Session {
    std::string username;
    AccessMethod method;
  };

  [[nodiscard]] bool authenticate(const Credentials& credentials) const;

  std::string hostname_;
  int cores_;
  Firewall vnc_firewall_;
  std::map<std::string, std::string> accounts_;  // username -> password
  std::map<int, Session> sessions_;
  int next_session_id_ = 1;
  notebook::ExecutionEngine engine_;
};

}  // namespace pdc::remote
