#pragma once

#include <string>
#include <vector>

#include "remote/vm.hpp"

namespace pdc::remote {

/// One step of a learner's connection transcript.
struct ConnectionEvent {
  double minute = 0.0;
  AccessMethod method = AccessMethod::Vnc;
  bool success = false;
  std::string detail;
};

/// Outcome of connect_with_fallback.
struct ConnectionOutcome {
  bool connected = false;
  std::optional<int> session_id;
  AccessMethod method_used = AccessMethod::Vnc;
  std::vector<ConnectionEvent> transcript;
};

/// The remote-lab connection procedure with the workaround from Section
/// IV-B: try VNC (the prescribed graphical route); if the learner's earlier
/// mistakes got their client blocked by the VNC firewall, fall back to SSH
/// — "the participants could still ssh to the VM to complete the exercise".
///
/// `wrong_attempts_first` models the eager-beaver behaviour: that many
/// wrong-password VNC attempts are made (one minute apart) before the
/// learner reads the instructions and uses the right credentials.
ConnectionOutcome connect_with_fallback(RemoteVm& vm,
                                        const Credentials& good_credentials,
                                        const std::string& client,
                                        double start_minute,
                                        int wrong_attempts_first = 0);

/// Render a transcript as the narrative lines an instructor would see in
/// the helpdesk channel.
std::vector<std::string> render_transcript(const ConnectionOutcome& outcome);

}  // namespace pdc::remote
