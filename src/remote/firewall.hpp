#pragma once

#include <map>
#include <string>

namespace pdc::remote {

/// Fail2ban-style connection firewall: repeated authentication failures
/// from one client temporarily block that client.
///
/// This is the mechanism behind Section IV-B's incident: "eager beaver"
/// participants raced ahead of the instructions, tried to log in to the St.
/// Olaf VM incorrectly, and triggered "a VNC-firewall issue that
/// temporarily suspended their remote access via VNC" — while SSH (a
/// separate, unfirewalled gateway) kept working.
class Firewall {
 public:
  struct Policy {
    int max_failures = 3;          ///< failures before the client is blocked
    double lockout_minutes = 30.0; ///< how long a block lasts
  };

  explicit Firewall(Policy policy);

  /// Record one failed authentication from `client` at time `now_minutes`.
  /// Returns true if the client is now blocked.
  bool record_failure(const std::string& client, double now_minutes);

  /// Record a successful authentication: resets the failure counter
  /// (an existing active block is NOT lifted — the learner's correct
  /// password no longer helps, which is what made the incident confusing).
  void record_success(const std::string& client);

  /// Whether `client` is blocked at time `now_minutes`. A lapsed block is
  /// forgotten (and the failure count reset).
  [[nodiscard]] bool is_blocked(const std::string& client,
                                double now_minutes) const;

  /// Administrative unblock (what the workshop staff did live).
  void unblock(const std::string& client);

  /// Consecutive failures currently recorded for `client`.
  [[nodiscard]] int failures(const std::string& client) const;

  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

 private:
  struct ClientState {
    int failures = 0;
    double blocked_until = -1.0;  ///< minute the block lapses; < 0 = none
  };

  Policy policy_;
  mutable std::map<std::string, ClientState> clients_;
};

}  // namespace pdc::remote
