#include "remote/lab.hpp"

#include "support/strings.hpp"

namespace pdc::remote {

ConnectionOutcome connect_with_fallback(RemoteVm& vm,
                                        const Credentials& good_credentials,
                                        const std::string& client,
                                        double start_minute,
                                        int wrong_attempts_first) {
  ConnectionOutcome outcome;
  double minute = start_minute;

  // The eager-beaver phase: racing ahead with guessed credentials.
  for (int i = 0; i < wrong_attempts_first; ++i) {
    Credentials wrong = good_credentials;
    wrong.password = "password" + std::to_string(i + 1);
    const LoginResult result =
        vm.login(AccessMethod::Vnc, wrong, client, minute);
    outcome.transcript.push_back(
        ConnectionEvent{minute, AccessMethod::Vnc, false, result.message});
    minute += 1.0;
  }

  // Now following the instructions: VNC with the correct credentials.
  {
    const LoginResult result =
        vm.login(AccessMethod::Vnc, good_credentials, client, minute);
    outcome.transcript.push_back(ConnectionEvent{minute, AccessMethod::Vnc,
                                                 result.success,
                                                 result.message});
    if (result.success) {
      outcome.connected = true;
      outcome.session_id = result.session_id;
      outcome.method_used = AccessMethod::Vnc;
      return outcome;
    }
    minute += 1.0;
  }

  // The documented workaround: ssh still works.
  {
    const LoginResult result =
        vm.login(AccessMethod::Ssh, good_credentials, client, minute);
    outcome.transcript.push_back(ConnectionEvent{minute, AccessMethod::Ssh,
                                                 result.success,
                                                 result.message});
    if (result.success) {
      outcome.connected = true;
      outcome.session_id = result.session_id;
      outcome.method_used = AccessMethod::Ssh;
    }
  }
  return outcome;
}

std::vector<std::string> render_transcript(const ConnectionOutcome& outcome) {
  std::vector<std::string> lines;
  for (const auto& event : outcome.transcript) {
    lines.push_back("[t+" + strings::fixed(event.minute, 0) + "min] " +
                    to_string(event.method) + " " +
                    (event.success ? "OK  " : "FAIL") + "  " + event.detail);
  }
  if (outcome.connected) {
    lines.push_back("connected via " + to_string(outcome.method_used) +
                    (outcome.method_used == AccessMethod::Ssh
                         ? " (VNC remained blocked -- \"the platform "
                           "switches seem to be a little confusing\")"
                         : ""));
  } else {
    lines.push_back("NOT connected -- escalate to workshop staff");
  }
  return lines;
}

}  // namespace pdc::remote
