#include "remote/vm.hpp"

#include "patternlets/patternlets.hpp"
#include "support/error.hpp"

namespace pdc::remote {

std::string to_string(AccessMethod method) {
  return method == AccessMethod::Vnc ? "VNC" : "SSH";
}

namespace {

notebook::ExecutionEngine make_engine(const std::string& hostname, int cores) {
  notebook::EngineConfig config;
  config.hostname = hostname;
  config.max_procs = cores;
  return notebook::ExecutionEngine(notebook::ProgramRegistry::mpi4py_standard(),
                                   config);
}

}  // namespace

RemoteVm::RemoteVm(std::string hostname, int cores,
                   Firewall::Policy vnc_policy)
    : hostname_(std::move(hostname)),
      cores_(cores),
      vnc_firewall_(vnc_policy),
      engine_(make_engine(hostname_, cores)) {
  if (cores_ < 1) throw InvalidArgument("RemoteVm: cores must be >= 1");
  // The teaching .py files are preloaded on the VM image, so a session can
  // `mpirun` them immediately — no %%writefile step needed over VNC/SSH.
  for (const auto& name :
       notebook::ProgramRegistry::mpi4py_standard().filenames()) {
    engine_.files().write(name, "# preloaded CSinParallel teaching file\n");
  }
}

RemoteVm RemoteVm::st_olaf(int num_participants) {
  RemoteVm vm("stolaf-vm", 64, Firewall::Policy{3, 30.0});
  for (int i = 1; i <= num_participants; ++i) {
    vm.add_account("participant" + std::to_string(i),
                   "workshop2020-" + std::to_string(i));
  }
  return vm;
}

void RemoteVm::add_account(const std::string& username,
                           const std::string& password) {
  if (username.empty()) throw InvalidArgument("RemoteVm: username required");
  accounts_[username] = password;
}

bool RemoteVm::authenticate(const Credentials& credentials) const {
  const auto it = accounts_.find(credentials.username);
  return it != accounts_.end() && it->second == credentials.password;
}

LoginResult RemoteVm::login(AccessMethod method, const Credentials& credentials,
                            const std::string& client, double now_minutes) {
  LoginResult result;

  if (method == AccessMethod::Vnc &&
      vnc_firewall_.is_blocked(client, now_minutes)) {
    result.message = "VNC: connection refused (client " + client +
                     " temporarily blocked by the firewall)";
    return result;
  }

  if (!authenticate(credentials)) {
    if (method == AccessMethod::Vnc) {
      const bool now_blocked =
          vnc_firewall_.record_failure(client, now_minutes);
      result.message = now_blocked
                           ? "VNC: authentication failed; too many attempts "
                             "-- client blocked for " +
                                 std::to_string(static_cast<int>(
                                     vnc_firewall_.policy().lockout_minutes)) +
                                 " minutes"
                           : "VNC: authentication failed";
    } else {
      result.message = "SSH: permission denied";
    }
    return result;
  }

  if (method == AccessMethod::Vnc) vnc_firewall_.record_success(client);

  const int id = next_session_id_++;
  sessions_[id] = Session{credentials.username, method};
  result.success = true;
  result.session_id = id;
  result.message = to_string(method) + ": " + credentials.username +
                   " logged in to " + hostname_ + " (" +
                   std::to_string(cores_) + " cores)";
  return result;
}

bool RemoteVm::logout(int session_id) {
  return sessions_.erase(session_id) > 0;
}

std::vector<std::string> RemoteVm::run_command(int session_id,
                                               const std::string& command) {
  if (!sessions_.contains(session_id)) {
    throw NotFound("RemoteVm: no active session " +
                   std::to_string(session_id));
  }
  return engine_.execute_source("!" + command);
}

int RemoteVm::active_sessions() const {
  return static_cast<int>(sessions_.size());
}

int RemoteVm::sessions_of(const std::string& username) const {
  int count = 0;
  for (const auto& [id, session] : sessions_) {
    count += session.username == username;
  }
  return count;
}

}  // namespace pdc::remote
