#include "remote/firewall.hpp"

#include "support/error.hpp"

namespace pdc::remote {

Firewall::Firewall(Policy policy) : policy_(policy) {
  if (policy.max_failures < 1) {
    throw InvalidArgument("Firewall: max_failures must be >= 1");
  }
  if (policy.lockout_minutes <= 0.0) {
    throw InvalidArgument("Firewall: lockout_minutes must be positive");
  }
}

bool Firewall::record_failure(const std::string& client, double now_minutes) {
  // A lapsed block must be cleared first so the count restarts cleanly.
  (void)is_blocked(client, now_minutes);
  ClientState& state = clients_[client];
  ++state.failures;
  if (state.failures >= policy_.max_failures) {
    state.blocked_until = now_minutes + policy_.lockout_minutes;
    return true;
  }
  return state.blocked_until >= now_minutes;
}

void Firewall::record_success(const std::string& client) {
  const auto it = clients_.find(client);
  if (it != clients_.end()) {
    it->second.failures = 0;  // the block (if any) deliberately remains
  }
}

bool Firewall::is_blocked(const std::string& client,
                          double now_minutes) const {
  const auto it = clients_.find(client);
  if (it == clients_.end()) return false;
  ClientState& state = it->second;
  if (state.blocked_until < 0.0) return false;
  if (now_minutes >= state.blocked_until) {
    state.blocked_until = -1.0;  // block lapsed
    state.failures = 0;
    return false;
  }
  return true;
}

void Firewall::unblock(const std::string& client) {
  const auto it = clients_.find(client);
  if (it != clients_.end()) {
    it->second.blocked_until = -1.0;
    it->second.failures = 0;
  }
}

int Firewall::failures(const std::string& client) const {
  const auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.failures;
}

}  // namespace pdc::remote
