#pragma once

#include <vector>

#include "cluster/specs.hpp"

namespace pdc::cluster {

/// Amdahl's-law speedup for a workload whose `serial_fraction` cannot be
/// parallelized: S(p) = 1 / (s + (1-s)/p).
double amdahl_speedup(int p, double serial_fraction);

/// Gustafson's scaled speedup: S(p) = p - s * (p - 1). Included because the
/// handout's benchmarking discussion contrasts the two laws.
double gustafson_speedup(int p, double serial_fraction);

/// Description of a data-parallel computation plus its communication needs,
/// in the BSP spirit: `num_supersteps` alternations of compute and a
/// collective exchange of `bytes_per_exchange` bytes.
struct WorkloadSpec {
  double total_gflop = 1.0;          ///< parallelizable + serial compute
  double serial_fraction = 0.0;      ///< fraction that cannot parallelize
  int num_supersteps = 1;            ///< compute/communicate rounds
  double bytes_per_exchange = 0.0;   ///< payload of each collective round
};

/// One point of a predicted scaling curve.
struct ScalingPoint {
  int procs = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  double efficiency = 1.0;
};

/// Analytic platform performance model.
///
/// Compute time follows Amdahl on the platform's per-core speed; each
/// superstep adds a tree-structured collective costed with the Hockney
/// alpha-beta network model, choosing the intra-node network while all
/// ranks fit on one node and the (slower) inter-node network otherwise.
/// This deliberately simple model is what regenerates the paper's
/// platform-shape claims: the 1-core Colab VM pins at speedup 1, the
/// 64-core St. Olaf VM scales until Amdahl bites, and Chameleon scales
/// across nodes with visible communication overhead.
class CostModel {
 public:
  explicit CostModel(ClusterSpec platform);

  /// Predicted wall time (seconds) of `work` on `procs` ranks. `procs` is
  /// clamped to the platform's total cores: oversubscribed ranks do not
  /// speed up a machine, which is exactly the Colab lesson.
  [[nodiscard]] double predict_seconds(const WorkloadSpec& work, int procs) const;

  /// Full scaling curve for the given rank counts.
  [[nodiscard]] std::vector<ScalingPoint> scaling_curve(
      const WorkloadSpec& work, const std::vector<int>& proc_counts) const;

  [[nodiscard]] const ClusterSpec& platform() const noexcept { return platform_; }

 private:
  ClusterSpec platform_;
};

/// Standard proc counts {1, 2, 4, ..., max_procs} used by the benches.
std::vector<int> power_of_two_procs(int max_procs);

}  // namespace pdc::cluster
