#include "cluster/specs.hpp"

namespace pdc::cluster {

ClusterSpec raspberry_pi_3b() {
  ClusterSpec spec;
  spec.name = "Raspberry Pi 3B";
  spec.node = MachineSpec{"BCM2837 Cortex-A53 @1.2GHz", 4, 0.6, 1.0};
  spec.num_nodes = 1;
  spec.inter_node = NetworkSpec{500.0, 0.1};  // 100 Mb Ethernet, if clustered
  spec.intra_node = NetworkSpec{1.0, 10.0};
  return spec;
}

ClusterSpec raspberry_pi_4() {
  ClusterSpec spec;
  spec.name = "Raspberry Pi 4 (2GB)";
  spec.node = MachineSpec{"BCM2711 Cortex-A72 @1.5GHz", 4, 1.5, 2.0};
  spec.num_nodes = 1;
  spec.inter_node = NetworkSpec{200.0, 1.0};  // GbE
  spec.intra_node = NetworkSpec{0.8, 15.0};
  return spec;
}

ClusterSpec colab_vm() {
  ClusterSpec spec;
  spec.name = "Google Colab VM (2020 free tier)";
  spec.node = MachineSpec{"Xeon vCPU @2.2GHz", 1, 3.0, 12.0};
  spec.num_nodes = 1;
  spec.inter_node = NetworkSpec{100.0, 1.0};
  spec.intra_node = NetworkSpec{0.5, 50.0};
  return spec;
}

ClusterSpec st_olaf_vm() {
  ClusterSpec spec;
  spec.name = "St. Olaf 64-core VM";
  spec.node = MachineSpec{"EPYC-class server @2.0GHz", 64, 4.0, 256.0};
  spec.num_nodes = 1;
  spec.inter_node = NetworkSpec{50.0, 10.0};
  spec.intra_node = NetworkSpec{0.3, 100.0};
  return spec;
}

ClusterSpec chameleon_cluster(int num_nodes) {
  ClusterSpec spec;
  spec.name = "Chameleon cluster (" + std::to_string(num_nodes) + " nodes)";
  spec.node = MachineSpec{"Haswell Xeon E5-2670v3 @2.3GHz", 24, 4.5, 128.0};
  spec.num_nodes = num_nodes;
  spec.inter_node = NetworkSpec{25.0, 10.0};  // 10 GbE
  spec.intra_node = NetworkSpec{0.3, 100.0};
  return spec;
}

std::vector<ClusterSpec> all_presets() {
  return {raspberry_pi_3b(), raspberry_pi_4(), colab_vm(), st_olaf_vm(),
          chameleon_cluster(4)};
}

}  // namespace pdc::cluster
