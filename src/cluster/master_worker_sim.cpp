#include "cluster/master_worker_sim.hpp"

#include <algorithm>
#include <numeric>

#include "cluster/event_sim.hpp"
#include "support/error.hpp"

namespace pdc::cluster {

MasterWorkerSim::MasterWorkerSim(ClusterSpec platform)
    : platform_(std::move(platform)) {
  if (platform_.total_cores() < 1) {
    throw InvalidArgument("MasterWorkerSim: platform must have cores");
  }
}

double MasterWorkerSim::dispatch_cost(int workers) const {
  // A dispatch is a request + reply pair of small messages.
  const bool crosses_nodes = workers + 1 > platform_.node.cores;
  const NetworkSpec& net =
      crosses_nodes ? platform_.inter_node : platform_.intra_node;
  return 2.0 * net.transfer_seconds(64.0);
}

namespace {

SimResult summarize(std::vector<double> worker_busy, double makespan) {
  SimResult result;
  result.makespan = makespan;
  result.worker_busy = std::move(worker_busy);
  if (makespan > 0.0 && !result.worker_busy.empty()) {
    const double total = std::accumulate(result.worker_busy.begin(),
                                         result.worker_busy.end(), 0.0);
    result.busy_fraction =
        total / (makespan * static_cast<double>(result.worker_busy.size()));
  }
  return result;
}

}  // namespace

SimResult MasterWorkerSim::simulate_dynamic(
    const std::vector<double>& task_seconds, int workers) const {
  if (workers < 1) throw InvalidArgument("simulate_dynamic: need >= 1 worker");
  const double speed = platform_.node.core_gflops;
  const double dispatch = dispatch_cost(workers);

  EventSim sim;
  std::size_t next_task = 0;
  std::vector<double> busy(static_cast<std::size_t>(workers), 0.0);
  double makespan = 0.0;

  // Each worker becomes idle, asks the master for work, runs the task, and
  // repeats. The callback closure *is* the worker's state machine.
  std::function<void(int)> worker_idle = [&](int w) {
    if (next_task >= task_seconds.size()) return;  // no work left: retire
    const double run_time = task_seconds[next_task++] / speed;
    busy[static_cast<std::size_t>(w)] += run_time;
    sim.schedule_in(dispatch + run_time, [&, w] {
      makespan = std::max(makespan, sim.now());
      worker_idle(w);
    });
  };

  for (int w = 0; w < workers; ++w) {
    sim.schedule(0.0, [&, w] { worker_idle(w); });
  }
  sim.run();
  return summarize(std::move(busy), makespan);
}

SimResult MasterWorkerSim::simulate_static(
    const std::vector<double>& task_seconds, int workers) const {
  if (workers < 1) throw InvalidArgument("simulate_static: need >= 1 worker");
  const double speed = platform_.node.core_gflops;
  const std::size_t n = task_seconds.size();
  const auto p = static_cast<std::size_t>(workers);

  std::vector<double> busy(p, 0.0);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  std::size_t offset = 0;
  for (std::size_t w = 0; w < p; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    for (std::size_t i = offset; i < offset + len; ++i) {
      busy[w] += task_seconds[i] / speed;
    }
    offset += len;
  }
  const double makespan =
      busy.empty() ? 0.0 : *std::max_element(busy.begin(), busy.end());
  return summarize(std::move(busy), makespan);
}

}  // namespace pdc::cluster
