#pragma once

#include <string>
#include <vector>

namespace pdc::cluster {

/// One node's compute resources.
struct MachineSpec {
  std::string name;
  int cores = 1;
  double core_gflops = 1.0;  ///< sustained GFLOP/s per core
  double memory_gb = 1.0;
};

/// Interconnect characteristics, Hockney-style (alpha-beta model).
struct NetworkSpec {
  double latency_us = 50.0;        ///< per-message latency (alpha)
  double bandwidth_gbps = 1.0;     ///< link bandwidth (1/beta)

  /// Time in seconds to move `bytes` point-to-point.
  [[nodiscard]] double transfer_seconds(double bytes) const noexcept {
    return latency_us * 1e-6 + bytes * 8.0 / (bandwidth_gbps * 1e9);
  }
};

/// A whole execution platform: `num_nodes` identical nodes joined by a
/// network. Shared-memory "communication" inside a node is modeled with a
/// much cheaper intra-node network.
struct ClusterSpec {
  std::string name;
  MachineSpec node;
  int num_nodes = 1;
  NetworkSpec inter_node;
  NetworkSpec intra_node{0.5, 100.0};  ///< memory-bus scale defaults

  [[nodiscard]] int total_cores() const noexcept { return node.cores * num_nodes; }
  [[nodiscard]] double total_gflops() const noexcept {
    return node.core_gflops * total_cores();
  }
};

/// The platforms the paper's modules ran on (Sections III-A, III-B):

/// Raspberry Pi 3B: quad-core Cortex-A53 @1.2 GHz (the minimum model the
/// custom image supports).
ClusterSpec raspberry_pi_3b();

/// Raspberry Pi 4 (2 GB CanaKit from Table I): quad-core Cortex-A72 @1.5 GHz.
ClusterSpec raspberry_pi_4();

/// Google Colab free tier, 2020: a single-core cloud VM — the platform that
/// "prevents learners from experiencing parallel speedup".
ClusterSpec colab_vm();

/// The 64-core VM on a large server at St. Olaf used for the exemplars.
ClusterSpec st_olaf_vm();

/// A Chameleon Cloud bare-metal cluster allocation: `num_nodes` Haswell-class
/// 24-core nodes on a 10 GbE fabric.
ClusterSpec chameleon_cluster(int num_nodes = 4);

/// All five presets, in the order above (for sweeps and tables).
std::vector<ClusterSpec> all_presets();

}  // namespace pdc::cluster
