#include "cluster/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace pdc::cluster {

double amdahl_speedup(int p, double serial_fraction) {
  if (p < 1) throw InvalidArgument("amdahl_speedup: p must be >= 1");
  if (serial_fraction < 0.0 || serial_fraction > 1.0) {
    throw InvalidArgument("amdahl_speedup: serial fraction must be in [0,1]");
  }
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p);
}

double gustafson_speedup(int p, double serial_fraction) {
  if (p < 1) throw InvalidArgument("gustafson_speedup: p must be >= 1");
  if (serial_fraction < 0.0 || serial_fraction > 1.0) {
    throw InvalidArgument("gustafson_speedup: serial fraction must be in [0,1]");
  }
  return p - serial_fraction * (p - 1);
}

CostModel::CostModel(ClusterSpec platform) : platform_(std::move(platform)) {
  if (platform_.node.cores < 1 || platform_.num_nodes < 1) {
    throw InvalidArgument("CostModel: platform must have at least one core");
  }
  if (platform_.node.core_gflops <= 0.0) {
    throw InvalidArgument("CostModel: core speed must be positive");
  }
}

double CostModel::predict_seconds(const WorkloadSpec& work, int procs) const {
  if (procs < 1) throw InvalidArgument("predict_seconds: procs must be >= 1");
  const int usable = std::min(procs, platform_.total_cores());

  const double serial_gflop = work.total_gflop * work.serial_fraction;
  const double parallel_gflop = work.total_gflop - serial_gflop;
  const double compute =
      serial_gflop / platform_.node.core_gflops +
      parallel_gflop / (platform_.node.core_gflops * usable);

  double comm = 0.0;
  if (usable > 1 && work.num_supersteps > 0) {
    const bool crosses_nodes = usable > platform_.node.cores;
    const NetworkSpec& net =
        crosses_nodes ? platform_.inter_node : platform_.intra_node;
    // Tree collective: ceil(log2(p)) rounds of one message each.
    const double rounds = std::ceil(std::log2(static_cast<double>(usable)));
    comm = work.num_supersteps * rounds *
           net.transfer_seconds(work.bytes_per_exchange);
  }
  return compute + comm;
}

std::vector<ScalingPoint> CostModel::scaling_curve(
    const WorkloadSpec& work, const std::vector<int>& proc_counts) const {
  const double t1 = predict_seconds(work, 1);
  std::vector<ScalingPoint> curve;
  curve.reserve(proc_counts.size());
  for (int p : proc_counts) {
    ScalingPoint point;
    point.procs = p;
    point.seconds = predict_seconds(work, p);
    point.speedup = t1 / point.seconds;
    point.efficiency = point.speedup / p;
    curve.push_back(point);
  }
  return curve;
}

std::vector<int> power_of_two_procs(int max_procs) {
  if (max_procs < 1) throw InvalidArgument("power_of_two_procs: need >= 1");
  std::vector<int> counts;
  for (int p = 1; p <= max_procs; p *= 2) counts.push_back(p);
  return counts;
}

}  // namespace pdc::cluster
