#pragma once

#include <vector>

#include "cluster/specs.hpp"

namespace pdc::cluster {

/// Result of simulating one schedule of a task bag on p workers.
struct SimResult {
  double makespan = 0.0;           ///< wall time until the last task finishes
  double busy_fraction = 0.0;      ///< mean worker utilization
  std::vector<double> worker_busy; ///< per-worker total compute time
};

/// Discrete-event simulation of the two scheduling strategies the drug
/// design exemplar contrasts, on a modeled platform.
///
/// Tasks are given as compute times *on one reference core*; the platform's
/// core speed scales them, and each dynamic dispatch pays one round-trip of
/// the platform's network (inter-node once workers exceed one node).
class MasterWorkerSim {
 public:
  explicit MasterWorkerSim(ClusterSpec platform);

  /// Dynamic (self-scheduling) master-worker: each idle worker requests the
  /// next task from the master, paying dispatch latency per task. This is
  /// the MPI master-worker patternlet's strategy.
  [[nodiscard]] SimResult simulate_dynamic(const std::vector<double>& task_seconds,
                                           int workers) const;

  /// Static block assignment: worker w gets the contiguous block of tasks
  /// it would get from schedule(static). No per-task dispatch cost, but no
  /// load balancing either.
  [[nodiscard]] SimResult simulate_static(const std::vector<double>& task_seconds,
                                          int workers) const;

  [[nodiscard]] const ClusterSpec& platform() const noexcept { return platform_; }

 private:
  [[nodiscard]] double dispatch_cost(int workers) const;

  ClusterSpec platform_;
};

}  // namespace pdc::cluster
