#include "cluster/event_sim.hpp"

#include "support/error.hpp"

namespace pdc::cluster {

void EventSim::schedule(double t, Callback fn) {
  if (t < now_) {
    throw InvalidArgument("EventSim::schedule: cannot schedule in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

double EventSim::run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move the callback out via const_cast is
    // unnecessary — copy the small wrapper instead, then pop.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  return now_;
}

}  // namespace pdc::cluster
