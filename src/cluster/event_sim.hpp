#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pdc::cluster {

/// Minimal discrete-event simulation engine.
///
/// Events are (time, callback) pairs processed in nondecreasing time order;
/// ties break by insertion order so simulations are fully deterministic.
/// Callbacks may schedule further events. This drives the master-worker
/// platform simulator and is reusable for any queueing-style model.
class EventSim {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute simulation time `t` (must be >= now()).
  void schedule(double t, Callback fn);

  /// Schedule `fn` at now() + dt.
  void schedule_in(double dt, Callback fn) { schedule(now() + dt, std::move(fn)); }

  /// Current simulation time (the timestamp of the event being processed,
  /// or of the last processed event once run() returns).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Process events until the queue is empty; returns the final time.
  double run();

  /// Number of events processed so far (for tests and diagnostics).
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace pdc::cluster
