#pragma once

// Precompiled header for the subsystem libraries, enabled with
// -DPDCLAB_ENABLE_PCH=ON (see src/CMakeLists.txt).
//
// Only stable C++ standard library headers belong here — the set nearly
// every pdclab translation unit pulls in through support/, net/, and the
// runtime headers. No project headers: those change every edit and would
// turn the PCH into a full-rebuild trigger; nothing here may depend on
// build options or platform macros.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>
