#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "patternlets/mpi_programs.hpp"
#include "support/error.hpp"

namespace pdc::grade {

/// The classes of seeded bugs the mutator can plant in a patternlet.
///
/// Clean is the unmutated control — its transcript is the grading
/// reference. The faulty kinds model the concurrency mistakes the paper's
/// students actually make: a message race (whoever arrives last wins), a
/// stale read reordered across a communication (order), a receive nobody
/// matches (deadlock), an outright exception (crash), and a plain
/// deterministic wrong answer (wrong) as the non-concurrent control.
enum class MutationKind : std::uint8_t {
  Clean = 0,
  Wrong = 1,
  Race = 2,
  Order = 3,
  Deadlock = 4,
  Crash = 5,
};

/// Lowercase kind name ("clean", "race", ...), as used in mutant ids.
const char* mutation_kind_name(MutationKind kind) noexcept;

/// Inverse of mutation_kind_name. Throws pdc::InvalidArgument.
MutationKind parse_mutation_kind(const std::string& name);

/// One synthesized student submission: a base patternlet plus a seeded
/// mutation. `salt` differentiates "students" who made the same class of
/// mistake — it perturbs the mutation's deterministic outcome stream, not
/// the class of bug.
struct MutantSpec {
  std::string base;  ///< patternlet program name ("spmd", "ring", ...)
  MutationKind kind = MutationKind::Clean;
  std::uint32_t salt = 0;
  int np = 4;  ///< ranks the submission runs on (>= 2)

  /// Canonical id, e.g. "spmd~race#3@np4". Round-trips through parse().
  [[nodiscard]] std::string id() const;

  /// Parse an id produced by id(). Throws pdc::InvalidArgument on malformed
  /// input (wrong shape, unknown kind, np < 2).
  static MutantSpec parse(const std::string& id);

  bool operator==(const MutantSpec&) const = default;
};

/// Build the runnable rank program for `spec`: the base patternlet body
/// followed by a grading epilogue in which every rank r > 0 reports a
/// payload to rank 0 and rank 0 prints one "final: last=<L> sum=<S>" line.
/// The mutation rewrites the epilogue (who sends what, who waits on whom).
///
/// Determinism contract: a mutant's schedule-dependent outcomes (which
/// sender "wins" a race, which rank reads a stale value) are drawn from a
/// deterministic oracle keyed by (bound chaos seed, base, salt) — the same
/// schedule the chaos plan explores also decides the mutant's behaviour, so
/// a grade is a pure function of (spec, seed) and grade reports are
/// byte-identical across runs and worker counts. The injected *chaos* noise
/// (delays, reorders, yields) is still real; the oracle only replaces the
/// hardware race by a seeded one. See DESIGN.md §9.
///
/// Throws pdc::NotFound for an unknown base, pdc::InvalidArgument for
/// np < 2.
patternlets::MpProgram synthesize(const MutantSpec& spec);

/// The reference transcript lines rank 0's epilogue must produce for a
/// correct np-rank run: "final: last=<np-1> sum=<np*(np-1)/2>".
std::string reference_final_line(int np);

/// Synthesize a grading corpus: every patternlet base crossed with every
/// mutation kind, `per_cell` salts each, all at `np` ranks. A class of ~30
/// students per assignment is `per_cell = 2` over the 15 bases; scale
/// `per_cell` up for cohort-size stress runs.
std::vector<MutantSpec> synthesize_corpus(int per_cell, int np,
                                          std::uint32_t salt_base = 0);

}  // namespace pdc::grade
