#include "grade/mutant.hpp"

#include <string_view>

#include "chaos/chaos.hpp"
#include "support/rng.hpp"

namespace pdc::grade {
namespace {

/// Tag the epilogue reports travel on (well below kMaxUserTag).
constexpr int kReportTag = 71;
/// Tag the deadlock mutant waits on; no rank ever sends it.
constexpr int kOrphanTag = 72;
/// Tag of rank 0's "body drained, report now" release token.
constexpr int kDrainTag = 73;

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// The schedule oracle: a deterministic draw keyed by (bound chaos seed,
/// base, salt, stream). Under the grader every schedule exploration binds a
/// chaos::Plan whose seed identifies the schedule, so the oracle gives each
/// explored schedule its own — but reproducible — outcome for the mutant's
/// race. With no plan bound (the reference run) the draw is the seed-0
/// stream.
std::uint64_t oracle_draw(const MutantSpec& spec,
                          std::uint64_t stream) noexcept {
  std::uint64_t seed = 0;
  if (const chaos::Plan* plan = chaos::current()) seed = plan->config().seed;
  SplitMix64 mix(fnv1a(spec.base) ^
                 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(spec.salt) + 1) ^
                 0xBF58476D1CE4E5B9ULL * (seed + 1) ^
                 0x94D049BB133111EBULL * (stream + 1));
  return mix.next();
}

/// The grading epilogue every synthesized submission ends with: ranks
/// r > 0 report a payload to rank 0, rank 0 prints the summary line the
/// grader diffs against reference_final_line(). The mutation kind decides
/// where the planted bug bites.
void epilogue(mp::Communicator& comm, const MutantSpec& spec) {
  const int np = comm.size();
  const int rank = comm.rank();

  if (spec.kind == MutationKind::Crash &&
      rank == static_cast<int>(spec.salt % static_cast<std::uint32_t>(np))) {
    throw Error("mutant: planted crash in " + spec.id());
  }

  if (rank == 0) {
    if (spec.kind == MutationKind::Deadlock) {
      // The planted deadlock: wait for a message no rank ever sends. Only
      // the watchdog (mp::RunConfig::watchdog_ms) gets the job out. The
      // reporters are still parked in their release-token receive, so the
      // whole job wedges — exactly what a student's orphan receive does.
      (void)comm.recv<int>(mp::kAnySource, kOrphanTag);
    }
    // Release the reporters only now that rank 0's own body is complete
    // (every body message consumed). A base whose rank 0 receives from
    // kAnySource/kAnyTag (the any-source patternlet) could otherwise
    // swallow a fast peer's report in its body loop and wedge the
    // rank-ordered collection below. The token cannot be stolen in the
    // other direction: per-source FIFO delivery means a worker's body
    // receives drain rank 0's body traffic before they can see it.
    for (int r = 1; r < np; ++r) comm.send(0, r, kDrainTag);
    long long sum = 0;
    int last = 0;
    for (int source = 1; source < np; ++source) {
      const int value = comm.recv<int>(source, kReportTag);
      sum += value;
      last = value;
    }
    if (spec.kind == MutationKind::Race) {
      // The racy student kept whichever report "arrived last". The winner
      // is drawn from the schedule oracle rather than the host scheduler,
      // so each explored seed deterministically picks a winner.
      last = 1 + static_cast<int>(oracle_draw(spec, 0) %
                                  static_cast<std::uint64_t>(np - 1));
    }
    comm.print("final: last=" + std::to_string(last) +
               " sum=" + std::to_string(sum));
  } else {
    (void)comm.recv<int>(0, kDrainTag);  // wait for rank 0's release
    int payload = rank;
    switch (spec.kind) {
      case MutationKind::Wrong:
        // Deterministically wrong on every schedule (the control mutant).
        if (rank == 1) payload += 1 + static_cast<int>(spec.salt % 7);
        break;
      case MutationKind::Order:
        // Stale read: on a quarter of schedules (per rank, oracle-drawn)
        // this rank reports the value from before its last update.
        if (oracle_draw(spec, static_cast<std::uint64_t>(rank)) % 4 == 0) {
          payload = rank - 1;
        }
        break;
      default:
        break;
    }
    comm.send(payload, 0, kReportTag);
  }
}

}  // namespace

const char* mutation_kind_name(MutationKind kind) noexcept {
  switch (kind) {
    case MutationKind::Clean:
      return "clean";
    case MutationKind::Wrong:
      return "wrong";
    case MutationKind::Race:
      return "race";
    case MutationKind::Order:
      return "order";
    case MutationKind::Deadlock:
      return "deadlock";
    case MutationKind::Crash:
      return "crash";
  }
  return "unknown";
}

MutationKind parse_mutation_kind(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(MutationKind::Crash); ++i) {
    const auto kind = static_cast<MutationKind>(i);
    if (name == mutation_kind_name(kind)) return kind;
  }
  throw InvalidArgument("parse_mutation_kind: unknown kind '" + name + "'");
}

std::string MutantSpec::id() const {
  return base + "~" + mutation_kind_name(kind) + "#" + std::to_string(salt) +
         "@np" + std::to_string(np);
}

MutantSpec MutantSpec::parse(const std::string& id) {
  const auto bad = [&](const std::string& why) {
    return InvalidArgument("MutantSpec: malformed id '" + id + "': " + why);
  };
  const std::size_t tilde = id.find('~');
  const std::size_t hash = id.find('#', tilde == std::string::npos ? 0 : tilde);
  const std::size_t at = id.find("@np", hash == std::string::npos ? 0 : hash);
  if (tilde == std::string::npos || hash == std::string::npos ||
      at == std::string::npos || tilde == 0) {
    throw bad("expected <base>~<kind>#<salt>@np<ranks>");
  }
  MutantSpec spec;
  spec.base = id.substr(0, tilde);
  spec.kind = parse_mutation_kind(id.substr(tilde + 1, hash - tilde - 1));
  try {
    spec.salt = static_cast<std::uint32_t>(
        std::stoul(id.substr(hash + 1, at - hash - 1)));
    spec.np = std::stoi(id.substr(at + 3));
  } catch (const std::exception&) {
    throw bad("salt and np must be numbers");
  }
  if (spec.np < 2) throw bad("np must be >= 2");
  return spec;
}

patternlets::MpProgram synthesize(const MutantSpec& spec) {
  if (spec.np < 2) {
    throw InvalidArgument("synthesize: " + spec.id() +
                          ": a gradeable submission needs np >= 2");
  }
  // Throws pdc::NotFound for an unknown base — the grader surfaces that as
  // a Skipped verdict rather than aborting the cohort.
  patternlets::MpProgram base = patternlets::mpi_program(spec.base);
  return [base = std::move(base), spec](mp::Communicator& comm) {
    base(comm);
    epilogue(comm, spec);
  };
}

std::string reference_final_line(int np) {
  return "final: last=" + std::to_string(np - 1) +
         " sum=" + std::to_string(static_cast<long long>(np) * (np - 1) / 2);
}

std::vector<MutantSpec> synthesize_corpus(int per_cell, int np,
                                          std::uint32_t salt_base) {
  if (per_cell < 1) {
    throw InvalidArgument("synthesize_corpus: per_cell must be >= 1");
  }
  if (np < 2) throw InvalidArgument("synthesize_corpus: np must be >= 2");
  std::vector<MutantSpec> corpus;
  for (const std::string& base : patternlets::mpi_program_names()) {
    for (int k = 0; k <= static_cast<int>(MutationKind::Crash); ++k) {
      for (int s = 0; s < per_cell; ++s) {
        corpus.push_back(MutantSpec{base, static_cast<MutationKind>(k),
                                    salt_base + static_cast<std::uint32_t>(s),
                                    np});
      }
    }
  }
  return corpus;
}

}  // namespace pdc::grade
