#pragma once

#include <functional>
#include <string>

#include "grade/grader.hpp"
#include "store/store.hpp"

namespace pdc::grade {

/// Journals autograder verdicts into a pdc::store::Store.
///
/// Every record() is durable before it returns (the store's WAL contract),
/// so a grading batch killed mid-corpus resumes with every already-recorded
/// verdict intact — the persistent half of the "a verdict can be delayed by
/// chaos but never lost" guarantee. Records are keyed (cohort, mutant id,
/// submission): re-grading the same key upserts, distinct submissions of
/// the same mutant coexist.
///
/// Thread safety: record() may be called from any number of grader worker
/// threads at once (hook() plugs it straight into GraderConfig::on_grade).
class GradeBook {
 public:
  /// Journal into `store`, tagging every record with `cohort` (the class or
  /// batch) and `submission` (the student or run label). The store must
  /// outlive the book.
  GradeBook(store::Store& store, std::string cohort, std::string submission);

  /// Journal one verdict; durable on return.
  void record(const Grade& grade);

  /// Adapter for GraderConfig::on_grade: every verdict is journaled the
  /// moment it lands, before the fleet joins.
  [[nodiscard]] std::function<void(const Grade&)> hook();

  [[nodiscard]] const std::string& cohort() const noexcept { return cohort_; }
  [[nodiscard]] const std::string& submission() const noexcept {
    return submission_;
  }

  /// Grade → store record (verdict travels as its canonical name string so
  /// the store never links this library).
  [[nodiscard]] static store::GradeRecord to_record(
      const Grade& grade, const std::string& cohort,
      const std::string& submission);

  /// Store record → Grade. Throws pdc::InvalidArgument on a verdict name
  /// no verdict_name() produces (a record from a disagreeing version).
  [[nodiscard]] static Grade from_record(const store::GradeRecord& record);

 private:
  store::Store& store_;
  const std::string cohort_;
  const std::string submission_;
};

}  // namespace pdc::grade
