#include "grade/verdict.hpp"

namespace pdc::grade {

const char* verdict_name(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::Pass:
      return "pass";
    case Verdict::Flaky:
      return "flaky";
    case Verdict::Wrong:
      return "wrong";
    case Verdict::Hang:
      return "hang";
    case Verdict::Crash:
      return "crash";
    case Verdict::Skipped:
      return "skipped";
  }
  return "unknown";
}

Verdict parse_verdict(const std::string& name) {
  for (std::size_t i = 0; i < kVerdictCount; ++i) {
    const auto verdict = static_cast<Verdict>(i);
    if (name == verdict_name(verdict)) return verdict;
  }
  throw InvalidArgument("parse_verdict: unknown verdict '" + name + "'");
}

}  // namespace pdc::grade
