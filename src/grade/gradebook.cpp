#include "grade/gradebook.hpp"

#include <utility>

namespace pdc::grade {

GradeBook::GradeBook(store::Store& store, std::string cohort,
                     std::string submission)
    : store_(store),
      cohort_(std::move(cohort)),
      submission_(std::move(submission)) {}

store::GradeRecord GradeBook::to_record(const Grade& grade,
                                        const std::string& cohort,
                                        const std::string& submission) {
  store::GradeRecord record;
  record.cohort = cohort;
  record.mutant = grade.id;
  record.submission = submission;
  record.verdict = verdict_name(grade.verdict);
  record.matched = static_cast<std::uint32_t>(grade.matched);
  record.explored = static_cast<std::uint32_t>(grade.explored);
  record.divergence = static_cast<double>(grade.divergence);
  record.detail = grade.detail;
  return record;
}

Grade GradeBook::from_record(const store::GradeRecord& record) {
  Grade grade;
  grade.id = record.mutant;
  grade.verdict = parse_verdict(record.verdict);
  grade.matched = static_cast<int>(record.matched);
  grade.explored = static_cast<int>(record.explored);
  grade.divergence = static_cast<int>(record.divergence);
  grade.detail = record.detail;
  return grade;
}

void GradeBook::record(const Grade& grade) {
  store_.put_grade(to_record(grade, cohort_, submission_));
}

std::function<void(const Grade&)> GradeBook::hook() {
  return [this](const Grade& grade) { record(grade); };
}

}  // namespace pdc::grade
