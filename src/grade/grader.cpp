#include "grade/grader.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string_view>
#include <thread>

#include "chaos/chaos.hpp"
#include "mp/runtime.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace pdc::grade {
namespace {

void validate(const GraderConfig& cfg) {
  if (cfg.workers < 1) {
    throw InvalidArgument("grade: workers must be >= 1");
  }
  if (cfg.seeds < 0) {
    throw InvalidArgument("grade: seeds must be >= 0");
  }
  if (cfg.watchdog_ms < 1) {
    throw InvalidArgument(
        "grade: watchdog_ms must be >= 1 (a deadlocked submission would "
        "stall the cohort forever)");
  }
}

/// Transcript comparison is over the sorted line multiset: mp output is
/// logged in arrival order, which the host scheduler (and injected chaos
/// delays) legally permute. Sorting makes benign interleavings invisible
/// while any payload difference still diverges.
std::vector<std::string> normalized(std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Size of the symmetric difference of two sorted line multisets — the
/// number of transcript lines that would show up in a diff.
int divergence_lines(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t diff = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
      ++diff;
    } else {
      ++j;
      ++diff;
    }
  }
  diff += (a.size() - i) + (b.size() - j);
  return static_cast<int>(std::min<std::size_t>(diff, 1 << 20));
}

}  // namespace

std::string Grade::to_line() const {
  std::string line = id + ": " + verdict_name(verdict) +
                     " matched=" + std::to_string(matched) + "/" +
                     std::to_string(explored) +
                     " divergence=" + std::to_string(divergence);
  if (!detail.empty()) line += " (" + detail + ")";
  return line;
}

Grade Grade::parse_line(const std::string& line) {
  const auto bad = [&line](const std::string& why) {
    return InvalidArgument("grade: cannot parse '" + line + "': " + why);
  };
  const auto number = [&](std::size_t begin, std::size_t end) -> int {
    if (end == std::string::npos || end <= begin) throw bad("missing number");
    int value = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const char c = line[i];
      if (c < '0' || c > '9') throw bad("non-digit in number");
      if (value > ((1 << 30) - (c - '0')) / 10) throw bad("number overflow");
      value = value * 10 + (c - '0');
    }
    return value;
  };

  Grade grade;
  const std::size_t colon = line.find(": ");
  if (colon == std::string::npos || colon == 0) throw bad("missing id");
  grade.id = line.substr(0, colon);

  std::size_t pos = colon + 2;
  const std::size_t verdict_end = line.find(' ', pos);
  if (verdict_end == std::string::npos) throw bad("missing verdict");
  grade.verdict = parse_verdict(line.substr(pos, verdict_end - pos));

  pos = verdict_end + 1;
  constexpr std::string_view kMatched = "matched=";
  if (line.compare(pos, kMatched.size(), kMatched) != 0) {
    throw bad("missing matched=");
  }
  pos += kMatched.size();
  const std::size_t slash = line.find('/', pos);
  grade.matched = number(pos, slash);
  pos = slash + 1;
  const std::size_t matched_end = line.find(' ', pos);
  if (matched_end == std::string::npos) throw bad("missing divergence");
  grade.explored = number(pos, matched_end);

  pos = matched_end + 1;
  constexpr std::string_view kDivergence = "divergence=";
  if (line.compare(pos, kDivergence.size(), kDivergence) != 0) {
    throw bad("missing divergence=");
  }
  pos += kDivergence.size();
  std::size_t divergence_end = line.find(' ', pos);
  if (divergence_end == std::string::npos) divergence_end = line.size();
  grade.divergence = number(pos, divergence_end);

  if (divergence_end < line.size()) {  // the optional " (detail)" suffix
    if (line.compare(divergence_end, 2, " (") != 0 || line.back() != ')') {
      throw bad("trailing bytes that are not a (detail) suffix");
    }
    grade.detail =
        line.substr(divergence_end + 2, line.size() - divergence_end - 3);
  }
  return grade;
}

void CohortStats::fold(const Grade& grade) {
  ++verdicts[static_cast<std::size_t>(grade.verdict)];
  matched_schedules += static_cast<std::uint64_t>(grade.matched);
  explored_schedules += static_cast<std::uint64_t>(grade.explored);
  divergence.add(static_cast<double>(grade.divergence));
  grade_us.add(grade.run_us);
}

void CohortStats::merge(const CohortStats& other) {
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    verdicts[i] += other.verdicts[i];
  }
  matched_schedules += other.matched_schedules;
  explored_schedules += other.explored_schedules;
  divergence.merge(other.divergence);
  grade_us.merge(other.grade_us);
}

Grade grade_one(const MutantSpec& spec, const GraderConfig& cfg) {
  validate(cfg);
  Grade grade;
  grade.id = spec.id();
  WallTimer total;

  patternlets::MpProgram program;
  patternlets::MpProgram control;
  try {
    program = synthesize(spec);
    MutantSpec clean = spec;
    clean.kind = MutationKind::Clean;
    control = synthesize(clean);
  } catch (const Error& error) {
    grade.detail = std::string("synthesis: ") + error.what();
    grade.run_us = total.elapsed_seconds() * 1e6;
    return grade;  // Skipped
  }

  mp::RunConfig run_cfg;
  run_cfg.num_procs = spec.np;
  run_cfg.watchdog_ms = cfg.watchdog_ms;

  // The reference transcript comes from the Clean variant under a bound
  // do-nothing plan: the binding shadows any globally active chaos plan, so
  // a hostile plan stressing the grader's dispatch path can never corrupt
  // the answer key.
  std::vector<std::string> reference;
  try {
    chaos::Plan quiet{chaos::Config{}};
    chaos::BoundScope isolate(quiet);
    reference = normalized(mp::run(run_cfg, control).output);
  } catch (const std::exception& error) {
    grade.detail = std::string("reference: ") + error.what();
    grade.run_us = total.elapsed_seconds() * 1e6;
    return grade;  // Skipped
  }

  // Schedule exploration: one bound noise plan per seed. Binding (rather
  // than activating) lets every worker of the fleet explore its own
  // schedules concurrently.
  std::vector<double> durations;
  bool hung = false;
  bool crashed = false;
  for (int k = 0; k < cfg.seeds; ++k) {
    WallTimer timer;
    try {
      chaos::Plan plan(chaos::Config::noise(cfg.seed_base +
                                            static_cast<std::uint64_t>(k)));
      chaos::BoundScope explore(plan);
      const auto transcript = normalized(mp::run(run_cfg, program).output);
      ++grade.explored;
      durations.push_back(timer.elapsed_seconds() * 1e6);
      const int diff = divergence_lines(transcript, reference);
      grade.divergence = std::max(grade.divergence, diff);
      if (diff == 0) ++grade.matched;
    } catch (const mp::TimedOut& error) {
      ++grade.explored;
      hung = true;
      grade.detail = error.what();
      break;  // Hang outranks everything; no point exploring further
    } catch (const std::exception& error) {
      ++grade.explored;
      crashed = true;
      if (grade.detail.empty()) grade.detail = error.what();
    }
  }

  if (hung) {
    grade.verdict = Verdict::Hang;
  } else if (crashed) {
    grade.verdict = Verdict::Crash;
  } else {
    // Pass/Flaky/Wrong are statistical claims over the explored schedules;
    // the describe() preconditions (a nonempty sample with n >= 2 for the
    // variance) gate them. K < 2 therefore grades Skipped with the
    // precondition spelled out, instead of the batch stats throwing
    // mid-cohort.
    const auto timing = assessment::describe(durations);
    if (!timing.ok()) {
      grade.verdict = Verdict::Skipped;
      grade.detail = "stats: " + timing.error;
    } else if (grade.matched == grade.explored) {
      grade.verdict = Verdict::Pass;
    } else if (grade.matched == 0) {
      grade.verdict = Verdict::Wrong;
    } else {
      grade.verdict = Verdict::Flaky;
    }
  }
  grade.run_us = total.elapsed_seconds() * 1e6;
  return grade;
}

Report grade_corpus(const std::vector<MutantSpec>& corpus,
                    const GraderConfig& cfg) {
  validate(cfg);
  Report report;
  report.seeds = cfg.seeds;
  report.seed_base = cfg.seed_base;
  report.keep_grades = cfg.keep_grades;
  report.grades.assign(corpus.size(), Grade{});

  std::vector<CohortStats> shards(static_cast<std::size_t>(cfg.workers));
  std::atomic<std::size_t> next{0};

  const auto worker = [&](int w) {
    chaos::ActorScope lane(kGradeActorBase + w);
    CohortStats& shard = shards[static_cast<std::size_t>(w)];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= corpus.size()) break;
      for (;;) {
        try {
          // The dispatch checkpoint: a chaos plan targeting the grade lane
          // aborts the claim here, and the retry redelivers the submission
          // — a verdict can be delayed by chaos but never lost.
          chaos::on_op("grade.dispatch");
          report.grades[i] = grade_one(corpus[i], cfg);
          break;
        } catch (const chaos::InjectedAbort&) {
        } catch (const std::exception& error) {
          Grade failed;
          failed.id = corpus[i].id();
          failed.detail = std::string("grader: ") + error.what();
          report.grades[i] = failed;  // Skipped, reason recorded
          break;
        }
      }
      shard.fold(report.grades[i]);
      if (cfg.on_grade) cfg.on_grade(report.grades[i]);
    }
  };

  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(cfg.workers) - 1);
  for (int w = 1; w < cfg.workers; ++w) fleet.emplace_back(worker, w);
  worker(0);
  for (auto& thread : fleet) thread.join();

  // Integral counts merge exactly, so the aggregate cannot depend on which
  // worker graded which submission.
  for (const CohortStats& shard : shards) report.stats.merge(shard);
  return report;
}

std::size_t Report::lost() const noexcept {
  std::size_t count = 0;
  for (const Grade& grade : grades) {
    if (grade.id.empty()) ++count;
  }
  return count;
}

std::string Report::to_text() const {
  std::ostringstream out;
  out << "pdc::grade report\n";
  out << "submissions: " << grades.size() << "\n";
  if (seeds > 0) {
    out << "schedules: " << seeds << " per submission (seeds " << seed_base
        << ".." << seed_base + static_cast<std::uint64_t>(seeds) - 1 << ")\n";
  } else {
    out << "schedules: 0 per submission\n";
  }
  out << "verdicts:";
  for (std::size_t i = 0; i < kVerdictCount; ++i) {
    out << " " << verdict_name(static_cast<Verdict>(i)) << "="
        << stats.verdicts[i];
  }
  out << "\n";
  out << "schedules matched: " << stats.matched_schedules << "/"
      << stats.explored_schedules << "\n";
  if (keep_grades && !grades.empty()) {
    out << "-- grades --\n";
    for (const Grade& grade : grades) out << grade.to_line() << "\n";
  }
  out << "-- divergence (transcript lines off reference, per submission) --\n";
  if (stats.divergence.count() == 0) {
    out << "(empty)\n";
  } else {
    out << stats.divergence.to_text();
  }
  return out.str();
}

std::string Report::timing_text() const {
  std::ostringstream out;
  out << "grade timing (wall clock; informational, not canonical)\n";
  const assessment::Welford& t = stats.grade_us;
  if (t.count() < 2) {
    out << "samples: " << t.count() << " (need >= 2 for variance)\n";
    return out.str();
  }
  out << "grades: " << t.count() << " mean=" << strings::fixed(t.mean(), 1)
      << "us stddev=" << strings::fixed(t.sample_stddev(), 1)
      << "us min=" << strings::fixed(t.min(), 1)
      << "us max=" << strings::fixed(t.max(), 1) << "us\n";

  // Do passing submissions grade measurably faster than failing ones?
  // (Hangs burn the whole watchdog; passes never do.) The fallible Welch
  // test reports its precondition instead of throwing when a cohort is
  // one-sided.
  std::vector<double> passed;
  std::vector<double> failed;
  for (const Grade& grade : grades) {
    (grade.verdict == Verdict::Pass ? passed : failed).push_back(grade.run_us);
  }
  const auto comparison = assessment::try_welch_t_test(passed, failed);
  if (comparison.ok()) {
    out << "pass-vs-fail timing: t=" << strings::fixed(comparison.value.t, 3)
        << " df=" << strings::fixed(comparison.value.df, 1)
        << "\n";
  } else {
    out << "pass-vs-fail timing: not computable: " << comparison.error
        << "\n";
  }
  return out.str();
}

}  // namespace pdc::grade
