#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace pdc::grade {

/// Outcome of grading one submission across every explored schedule.
///
/// The ordering encodes severity precedence: when schedules disagree about
/// *how* a submission fails, the grader reports the most severe observed
/// outcome — a submission that hangs on one schedule and merely prints the
/// wrong answer on another is a Hang, not a Wrong.
enum class Verdict : std::uint8_t {
  Pass = 0,   ///< matched the reference on every explored schedule
  Flaky = 1,  ///< matched on some schedules but not others (a race!)
  Wrong = 2,  ///< completed but never matched the reference
  Hang = 3,   ///< at least one schedule exceeded the watchdog (deadlock)
  Crash = 4,  ///< at least one schedule threw out of the job
  Skipped = 5,  ///< could not be graded (synthesis, reference or stats
                ///< precondition failure); never silently dropped
};

/// Number of verdict values (size of per-verdict count arrays).
inline constexpr std::size_t kVerdictCount = 6;

/// Lowercase verdict name ("pass", "flaky", ...), stable — it appears in
/// the canonical grade report and the golden verdict suite.
const char* verdict_name(Verdict verdict) noexcept;

/// Inverse of verdict_name. Throws pdc::InvalidArgument on unknown names.
Verdict parse_verdict(const std::string& name);

}  // namespace pdc::grade
