#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "assessment/streaming.hpp"
#include "grade/mutant.hpp"
#include "grade/verdict.hpp"

namespace pdc::grade {

/// Chaos lane of grader worker w (kGradeActorBase + w): above the smp team
/// (1<<16), pool (1<<17) and lab (1<<18) lanes, so a chaos plan can target
/// the grader's dispatch loop without touching any other subsystem.
inline constexpr int kGradeActorBase = 1 << 19;

struct Grade;

/// Knobs of one grading batch.
struct GraderConfig {
  /// Schedules explored per submission (K). A submission must match the
  /// reference on *every* explored schedule to pass; K < 2 cannot support a
  /// statistical claim and grades everything Skipped (see Report).
  int seeds = 8;

  /// First chaos seed; submission schedules use seed_base .. seed_base+K-1.
  std::uint64_t seed_base = 1;

  /// Worker threads grading concurrently. Each worker binds its own chaos
  /// plans (chaos::BoundScope), so fleets of any size explore schedules
  /// independently; reports are byte-identical for any worker count.
  int workers = 4;

  /// Per-job watchdog (mp::RunConfig::watchdog_ms). A schedule exceeding it
  /// is classified Hang. Must be > 0: grading without a watchdog would let
  /// one deadlocked submission stall the whole cohort.
  int watchdog_ms = 2000;

  /// Keep the per-submission grade lines in Report::to_text(). Disable for
  /// cohort-scale runs where only the aggregate matters.
  bool keep_grades = true;

  /// Called once per submission the moment its verdict lands (before the
  /// fleet joins). Runs on grader worker threads, possibly concurrently —
  /// the GradeBook journaling hook, whose store is thread-safe. Leave empty
  /// for no per-grade side effects.
  std::function<void(const Grade&)> on_grade;
};

/// Grade of one submission.
struct Grade {
  std::string id;  ///< MutantSpec::id(); empty means "never graded" (lost)
  Verdict verdict = Verdict::Skipped;
  int matched = 0;     ///< explored schedules whose transcript matched
  int explored = 0;    ///< schedules actually run (Hang short-circuits)
  int divergence = 0;  ///< max transcript lines diverging from reference
  std::string detail;  ///< skip reason / first failure message
  double run_us = 0.0;  ///< wall-clock for this grade (not canonical)

  /// Canonical one-line form, e.g.
  /// "spmd~race#3@np4: flaky matched=5/8 divergence=1".
  [[nodiscard]] std::string to_line() const;

  /// Inverse of to_line() (run_us, which the line never carries, stays 0).
  /// The lab server uses it to recover the structured verdict from a grade
  /// job's first output line when journaling into the store. Throws
  /// pdc::InvalidArgument on anything to_line() could not have produced.
  [[nodiscard]] static Grade parse_line(const std::string& line);
};

/// Merge-able aggregate over a cohort of grades. Workers fold their own
/// shard and the grader merges shards at join time; every canonical field
/// is integral, so the merged aggregate is independent of how the cohort
/// was partitioned over workers.
struct CohortStats {
  std::array<std::uint64_t, kVerdictCount> verdicts{};
  std::uint64_t matched_schedules = 0;
  std::uint64_t explored_schedules = 0;
  /// Transcript lines diverging from the reference, one sample per
  /// submission (clamped into [0, 64) — the histogram's edge buckets).
  assessment::Histogram divergence{0.0, 64.0, 64};
  /// Wall-clock per grade; timing only, excluded from the canonical report.
  assessment::Welford grade_us;

  void fold(const Grade& grade);
  void merge(const CohortStats& other);
};

/// Outcome of grading a corpus.
struct Report {
  std::vector<Grade> grades;  ///< corpus order
  CohortStats stats;
  int seeds = 0;
  std::uint64_t seed_base = 0;
  bool keep_grades = true;

  /// Number of grades with the given verdict.
  [[nodiscard]] std::uint64_t count(Verdict verdict) const noexcept {
    return stats.verdicts[static_cast<std::size_t>(verdict)];
  }

  /// Submissions that were never graded (empty Grade slots). The grader's
  /// dispatch retry loop guarantees zero; the bench gates on it.
  [[nodiscard]] std::size_t lost() const noexcept;

  /// The canonical report: verdict totals, per-grade lines (when
  /// keep_grades), and the divergence histogram. Contains only integers and
  /// deterministic strings — byte-identical across runs and worker counts
  /// for the same (corpus, config).
  [[nodiscard]] std::string to_text() const;

  /// Wall-clock statistics (mean/stddev/min/max grade time and a
  /// matched-vs-failed timing comparison). Informational; never part of
  /// the canonical report.
  [[nodiscard]] std::string timing_text() const;
};

/// Grade one submission: synthesize it and its Clean reference, run the
/// reference chaos-quiet, then explore cfg.seeds schedules under bound
/// chaos noise plans and classify. Never throws for a gradeable-or-not
/// submission — failures surface as the Grade's verdict/detail.
/// Throws pdc::InvalidArgument only for an invalid config.
Grade grade_one(const MutantSpec& spec, const GraderConfig& cfg);

/// Grade a corpus on a fleet of cfg.workers threads. Work is claimed from a
/// shared index; each claim passes the chaos::on_op("grade.dispatch")
/// checkpoint on the worker's kGradeActorBase lane, and an injected abort
/// there redispatches the submission, so a hostile chaos plan can hammer
/// the dispatch path without losing a single verdict.
Report grade_corpus(const std::vector<MutantSpec>& corpus,
                    const GraderConfig& cfg);

}  // namespace pdc::grade
