#pragma once

#include <string>
#include <vector>

#include "kit/image.hpp"
#include "kit/parts.hpp"
#include "support/text_table.hpp"

namespace pdc::kit {

/// One line of a kit: a catalog part and a quantity.
struct KitLine {
  Part part;
  int quantity = 1;
};

/// A mailable Raspberry Pi kit: parts + flashed system image.
///
/// `standard_2020(catalog)` reconstructs exactly the kit in the paper's
/// Table I; `validate()` enforces the constraints Section III-A states
/// (complete I/O path from laptop to Pi, image/hardware compatibility,
/// storage present, ≈$100 budget).
class Kit {
 public:
  Kit(std::string name, PiModel model, SystemImage image);

  /// The $100 kit mailed to workshop participants (Table I).
  static Kit standard_2020(const Catalog& catalog);

  /// Add `quantity` of `part` to the kit.
  void add(const Part& part, int quantity = 1);

  /// Total cost at bulk prices (what the authors paid, Table I).
  [[nodiscard]] double total_cost_bulk() const;

  /// Total cost at single-unit retail prices (what one instructor pays).
  [[nodiscard]] double total_cost_retail() const;

  /// Lines in insertion order.
  [[nodiscard]] const std::vector<KitLine>& lines() const noexcept {
    return lines_;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PiModel model() const noexcept { return model_; }
  [[nodiscard]] const SystemImage& image() const noexcept { return image_; }

  /// Problems that would stop a remote learner from using the kit; empty
  /// means the kit is ready to mail. Checks: image supports the Pi model,
  /// a storage card is present, the laptop-to-Pi connection path exists
  /// (Ethernet cable + Ethernet-USB adapter), and the bulk cost stays
  /// within `budget` dollars.
  [[nodiscard]] std::vector<std::string> validate(double budget = 105.0) const;

  /// Render the bill of materials in the layout of the paper's Table I.
  [[nodiscard]] TextTable bill_of_materials() const;

 private:
  std::string name_;
  PiModel model_;
  SystemImage image_;
  std::vector<KitLine> lines_;
};

}  // namespace pdc::kit
