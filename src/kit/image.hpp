#pragma once

#include <string>
#include <vector>

namespace pdc::kit {

/// Raspberry Pi hardware generations relevant to the materials.
enum class PiModel {
  Pi1,
  Pi2,
  Pi3B,
  Pi3BPlus,
  Pi4,
  Pi400,
};

/// Display name, e.g. "Raspberry Pi 3B+".
std::string to_string(PiModel model);

/// Whether the model has a multicore CPU (everything from the Pi 2 on).
bool is_multicore(PiModel model);

/// The customized system image mailed on the kits' microSD cards
/// ("csip-image"). The paper's image was "tested and confirmed to work on
/// all Raspberry Pi models from the 3B onward" and is kept current with
/// Ansible; we model the version, the supported hardware and the preloaded
/// course content so kit validation is a real check.
struct SystemImage {
  std::string version = "3.0.2";
  PiModel minimum_model = PiModel::Pi3B;
  std::vector<std::string> preloaded_modules = {
      "openmp-patternlets", "integration-exemplar", "drugdesign-exemplar"};

  /// True if the image boots on `model` (minimum_model or newer).
  [[nodiscard]] bool supports(PiModel model) const;

  /// The CSinParallel image download used in the workshop.
  [[nodiscard]] std::string download_url() const {
    return "http://csinparallel.cs.stolaf.edu/2020-06-18-csip-image-" +
           version + ".zip";
  }
};

}  // namespace pdc::kit
