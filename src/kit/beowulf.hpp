#pragma once

#include <string>
#include <vector>

#include "cluster/specs.hpp"
#include "kit/kit.hpp"
#include "support/text_table.hpp"

namespace pdc::kit {

/// A Beowulf cluster built from single-board computers — the "students can
/// connect multiple SBCs to form their own Beowulf cluster" thread of
/// Section II (Toth's portable clusters, Iridis-Pi), and the natural next
/// step after the single-Pi kit.
///
/// The builder aggregates N node kits plus shared networking gear, rolls up
/// the bill of materials, validates the build, and emits a
/// `cluster::ClusterSpec` so the performance model can predict what the
/// built cluster delivers.
class BeowulfCluster {
 public:
  /// `node_kit` is duplicated `num_nodes` times; the head node doubles as a
  /// compute node (standard practice in teaching clusters).
  BeowulfCluster(std::string name, Kit node_kit, int num_nodes);

  /// The classic 4-node Raspberry Pi teaching cluster built from the
  /// standard 2020 kits plus a 5-port switch and short patch cables.
  static BeowulfCluster pi_teaching_cluster(const Catalog& catalog,
                                            int num_nodes = 4);

  /// Add shared (non-per-node) gear: switch, PSU, patch cables, frame...
  void add_shared_part(const Part& part, int quantity = 1);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] const Kit& node_kit() const noexcept { return node_kit_; }

  /// Bulk cost: num_nodes * node kit + shared gear.
  [[nodiscard]] double total_cost_bulk() const;

  /// Per-core cost at bulk prices (4 cores per Pi node).
  [[nodiscard]] double cost_per_core() const;

  /// Build problems; empty means ready. Checks the node kit itself, that
  /// the switch has enough ports (nodes + 1 uplink), and that at least one
  /// switch is present for multi-node builds.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// The equivalent platform spec for the cost model: num_nodes Pi-class
  /// nodes on switched 100 Mb-to-1 Gb Ethernet.
  [[nodiscard]] cluster::ClusterSpec as_cluster_spec() const;

  /// Full bill of materials (node kits expanded plus shared gear).
  [[nodiscard]] TextTable bill_of_materials() const;

 private:
  std::string name_;
  Kit node_kit_;
  int num_nodes_;
  std::vector<KitLine> shared_parts_;
};

}  // namespace pdc::kit
