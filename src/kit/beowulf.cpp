#include "kit/beowulf.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::kit {

BeowulfCluster::BeowulfCluster(std::string name, Kit node_kit, int num_nodes)
    : name_(std::move(name)), node_kit_(std::move(node_kit)),
      num_nodes_(num_nodes) {
  if (num_nodes_ < 1) {
    throw InvalidArgument("BeowulfCluster: need at least one node");
  }
}

BeowulfCluster BeowulfCluster::pi_teaching_cluster(const Catalog& catalog,
                                                   int num_nodes) {
  BeowulfCluster cluster(
      std::to_string(num_nodes) + "-node Raspberry Pi teaching cluster",
      Kit::standard_2020(catalog), num_nodes);
  cluster.add_shared_part(
      catalog.at(num_nodes <= 4 ? "switch-5port" : "switch-8port"));
  cluster.add_shared_part(catalog.at("patch-cable"), num_nodes);
  cluster.add_shared_part(catalog.at("usb-power-hub"));
  return cluster;
}

void BeowulfCluster::add_shared_part(const Part& part, int quantity) {
  if (quantity < 1) {
    throw InvalidArgument("BeowulfCluster: quantity must be >= 1");
  }
  shared_parts_.push_back(KitLine{part, quantity});
}

double BeowulfCluster::total_cost_bulk() const {
  double total = node_kit_.total_cost_bulk() * num_nodes_;
  for (const auto& line : shared_parts_) {
    total += line.part.bulk_cost * line.quantity;
  }
  return total;
}

double BeowulfCluster::cost_per_core() const {
  return total_cost_bulk() / (4.0 * num_nodes_);  // 4 cores per Pi node
}

std::vector<std::string> BeowulfCluster::validate() const {
  std::vector<std::string> problems = node_kit_.validate();

  int switch_ports = 0;
  bool has_switch = false;
  for (const auto& line : shared_parts_) {
    if (line.part.kind == PartKind::Network) {
      has_switch = true;
      switch_ports += line.part.ports * line.quantity;
    }
  }
  if (num_nodes_ > 1) {
    if (!has_switch) {
      problems.push_back("multi-node cluster has no Ethernet switch");
    } else if (switch_ports < num_nodes_ + 1) {
      problems.push_back(
          "switch has " + std::to_string(switch_ports) + " ports but " +
          std::to_string(num_nodes_) + " nodes + 1 uplink need " +
          std::to_string(num_nodes_ + 1));
    }
  }
  return problems;
}

cluster::ClusterSpec BeowulfCluster::as_cluster_spec() const {
  cluster::ClusterSpec spec;
  spec.name = name_;
  spec.node = cluster::MachineSpec{"Raspberry Pi node", 4, 1.5, 2.0};
  spec.num_nodes = num_nodes_;
  spec.inter_node = cluster::NetworkSpec{200.0, 1.0};  // switched GbE
  spec.intra_node = cluster::NetworkSpec{0.8, 15.0};
  return spec;
}

TextTable BeowulfCluster::bill_of_materials() const {
  TextTable table({"Part", "Qty", "Cost"});
  table.set_align(1, Align::Right);
  table.set_align(2, Align::Right);
  for (const auto& line : node_kit_.lines()) {
    const int quantity = line.quantity * num_nodes_;
    table.add_row({line.part.name, std::to_string(quantity),
                   strings::money(line.part.bulk_cost * quantity)});
  }
  for (const auto& line : shared_parts_) {
    table.add_row({line.part.name, std::to_string(line.quantity),
                   strings::money(line.part.bulk_cost * line.quantity)});
  }
  table.add_rule();
  table.add_row({"Total Cluster Cost", "", strings::money(total_cost_bulk())});
  return table;
}

}  // namespace pdc::kit
