#include "kit/image.hpp"

namespace pdc::kit {

std::string to_string(PiModel model) {
  switch (model) {
    case PiModel::Pi1: return "Raspberry Pi 1";
    case PiModel::Pi2: return "Raspberry Pi 2";
    case PiModel::Pi3B: return "Raspberry Pi 3B";
    case PiModel::Pi3BPlus: return "Raspberry Pi 3B+";
    case PiModel::Pi4: return "Raspberry Pi 4";
    case PiModel::Pi400: return "Raspberry Pi 400";
  }
  return "unknown Raspberry Pi";
}

bool is_multicore(PiModel model) { return model != PiModel::Pi1; }

bool SystemImage::supports(PiModel model) const {
  // PiModel enumerators are ordered by generation.
  return static_cast<int>(model) >= static_cast<int>(minimum_model);
}

}  // namespace pdc::kit
