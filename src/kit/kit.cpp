#include "kit/kit.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::kit {

Kit::Kit(std::string name, PiModel model, SystemImage image)
    : name_(std::move(name)), model_(model), image_(std::move(image)) {}

Kit Kit::standard_2020(const Catalog& catalog) {
  Kit kit("Mailed Raspberry Pi kit (July 2020 workshop)", PiModel::Pi4,
          SystemImage{});
  kit.add(catalog.at("canakit-pi4-2g"));
  kit.add(catalog.at("eth-usb-a"));
  kit.add(catalog.at("usb-a-c"));
  kit.add(catalog.at("eth-cable"));
  kit.add(catalog.at("microsd-16g"));
  kit.add(catalog.at("kit-case"));
  return kit;
}

void Kit::add(const Part& part, int quantity) {
  if (quantity < 1) throw InvalidArgument("Kit::add: quantity must be >= 1");
  lines_.push_back(KitLine{part, quantity});
}

double Kit::total_cost_bulk() const {
  double total = 0.0;
  for (const auto& line : lines_) total += line.part.bulk_cost * line.quantity;
  return total;
}

double Kit::total_cost_retail() const {
  double total = 0.0;
  for (const auto& line : lines_) total += line.part.unit_cost * line.quantity;
  return total;
}

std::vector<std::string> Kit::validate(double budget) const {
  std::vector<std::string> problems;

  if (!image_.supports(model_)) {
    problems.push_back("system image v" + image_.version +
                       " does not support " + to_string(model_));
  }
  if (!is_multicore(model_)) {
    problems.push_back(to_string(model_) +
                       " is a uniprocessor: the OpenMP module needs multicore");
  }

  bool has_computer = false, has_storage = false, has_cable = false,
       has_eth_adapter = false;
  for (const auto& line : lines_) {
    switch (line.part.kind) {
      case PartKind::Computer: has_computer = true; break;
      case PartKind::Storage: has_storage = true; break;
      case PartKind::Cable: has_cable = true; break;
      case PartKind::Adapter:
        if (line.part.id.find("eth") != std::string::npos) {
          has_eth_adapter = true;
        }
        break;
      default: break;
    }
  }
  if (!has_computer) problems.push_back("kit has no single-board computer");
  if (!has_storage) {
    problems.push_back("kit has no microSD card to carry the system image");
  }
  if (!has_cable || !has_eth_adapter) {
    problems.push_back(
        "kit cannot connect the Pi to a laptop: needs an Ethernet cable and "
        "an Ethernet-USB adapter");
  }

  if (const double cost = total_cost_bulk(); cost > budget) {
    problems.push_back("bulk cost " + strings::money(cost) +
                       " exceeds the budget " + strings::money(budget));
  }
  return problems;
}

TextTable Kit::bill_of_materials() const {
  TextTable table({"Part", "Cost"});
  table.set_align(1, Align::Right);
  for (const auto& line : lines_) {
    const std::string label =
        line.quantity == 1
            ? line.part.name
            : line.part.name + " (x" + std::to_string(line.quantity) + ")";
    table.add_row({label, strings::money(line.part.bulk_cost * line.quantity)});
  }
  table.add_rule();
  table.add_row({"Total Kit Cost", strings::money(total_cost_bulk())});
  return table;
}

}  // namespace pdc::kit
