#include "kit/parts.hpp"

#include "support/error.hpp"

namespace pdc::kit {

Catalog Catalog::year_2020() {
  Catalog catalog;
  // The six Table I parts; bulk_cost is the Table I price.
  catalog.add({"canakit-pi4-2g", "CanaKit with 2G Raspberry Pi",
               PartKind::Computer, 69.99, 62.99});
  catalog.add({"eth-usb-a", "Ethernet-USB A dongle", PartKind::Adapter, 18.99,
               15.95});
  catalog.add({"usb-a-c", "USB A-C dongle", PartKind::Adapter, 6.99, 3.99});
  catalog.add({"eth-cable", "Ethernet cable", PartKind::Cable, 4.99, 1.55});
  catalog.add({"microsd-16g", "16G MicroSD", PartKind::Storage, 7.99, 5.41});
  catalog.add({"kit-case", "Kit case", PartKind::Enclosure, 12.99, 10.77});
  // Extras referenced elsewhere in the materials (pre-flashed cards for
  // students who already own a Pi, and the older 3B+ option).
  catalog.add({"canakit-pi3b+", "CanaKit with Raspberry Pi 3B+",
               PartKind::Computer, 54.99, 49.99});
  catalog.add({"microsd-32g", "32G MicroSD", PartKind::Storage, 11.99, 8.25});
  // Beowulf-build gear (Section II: "students can connect multiple SBCs to
  // form their own Beowulf cluster").
  catalog.add({"switch-5port", "5-port Gigabit Ethernet switch",
               PartKind::Network, 17.99, 14.50, 5});
  catalog.add({"switch-8port", "8-port Gigabit Ethernet switch",
               PartKind::Network, 24.99, 21.00, 8});
  catalog.add({"patch-cable", "6-inch Ethernet patch cable", PartKind::Cable,
               2.49, 0.99});
  catalog.add({"usb-power-hub", "6-port USB power hub", PartKind::Other,
               29.99, 24.95});
  return catalog;
}

void Catalog::add(Part part) {
  if (part.id.empty()) throw InvalidArgument("Catalog::add: part id required");
  if (part.unit_cost < 0.0 || part.bulk_cost < 0.0) {
    throw InvalidArgument("Catalog::add: negative cost for part " + part.id);
  }
  for (auto& existing : parts_) {
    if (existing.id == part.id) {
      existing = std::move(part);
      return;
    }
  }
  parts_.push_back(std::move(part));
}

std::optional<Part> Catalog::find(const std::string& id) const {
  for (const auto& part : parts_) {
    if (part.id == id) return part;
  }
  return std::nullopt;
}

const Part& Catalog::at(const std::string& id) const {
  for (const auto& part : parts_) {
    if (part.id == id) return part;
  }
  throw NotFound("Catalog: no part with id '" + id + "'");
}

}  // namespace pdc::kit
