#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pdc::kit {

/// Category of a kit component, used for packing and compatibility checks.
enum class PartKind {
  Computer,      ///< the SBC bundle itself
  Adapter,       ///< dongles (Ethernet-USB, USB A-C, ...)
  Cable,
  Storage,       ///< microSD cards
  Enclosure,     ///< cases and packaging
  Network,       ///< switches (for Beowulf builds)
  Other,
};

/// One purchasable component.
struct Part {
  std::string id;          ///< stable catalog key, e.g. "canakit-pi4-2g"
  std::string name;        ///< display name as in the paper's Table I
  PartKind kind = PartKind::Other;
  double unit_cost = 0.0;  ///< single-quantity price in USD
  double bulk_cost = 0.0;  ///< per-unit price when bought in bulk
  int ports = 0;           ///< port count for Network parts (0 = n/a)
};

/// The component catalog behind the paper's mailed Raspberry Pi kit.
///
/// Prices are the bulk prices from Table I (the paper notes the ≈$100 total
/// was achievable "because several of these materials can be bought in
/// bulk"); unit costs are representative mid-2020 retail prices.
class Catalog {
 public:
  /// The catalog as of the July 2020 workshop, including every Table I part.
  static Catalog year_2020();

  /// Add or replace a part (instructors adapt kits to local suppliers).
  void add(Part part);

  /// Look up a part by id.
  [[nodiscard]] std::optional<Part> find(const std::string& id) const;

  /// Look up by id; throws pdc::NotFound if the part does not exist.
  [[nodiscard]] const Part& at(const std::string& id) const;

  /// All parts, in insertion order.
  [[nodiscard]] const std::vector<Part>& parts() const noexcept { return parts_; }

 private:
  std::vector<Part> parts_;
};

}  // namespace pdc::kit
