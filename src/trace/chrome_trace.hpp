#pragma once

#include <string>

#include "trace/trace.hpp"

namespace pdc::trace {

/// Render a session as Chrome trace-event JSON (the "JSON Array Format"
/// object variant chrome://tracing and Perfetto load directly).
///
/// Layout: each mp rank appears as its own process (pid = rank, named via
/// process_name metadata), each OS thread as its own thread row (tid).
/// Complete spans become "X" events, instants "i", counters "C".
[[nodiscard]] std::string to_chrome_json(const TraceSession& session);

/// Write to_chrome_json() to `path`. Throws pdc::Error on failure.
void write_chrome_json(const TraceSession& session, const std::string& path);

}  // namespace pdc::trace
