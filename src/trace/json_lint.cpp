#include "trace/json_lint.hpp"

#include <cctype>

namespace pdc::trace {

namespace {

/// Recursive-descent JSON validator over a string_view cursor.
class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after the top-level value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) const {
    if (error) {
      *error = "offset " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "invalid JSON" : reason_);
    }
    return false;
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c, const char* what) {
    if (eof() || peek() != c) {
      reason_ = std::string("expected ") + what;
      return false;
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof()) {
      reason_ = "unexpected end of input";
      return false;
    }
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        reason_ = "expected object key string";
        return false;
      }
      if (!string()) return false;
      skip_ws();
      if (!expect(':', "':' after object key")) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') { ++pos_; continue; }
      return expect('}', "',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') { ++pos_; continue; }
      return expect(']', "',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              reason_ = "invalid \\u escape";
              return false;
            }
          }
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          reason_ = "invalid escape character";
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      reason_ = "expected digit";
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (eof()) {
      reason_ = "truncated number";
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string reason_;
};

}  // namespace

bool is_valid_json(std::string_view text, std::string* error) {
  return Linter(text).run(error);
}

}  // namespace pdc::trace
