#include "trace/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "support/bar_chart.hpp"
#include "support/text_table.hpp"

namespace pdc::trace {

namespace {

std::string format_us(double us) {
  std::ostringstream stream;
  if (us >= 1e6) {
    stream.precision(2);
    stream << std::fixed << us / 1e6 << " s";
  } else if (us >= 1e3) {
    stream.precision(2);
    stream << std::fixed << us / 1e3 << " ms";
  } else {
    stream.precision(1);
    stream << std::fixed << us << " us";
  }
  return stream.str();
}

std::string format_count(double value) {
  std::ostringstream stream;
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    stream << static_cast<long long>(value);
  } else {
    stream.precision(2);
    stream << std::fixed << value;
  }
  return stream.str();
}

}  // namespace

std::vector<OpStats> op_stats(const TraceSession& session) {
  struct Buckets {
    std::string category;
    std::vector<std::int64_t> durations;
    std::int64_t bytes = 0;
  };
  std::map<std::string, Buckets> by_name;
  for (const TraceEvent& e : session.events()) {
    if (e.type != EventType::Complete) continue;
    Buckets& bucket = by_name[e.name];
    bucket.category = e.category;
    bucket.durations.push_back(e.duration_us);
    if (e.bytes > 0) bucket.bytes += e.bytes;
  }

  std::vector<OpStats> stats;
  stats.reserve(by_name.size());
  for (auto& [name, bucket] : by_name) {
    std::sort(bucket.durations.begin(), bucket.durations.end());
    OpStats s;
    s.name = name;
    s.category = bucket.category;
    s.count = bucket.durations.size();
    for (const std::int64_t d : bucket.durations) s.total_us += d;
    s.mean_us = static_cast<double>(s.total_us) /
                static_cast<double>(bucket.durations.size());
    const std::size_t p95_index =
        (bucket.durations.size() * 95 + 99) / 100;  // ceil(0.95 n)
    s.p95_us = bucket.durations[std::min(bucket.durations.size() - 1,
                                         p95_index == 0 ? 0 : p95_index - 1)];
    s.max_us = bucket.durations.back();
    s.bytes = bucket.bytes;
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(), [](const OpStats& a, const OpStats& b) {
    return a.total_us > b.total_us;
  });
  return stats;
}

std::string summary_report(const TraceSession& session) {
  std::ostringstream out;
  const std::vector<TraceEvent> events = session.events();
  const std::vector<OpStats> stats = op_stats(session);

  out << "=== trace summary: " << events.size() << " events ===\n\n";

  if (!stats.empty()) {
    TextTable table({"op", "cat", "count", "total", "mean", "p95", "max"});
    for (std::size_t col = 2; col <= 6; ++col) {
      table.set_align(col, Align::Right);
    }
    for (const OpStats& s : stats) {
      table.add_row({s.name, s.category, std::to_string(s.count),
                     format_us(static_cast<double>(s.total_us)),
                     format_us(s.mean_us),
                     format_us(static_cast<double>(s.p95_us)),
                     format_us(static_cast<double>(s.max_us))});
    }
    out << table.render() << '\n';
  }

  // Counter totals per pid lane (ranks), e.g. mp.bytes_sent per rank.
  std::set<std::string> counter_names;
  for (const TraceEvent& e : events) {
    if (e.type == EventType::Counter) counter_names.insert(e.name);
  }
  if (!counter_names.empty()) {
    const std::map<int, std::string> names = session.pid_names();
    TextTable table({"counter", "lane", "total"});
    table.set_align(2, Align::Right);
    for (const std::string& name : counter_names) {
      for (const auto& [pid, total] : session.counter_by_pid(name)) {
        const auto label = names.find(pid);
        table.add_row({name,
                       label != names.end() ? label->second
                                            : "pid " + std::to_string(pid),
                       format_count(total)});
      }
    }
    out << table.render() << '\n';
  }

  // Instant markers (aborts and other point events) with timestamps.
  bool any_instant = false;
  for (const TraceEvent& e : events) {
    if (e.type != EventType::Instant) continue;
    if (!any_instant) {
      out << "markers:\n";
      any_instant = true;
    }
    out << "  [" << format_us(static_cast<double>(e.start_us)) << "] " << e.name
        << " (pid " << e.pid << ", tid " << e.tid << ")\n";
  }
  if (any_instant) out << '\n';

  // Where the time went, as an ASCII chart of per-op totals.
  if (!stats.empty()) {
    const std::size_t top = std::min<std::size_t>(stats.size(), 8);
    std::vector<std::string> categories;
    BarSeries totals{"total ms", {}};
    for (std::size_t i = 0; i < top; ++i) {
      categories.push_back(stats[i].name);
      totals.values.push_back(static_cast<double>(stats[i].total_us) / 1e3);
    }
    BarChart chart(categories);
    chart.set_title("time by op (ms, summed over threads)");
    chart.add_series(std::move(totals));
    out << chart.render();
  }

  return out.str();
}

}  // namespace pdc::trace
