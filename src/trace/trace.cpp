#include "trace/trace.hpp"

#include "support/error.hpp"

namespace pdc::trace {

namespace {

/// The process-wide active session. Release/acquire pairs with the
/// initialization of the session's epoch in start().
std::atomic<TraceSession*> g_active{nullptr};

thread_local int tl_pid = 0;

int assign_tid() noexcept {
  static std::atomic<int> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceSession::~TraceSession() { stop(); }

void TraceSession::start() {
  {
    std::lock_guard lock(mutex_);
    epoch_ = Clock::now();
    accepting_ = true;
  }
  TraceSession* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    if (expected == this) return;  // already active: no-op
    std::lock_guard lock(mutex_);
    accepting_ = false;
    throw InvalidArgument(
        "TraceSession::start: another trace session is already active");
  }
}

void TraceSession::stop() {
  TraceSession* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  accepting_ = false;
}

bool TraceSession::running() const noexcept {
  return g_active.load(std::memory_order_relaxed) == this;
}

TraceSession* TraceSession::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void TraceSession::record(TraceEvent event) {
  if (event.pid == 0) event.pid = current_pid();
  if (event.tid == 0) event.tid = current_tid();
  std::lock_guard lock(mutex_);
  if (!accepting_) return;
  events_.push_back(std::move(event));
}

void TraceSession::add_counter(const std::string& name, double delta) {
  TraceEvent event;
  event.name = name;
  event.category = "counter";
  event.type = EventType::Counter;
  event.pid = current_pid();
  event.tid = current_tid();
  const auto now = Clock::now();
  std::lock_guard lock(mutex_);
  if (!accepting_) return;
  double& total = counters_[name][event.pid];
  total += delta;
  event.value = total;
  event.start_us = since_start_us(now);
  events_.push_back(std::move(event));
}

void TraceSession::set_pid_name(int pid, std::string name) {
  std::lock_guard lock(mutex_);
  pid_names_[pid] = std::move(name);
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t TraceSession::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

double TraceSession::counter_total(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0.0;
  double sum = 0.0;
  for (const auto& [pid, total] : it->second) sum += total;
  return sum;
}

double TraceSession::counter_total(const std::string& name, int pid) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0.0;
  const auto pit = it->second.find(pid);
  return pit == it->second.end() ? 0.0 : pit->second;
}

std::map<int, double> TraceSession::counter_by_pid(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? std::map<int, double>{} : it->second;
}

std::map<int, std::string> TraceSession::pid_names() const {
  std::lock_guard lock(mutex_);
  return pid_names_;
}

std::int64_t TraceSession::since_start_us(Clock::time_point t) const noexcept {
  if (t <= epoch_) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
      .count();
}

bool enabled() noexcept { return TraceSession::active() != nullptr; }

int current_pid() noexcept { return tl_pid; }

int current_tid() noexcept {
  thread_local const int id = assign_tid();
  return id;
}

PidScope::PidScope(int pid, const std::string& name) noexcept
    : previous_(tl_pid) {
  tl_pid = pid;
  if (!name.empty()) {
    if (TraceSession* session = TraceSession::active()) {
      session->set_pid_name(pid, name);
    }
  }
}

PidScope::~PidScope() { tl_pid = previous_; }

Span::Span(const char* name, const char* category) noexcept
    : name_(name), category_(category), session_(TraceSession::active()) {
  if (session_) start_ = Clock::now();
}

Span::~Span() {
  // Only record into the session that was active at construction, and only
  // while it still is — a session stopped (or replaced) mid-span drops the
  // event rather than touching possibly-dead memory.
  if (!session_ || session_ != TraceSession::active()) return;
  const auto end = Clock::now();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.type = EventType::Complete;
  event.start_us = session_->since_start_us(start_);
  event.duration_us = session_->since_start_us(end) - event.start_us;
  event.bytes = bytes_;
  session_->record(std::move(event));
}

void Counter::add(double delta) const noexcept {
  if (TraceSession* session = TraceSession::active()) {
    session->add_counter(name_, delta);
  }
}

void instant(const char* name, const char* category) noexcept {
  if (TraceSession* session = TraceSession::active()) {
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.type = EventType::Instant;
    event.start_us = session->now_us();
    session->record(std::move(event));
  }
}

}  // namespace pdc::trace
