#include "trace/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace pdc::trace {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

void append_common(std::string& out, const TraceEvent& e) {
  out += "\"name\":\"";
  append_escaped(out, e.name);
  out += "\",\"cat\":\"";
  append_escaped(out, e.category.empty() ? std::string("pdc") : e.category);
  out += "\",\"pid\":" + std::to_string(e.pid);
  out += ",\"tid\":" + std::to_string(e.tid);
  out += ",\"ts\":" + std::to_string(e.start_us);
}

std::string format_value(double value) {
  // Counters are cumulative totals; emit a plain decimal (never exponent
  // notation, which some trace viewers reject inside args).
  std::ostringstream stream;
  stream.precision(17);
  stream << std::fixed << value;
  std::string text = stream.str();
  const auto dot = text.find('.');
  if (dot != std::string::npos) {
    auto last = text.find_last_not_of('0');
    if (last == dot) --last;
    text.erase(last + 1);
  }
  return text;
}

}  // namespace

std::string to_chrome_json(const TraceSession& session) {
  const std::vector<TraceEvent> events = session.events();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  bool first = true;
  const auto separator = [&] {
    if (!first) out += ',';
    first = false;
  };

  // Metadata first: name each rank's pid lane so chrome://tracing shows
  // "rank 0", "rank 1", ... instead of bare numbers.
  for (const auto& [pid, name] : session.pid_names()) {
    separator();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(out, name);
    out += "\"}}";
  }

  for (const TraceEvent& e : events) {
    separator();
    out += '{';
    append_common(out, e);
    switch (e.type) {
      case EventType::Complete:
        out += ",\"ph\":\"X\",\"dur\":" + std::to_string(e.duration_us);
        if (e.bytes >= 0) {
          out += ",\"args\":{\"bytes\":" + std::to_string(e.bytes) + "}";
        }
        break;
      case EventType::Instant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case EventType::Counter:
        out += ",\"ph\":\"C\",\"args\":{\"value\":" + format_value(e.value) +
               "}";
        break;
    }
    out += '}';
  }

  out += "]}";
  return out;
}

void write_chrome_json(const TraceSession& session, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw Error("write_chrome_json: cannot open " + path);
  }
  const std::string json = to_chrome_json(session);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!file) {
    throw Error("write_chrome_json: write failed for " + path);
  }
}

}  // namespace pdc::trace
