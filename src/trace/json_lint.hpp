#pragma once

#include <string>
#include <string_view>

namespace pdc::trace {

/// Minimal RFC 8259 JSON validator: true iff `text` is exactly one valid
/// JSON value (with optional surrounding whitespace). Used by the Chrome
/// sink's round-trip tests so "loads in chrome://tracing" is a checkable
/// property rather than a hope; on failure `error` (if non-null) receives a
/// byte offset and reason.
///
/// Deliberately a validator, not a parser-to-DOM: the repo needs to assert
/// well-formedness, not to consume JSON.
[[nodiscard]] bool is_valid_json(std::string_view text,
                                 std::string* error = nullptr);

}  // namespace pdc::trace
