#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdc::trace {

/// Clock every trace timestamp is taken from. steady_clock so that spans
/// recorded on different threads (ranks) are comparable and never go
/// backwards — the property chrome://tracing needs to lay out lanes.
using Clock = std::chrono::steady_clock;

/// Kind of a recorded event, mirroring the Chrome trace phases we emit:
/// Complete ("X", a named duration), Instant ("i", a point marker such as an
/// abort), Counter ("C", one sample of a monotonic per-lane counter series).
enum class EventType : std::uint8_t { Complete, Instant, Counter };

/// One recorded event. Timestamps are microseconds since the session start.
///
/// `pid` is the timeline lane a rank occupies (world rank inside mp::run,
/// 0 for plain host/smp threads); `tid` is a process-wide sequential thread
/// id — together they give chrome://tracing its pid-per-rank /
/// tid-per-thread layout.
struct TraceEvent {
  std::string name;
  std::string category;
  EventType type = EventType::Instant;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;  ///< Complete events only
  int pid = 0;
  int tid = 0;
  double value = 0.0;            ///< Counter events: cumulative total
  std::int64_t bytes = -1;       ///< optional payload annotation (-1 = none)
};

/// A recording of one traced run.
///
/// At most one session is active at a time, process-wide; while one is
/// active every instrumented point in the mp/smp runtimes records into it.
/// With no session active the instrumentation costs a single relaxed atomic
/// load per probe point — the "compiled to near-zero" path the benchmarks
/// hold to a < 2 % budget.
///
/// Thread safety: recording is safe from any number of threads. The session
/// object must outlive every Span opened while it was active (keep it on
/// the stack around the traced workload, as examples/trace_lab does).
class TraceSession {
 public:
  TraceSession() = default;
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Make this the process-wide active session and reset its clock.
  /// Throws pdc::InvalidArgument if another session is already active.
  void start();

  /// Stop recording and deactivate. Events arriving afterwards (e.g. from a
  /// Span closing late) are dropped. Idempotent.
  void stop();

  /// Whether this session is currently the active recorder.
  [[nodiscard]] bool running() const noexcept;

  /// The active session, or nullptr when tracing is off.
  static TraceSession* active() noexcept;

  // ---- recording (usually reached via Span/Counter/instant below) -------

  /// Append one event. Fills in pid/tid from the calling thread if the
  /// event carries the defaults. Dropped after stop().
  void record(TraceEvent event);

  /// Add `delta` to the cumulative counter `name` on the calling thread's
  /// pid lane and record the new total as a Counter event.
  void add_counter(const std::string& name, double delta);

  /// Label a pid lane (chrome process_name metadata; e.g. "rank 2").
  void set_pid_name(int pid, std::string name);

  // ---- introspection ----------------------------------------------------

  /// Snapshot of everything recorded so far, in arrival order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Number of events recorded so far.
  [[nodiscard]] std::size_t event_count() const;

  /// Final cumulative value of counter `name` summed over all pid lanes
  /// (0.0 if never touched).
  [[nodiscard]] double counter_total(const std::string& name) const;

  /// Final cumulative value of counter `name` on lane `pid`.
  [[nodiscard]] double counter_total(const std::string& name, int pid) const;

  /// Per-lane totals of counter `name`, keyed by pid.
  [[nodiscard]] std::map<int, double> counter_by_pid(
      const std::string& name) const;

  /// Registered pid lane names.
  [[nodiscard]] std::map<int, std::string> pid_names() const;

  /// Microseconds elapsed since start() for an arbitrary Clock time point
  /// (clamped at 0 for stamps taken before the session started).
  [[nodiscard]] std::int64_t since_start_us(Clock::time_point t) const noexcept;

  /// Microseconds elapsed since start().
  [[nodiscard]] std::int64_t now_us() const noexcept {
    return since_start_us(Clock::now());
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::string, std::map<int, double>> counters_;
  std::map<int, std::string> pid_names_;
  Clock::time_point epoch_{};
  bool accepting_ = false;
};

/// True iff a session is recording. One relaxed atomic load.
[[nodiscard]] bool enabled() noexcept;

// ---- thread context -----------------------------------------------------

/// The calling thread's timeline lane (world rank under mp::run, else 0).
[[nodiscard]] int current_pid() noexcept;

/// Process-wide sequential id of the calling thread (assigned on first use,
/// starting at 1).
[[nodiscard]] int current_tid() noexcept;

/// RAII: route the calling thread's events to pid lane `pid` (and name the
/// lane, if a session is active). mp::run opens one per rank thread so every
/// rank gets its own chrome://tracing process row.
class PidScope {
 public:
  explicit PidScope(int pid, const std::string& name = {}) noexcept;
  ~PidScope();

  PidScope(const PidScope&) = delete;
  PidScope& operator=(const PidScope&) = delete;

 private:
  int previous_;
};

// ---- lightweight emitters ----------------------------------------------

/// RAII scoped duration event: records one Complete event covering its
/// lifetime, attributed to the session that was active at construction.
/// When tracing is off, construction and destruction are a relaxed atomic
/// load and a null check.
class Span {
 public:
  Span(const char* name, const char* category) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Annotate the span with a payload size (shown in chrome://tracing args
  /// and aggregated by the text report).
  void set_bytes(std::int64_t bytes) noexcept { bytes_ = bytes; }

 private:
  const char* name_;
  const char* category_;
  TraceSession* session_;
  Clock::time_point start_{};
  std::int64_t bytes_ = -1;
};

/// Named monotonic counter; add() is a no-op without an active session.
/// Totals accumulate per pid lane, which is how the report gets
/// "bytes sent per rank" from a single `Counter{"mp.bytes_sent"}`.
class Counter {
 public:
  explicit constexpr Counter(const char* name) noexcept : name_(name) {}

  void add(double delta) const noexcept;

  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  const char* name_;
};

/// Record a point event (e.g. "mp.abort") at the current time.
void instant(const char* name, const char* category) noexcept;

}  // namespace pdc::trace
