#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pdc::trace {

/// Aggregated statistics for one span name (all Complete events sharing it).
struct OpStats {
  std::string name;
  std::string category;
  std::size_t count = 0;
  std::int64_t total_us = 0;
  double mean_us = 0.0;
  std::int64_t p95_us = 0;   ///< 95th-percentile duration
  std::int64_t max_us = 0;
  std::int64_t bytes = 0;    ///< sum of byte annotations (0 if none carried)
};

/// Per-op aggregates, sorted by descending total time.
[[nodiscard]] std::vector<OpStats> op_stats(const TraceSession& session);

/// Human-readable run summary: a per-op table (count, total, mean, p95,
/// max), per-rank counter totals (e.g. bytes sent per rank), instant-event
/// markers, and an ASCII bar chart of where the time went — the same
/// support/text_table + bar_chart machinery the paper-figure benches use.
[[nodiscard]] std::string summary_report(const TraceSession& session);

}  // namespace pdc::trace
