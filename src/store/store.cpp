#include "store/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <shared_mutex>
#include <utility>

#include "assessment/streaming.hpp"
#include "chaos/chaos.hpp"
#include "net/wire.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::store {

namespace wire = pdc::net::wire;

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw Error("store: " + what + " '" + path + "': " + std::strerror(errno));
}

void make_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw_errno("cannot create directory", dir);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("cannot fsync directory", dir);
}

void write_file_all(int fd, const std::string& path, const std::byte* data,
                    std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("cannot write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Deterministic fixed-point rendering for the canonical report: the same
/// double always prints the same bytes.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

// ---- record codecs -------------------------------------------------------

mp::Bytes encode_result_record(const ResultRecord& record) {
  mp::Bytes body;
  wire::put_u64(body, record.digest);
  wire::put_u16(body, record.kind);
  wire::put_i32(body, record.np);
  wire::put_u64(body, record.seed);
  wire::put_i32(body, record.exit_code);
  wire::put_u64(body, record.exec_us);
  wire::put_string(body, record.tenant);
  wire::put_string(body, record.name);
  wire::put_string(body, record.error);
  wire::put_u32(body, static_cast<std::uint32_t>(record.output.size()));
  for (const std::string& line : record.output) wire::put_string(body, line);
  return body;
}

ResultRecord decode_result_record(const mp::Bytes& body) {
  wire::Reader reader(body);
  ResultRecord record;
  record.digest = reader.u64();
  record.kind = reader.u16();
  record.np = reader.i32();
  record.seed = reader.u64();
  record.exit_code = reader.i32();
  record.exec_us = reader.u64();
  record.tenant = reader.string(kMaxFieldBytes);
  record.name = reader.string(kMaxFieldBytes);
  record.error = reader.string(kMaxFieldBytes);
  const std::uint32_t lines = reader.u32();
  if (lines > kMaxOutputLines) {
    throw Error("store: result record claims " + std::to_string(lines) +
                " output lines (clamp " + std::to_string(kMaxOutputLines) +
                ")");
  }
  record.output.reserve(lines);
  for (std::uint32_t i = 0; i < lines; ++i) {
    record.output.push_back(reader.string(kMaxFieldBytes));
  }
  reader.expect_end();
  return record;
}

mp::Bytes encode_grade_record(const GradeRecord& record) {
  mp::Bytes body;
  wire::put_string(body, record.cohort);
  wire::put_string(body, record.mutant);
  wire::put_string(body, record.submission);
  wire::put_string(body, record.verdict);
  wire::put_u32(body, record.matched);
  wire::put_u32(body, record.explored);
  wire::put_u64(body, std::bit_cast<std::uint64_t>(record.divergence));
  wire::put_string(body, record.detail);
  return body;
}

GradeRecord decode_grade_record(const mp::Bytes& body) {
  wire::Reader reader(body);
  GradeRecord record;
  record.cohort = reader.string(kMaxFieldBytes);
  record.mutant = reader.string(kMaxFieldBytes);
  record.submission = reader.string(kMaxFieldBytes);
  record.verdict = reader.string(kMaxFieldBytes);
  record.matched = reader.u32();
  record.explored = reader.u32();
  record.divergence = std::bit_cast<double>(reader.u64());
  record.detail = reader.string(kMaxFieldBytes);
  reader.expect_end();
  return record;
}

// ---- report --------------------------------------------------------------

std::vector<std::string> render_report(const CohortReport& report) {
  std::vector<std::string> lines;
  lines.push_back("cohort: " + report.cohort);
  lines.push_back("results: " + std::to_string(report.results) +
                  " ok=" + std::to_string(report.results - report.failures) +
                  " failed=" + std::to_string(report.failures));
  lines.push_back("grades: " + std::to_string(report.grades));
  for (const auto& [verdict, count] : report.verdicts) {
    lines.push_back("verdict " + verdict + ": " + std::to_string(count));
  }
  lines.push_back("matched: " + std::to_string(report.matched) + "/" +
                  std::to_string(report.explored));
  if (report.divergence_count == 0) {
    lines.push_back("divergence: n=0");
  } else {
    lines.push_back(
        "divergence: n=" + std::to_string(report.divergence_count) +
        " mean=" + fmt(report.divergence_mean) +
        " stddev=" + fmt(report.divergence_stddev) +
        " min=" + fmt(report.divergence_min) +
        " max=" + fmt(report.divergence_max));
  }
  for (std::size_t bin = 0; bin < report.histogram.size(); ++bin) {
    if (report.histogram[bin] == 0) continue;
    lines.push_back("divergence[" + std::to_string(bin) + "," +
                    std::to_string(bin + 1) +
                    "): " + std::to_string(report.histogram[bin]));
  }
  return lines;
}

// ---- Store ---------------------------------------------------------------

Store::Store(StoreConfig config)
    : dir_(config.dir), config_(std::move(config)) {
  if (dir_.empty()) throw InvalidArgument("store: empty directory");
  make_dir(dir_);
  // A leftover snapshot.tmp is a compaction a crash interrupted before the
  // atomic rename; the old snapshot + log are authoritative, the tmp is not.
  ::unlink((dir_ + "/snapshot.tmp").c_str());

  const ScanResult snapshot = Wal::scan(dir_ + "/snapshot.pdcs");
  for (const WalRecord& record : snapshot.records) {
    apply(record, recover_stats_);
  }
  recover_stats_.snapshot_records = snapshot.records.size();
  recover_stats_.dropped_bytes += snapshot.dropped_bytes;
  if (!snapshot.tail_reason.empty()) {
    recover_stats_.tail_reason = "snapshot: " + snapshot.tail_reason;
  }

  WalConfig wal_config;
  wal_config.fsync = config_.fsync;
  wal_config.group_commit_window_us = config_.group_commit_window_us;
  wal_ = std::make_unique<Wal>(dir_ + "/wal.pdcs", wal_config);
  for (const WalRecord& record : wal_->recovered().records) {
    apply(record, recover_stats_);
  }
  recover_stats_.log_records = wal_->recovered().records.size();
  log_records_ = recover_stats_.log_records;
  recover_stats_.dropped_bytes += wal_->recovered().dropped_bytes;
  if (!wal_->recovered().tail_reason.empty()) {
    if (!recover_stats_.tail_reason.empty()) recover_stats_.tail_reason += "; ";
    recover_stats_.tail_reason += "log: " + wal_->recovered().tail_reason;
  }
  recover_stats_.results = results_.size();
  recover_stats_.grades = grades_.size();

  trace::Counter("store.recovered_records")
      .add(static_cast<double>(recover_stats_.snapshot_records +
                               recover_stats_.log_records));
  if (recover_stats_.dropped_bytes > 0) {
    trace::Counter("store.dropped_tail")
        .add(static_cast<double>(recover_stats_.dropped_bytes));
  }
}

void Store::apply(const WalRecord& record, RecoverStats& stats) {
  // A CRC-valid record whose body still fails to decode (snapshot+log
  // written by disagreeing versions, or a forged test file) is skipped and
  // counted — recovery keeps everything decodable, never crashes.
  try {
    switch (record.kind) {
      case RecordKind::Result: {
        ResultRecord result = decode_result_record(record.body);
        results_[result.digest] = std::move(result);
        return;
      }
      case RecordKind::Grade: {
        GradeRecord grade = decode_grade_record(record.body);
        grades_[grade_key(grade)] = std::move(grade);
        return;
      }
    }
    ++stats.malformed;
  } catch (const std::exception&) {
    ++stats.malformed;
  }
}

void Store::put_result(const ResultRecord& record) {
  const mp::Bytes body = encode_result_record(record);
  bool want_compact = false;
  {
    std::shared_lock gate(compact_mutex_);
    wal_->append(RecordKind::Result, 0, body);
    std::lock_guard lock(mutex_);
    results_[record.digest] = record;
    ++log_records_;
    want_compact =
        config_.compact_every > 0 && log_records_ >= config_.compact_every;
  }
  if (want_compact) compact();
}

void Store::put_grade(const GradeRecord& record) {
  const mp::Bytes body = encode_grade_record(record);
  bool want_compact = false;
  {
    std::shared_lock gate(compact_mutex_);
    wal_->append(RecordKind::Grade, 0, body);
    std::lock_guard lock(mutex_);
    grades_[grade_key(record)] = record;
    ++log_records_;
    want_compact =
        config_.compact_every > 0 && log_records_ >= config_.compact_every;
  }
  if (want_compact) compact();
}

void Store::compact() {
  // The exclusive gate drains every in-flight put: once held, no record is
  // between "appended to the log" and "indexed in the maps", so the
  // snapshot + reset pair below cannot strand one.
  std::unique_lock gate(compact_mutex_);
  std::lock_guard lock(mutex_);
  if (log_records_ == 0) return;  // lost a compaction race; nothing to do
  compact_locked();
}

void Store::compact_locked() {
  // Same lane routing as Wal::append: decision 0 is "store.compact" (before
  // the tmp write), decision 1 "store.compact.swap" (before the rename).
  chaos::ActorScope actor(kStoreActor);
  chaos::on_op("store.compact");
  mp::Bytes contents;
  for (const auto& [digest, record] : results_) {
    const mp::Bytes frame = Wal::encode_record(RecordKind::Result, 0,
                                               encode_result_record(record));
    contents.insert(contents.end(), frame.begin(), frame.end());
  }
  for (const auto& [key, record] : grades_) {
    const mp::Bytes frame = Wal::encode_record(RecordKind::Grade, 0,
                                               encode_grade_record(record));
    contents.insert(contents.end(), frame.begin(), frame.end());
  }

  const std::string tmp = dir_ + "/snapshot.tmp";
  const std::string snapshot = dir_ + "/snapshot.pdcs";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("cannot create", tmp);
  try {
    write_file_all(fd, tmp, contents.data(), contents.size());
    if (config_.fsync && ::fdatasync(fd) != 0) throw_errno("cannot fsync", tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  // A kill from here to the rename leaves old snapshot + full log (the tmp
  // is discarded at the next open); a kill between the rename and reset()
  // replays the log's records over a snapshot that already holds them —
  // idempotent upserts, identical recovered state either way.
  chaos::on_op("store.compact.swap");
  if (::rename(tmp.c_str(), snapshot.c_str()) != 0) {
    throw_errno("cannot rename snapshot into place in", dir_);
  }
  if (config_.fsync) fsync_dir(dir_);
  wal_->reset();
  log_records_ = 0;
  trace::Counter("store.compactions").add(1.0);
}

void Store::sync() {
  std::shared_lock gate(compact_mutex_);
  wal_->sync();
}

RecoverStats Store::recover_stats() const {
  std::lock_guard lock(mutex_);
  return recover_stats_;
}

std::map<std::uint64_t, ResultRecord> Store::results() const {
  std::lock_guard lock(mutex_);
  return results_;
}

std::map<GradeKey, GradeRecord> Store::grades() const {
  std::lock_guard lock(mutex_);
  return grades_;
}

std::uint64_t Store::result_count() const {
  std::lock_guard lock(mutex_);
  return results_.size();
}

std::uint64_t Store::grade_count() const {
  std::lock_guard lock(mutex_);
  return grades_.size();
}

std::vector<std::string> Store::cohorts() const {
  std::lock_guard lock(mutex_);
  std::set<std::string> names;
  for (const auto& [digest, record] : results_) names.insert(record.tenant);
  for (const auto& [key, record] : grades_) names.insert(record.cohort);
  return {names.begin(), names.end()};
}

CohortReport Store::report(const std::string& cohort) const {
  std::lock_guard lock(mutex_);
  return report_locked(cohort);
}

CohortReport Store::report_locked(const std::string& cohort) const {
  CohortReport report;
  report.cohort = cohort;
  for (const auto& [digest, record] : results_) {
    if (record.tenant != cohort) continue;
    ++report.results;
    if (!record.cacheable()) ++report.failures;
  }

  assessment::Welford divergence;
  assessment::Histogram histogram(0.0, static_cast<double>(kReportBins),
                                  kReportBins);
  std::map<std::string, std::uint64_t> verdicts;
  for (const auto& [key, record] : grades_) {
    if (record.cohort != cohort) continue;
    ++report.grades;
    ++verdicts[record.verdict];
    report.matched += record.matched;
    report.explored += record.explored;
    divergence.add(record.divergence);
    histogram.add(record.divergence);
  }
  report.verdicts.assign(verdicts.begin(), verdicts.end());
  report.divergence_count = divergence.count();
  if (divergence.count() > 0) {
    report.divergence_mean = divergence.mean();
    report.divergence_min = divergence.min();
    report.divergence_max = divergence.max();
  }
  if (divergence.count() > 1) {
    report.divergence_stddev = divergence.sample_stddev();
  }
  report.histogram.resize(kReportBins);
  for (std::size_t bin = 0; bin < kReportBins; ++bin) {
    report.histogram[bin] = histogram.bin_count(bin);
  }
  return report;
}

std::uint64_t Store::wal_appends() const { return wal_->appends(); }
std::uint64_t Store::wal_fsyncs() const { return wal_->fsyncs(); }
std::uint64_t Store::wal_bytes() const { return wal_->size_bytes(); }

}  // namespace pdc::store
