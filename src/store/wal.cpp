#include "store/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "chaos/chaos.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw Error("store: " + what + " '" + path + "': " +
              std::strerror(errno));
}

void put_u16(mp::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void put_u32(mp::Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}

std::uint16_t get_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | std::to_integer<std::uint32_t>(p[i]);
  return v;
}

/// The IEEE CRC-32 lookup table, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t size) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ std::to_integer<std::uint32_t>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

mp::Bytes Wal::encode_record(RecordKind kind, std::uint16_t flags,
                             const mp::Bytes& body) {
  if (body.size() > kMaxRecordBytes) {
    throw InvalidArgument("store: record body of " +
                          std::to_string(body.size()) +
                          " bytes exceeds the " +
                          std::to_string(kMaxRecordBytes) + "-byte clamp");
  }
  mp::Bytes frame;
  frame.reserve(kRecordHeaderBytes + body.size());
  put_u32(frame, kWalMagic);
  put_u16(frame, static_cast<std::uint16_t>(kind));
  put_u16(frame, flags);
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  put_u32(frame, crc32(body));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

ScanResult Wal::scan(const std::string& path) {
  ScanResult result;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // no file yet: an empty log
    throw_errno("cannot open", path);
  }
  mp::Bytes contents;
  std::array<std::byte, 1 << 16> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("cannot read", path);
    }
    if (n == 0) break;
    contents.insert(contents.end(), buf.begin(), buf.begin() + n);
  }
  ::close(fd);

  std::size_t pos = 0;
  const auto stop = [&](const std::string& reason) {
    result.valid_bytes = pos;
    result.dropped_bytes = contents.size() - pos;
    result.tail_reason = reason;
    return result;
  };
  while (pos < contents.size()) {
    if (contents.size() - pos < kRecordHeaderBytes) {
      return stop("truncated header");
    }
    const std::byte* head = contents.data() + pos;
    if (get_u32(head) != kWalMagic) return stop("bad magic");
    const std::uint16_t kind = get_u16(head + 4);
    const std::uint16_t flags = get_u16(head + 6);
    const std::uint32_t body_len = get_u32(head + 8);
    const std::uint32_t want_crc = get_u32(head + 12);
    if (kind < static_cast<std::uint16_t>(RecordKind::Result) ||
        kind > static_cast<std::uint16_t>(RecordKind::Grade)) {
      return stop("unknown record kind " + std::to_string(kind));
    }
    if (body_len > kMaxRecordBytes) {
      return stop("oversized length field (" + std::to_string(body_len) +
                  " bytes)");
    }
    if (contents.size() - pos - kRecordHeaderBytes < body_len) {
      return stop("truncated body");
    }
    const std::byte* body = head + kRecordHeaderBytes;
    if (crc32(body, body_len) != want_crc) return stop("crc mismatch");
    WalRecord record;
    record.kind = static_cast<RecordKind>(kind);
    record.flags = flags;
    record.body.assign(body, body + body_len);
    result.records.push_back(std::move(record));
    pos += kRecordHeaderBytes + body_len;
  }
  result.valid_bytes = pos;
  return result;
}

Wal::Wal(std::string path, WalConfig config)
    : path_(std::move(path)), config_(config) {
  recovered_ = scan(path_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("cannot open for append", path_);
  // Drop the torn tail before the first append: a fresh record written
  // after garbage would be unreachable (the scan stops at the garbage).
  if (::ftruncate(fd_, static_cast<off_t>(recovered_.valid_bytes)) != 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("cannot truncate torn tail of", path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("cannot seek", path_);
  }
  end_lsn_ = recovered_.valid_bytes;
  synced_lsn_ = end_lsn_;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    try {
      sync();
    } catch (...) {
      // Destruction must not throw; close() below still runs.
    }
    ::close(fd_);
  }
}

void Wal::write_all(const std::byte* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("cannot append to", path_);
    }
    written += static_cast<std::size_t>(n);
  }
}

void Wal::append(RecordKind kind, std::uint16_t flags, const mp::Bytes& body) {
  const mp::Bytes frame = encode_record(kind, flags, body);
  // Route this append's chaos decisions to the store's own lane, whatever
  // thread is journaling (a lab worker, a grader, a bench driver): decision
  // 0 is "store.append", 1 "store.append.body", 2 "store.append.sync", so a
  // targeted plan can land an abort on any of the three torn states without
  // touching the caller's lane or counter.
  chaos::ActorScope actor(kStoreActor);
  std::uint64_t my_lsn = 0;
  {
    std::lock_guard lock(write_mutex_);
    // Three checkpoints bracket the write so an injected abort (realized as
    // a real _exit() by the kill sweep's forked child) lands before the
    // header, between header and body, or after the bytes but before the
    // fsync — the torn states recovery must map back to the valid prefix.
    chaos::on_op("store.append");
    write_all(frame.data(), kRecordHeaderBytes);
    chaos::on_op("store.append.body");
    write_all(frame.data() + kRecordHeaderBytes,
              frame.size() - kRecordHeaderBytes);
    end_lsn_ += frame.size();
    my_lsn = end_lsn_;
    ++appends_;
  }
  trace::Counter("store.appends").add(1.0);
  if (!config_.fsync) return;
  chaos::on_op("store.append.sync");

  // Group commit: whoever finds no fsync in flight becomes the leader,
  // optionally waits a bounded window for more appenders to pile onto the
  // shared tail, then pays one fsync covering every record written so far.
  // Followers whose lsn the leader's fsync covered return without syncing.
  std::unique_lock lock(sync_mutex_);
  for (;;) {
    if (synced_lsn_ >= my_lsn) return;
    if (!sync_in_flight_) break;
    sync_cv_.wait(lock, [this, my_lsn] {
      return synced_lsn_ >= my_lsn || !sync_in_flight_;
    });
  }
  sync_in_flight_ = true;
  lock.unlock();
  if (config_.group_commit_window_us > 0) {
    // The bounded batching window. A sleep (not a cv wait) on purpose:
    // joiners need no handshake — any append finishing during the window
    // has already advanced end_lsn_ and is covered by the fsync below.
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.group_commit_window_us));
  }
  std::uint64_t target = 0;
  {
    std::lock_guard write_lock(write_mutex_);
    target = end_lsn_;
  }
  const int rc = ::fdatasync(fd_);
  lock.lock();
  sync_in_flight_ = false;
  if (rc != 0) {
    sync_cv_.notify_all();
    throw_errno("cannot fsync", path_);
  }
  synced_lsn_ = target;
  ++fsyncs_;
  sync_cv_.notify_all();
  trace::Counter("store.fsyncs").add(1.0);
}

void Wal::sync() {
  if (!config_.fsync) return;
  std::uint64_t target = 0;
  {
    std::lock_guard write_lock(write_mutex_);
    target = end_lsn_;
  }
  std::unique_lock lock(sync_mutex_);
  if (synced_lsn_ >= target) return;
  sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  if (synced_lsn_ >= target) return;
  sync_in_flight_ = true;
  lock.unlock();
  const int rc = ::fdatasync(fd_);
  lock.lock();
  sync_in_flight_ = false;
  sync_cv_.notify_all();
  if (rc != 0) throw_errno("cannot fsync", path_);
  if (target > synced_lsn_) synced_lsn_ = target;
  ++fsyncs_;
}

std::uint64_t Wal::size_bytes() const {
  std::lock_guard lock(write_mutex_);
  return end_lsn_;
}

std::uint64_t Wal::appends() const {
  std::lock_guard lock(write_mutex_);
  return appends_;
}

std::uint64_t Wal::fsyncs() const {
  std::lock_guard lock(const_cast<Wal*>(this)->sync_mutex_);
  return fsyncs_;
}

void Wal::reset() {
  // Take both locks (write before sync, the append order) so no record is
  // mid-write while the file shrinks under it.
  std::scoped_lock lock(write_mutex_, sync_mutex_);
  if (::ftruncate(fd_, 0) != 0) throw_errno("cannot reset", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) throw_errno("cannot seek", path_);
  if (config_.fsync && ::fdatasync(fd_) != 0) {
    throw_errno("cannot fsync", path_);
  }
  end_lsn_ = 0;
  synced_lsn_ = 0;
}

}  // namespace pdc::store
