#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mp/message.hpp"

namespace pdc::store {

/// Chaos lane of the persistence subsystem: above the mp ranks, the smp
/// team (1<<16), pool (1<<17), lab (1<<18) and grade (1<<19) lanes, so a
/// plan can abort an append or a compaction mid-write without touching any
/// other subsystem. The kill-during-append sweep turns aborts injected on
/// this lane into real `_exit()`s in a forked child — a torn tail the
/// recovery path must survive byte-for-byte.
inline constexpr int kStoreActor = 1 << 20;

/// "PDCS", little-endian, first on every record. Same posture as the PDCN
/// wire magic: a file that does not open with it is not a store log.
inline constexpr std::uint32_t kWalMagic = 0x53434450;

/// Hard clamp on a record body. A length field above this is torn, corrupt
/// or hostile and ends recovery at the previous record — it is never
/// allowed to drive an allocation (the same rule every PDCN frame obeys).
/// Sized to hold a full Result record at the lab protocol's output clamps
/// (4096 lines x 4096 bytes) with framing headroom.
inline constexpr std::uint32_t kMaxRecordBytes = 24u << 20;  // 24 MiB

/// Record header: | magic u32 | kind u16 | flags u16 | body_len u32 |
/// body_crc u32 | body |. The CRC covers the body; the header itself is
/// guarded by the magic, the kind range and the length clamp.
inline constexpr std::size_t kRecordHeaderBytes = 16;

/// What a record carries. The store gives Result and Grade records their
/// meaning; the WAL only frames them.
enum class RecordKind : std::uint16_t {
  Result = 1,  ///< one terminal lab Result (digest + tenant + output)
  Grade = 2,   ///< one autograder verdict (cohort/mutant/submission key)
};

/// IEEE CRC-32 (the zlib polynomial), table-driven. Exposed so the tests
/// can forge deliberately-corrupt records.
std::uint32_t crc32(const std::byte* data, std::size_t size) noexcept;
inline std::uint32_t crc32(const mp::Bytes& bytes) noexcept {
  return crc32(bytes.data(), bytes.size());
}

/// One recovered record.
struct WalRecord {
  RecordKind kind = RecordKind::Result;
  std::uint16_t flags = 0;
  mp::Bytes body;
};

/// Outcome of scanning a log (or snapshot) file.
struct ScanResult {
  std::vector<WalRecord> records;  ///< the longest valid prefix, in order
  std::uint64_t valid_bytes = 0;   ///< where that prefix ends
  std::uint64_t dropped_bytes = 0; ///< torn/corrupt tail discarded after it
  std::string tail_reason;         ///< why the scan stopped; "" = clean EOF
};

/// Knobs of the append/fsync path.
struct WalConfig {
  /// fsync on append (group-committed). Off = tests that only exercise
  /// framing, and benches measuring the no-durability ceiling.
  bool fsync = true;

  /// Group-commit window: after taking the sync leadership, wait this long
  /// for concurrent appenders to join the batch before paying the fsync.
  /// 0 = sync immediately (lowest latency, one fsync per quiet append).
  int group_commit_window_us = 0;
};

/// An append-only write-ahead log of CRC32-framed records.
///
/// Durability contract: append() returns only after the record is on disk
/// (covered by an fsync) — the caller may then ack whatever the record
/// journals. Concurrent appenders group-commit: one leader fsyncs the
/// shared tail once for everyone whose record it covers, so a fleet of
/// worker threads pays ~one fsync per batch, not one per record.
///
/// Recovery contract: scan() returns the longest valid prefix. A torn tail
/// (the record a crash interrupted), a bit-flipped CRC, an oversized length
/// field or a bad magic all end the scan at the previous record — never a
/// crash, never a hang, never an allocation driven by a corrupt length.
/// Opening for append truncates the file to that valid prefix so the next
/// record never hides behind garbage.
class Wal {
 public:
  /// Open (creating if absent) `path` for appending. Scans the existing
  /// contents first — recovered records are readable via recovered() — and
  /// truncates any torn tail. Throws pdc::Error when the file cannot be
  /// opened or truncated.
  Wal(std::string path, WalConfig config);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one record and (config.fsync) group-commit it to disk. Thread
  /// safe. Throws pdc::Error on I/O failure and pdc::InvalidArgument when
  /// `body` exceeds kMaxRecordBytes. Chaos checkpoints "store.append" /
  /// "store.append.body" / "store.append.sync" fire before the header
  /// write, between header and body, and before the fsync — an abort
  /// injected there leaves exactly the torn states recovery must survive.
  void append(RecordKind kind, std::uint16_t flags, const mp::Bytes& body);

  /// fsync everything appended so far (no-op when config.fsync is off or
  /// nothing is pending). Used by close paths that must not lose a tail.
  void sync();

  /// What the opening scan found.
  [[nodiscard]] const ScanResult& recovered() const noexcept {
    return recovered_;
  }

  /// Bytes currently in the log (valid prefix + appends since open).
  [[nodiscard]] std::uint64_t size_bytes() const;
  /// Records appended through this handle (excludes recovered ones).
  [[nodiscard]] std::uint64_t appends() const;
  /// fsync() calls actually issued — with group commit under concurrency
  /// this is (much) smaller than appends().
  [[nodiscard]] std::uint64_t fsyncs() const;

  /// Truncate the log to zero records (after a snapshot made it redundant).
  /// fsyncs the truncation. Thread safe against concurrent append().
  void reset();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Encode a record frame (header + body) — shared by the snapshot writer
  /// so both files speak the identical format.
  static mp::Bytes encode_record(RecordKind kind, std::uint16_t flags,
                                 const mp::Bytes& body);

  /// Scan `path` for its longest valid record prefix. A missing file is an
  /// empty ScanResult, not an error.
  static ScanResult scan(const std::string& path);

 private:
  void write_all(const std::byte* data, std::size_t size);

  const std::string path_;
  const WalConfig config_;
  int fd_ = -1;

  ScanResult recovered_;

  /// Serializes writes; `end_lsn_` is the byte offset a finished append
  /// reached, `synced_lsn_` how far fsync has covered.
  mutable std::mutex write_mutex_;
  std::uint64_t end_lsn_ = 0;

  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  std::uint64_t synced_lsn_ = 0;
  bool sync_in_flight_ = false;

  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
};

}  // namespace pdc::store
