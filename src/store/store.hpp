#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "mp/message.hpp"
#include "store/wal.hpp"

namespace pdc::store {

// The persistence subsystem under the lab server and the autograder.
//
// A Store is a directory holding two files in the identical CRC32-framed
// record format (wal.hpp): `snapshot.pdcs`, the compacted state as of the
// last compaction, and `wal.pdcs`, every record appended since. Recovery
// replays log over snapshot; both maps are keyed upserts, so a crash that
// lands between "snapshot renamed" and "log reset" merely replays records
// the snapshot already holds — the recovered state is identical either way.
//
// Layering: store sits below lab and grade (both journal through it), so it
// defines its own record structs rather than reusing lab::protocol::Result
// or grade::Grade. The lab server and the GradeBook convert at the edge.

/// Clamps on record string fields — the same values the lab protocol
/// enforces on the wire, restated here so a corrupt log body hits a typed
/// error before it can size an allocation.
inline constexpr std::uint32_t kMaxFieldBytes = 4096;
inline constexpr std::uint32_t kMaxOutputLines = 4096;

/// One terminal lab result, keyed by the submission content digest.
/// `tenant` doubles as the cohort tag for per-cohort report aggregation.
struct ResultRecord {
  std::uint64_t digest = 0;   ///< lab::protocol::digest of the submission
  std::string tenant;         ///< submitting student; the result's cohort tag
  std::uint16_t kind = 0;     ///< lab::protocol::JobKind as its wire value
  std::string name;           ///< program / mutant name
  std::int32_t np = 1;
  std::uint64_t seed = 0;
  std::int32_t exit_code = 0;
  std::uint64_t exec_us = 0;
  std::vector<std::string> output;
  std::string error;

  bool operator==(const ResultRecord&) const = default;

  /// Cache-warm eligibility: the "failures never cached" rule. Cancelled
  /// and failed results are journaled (the report counts them) but a warm
  /// start must not serve them from cache.
  [[nodiscard]] bool cacheable() const noexcept { return exit_code == 0; }
};

/// One autograder verdict, keyed by (cohort, mutant id, submission).
/// The verdict travels as its canonical name string ("Caught", "Missed",
/// ...) so the store never links pdc::grade; grade parses it back.
struct GradeRecord {
  std::string cohort;
  std::string mutant;      ///< MutantSpec id ("spmd~race#0@np4")
  std::string submission;  ///< submission/student tag within the cohort
  std::string verdict;     ///< grade::verdict_name() string
  std::uint32_t matched = 0;
  std::uint32_t explored = 0;
  double divergence = 0.0;
  std::string detail;

  bool operator==(const GradeRecord&) const = default;
};

/// Sorted-map key for the grade index. Lexicographic tuple order makes the
/// fold order — and therefore every aggregate and rendered report — a pure
/// function of the record *set*, independent of arrival or recovery order.
using GradeKey = std::tuple<std::string, std::string, std::string>;

[[nodiscard]] inline GradeKey grade_key(const GradeRecord& record) {
  return {record.cohort, record.mutant, record.submission};
}

// ---- record codecs (bodies of wal.hpp frames) ----------------------------
// Encoded with the PDCN wire primitives; decode reads through wire::Reader,
// so truncated or oversized fields throw net::ProtocolError before any
// allocation — the recovery path treats that exactly like a CRC mismatch.

mp::Bytes encode_result_record(const ResultRecord& record);
ResultRecord decode_result_record(const mp::Bytes& body);

mp::Bytes encode_grade_record(const GradeRecord& record);
GradeRecord decode_grade_record(const mp::Bytes& body);

/// What recovery found. dropped_bytes > 0 means a torn or corrupt tail was
/// discarded (and `tail_reason` says why the scan stopped); malformed is
/// the count of CRC-valid records whose body failed to decode.
struct RecoverStats {
  std::uint64_t snapshot_records = 0;
  std::uint64_t log_records = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t malformed = 0;
  std::string tail_reason;  ///< log's reason; "" = clean EOF
  std::uint64_t results = 0;  ///< distinct result digests after replay
  std::uint64_t grades = 0;   ///< distinct grade keys after replay
};

struct StoreConfig {
  std::string dir;

  /// WAL durability knobs (wal.hpp).
  bool fsync = true;
  int group_commit_window_us = 0;

  /// Compact (snapshot + log reset) automatically once this many records
  /// accumulate in the log. 0 = compact only when asked.
  std::uint64_t compact_every = 0;
};

/// Per-cohort aggregate: result counts plus merge-able grade statistics
/// (assessment::Welford over divergence, a fixed-shape histogram of it),
/// folded in sorted key order so the numbers — and render_report()'s bytes —
/// never depend on arrival, shard or recovery order. Wall-clock quantities
/// (exec_us) are deliberately absent from the canonical rendering.
struct CohortReport {
  std::string cohort;
  std::uint64_t results = 0;   ///< result records tagged with this cohort
  std::uint64_t failures = 0;  ///< of those, journaled-but-never-cached
  std::uint64_t grades = 0;
  /// verdict name → count, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> verdicts;
  std::uint64_t matched = 0;   ///< sum of matched schedules
  std::uint64_t explored = 0;  ///< sum of explored schedules
  /// Welford aggregate over per-verdict divergence.
  std::uint64_t divergence_count = 0;
  double divergence_mean = 0.0;
  double divergence_stddev = 0.0;  ///< 0 when divergence_count < 2
  double divergence_min = 0.0;
  double divergence_max = 0.0;
  /// Fixed-shape histogram of divergence over [0, kReportBins): unit-width
  /// buckets, edge-clamped (assessment::Histogram) — the same shape
  /// grade::CohortStats uses, exact-integer merge-able.
  std::vector<std::uint64_t> histogram;

  bool operator==(const CohortReport&) const = default;
};

inline constexpr std::size_t kReportBins = 64;

/// Canonical text rendering of a report — one deterministic line vector,
/// byte-identical for equal reports. What `pdclab report` prints and what
/// the kill sweep compares against the uninterrupted run.
std::vector<std::string> render_report(const CohortReport& report);

/// The crash-safe result + grade store.
///
/// Durability: put_result()/put_grade() return only after the record is
/// fsync-covered in the WAL (group-committed under concurrency) — callers
/// ack to the network *after* the put returns, so acked ⇒ durable.
///
/// Thread safety: all public methods are safe to call concurrently.
class Store {
 public:
  /// Open (creating the directory if needed) and recover: replay
  /// snapshot.pdcs, then wal.pdcs over it, dropping any torn tail. Bumps
  /// the `store.recovered_records` / `store.dropped_tail` trace counters.
  explicit Store(StoreConfig config);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Journal one terminal result (durable on return) and index it.
  void put_result(const ResultRecord& record);

  /// Journal one grade verdict (durable on return) and index it.
  void put_grade(const GradeRecord& record);

  /// Snapshot the current state to snapshot.pdcs (tmp + atomic rename +
  /// directory fsync) and reset the log. Crash-safe at every step: a kill
  /// before the rename leaves the old snapshot + full log; a kill after it
  /// but before the log reset replays duplicate records into idempotent
  /// upserts. Chaos checkpoints "store.compact" (before the tmp write) and
  /// "store.compact.swap" (before the rename).
  void compact();

  /// fsync everything appended so far. The graceful-shutdown hook.
  void sync();

  /// What recovery found at open.
  [[nodiscard]] RecoverStats recover_stats() const;

  /// Snapshot of the result index (digest → record, sorted).
  [[nodiscard]] std::map<std::uint64_t, ResultRecord> results() const;

  /// Snapshot of the grade index (sorted by (cohort, mutant, submission)).
  [[nodiscard]] std::map<GradeKey, GradeRecord> grades() const;

  [[nodiscard]] std::uint64_t result_count() const;
  [[nodiscard]] std::uint64_t grade_count() const;

  /// Cohorts present (union of result tenants and grade cohorts), sorted.
  [[nodiscard]] std::vector<std::string> cohorts() const;

  /// Aggregate one cohort. A cohort with no records reports all-zero.
  [[nodiscard]] CohortReport report(const std::string& cohort) const;

  /// WAL observability (bench_store's appends/fsyncs ratio).
  [[nodiscard]] std::uint64_t wal_appends() const;
  [[nodiscard]] std::uint64_t wal_fsyncs() const;
  [[nodiscard]] std::uint64_t wal_bytes() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  void apply(const WalRecord& record, RecoverStats& stats);
  void compact_locked();
  [[nodiscard]] CohortReport report_locked(const std::string& cohort) const;

  const std::string dir_;
  const StoreConfig config_;

  /// Compaction gate: put_result/put_grade hold it shared around their
  /// append-then-index pair (many at once — group commit needs concurrent
  /// appenders), compact() holds it exclusive so no record can sit between
  /// "in the log" and "in the maps" while the log is reset.
  mutable std::shared_mutex compact_mutex_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, ResultRecord> results_;
  std::map<GradeKey, GradeRecord> grades_;
  std::uint64_t log_records_ = 0;  ///< records in wal.pdcs (for compact_every)
  RecoverStats recover_stats_;

  std::unique_ptr<Wal> wal_;
};

}  // namespace pdc::store
