#pragma once

#include <memory>

#include "notebook/notebook.hpp"

namespace pdc::notebook {

/// Build "mpi4py_patternlets.ipynb" — the Google Colab notebook of Section
/// III-B and Fig. 2 — as a Notebook document.
///
/// Each patternlet gets a markdown explanation, a `%%writefile NNname.py`
/// cell whose body is the patternlet's actual mpi4py listing, and a
/// `!mpirun --allow-run-as-root -np 4 python NNname.py` cell. Run it with
/// an ExecutionEngine over ProgramRegistry::mpi4py_standard().
std::unique_ptr<Notebook> build_mpi4py_notebook();

}  // namespace pdc::notebook
