#include "notebook/notebook.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::notebook {

Notebook::Notebook(std::string title) : title_(std::move(title)) {
  if (title_.empty()) throw InvalidArgument("Notebook: title required");
}

Cell& Notebook::add_markdown(std::string source) {
  cells_.push_back(Cell{CellKind::Markdown, std::move(source), {}, 0});
  return cells_.back();
}

Cell& Notebook::add_code(std::string source) {
  cells_.push_back(Cell{CellKind::Code, std::move(source), {}, 0});
  return cells_.back();
}

std::size_t Notebook::code_cell_count() const {
  std::size_t count = 0;
  for (const auto& cell : cells_) {
    if (cell.kind == CellKind::Code) ++count;
  }
  return count;
}

std::string Notebook::render() const {
  std::string out = "### " + title_ + " ###\n\n";
  for (const auto& cell : cells_) {
    if (cell.kind == CellKind::Markdown) {
      out += cell.source + "\n\n";
      continue;
    }
    const std::string tag =
        cell.execution_count > 0 ? std::to_string(cell.execution_count) : " ";
    out += "[" + tag + "]: ";
    // Indent continuation lines under the prompt.
    bool first = true;
    for (const auto& line : strings::split(cell.source, '\n')) {
      if (!first) out += "      ";
      out += line + "\n";
      first = false;
    }
    for (const auto& line : cell.outputs) {
      out += "  > " + line + "\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace pdc::notebook
