#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "notebook/filestore.hpp"
#include "notebook/notebook.hpp"
#include "patternlets/mpi_programs.hpp"

namespace pdc::notebook {

/// Binds virtual .py file names to native rank programs, so that
/// `!mpirun -np 4 python 00spmd.py` executes real message-passing code.
/// (The kernel cannot interpret arbitrary Python; the notebook's teaching
/// files are pre-bound, exactly the set the Colab material ships.)
class ProgramRegistry {
 public:
  /// Bind (or rebind) a file name to a rank program.
  void bind(std::string filename, patternlets::MpProgram program);

  /// The bound program for `filename`, if any.
  [[nodiscard]] std::optional<patternlets::MpProgram> find(
      const std::string& filename) const;

  /// Sorted bound file names.
  [[nodiscard]] std::vector<std::string> filenames() const;

  /// The standard binding: every mpi4py patternlet file ("00spmd.py",
  /// "01sendreceive.py", ..., "14ring.py") mapped to its rank program.
  static ProgramRegistry mpi4py_standard();

 private:
  std::map<std::string, patternlets::MpProgram> programs_;
};

/// Execution-environment knobs (which VM the notebook is "running on").
struct EngineConfig {
  /// Hostname every rank reports — the Colab container id in Fig. 2.
  std::string hostname = "d6ff4f902ed6";

  /// Optional per-rank hostnames (simulating the Chameleon cluster backend);
  /// when set, ranks are placed round-robin across these hosts.
  std::vector<std::string> cluster_hosts;

  /// Upper bound accepted for `-np` (the Colab VM would not launch more).
  int max_procs = 64;
};

/// Executes notebook cells: `%%writefile` magics, `!` shell commands
/// (mpirun/python/ls/cat), and records outputs on the cells — the back end
/// behind the paper's Fig. 2 interaction.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(ProgramRegistry programs, EngineConfig config = {});

  /// Execute one cell source and return its output lines (the cell itself
  /// is not modified; use execute() for that).
  std::vector<std::string> execute_source(const std::string& source);

  /// Execute a code cell: outputs and execution_count are updated.
  /// Markdown cells are left untouched.
  void execute(Cell& cell);

  /// Execute every cell of the notebook in order.
  void run_all(Notebook& notebook);

  /// The engine's virtual filesystem.
  [[nodiscard]] FileStore& files() noexcept { return files_; }
  [[nodiscard]] const FileStore& files() const noexcept { return files_; }

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  std::vector<std::string> run_shell_line(const std::string& command);
  std::vector<std::string> run_mpirun(const std::vector<std::string>& tokens);
  std::vector<std::string> run_python(const std::string& filename,
                                      int num_procs);

  ProgramRegistry programs_;
  EngineConfig config_;
  FileStore files_;
  int next_execution_ = 1;
};

}  // namespace pdc::notebook
