#include "notebook/colab.hpp"

#include "patternlets/patternlets.hpp"

namespace pdc::notebook {

namespace {

/// Add the (markdown, %%writefile, !mpirun) cell triple for one patternlet.
void add_patternlet_cells(Notebook& nb, const std::string& heading,
                          const std::string& explanation,
                          const std::string& patternlet_id,
                          const std::string& filename, int np = 4) {
  const auto& patternlet = patternlets::global_registry().at(patternlet_id);
  nb.add_markdown("## " + heading + "\n" + explanation);
  nb.add_code("%%writefile " + filename + "\n" +
              patternlet.info().source_listing);
  nb.add_code("! mpirun --allow-run-as-root -np " + std::to_string(np) +
              " python " + filename);
}

}  // namespace

std::unique_ptr<Notebook> build_mpi4py_notebook() {
  auto nb = std::make_unique<Notebook>("mpi4py_patternlets.ipynb");

  nb->add_markdown(
      "# Distributed parallel programming patterns using mpi4py\n"
      "This notebook introduces message passing with short patternlet "
      "programs. Each example is written to a file with %%writefile, then "
      "launched on several processes with mpirun. The VM backing this "
      "notebook has a single core, but the message-passing *concepts* "
      "demonstrate perfectly well; to experience real speedup, run the "
      "exemplars on a cluster afterwards.");

  add_patternlet_cells(
      *nb, "Single Program, Multiple Data",
      "This code forms the basis of all of the other examples that follow. "
      "It is the fundamental way we structure parallel programs today.\n"
      "Next we see how we can use the mpirun program to execute the above "
      "python code using 4 processes. The value after -np is the number of "
      "processes to use when running the file of python code saved when "
      "executing the previous code cell.",
      "mpi/00-spmd", "00spmd.py");

  add_patternlet_cells(
      *nb, "Send and Receive",
      "The conductor process sends a personal greeting to every other "
      "process. send and recv are the two fundamental operations of "
      "message passing.",
      "mpi/01-send-receive", "01sendreceive.py");

  add_patternlet_cells(
      *nb, "Master-Worker",
      "One process coordinates; the rest do the work. Try changing -np and "
      "re-running.",
      "mpi/03-master-worker", "03masterworker.py");

  add_patternlet_cells(
      *nb, "Parallel Loop, Slices",
      "Loop iterations are dealt round-robin across the processes, like "
      "dealing cards.",
      "mpi/04-parallel-loop-slices", "04loopslices.py");

  add_patternlet_cells(
      *nb, "Broadcast",
      "The conductor obtains the data and broadcasts it so every process "
      "has a copy.",
      "mpi/06-broadcast", "06broadcast.py");

  add_patternlet_cells(
      *nb, "Scatter",
      "The conductor splits the data and each process receives just its "
      "chunk.",
      "mpi/07-scatter", "07scatter.py");

  add_patternlet_cells(
      *nb, "Gather",
      "The inverse of scatter: each process contributes its part and the "
      "conductor reassembles the whole.",
      "mpi/08-gather", "08gather.py");

  add_patternlet_cells(
      *nb, "Reduce",
      "All processes contribute values that are combined with an operator "
      "such as sum or max.",
      "mpi/09-reduce", "09reduce.py");

  nb->add_markdown(
      "## Where to next\n"
      "You have now used the core message-passing patterns. For the second "
      "hour, pick an exemplar -- the Forest Fire Simulation or the Drug "
      "Design example -- and run it on a real multicore system (the "
      "Chameleon-backed Jupyter notebook or the 64-core VM) to experience "
      "speedup and scalability.");

  return nb;
}

}  // namespace pdc::notebook
