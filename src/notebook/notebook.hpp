#pragma once

#include <string>
#include <vector>

namespace pdc::notebook {

/// Kind of a notebook cell.
enum class CellKind { Markdown, Code };

/// One cell of a Colab/Jupyter-style notebook: source plus, for code cells,
/// the captured outputs of the last execution.
struct Cell {
  CellKind kind = CellKind::Code;
  std::string source;
  std::vector<std::string> outputs;  ///< one entry per output line
  int execution_count = 0;           ///< 0 = never executed
};

/// A notebook document: ordered cells plus a title, as authored for the
/// paper's "Distributed parallel programming patterns using mpi4py" Colab.
class Notebook {
 public:
  explicit Notebook(std::string title);

  /// Append a markdown (text) cell.
  Cell& add_markdown(std::string source);

  /// Append a code cell.
  Cell& add_code(std::string source);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::vector<Cell>& cells() noexcept { return cells_; }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }

  /// Number of code cells.
  [[nodiscard]] std::size_t code_cell_count() const;

  /// Render the notebook (sources + outputs) as plain text, in the visual
  /// spirit of the paper's Fig. 2.
  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  std::vector<Cell> cells_;
};

}  // namespace pdc::notebook
