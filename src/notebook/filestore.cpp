#include "notebook/filestore.hpp"

#include "support/error.hpp"

namespace pdc::notebook {

bool FileStore::write(const std::string& name, std::string content) {
  if (name.empty()) throw InvalidArgument("FileStore::write: name required");
  const bool existed = files_.contains(name);
  files_[name] = std::move(content);
  return existed;
}

std::optional<std::string> FileStore::read(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool FileStore::exists(const std::string& name) const {
  return files_.contains(name);
}

bool FileStore::remove(const std::string& name) {
  return files_.erase(name) > 0;
}

std::vector<std::string> FileStore::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, content] : files_) names.push_back(name);
  return names;
}

}  // namespace pdc::notebook
