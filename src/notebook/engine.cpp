#include "notebook/engine.hpp"

#include <algorithm>

#include "mp/runtime.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::notebook {

void ProgramRegistry::bind(std::string filename,
                           patternlets::MpProgram program) {
  if (filename.empty()) {
    throw InvalidArgument("ProgramRegistry::bind: filename required");
  }
  if (!program) {
    throw InvalidArgument("ProgramRegistry::bind: program required");
  }
  programs_[std::move(filename)] = std::move(program);
}

std::optional<patternlets::MpProgram> ProgramRegistry::find(
    const std::string& filename) const {
  const auto it = programs_.find(filename);
  if (it == programs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ProgramRegistry::filenames() const {
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto& [name, program] : programs_) names.push_back(name);
  return names;
}

ProgramRegistry ProgramRegistry::mpi4py_standard() {
  ProgramRegistry registry;
  const std::pair<const char*, const char*> bindings[] = {
      {"00spmd.py", "spmd"},
      {"01sendreceive.py", "send-receive"},
      {"02pairexchange.py", "pair-exchange"},
      {"03masterworker.py", "master-worker"},
      {"04loopslices.py", "loop-slices"},
      {"05loopchunks.py", "loop-chunks"},
      {"06broadcast.py", "broadcast"},
      {"07scatter.py", "scatter"},
      {"08gather.py", "gather"},
      {"09reduce.py", "reduce"},
      {"10allreduce.py", "allreduce"},
      {"11barrier.py", "barrier"},
      {"12tags.py", "tags"},
      {"13anysource.py", "any-source"},
      {"14ring.py", "ring"},
  };
  for (const auto& [file, program] : bindings) {
    registry.bind(file, patternlets::mpi_program(program));
  }
  return registry;
}

ExecutionEngine::ExecutionEngine(ProgramRegistry programs, EngineConfig config)
    : programs_(std::move(programs)), config_(std::move(config)) {
  if (config_.max_procs < 1) {
    throw InvalidArgument("ExecutionEngine: max_procs must be >= 1");
  }
}

std::vector<std::string> ExecutionEngine::execute_source(
    const std::string& source) {
  const std::vector<std::string> lines = strings::split(source, '\n');

  // `%%writefile NAME` consumes the whole cell (Jupyter cell magic).
  if (!lines.empty() &&
      strings::starts_with(strings::trim(lines[0]), "%%writefile")) {
    const auto tokens = strings::split_ws(lines[0]);
    if (tokens.size() != 2) {
      return {"UsageError: %%writefile requires exactly one filename"};
    }
    std::string body;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      body += lines[i];
      body += '\n';
    }
    const bool existed = files_.write(tokens[1], std::move(body));
    return {(existed ? "Overwriting " : "Writing ") + tokens[1]};
  }

  // Otherwise: run `!` shell lines; anything else the kernel cannot run.
  std::vector<std::string> outputs;
  bool warned_python = false;
  for (const auto& raw : lines) {
    const std::string line = strings::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '!') {
      auto shell_output = run_shell_line(strings::trim(line.substr(1)));
      outputs.insert(outputs.end(), shell_output.begin(), shell_output.end());
    } else if (!warned_python) {
      outputs.push_back(
          "[pdclab kernel] skipped Python statement(s): this notebook "
          "executes code via %%writefile + !mpirun");
      warned_python = true;
    }
  }
  return outputs;
}

void ExecutionEngine::execute(Cell& cell) {
  if (cell.kind != CellKind::Code) return;
  cell.outputs = execute_source(cell.source);
  cell.execution_count = next_execution_++;
}

void ExecutionEngine::run_all(Notebook& notebook) {
  for (auto& cell : notebook.cells()) execute(cell);
}

std::vector<std::string> ExecutionEngine::run_shell_line(
    const std::string& command) {
  const std::vector<std::string> tokens = strings::split_ws(command);
  if (tokens.empty()) return {};
  const std::string& program = tokens[0];

  if (program == "mpirun" || program == "mpiexec") {
    return run_mpirun(tokens);
  }
  if (program == "python" || program == "python3") {
    if (tokens.size() != 2) return {"usage: python <file.py>"};
    return run_python(tokens[1], 1);
  }
  if (program == "ls") {
    std::vector<std::string> names = files_.list();
    if (names.empty()) return {};
    return {strings::join(names, "  ")};
  }
  if (program == "cat") {
    if (tokens.size() != 2) return {"usage: cat <file>"};
    const auto content = files_.read(tokens[1]);
    if (!content) return {"cat: " + tokens[1] + ": No such file or directory"};
    std::vector<std::string> out = strings::split(*content, '\n');
    while (!out.empty() && out.back().empty()) out.pop_back();
    return out;
  }
  return {"/bin/bash: " + program + ": command not found"};
}

std::vector<std::string> ExecutionEngine::run_mpirun(
    const std::vector<std::string>& tokens) {
  int num_procs = -1;
  std::string filename;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "-np" || tok == "-n") {
      if (i + 1 >= tokens.size()) return {"mpirun: option " + tok + " requires a value"};
      try {
        num_procs = std::stoi(tokens[i + 1]);
      } catch (const std::exception&) {
        return {"mpirun: invalid process count '" + tokens[i + 1] + "'"};
      }
      ++i;
    } else if (tok == "python" || tok == "python3") {
      if (i + 1 >= tokens.size()) return {"mpirun: python requires a file"};
      filename = tokens[i + 1];
      ++i;
    } else if (strings::starts_with(tok, "--")) {
      // Flags like --allow-run-as-root are accepted and ignored.
    } else {
      return {"mpirun: unrecognized argument '" + tok + "'"};
    }
  }
  if (num_procs <= 0) {
    return {"mpirun: a positive -np <count> is required"};
  }
  if (num_procs > config_.max_procs) {
    return {"mpirun: this VM allows at most " +
            std::to_string(config_.max_procs) + " processes"};
  }
  if (filename.empty()) {
    return {"mpirun: nothing to run (expected: python <file.py>)"};
  }
  return run_python(filename, num_procs);
}

std::vector<std::string> ExecutionEngine::run_python(
    const std::string& filename, int num_procs) {
  if (!files_.exists(filename)) {
    return {"python: can't open file '" + filename +
            "': [Errno 2] No such file or directory"};
  }
  const auto program = programs_.find(filename);
  if (!program) {
    return {"[pdclab kernel] no native program is bound to '" + filename +
            "' (the teaching files are pre-bound; arbitrary Python is not "
            "interpreted)"};
  }
  mp::RunConfig cfg;
  cfg.num_procs = num_procs;
  if (!config_.cluster_hosts.empty()) {
    cfg.hostnames.reserve(static_cast<std::size_t>(num_procs));
    for (int r = 0; r < num_procs; ++r) {
      cfg.hostnames.push_back(
          config_.cluster_hosts[static_cast<std::size_t>(r) %
                                config_.cluster_hosts.size()]);
    }
  } else {
    cfg.default_hostname = config_.hostname;
  }
  return mp::run(cfg, *program).output;
}

}  // namespace pdc::notebook
