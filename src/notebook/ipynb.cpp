#include "notebook/ipynb.hpp"

#include <cstdio>

#include "support/strings.hpp"

namespace pdc::notebook {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// nbformat stores multi-line text as an array of lines, each (except the
/// last) ending in "\n".
std::string source_array(const std::string& text, const std::string& indent) {
  auto lines = strings::split(text, '\n');
  // Splitting "a\n" yields {"a", ""}; the trailing artifact is not a line.
  if (lines.size() > 1 && lines.back().empty()) lines.pop_back();
  std::string out = "[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n" + indent + "  \"" + json_escape(lines[i]) +
           (i + 1 < lines.size() ? "\\n\"" : "\"");
  }
  out += lines.empty() ? "]" : "\n" + indent + "]";
  return out;
}

std::string output_lines_array(const std::vector<std::string>& lines,
                               const std::string& indent) {
  std::string out = "[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n" + indent + "  \"" + json_escape(lines[i]) +
           (i + 1 < lines.size() ? "\\n\"" : "\"");
  }
  out += lines.empty() ? "]" : "\n" + indent + "]";
  return out;
}

}  // namespace

std::string to_ipynb_json(const Notebook& notebook) {
  std::string out = "{\n \"cells\": [";
  bool first_cell = true;
  for (const auto& cell : notebook.cells()) {
    if (!first_cell) out += ",";
    first_cell = false;
    out += "\n  {\n";
    if (cell.kind == CellKind::Markdown) {
      out += "   \"cell_type\": \"markdown\",\n";
      out += "   \"metadata\": {},\n";
      out += "   \"source\": " + source_array(cell.source, "   ") + "\n";
    } else {
      out += "   \"cell_type\": \"code\",\n";
      out += "   \"execution_count\": " +
             (cell.execution_count > 0 ? std::to_string(cell.execution_count)
                                       : "null") +
             ",\n";
      out += "   \"metadata\": {},\n";
      out += "   \"outputs\": [";
      if (!cell.outputs.empty()) {
        out += "\n    {\n     \"name\": \"stdout\",\n";
        out += "     \"output_type\": \"stream\",\n";
        out += "     \"text\": " + output_lines_array(cell.outputs, "     ") +
               "\n    }\n   ";
      }
      out += "],\n";
      out += "   \"source\": " + source_array(cell.source, "   ") + "\n";
    }
    out += "  }";
  }
  out += "\n ],\n";
  out += " \"metadata\": {\n";
  out += "  \"kernelspec\": {\n";
  out += "   \"display_name\": \"pdclab (in-process mp runtime)\",\n";
  out += "   \"language\": \"python\",\n";
  out += "   \"name\": \"pdclab\"\n  },\n";
  out += "  \"title\": \"" + json_escape(notebook.title()) + "\"\n },\n";
  out += " \"nbformat\": 4,\n \"nbformat_minor\": 5\n}\n";
  return out;
}

}  // namespace pdc::notebook
