#pragma once

#include <string>

#include "notebook/notebook.hpp"

namespace pdc::notebook {

/// Escape a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; non-ASCII bytes pass through, which is
/// valid because the document is UTF-8).
std::string json_escape(const std::string& text);

/// Serialize the notebook to Jupyter's on-disk format (nbformat 4.5), so a
/// notebook authored and executed in pdclab opens in real Jupyter/Colab:
/// markdown cells verbatim, code cells with their captured stdout as a
/// stream output and their execution counts. This is the interop artifact
/// that lets an instructor round-trip the teaching materials.
std::string to_ipynb_json(const Notebook& notebook);

}  // namespace pdc::notebook
