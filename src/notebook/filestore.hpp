#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pdc::notebook {

/// The notebook VM's in-memory filesystem: where `%%writefile 00spmd.py`
/// puts its cell body, and where `!mpirun ... python 00spmd.py` looks the
/// file up again.
class FileStore {
 public:
  /// Write (create or overwrite) a file; returns true if it already existed
  /// (Jupyter prints "Overwriting" vs "Writing" based on this).
  bool write(const std::string& name, std::string content);

  /// Read a file if present.
  [[nodiscard]] std::optional<std::string> read(const std::string& name) const;

  /// Whether `name` exists.
  [[nodiscard]] bool exists(const std::string& name) const;

  /// Remove a file; returns whether it existed.
  bool remove(const std::string& name);

  /// Sorted list of file names (the `!ls` view).
  [[nodiscard]] std::vector<std::string> list() const;

  /// Number of files.
  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace pdc::notebook
