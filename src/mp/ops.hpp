#pragma once

#include <algorithm>
#include <type_traits>

namespace pdc::mp::ops {

/// Reduction operators for Communicator::reduce / allreduce / scan,
/// mirroring MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX, MPI_LAND, MPI_LOR.
///
/// Each built-in op declares `static constexpr bool commutative = true`,
/// which the collectives detect (ops::is_commutative_v) to unlock
/// order-free algorithms: arrival-order root drains, tree reductions,
/// recursive doubling. A user operator without the marker is treated as
/// merely associative and combined strictly in rank order, so lambdas and
/// custom functors keep deterministic results by default; add the marker to
/// opt into the faster schedules. (For floating point even a commutative op
/// reassociates under these schedules — use rank-order Flat when bitwise
/// reproducibility matters more than speed.)

/// True iff Op declares itself commutative via a
/// `static constexpr bool commutative = true` member.
template <typename Op, typename = void>
struct is_commutative : std::false_type {};

template <typename Op>
struct is_commutative<Op, std::enable_if_t<Op::commutative>> : std::true_type {};

template <typename Op>
inline constexpr bool is_commutative_v = is_commutative<Op>::value;

struct Sum {
  static constexpr bool commutative = true;
  template <typename T>
  T operator()(const T& a, const T& b) const { return a + b; }
};

struct Prod {
  static constexpr bool commutative = true;
  template <typename T>
  T operator()(const T& a, const T& b) const { return a * b; }
};

struct Min {
  static constexpr bool commutative = true;
  template <typename T>
  T operator()(const T& a, const T& b) const { return std::min(a, b); }
};

struct Max {
  static constexpr bool commutative = true;
  template <typename T>
  T operator()(const T& a, const T& b) const { return std::max(a, b); }
};

struct LogicalAnd {
  static constexpr bool commutative = true;
  bool operator()(bool a, bool b) const { return a && b; }
};

struct LogicalOr {
  static constexpr bool commutative = true;
  bool operator()(bool a, bool b) const { return a || b; }
};

/// Value-with-location pair for MinLoc/MaxLoc reductions (MPI_MINLOC /
/// MPI_MAXLOC): tracks which rank contributed the extremal value.
template <typename T>
struct Located {
  T value{};
  int rank = 0;
  bool operator==(const Located&) const = default;
};

struct MinLoc {
  static constexpr bool commutative = true;
  template <typename T>
  Located<T> operator()(const Located<T>& a, const Located<T>& b) const {
    if (b.value < a.value) return b;
    if (a.value < b.value) return a;
    return a.rank <= b.rank ? a : b;
  }
};

struct MaxLoc {
  static constexpr bool commutative = true;
  template <typename T>
  Located<T> operator()(const Located<T>& a, const Located<T>& b) const {
    if (a.value < b.value) return b;
    if (b.value < a.value) return a;
    return a.rank <= b.rank ? a : b;
  }
};

}  // namespace pdc::mp::ops
