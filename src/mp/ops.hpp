#pragma once

#include <algorithm>

namespace pdc::mp::ops {

/// Reduction operators for Communicator::reduce / allreduce / scan,
/// mirroring MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX, MPI_LAND, MPI_LOR.
/// All are associative; Sum/Prod/Min/Max are also commutative. The runtime
/// always combines in rank order, so even merely associative user operators
/// give deterministic results.

struct Sum {
  template <typename T>
  T operator()(const T& a, const T& b) const { return a + b; }
};

struct Prod {
  template <typename T>
  T operator()(const T& a, const T& b) const { return a * b; }
};

struct Min {
  template <typename T>
  T operator()(const T& a, const T& b) const { return std::min(a, b); }
};

struct Max {
  template <typename T>
  T operator()(const T& a, const T& b) const { return std::max(a, b); }
};

struct LogicalAnd {
  bool operator()(bool a, bool b) const { return a && b; }
};

struct LogicalOr {
  bool operator()(bool a, bool b) const { return a || b; }
};

/// Value-with-location pair for MinLoc/MaxLoc reductions (MPI_MINLOC /
/// MPI_MAXLOC): tracks which rank contributed the extremal value.
template <typename T>
struct Located {
  T value{};
  int rank = 0;
  bool operator==(const Located&) const = default;
};

struct MinLoc {
  template <typename T>
  Located<T> operator()(const Located<T>& a, const Located<T>& b) const {
    if (b.value < a.value) return b;
    if (a.value < b.value) return a;
    return a.rank <= b.rank ? a : b;
  }
};

struct MaxLoc {
  template <typename T>
  Located<T> operator()(const Located<T>& a, const Located<T>& b) const {
    if (a.value < b.value) return b;
    if (b.value < a.value) return a;
    return a.rank <= b.rank ? a : b;
  }
};

}  // namespace pdc::mp::ops
