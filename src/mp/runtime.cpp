#include "mp/runtime.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "chaos/chaos.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::mp {

RunResult run(const RunConfig& cfg,
              const std::function<void(Communicator&)>& program) {
  if (cfg.num_procs < 1) {
    throw InvalidArgument("mp::run requires at least one process");
  }
  std::vector<std::string> hostnames = cfg.hostnames;
  if (hostnames.empty()) {
    hostnames.assign(static_cast<std::size_t>(cfg.num_procs),
                     cfg.default_hostname);
  }
  if (hostnames.size() != static_cast<std::size_t>(cfg.num_procs)) {
    throw InvalidArgument("mp::run: hostnames must be empty or match num_procs");
  }

  Universe universe(cfg.num_procs, std::move(hostnames));
  // Installed before any rank thread exists — set_topology is not safe
  // against concurrent collectives (and the sink must not miss early lines).
  if (!cfg.topology.empty()) universe.set_topology(cfg.topology);
  if (cfg.on_output) universe.set_output_sink(cfg.on_output);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  // The launcher's thread-bound chaos plan (if any) is re-bound inside
  // every rank thread, so a pdc::grade worker's seeded schedule follows the
  // job it launches instead of silently falling back to the global plan.
  chaos::Plan* const bound_plan = chaos::bound();

  const auto run_rank = [&](int rank) {
    chaos::BoundScope bound(bound_plan);
    // Route this rank's trace events to its own pid lane, and record its
    // whole lifetime as one span so chrome://tracing shows when each rank
    // started and finished. The chaos lane makes an active fault plan's
    // decisions for this rank deterministic (keyed by rank, not thread).
    trace::PidScope lane(rank, "rank " + std::to_string(rank));
    chaos::ActorScope chaos_lane(rank);
    trace::Span lifetime("mp.rank", "mp.runtime");
    Communicator comm = Communicator::world(universe, rank);
    try {
      program(comm);
    } catch (...) {
      trace::instant("mp.abort", "mp.runtime");
      {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      universe.abort();
    }
  };

  // Watchdog: if the ranks have not all finished inside the budget, claim
  // the first-error slot (root cause over the collateral mp::Aborted the
  // woken ranks see) and abort the universe. Joined before returning, so
  // no thread outlives the job.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  std::thread watchdog;
  if (cfg.watchdog_ms > 0) {
    watchdog = std::thread([&] {
      std::unique_lock lock(done_mutex);
      if (done_cv.wait_for(lock, std::chrono::milliseconds(cfg.watchdog_ms),
                           [&] { return done; })) {
        return;
      }
      {
        std::lock_guard elock(error_mutex);
        if (!first_error) {
          first_error = std::make_exception_ptr(TimedOut(
              "mp: job exceeded its watchdog of " +
              std::to_string(cfg.watchdog_ms) + " ms (deadlock or hang)"));
        }
      }
      trace::instant("mp.watchdog", "mp.runtime");
      universe.abort();
    });
  }

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(cfg.num_procs));
  for (int r = 0; r < cfg.num_procs; ++r) {
    ranks.emplace_back(run_rank, r);
  }
  for (auto& t : ranks) t.join();

  if (watchdog.joinable()) {
    {
      std::lock_guard lock(done_mutex);
      done = true;
    }
    done_cv.notify_all();
    watchdog.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return RunResult{universe.log()};
}

RunResult run(int num_procs, const std::function<void(Communicator&)>& program) {
  RunConfig cfg;
  cfg.num_procs = num_procs;
  return run(cfg, program);
}

std::vector<std::string> cluster_hostnames(int num_procs, int num_nodes,
                                           const std::string& stem) {
  if (num_procs < 1 || num_nodes < 1) {
    throw InvalidArgument("cluster_hostnames: counts must be positive");
  }
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_procs));
  for (int r = 0; r < num_procs; ++r) {
    names.push_back(stem + std::to_string(r % num_nodes));
  }
  return names;
}

}  // namespace pdc::mp
