#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mp/mailbox.hpp"

namespace pdc::mp {

/// The shared world of one message-passing job: every rank's mailbox, the
/// hostname table, the communicator-id allocator and the captured output
/// log. Created by `mp::run(...)`; user code interacts with it only through
/// `Communicator`.
class Universe {
 public:
  /// `hostnames[r]` is the processor name reported to world rank r. Must
  /// have exactly `num_procs` entries.
  Universe(int num_procs, std::vector<std::string> hostnames);

  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  /// World size.
  [[nodiscard]] int size() const noexcept { return num_procs_; }

  /// Mailbox of world rank `world_rank`.
  Mailbox& mailbox(int world_rank);

  /// Processor name of world rank `world_rank` (MPI_Get_processor_name).
  [[nodiscard]] const std::string& hostname(int world_rank) const;

  /// Allocate a fresh communicator id (used by Communicator::split).
  std::uint64_t new_comm_id() noexcept {
    return next_comm_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append one line to the job's output log (thread-safe; arrival order).
  void log_line(std::string line);

  /// Snapshot of the output log so far.
  [[nodiscard]] std::vector<std::string> log() const;

  /// Abort the job: wake every blocked receive with mp::Aborted.
  void abort();

  /// Count one sent message (called by Communicator on every post).
  void record_send() noexcept {
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total messages sent in this job so far (diagnostics; used by the
  /// collective-algorithm ablation bench).
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// Count one payload serialization (called by Communicator each time it
  /// runs Codec<T>::encode). Fan-outs that share an encoded payload post
  /// many messages per encode, so messages_sent / payloads_encoded is the
  /// job's encode-sharing factor.
  void record_encode() noexcept {
    payloads_encoded_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total payload serializations in this job so far.
  [[nodiscard]] std::uint64_t payloads_encoded() const noexcept {
    return payloads_encoded_.load(std::memory_order_relaxed);
  }

  /// Whether abort() has been called.
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  const int num_procs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::string> hostnames_;
  std::atomic<std::uint64_t> next_comm_id_{1};  // 0 is COMM_WORLD
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> payloads_encoded_{0};
  std::atomic<bool> aborted_{false};

  mutable std::mutex log_mutex_;
  std::vector<std::string> log_;
};

}  // namespace pdc::mp
