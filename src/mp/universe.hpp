#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mp/mailbox.hpp"
#include "mp/transport.hpp"

namespace pdc::mp {

/// The shared world of one message-passing job: every rank's mailbox, the
/// hostname table, the communicator-id allocator and the captured output
/// log. Created by `mp::run(...)`; user code interacts with it only through
/// `Communicator`.
///
/// Two shapes:
///   - Loopback (the default): every rank's mailbox lives here, and
///     deliver() drops envelopes straight into the destination mailbox —
///     ranks are threads of this process, as mp::run has always worked.
///   - Distributed: this process hosts exactly one rank (`local_rank`), so
///     only that rank's mailbox exists; deliver() routes every remote
///     destination through the attached Transport (see pdc::net), and
///     inbound traffic arrives via the transport's reader threads calling
///     Mailbox::deliver on the local mailbox.
class Universe {
 public:
  /// Loopback universe. `hostnames[r]` is the processor name reported to
  /// world rank r. Must have exactly `num_procs` entries.
  Universe(int num_procs, std::vector<std::string> hostnames);

  /// Distributed universe hosting only `local_rank`. `hostnames` still has
  /// one entry per world rank (collected during transport wireup).
  Universe(int num_procs, std::vector<std::string> hostnames, int local_rank);

  /// Shuts the transport down (joining its threads) *before* the mailboxes
  /// are destroyed — the ordering a reader thread's life depends on.
  ~Universe();

  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  /// World size.
  [[nodiscard]] int size() const noexcept { return num_procs_; }

  /// True when this universe hosts a single rank of a multi-process job.
  [[nodiscard]] bool distributed() const noexcept { return local_rank_ >= 0; }

  /// The locally hosted world rank in distributed mode; -1 in loopback.
  [[nodiscard]] int local_rank() const noexcept { return local_rank_; }

  /// Mailbox of world rank `world_rank`. In distributed mode only the
  /// local rank's mailbox exists; asking for any other is a logic error.
  Mailbox& mailbox(int world_rank);

  /// Route an envelope to world rank `dest_world_rank`: straight into the
  /// local mailbox when the destination lives here, through the transport
  /// otherwise. The one call Communicator makes to move bytes.
  void deliver(int dest_world_rank, Envelope envelope);

  /// Attach the transport that carries remote traffic (distributed mode).
  /// Takes ownership, binds it to this universe (starting its reader
  /// threads) and keeps it alive until ~Universe shuts it down.
  void attach_transport(std::unique_ptr<Transport> transport);

  /// The attached transport, or nullptr in loopback mode.
  [[nodiscard]] Transport* transport() const noexcept {
    return transport_.get();
  }

  /// Processor name of world rank `world_rank` (MPI_Get_processor_name).
  [[nodiscard]] const std::string& hostname(int world_rank) const;

  /// Install the node map: one id per world rank, same id ⇔ the ranks
  /// share a node (co-located processes). Ids are re-normalized to dense
  /// first-appearance order, so any labeling with the right grouping
  /// produces the same map on every rank. CollectiveAlgo::Auto uses this
  /// to pick hierarchical leader-per-node schedules; an unset topology is
  /// a single node (every rank id 0), which never changes Auto's historic
  /// choices. Call before user code runs (runner/harness do, right after
  /// transport wireup) — not concurrently with collectives.
  void set_topology(const std::vector<int>& node_ids);

  /// Node id of world rank `world_rank` (0 when no topology was set).
  [[nodiscard]] int node_of(int world_rank) const;

  /// Number of distinct nodes (1 when no topology was set).
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }

  /// True when co-located ranks exchange messages without the kernel in
  /// the path: loopback mode (every rank is a thread of this process), or
  /// a transport that reports shared-memory intra-node delivery. The Auto
  /// collective resolvers key their chatty schedules off this.
  [[nodiscard]] bool intra_node_fast() const noexcept {
    return transport_ == nullptr || transport_->intra_node_shared_memory();
  }

  /// Allocate a fresh communicator id (used by Communicator::split/dup).
  /// Loopback ids come from one shared counter. Distributed ids are
  /// namespaced by the allocating world rank — (rank+1) << 32 | counter —
  /// because each process counts independently and two disjoint
  /// subcommunicators may allocate concurrently on different ranks; the
  /// prefix keeps their ids from ever colliding.
  std::uint64_t new_comm_id() noexcept {
    const std::uint64_t n = next_comm_id_.fetch_add(1, std::memory_order_relaxed);
    if (!distributed()) return n;
    return (static_cast<std::uint64_t>(local_rank_) + 1) << 32 | n;
  }

  /// Append one line to the job's output log (thread-safe; arrival order).
  /// With echo enabled (distributed rank processes), the line is also
  /// written to stdout immediately so the launcher can multiplex it.
  void log_line(std::string line);

  /// Echo log_line() output to stdout as it arrives (pdcrun rank mode).
  void set_echo_output(bool echo) noexcept { echo_output_ = echo; }

  /// Observe every log_line() as it arrives (the lab server streams these
  /// to the student's terminal as incremental Status frames). Called under
  /// the log mutex in arrival order; ranks are threads, so the sink must
  /// tolerate being entered from any of them (serialized per universe, but
  /// a multi-universe job — one per rank on the socket harness — calls one
  /// shared sink concurrently). Install before user code runs.
  void set_output_sink(std::function<void(const std::string&)> sink) {
    std::lock_guard lock(log_mutex_);
    output_sink_ = std::move(sink);
  }

  /// Snapshot of the output log so far.
  [[nodiscard]] std::vector<std::string> log() const;

  /// Abort the job: wake every blocked receive with mp::Aborted, and tell
  /// the transport (if any) to wake the remote peers too. Idempotent.
  void abort();

  /// Count one sent message (called by Communicator on every post).
  void record_send() noexcept {
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total messages sent in this job so far (diagnostics; used by the
  /// collective-algorithm ablation bench).
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// Count one payload serialization (called by Communicator each time it
  /// runs Codec<T>::encode). Fan-outs that share an encoded payload post
  /// many messages per encode, so messages_sent / payloads_encoded is the
  /// job's encode-sharing factor.
  void record_encode() noexcept {
    payloads_encoded_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total payload serializations in this job so far.
  [[nodiscard]] std::uint64_t payloads_encoded() const noexcept {
    return payloads_encoded_.load(std::memory_order_relaxed);
  }

  /// Whether abort() has been called.
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  const int num_procs_;
  const int local_rank_ = -1;  ///< -1 ⇔ loopback (all ranks local)
  /// Indexed by world rank; in distributed mode only the local entry is
  /// non-null.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::string> hostnames_;
  /// Dense node id per world rank; empty ⇔ no topology set (single node).
  std::vector<int> topology_;
  int num_nodes_ = 1;
  std::atomic<std::uint64_t> next_comm_id_{1};  // 0 is COMM_WORLD
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> payloads_encoded_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> abort_propagated_{false};
  bool echo_output_ = false;

  mutable std::mutex log_mutex_;
  std::vector<std::string> log_;
  std::function<void(const std::string&)> output_sink_;

  /// Declared last so it is destroyed first; ~Universe additionally calls
  /// shutdown() explicitly before any member is torn down (the regression
  /// tests in tests/net/test_net_errors.cpp pin this ordering).
  std::unique_ptr<Transport> transport_;
};

}  // namespace pdc::mp
