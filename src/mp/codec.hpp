#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "support/error.hpp"

namespace pdc::mp {

using Bytes = std::vector<std::byte>;

/// Serialization trait used by every send/receive and collective.
///
/// Supported out of the box:
///   - any trivially copyable type (ints, doubles, PODs, std::array of same)
///   - std::string
///   - std::vector<T> for trivially copyable T
///   - std::vector<std::string>
///
/// Users extend the runtime to their own message types by specializing
/// `Codec<T>` with `encode` and `decode`.
template <typename T, typename Enable = void>
struct Codec;

template <typename T>
struct Codec<T, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static Bytes encode(const T& value) {
    Bytes out(sizeof(T));
    std::memcpy(out.data(), &value, sizeof(T));
    return out;
  }
  static T decode(const Bytes& in) {
    if (in.size() != sizeof(T)) {
      throw InvalidArgument("Codec: payload size " + std::to_string(in.size()) +
                            " does not match sizeof(T)=" +
                            std::to_string(sizeof(T)));
    }
    T value;
    std::memcpy(&value, in.data(), sizeof(T));
    return value;
  }
};

template <>
struct Codec<std::string> {
  static Bytes encode(const std::string& value) {
    Bytes out(value.size());
    std::memcpy(out.data(), value.data(), value.size());
    return out;
  }
  static std::string decode(const Bytes& in) {
    return std::string(reinterpret_cast<const char*>(in.data()), in.size());
  }
};

template <typename T>
struct Codec<std::vector<T>, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static Bytes encode(const std::vector<T>& value) {
    Bytes out(value.size() * sizeof(T));
    if (!value.empty()) {
      std::memcpy(out.data(), value.data(), out.size());
    }
    return out;
  }
  static std::vector<T> decode(const Bytes& in) {
    if (in.size() % sizeof(T) != 0) {
      throw InvalidArgument("Codec: payload size is not a multiple of element size");
    }
    std::vector<T> value(in.size() / sizeof(T));
    if (!value.empty()) {
      std::memcpy(value.data(), in.data(), in.size());
    }
    return value;
  }
};

template <>
struct Codec<std::vector<std::string>> {
  static Bytes encode(const std::vector<std::string>& value) {
    Bytes out;
    auto push_u64 = [&out](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
      }
    };
    push_u64(value.size());
    for (const auto& s : value) {
      push_u64(s.size());
      for (char c : s) out.push_back(static_cast<std::byte>(c));
    }
    return out;
  }
  static std::vector<std::string> decode(const Bytes& in) {
    std::size_t pos = 0;
    auto read_u64 = [&]() -> std::uint64_t {
      if (pos + 8 > in.size()) {
        throw InvalidArgument("Codec: truncated string-vector payload");
      }
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)]) << (8 * i);
      }
      pos += 8;
      return v;
    };
    const std::uint64_t count = read_u64();
    std::vector<std::string> value;
    value.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t len = read_u64();
      if (pos + len > in.size()) {
        throw InvalidArgument("Codec: truncated string payload");
      }
      value.emplace_back(reinterpret_cast<const char*>(in.data() + pos), len);
      pos += len;
    }
    return value;
  }
};

/// Stable hash identifying T for datatype-matching checks.
template <typename T>
std::size_t type_hash() {
  return typeid(T).hash_code();
}

}  // namespace pdc::mp
