#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "mp/message.hpp"
#include "support/error.hpp"

namespace pdc::mp {

/// Serialization trait used by every send/receive and collective.
///
/// Supported out of the box:
///   - any trivially copyable type (ints, doubles, PODs, std::array of same)
///   - std::string
///   - std::vector<T> for trivially copyable T
///   - std::vector<std::string>
///
/// Users extend the runtime to their own message types by specializing
/// `Codec<T>` with `encode` and `decode`. Decoders must treat the input as
/// hostile: every length read from the payload is validated against the
/// bytes actually present before it drives an allocation or a copy.
template <typename T, typename Enable = void>
struct Codec;

template <typename T>
struct Codec<T, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static Bytes encode(const T& value) {
    Bytes out(sizeof(T));
    std::memcpy(out.data(), &value, sizeof(T));
    return out;
  }
  static T decode(const Bytes& in) {
    if (in.size() != sizeof(T)) {
      throw InvalidArgument("Codec: payload size " + std::to_string(in.size()) +
                            " does not match sizeof(T)=" +
                            std::to_string(sizeof(T)));
    }
    T value;
    std::memcpy(&value, in.data(), sizeof(T));
    return value;
  }
};

template <>
struct Codec<std::string> {
  static Bytes encode(const std::string& value) {
    Bytes out(value.size());
    std::memcpy(out.data(), value.data(), value.size());
    return out;
  }
  static std::string decode(const Bytes& in) {
    return std::string(reinterpret_cast<const char*>(in.data()), in.size());
  }
};

template <typename T>
struct Codec<std::vector<T>, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static Bytes encode(const std::vector<T>& value) {
    Bytes out(value.size() * sizeof(T));
    if (!value.empty()) {
      std::memcpy(out.data(), value.data(), out.size());
    }
    return out;
  }
  static std::vector<T> decode(const Bytes& in) {
    if (in.size() % sizeof(T) != 0) {
      throw InvalidArgument("Codec: payload size is not a multiple of element size");
    }
    std::vector<T> value(in.size() / sizeof(T));
    if (!value.empty()) {
      std::memcpy(value.data(), in.data(), in.size());
    }
    return value;
  }
};

template <>
struct Codec<std::vector<std::string>> {
  static Bytes encode(const std::vector<std::string>& value) {
    Bytes out;
    auto push_u64 = [&out](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
      }
    };
    push_u64(value.size());
    for (const auto& s : value) {
      push_u64(s.size());
      for (char c : s) out.push_back(static_cast<std::byte>(c));
    }
    return out;
  }
  static std::vector<std::string> decode(const Bytes& in) {
    std::size_t pos = 0;
    auto read_u64 = [&]() -> std::uint64_t {
      if (in.size() - pos < 8) {
        throw InvalidArgument("Codec: truncated string-vector payload");
      }
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)]) << (8 * i);
      }
      pos += 8;
      return v;
    };
    const std::uint64_t count = read_u64();
    // Every element costs at least its 8-byte length prefix, so a count
    // larger than the remaining bytes allow is a corrupt/hostile prefix.
    // Reject it here — before reserve() turns it into a length_error or a
    // multi-gigabyte allocation.
    if (count > (in.size() - pos) / 8) {
      throw InvalidArgument(
          "Codec: string-vector count " + std::to_string(count) +
          " exceeds what the remaining " + std::to_string(in.size() - pos) +
          " payload bytes could hold");
    }
    std::vector<std::string> value;
    value.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t len = read_u64();
      // `pos + len` could wrap for a hostile length; compare against the
      // remaining bytes instead.
      if (len > in.size() - pos) {
        throw InvalidArgument("Codec: truncated string payload");
      }
      value.emplace_back(reinterpret_cast<const char*>(in.data() + pos),
                         static_cast<std::size_t>(len));
      pos += static_cast<std::size_t>(len);
    }
    return value;
  }
};

/// Process-local hash identifying T for datatype-matching checks. Backed by
/// `typeid(T).hash_code()`, which is only stable within a single process —
/// fine for this in-process runtime, but never a wire format.
template <typename T>
std::size_t type_hash() {
  return typeid(T).hash_code();
}

/// Human-readable name of T for datatype-mismatch diagnostics. Extracted
/// from the compiler's pretty function signature (so it reads
/// "std::vector<double>" rather than the mangled "St6vectorIdSaIdEE");
/// falls back to typeid(T).name() elsewhere. The pointer has static storage
/// duration and stays valid for the life of the process.
template <typename T>
const char* type_name() noexcept {
#if defined(__clang__) || defined(__GNUC__)
  // __PRETTY_FUNCTION__ must be read in this function's own scope — inside
  // a lambda it would describe the lambda, not T.
  static const std::string name = [](std::string_view pretty) {
    const auto start = pretty.find("T = ");
    if (start == std::string_view::npos) return std::string(pretty);
    pretty.remove_prefix(start + 4);
    const auto end = pretty.find_first_of(";]");
    if (end != std::string_view::npos) pretty = pretty.substr(0, end);
    return std::string(pretty);
  }(__PRETTY_FUNCTION__);
  return name.c_str();
#else
  return typeid(T).name();
#endif
}

}  // namespace pdc::mp
