#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "mp/message.hpp"

namespace pdc::mp {

/// Thrown to unblock ranks stuck in a receive when the job aborts (a peer
/// rank threw) — instead of hanging the process, as a real MPI job would.
class Aborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "mp job aborted: another rank raised an error";
  }
};

/// One rank's incoming message queue.
///
/// Delivery is FIFO; receive matching scans the queue in arrival order for
/// the first envelope whose (communicator, source, tag) satisfies the
/// receive, which gives MPI's non-overtaking guarantee: two messages from
/// the same source on the same communicator and tag are received in the
/// order they were sent. Sends are eager/buffered (a send never blocks),
/// matching the small-message behaviour of real MPI that the patternlets
/// rely on.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue a message (called from the sending rank's thread).
  void deliver(Envelope envelope);

  /// Block until a matching message arrives, then remove and return it.
  /// `source`/`tag` may be kAnySource/kAnyTag. Throws Aborted if abort()
  /// is called while waiting.
  Envelope receive(std::uint64_t comm_id, int source, int tag);

  /// Non-blocking receive: returns the first matching message or nullopt.
  std::optional<Envelope> try_receive(std::uint64_t comm_id, int source, int tag);

  /// Blocking receive with a deadline; nullopt on timeout. Used by tests to
  /// turn would-be deadlocks into failures instead of hangs.
  std::optional<Envelope> receive_for(std::uint64_t comm_id, int source, int tag,
                                      std::chrono::milliseconds timeout);

  /// Blocking probe: waits for a matching message and returns its Status
  /// without removing it (MPI_Probe).
  Status probe(std::uint64_t comm_id, int source, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  std::optional<Status> try_probe(std::uint64_t comm_id, int source, int tag);

  /// Number of queued messages (any communicator), for tests/diagnostics.
  std::size_t queued() const;

  /// Wake all blocked receivers with an Aborted exception.
  void abort();

 private:
  /// Index of first match in queue_, or npos. Caller holds mutex_.
  std::size_t find_match(std::uint64_t comm_id, int source, int tag) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Envelope> queue_;
  bool aborted_ = false;
};

}  // namespace pdc::mp
