#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "mp/message.hpp"

namespace pdc::mp {

/// Thrown to unblock ranks stuck in a receive when the job aborts (a peer
/// rank threw) — instead of hanging the process, as a real MPI job would.
class Aborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "mp job aborted: another rank raised an error";
  }
};

/// One rank's incoming message queue.
///
/// Pending messages are bucketed by communicator id; each bucket is FIFO in
/// delivery order and matching scans only the receive's own bucket for the
/// first envelope whose (source, tag) satisfies it. MPI's non-overtaking
/// guarantee is per (communicator, source, tag), so per-communicator FIFO
/// buckets preserve it exactly while making a receive's cost independent of
/// traffic queued on *other* communicators — under a split/dup-heavy
/// workload the old single-queue scan walked every unrelated envelope (the
/// mailbox.scanned trace counter and BM_MailboxCongestedMatch quantify
/// this). Sends are eager/buffered (a send never blocks), matching the
/// small-message behaviour of real MPI that the patternlets rely on.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue a message (called from the sending rank's thread).
  void deliver(Envelope envelope);

  /// Block until a matching message arrives, then remove and return it.
  /// `source`/`tag` may be kAnySource/kAnyTag. Throws Aborted if abort()
  /// is called while waiting.
  Envelope receive(std::uint64_t comm_id, int source, int tag);

  /// Non-blocking receive: returns the first matching message or nullopt.
  std::optional<Envelope> try_receive(std::uint64_t comm_id, int source, int tag);

  /// Blocking receive with a deadline; nullopt on timeout. Used by tests to
  /// turn would-be deadlocks into failures instead of hangs.
  std::optional<Envelope> receive_for(std::uint64_t comm_id, int source, int tag,
                                      std::chrono::milliseconds timeout);

  /// Blocking probe: waits for a matching message and returns its Status
  /// without removing it (MPI_Probe).
  Status probe(std::uint64_t comm_id, int source, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  std::optional<Status> try_probe(std::uint64_t comm_id, int source, int tag);

  /// Number of queued messages (any communicator), for tests/diagnostics.
  std::size_t queued() const;

  /// Wake all blocked receivers with an Aborted exception.
  void abort();

 private:
  using Bucket = std::deque<Envelope>;

  /// The bucket for `comm_id`, or nullptr if nothing is pending on that
  /// communicator. Caller holds mutex_.
  const Bucket* bucket_for(std::uint64_t comm_id) const;

  /// Index of the first (source, tag) match in `bucket`, or npos. Caller
  /// holds mutex_. When `scanned` is non-null it receives the number of
  /// queued envelopes examined (the trace counter behind the match-cost
  /// benchmarks).
  static std::size_t find_match(const Bucket& bucket, int source, int tag,
                                std::size_t* scanned = nullptr);

  /// Remove and return `bucket`'s envelope at `index`, dropping the bucket
  /// when it empties. Caller holds mutex_.
  Envelope take(std::uint64_t comm_id, Bucket& bucket, std::size_t index);

  /// Record trace counters and the enqueue-to-match latency event for a
  /// matched envelope. No-op without an active trace session. Caller holds
  /// mutex_.
  static void record_match(const Envelope& envelope, std::size_t scanned);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::size_t queued_ = 0;  ///< total envelopes across all buckets
  bool aborted_ = false;
};

}  // namespace pdc::mp
