#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "mp/message.hpp"

namespace pdc::mp {

/// Thrown to unblock ranks stuck in a receive when the job aborts (a peer
/// rank threw) — instead of hanging the process, as a real MPI job would.
class Aborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "mp job aborted: another rank raised an error";
  }
};

/// Transport-side progress hook a Mailbox drives while its receiver blocks.
///
/// A polled transport (the shm ring backend) has no per-peer reader thread:
/// incoming records sit in shared memory until *someone* pumps them. With an
/// engine installed, the blocked receiving thread itself becomes that
/// someone — receive() alternates scan → engine->wait(seen), where wait()
/// pumps the rings and then sleeps on the transport's own doorbell. That is
/// the latency path: a message is moved from ring to mailbox by the thread
/// that wants it, one context switch end to end.
///
/// The lost-wakeup contract mirrors a futex: the mailbox reads `epoch()`
/// *before* releasing its lock and scanning out, and wait(seen) may block
/// only while the epoch still equals `seen`. Any event that could satisfy a
/// waiter (ring traffic, a mailbox deliver from a socket reader thread, an
/// abort) must bump the epoch via kick() or the engine's own signalling.
/// wait() may return spuriously; callers always re-scan.
class ProgressEngine {
 public:
  virtual ~ProgressEngine() = default;

  /// Current doorbell value; sampled under the mailbox lock before a scan.
  virtual std::uint64_t epoch() noexcept = 0;

  /// Drain whatever transport progress is pending. Called without the
  /// mailbox lock held; may deliver into the mailbox (re-entrantly taking
  /// its lock). Must swallow per-channel errors (routing them to the
  /// transport's own peer-loss path) rather than throwing.
  virtual void poll() = 0;

  /// Pump progress, then block until the epoch moves past `seen` or
  /// `max_wait` elapses. Spurious returns are allowed and expected.
  virtual void wait(std::uint64_t seen, std::chrono::milliseconds max_wait) = 0;

  /// Bump the epoch and wake blocked wait() callers. Called after any
  /// mailbox deliver/abort so engine-waiters see deliveries that did not
  /// come through the engine's own rings (socket readers, self-sends).
  virtual void kick() noexcept = 0;
};

/// One rank's incoming message queue.
///
/// Pending messages live in a two-level index: communicator id → per-source
/// FIFO. Each envelope is stamped with a mailbox-wide delivery sequence
/// number, so every per-source deque is ascending in arrival order.
///
///   - A targeted receive (explicit source) scans only that source's own
///     FIFO for the first tag match — its cost no longer depends on how much
///     traffic other senders have queued on the same communicator (the
///     mailbox.scanned trace counter and BM_MailboxManySenders quantify
///     this; the old flat per-comm bucket walked every unrelated envelope).
///   - A wildcard-source receive finds each source's earliest tag match and
///     takes the one with the smallest sequence number, i.e. exactly the
///     envelope the old arrival-order scan would have returned.
///
/// MPI's non-overtaking guarantee is per (communicator, source): successive
/// sends from one sender are received in order even across tags (a
/// wildcard-tag receive can observe cross-tag order, so the whole per-source
/// stream must stay FIFO). The per-source deques encode that invariant
/// structurally. Sends are eager/buffered (a send never blocks), matching
/// the small-message behaviour of real MPI that the patternlets rely on.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue a message (called from the sending rank's thread).
  void deliver(Envelope envelope);

  /// Block until a matching message arrives, then remove and return it.
  /// `source`/`tag` may be kAnySource/kAnyTag. Throws Aborted if abort()
  /// is called while waiting.
  Envelope receive(std::uint64_t comm_id, int source, int tag);

  /// Non-blocking receive: returns the first matching message or nullopt.
  std::optional<Envelope> try_receive(std::uint64_t comm_id, int source, int tag);

  /// Blocking receive with a deadline; nullopt on timeout. Used by tests to
  /// turn would-be deadlocks into failures instead of hangs.
  std::optional<Envelope> receive_for(std::uint64_t comm_id, int source, int tag,
                                      std::chrono::milliseconds timeout);

  /// Blocking probe: waits for a matching message and returns its Status
  /// without removing it (MPI_Probe).
  Status probe(std::uint64_t comm_id, int source, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  std::optional<Status> try_probe(std::uint64_t comm_id, int source, int tag);

  /// Number of queued messages (any communicator), for tests/diagnostics.
  std::size_t queued() const;

  /// Wake all blocked receivers with an Aborted exception.
  void abort();

  /// Install (or, with nullptr, remove) the transport progress engine this
  /// mailbox drives while its receiver blocks. The engine must stay alive
  /// until set_progress(nullptr) returns; transports uninstall before
  /// tearing the engine down.
  void set_progress(ProgressEngine* engine) noexcept;

 private:
  /// A queued envelope plus its mailbox-wide delivery sequence number.
  struct Item {
    Envelope envelope;
    std::uint64_t seq = 0;
  };

  using SourceFifo = std::deque<Item>;  ///< ascending in seq

  /// All pending traffic on one communicator.
  struct CommQueue {
    std::unordered_map<int, SourceFifo> by_source;
    std::uint64_t next_seq = 0;  ///< stamp for the next normal delivery
    std::size_t pending = 0;     ///< total items across all sources
  };

  /// Location of a matched item: which source FIFO and the index within it.
  struct Hit {
    SourceFifo* fifo = nullptr;
    std::size_t index = 0;
  };

  /// The queue for `comm_id`, or nullptr if nothing is pending on that
  /// communicator. Caller holds mutex_.
  CommQueue* comm_for(std::uint64_t comm_id);

  /// First (source, tag) match in `comm` by delivery order, or nullopt.
  /// Caller holds mutex_. When `scanned` is non-null it receives the number
  /// of queued envelopes examined (the trace counter behind the match-cost
  /// benchmarks): a targeted receive examines only its own source's FIFO.
  static std::optional<Hit> find_match(CommQueue& comm, int source, int tag,
                                       std::size_t* scanned = nullptr);

  /// Remove and return the matched envelope, dropping empty FIFOs and the
  /// comm entry when it empties. Caller holds mutex_.
  Envelope take(std::uint64_t comm_id, CommQueue& comm, const Hit& hit);

  /// Record trace counters and the enqueue-to-match latency event for a
  /// matched envelope. No-op without an active trace session. Caller holds
  /// mutex_.
  static void record_match(const Envelope& envelope, std::size_t scanned);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::unordered_map<std::uint64_t, CommQueue> comms_;
  std::size_t queued_ = 0;  ///< total envelopes across all communicators
  bool aborted_ = false;
  std::atomic<ProgressEngine*> progress_{nullptr};
};

}  // namespace pdc::mp
