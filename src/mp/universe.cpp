#include "mp/universe.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace pdc::mp {

Universe::Universe(int num_procs, std::vector<std::string> hostnames)
    : num_procs_(num_procs), hostnames_(std::move(hostnames)) {
  if (num_procs < 1) {
    throw InvalidArgument("Universe requires at least one process");
  }
  if (hostnames_.size() != static_cast<std::size_t>(num_procs)) {
    throw InvalidArgument("Universe: hostnames must match process count");
  }
  mailboxes_.reserve(static_cast<std::size_t>(num_procs));
  for (int r = 0; r < num_procs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Universe::Universe(int num_procs, std::vector<std::string> hostnames,
                   int local_rank)
    : num_procs_(num_procs),
      local_rank_(local_rank),
      hostnames_(std::move(hostnames)) {
  if (num_procs < 1) {
    throw InvalidArgument("Universe requires at least one process");
  }
  if (local_rank < 0 || local_rank >= num_procs) {
    throw InvalidArgument("Universe: local rank " + std::to_string(local_rank) +
                          " out of range for " + std::to_string(num_procs) +
                          " processes");
  }
  if (hostnames_.size() != static_cast<std::size_t>(num_procs)) {
    throw InvalidArgument("Universe: hostnames must match process count");
  }
  mailboxes_.resize(static_cast<std::size_t>(num_procs));
  mailboxes_[static_cast<std::size_t>(local_rank)] = std::make_unique<Mailbox>();
}

Universe::~Universe() {
  // Reader threads deliver into the local mailbox; they must be joined
  // before any mailbox dies. Explicit, not left to member-destruction
  // order, so the invariant survives member reshuffles.
  if (transport_) transport_->shutdown();
}

Mailbox& Universe::mailbox(int world_rank) {
  if (world_rank < 0 || world_rank >= num_procs_) {
    throw InvalidArgument("Universe::mailbox: rank " +
                          std::to_string(world_rank) + " out of range");
  }
  Mailbox* box = mailboxes_[static_cast<std::size_t>(world_rank)].get();
  if (box == nullptr) {
    throw InvalidArgument("Universe::mailbox: rank " +
                          std::to_string(world_rank) +
                          " is not hosted in this process (local rank is " +
                          std::to_string(local_rank_) + ")");
  }
  return *box;
}

void Universe::deliver(int dest_world_rank, Envelope envelope) {
  if (dest_world_rank < 0 || dest_world_rank >= num_procs_) {
    throw InvalidArgument("Universe::deliver: rank " +
                          std::to_string(dest_world_rank) + " out of range");
  }
  if (transport_ && dest_world_rank != local_rank_) {
    transport_->deliver(dest_world_rank, std::move(envelope));
    return;
  }
  mailbox(dest_world_rank).deliver(std::move(envelope));
}

void Universe::attach_transport(std::unique_ptr<Transport> transport) {
  if (transport == nullptr) {
    throw InvalidArgument("Universe::attach_transport: null transport");
  }
  if (transport_ != nullptr) {
    throw InvalidArgument("Universe::attach_transport: already attached");
  }
  if (!distributed()) {
    throw InvalidArgument(
        "Universe::attach_transport: loopback universes host every rank "
        "locally and never route through a transport");
  }
  transport_ = std::move(transport);
  transport_->bind(*this);
}

void Universe::set_topology(const std::vector<int>& node_ids) {
  if (node_ids.size() != static_cast<std::size_t>(num_procs_)) {
    throw InvalidArgument("Universe::set_topology: need one node id per rank");
  }
  // Re-normalize to dense first-appearance ids: every rank derives the
  // identical map from any labeling with the same grouping, which is what
  // keeps CollectiveAlgo::Auto's choice rank-invariant.
  std::vector<int> dense(node_ids.size(), 0);
  std::vector<int> seen;
  for (std::size_t r = 0; r < node_ids.size(); ++r) {
    if (node_ids[r] < 0) {
      throw InvalidArgument("Universe::set_topology: node ids must be >= 0");
    }
    std::size_t i = 0;
    while (i < seen.size() && seen[i] != node_ids[r]) ++i;
    if (i == seen.size()) seen.push_back(node_ids[r]);
    dense[r] = static_cast<int>(i);
  }
  topology_ = std::move(dense);
  num_nodes_ = static_cast<int>(seen.size());
}

int Universe::node_of(int world_rank) const {
  if (world_rank < 0 || world_rank >= num_procs_) {
    throw InvalidArgument("Universe::node_of: rank " +
                          std::to_string(world_rank) + " out of range");
  }
  if (topology_.empty()) return 0;
  return topology_[static_cast<std::size_t>(world_rank)];
}

const std::string& Universe::hostname(int world_rank) const {
  if (world_rank < 0 || world_rank >= num_procs_) {
    throw InvalidArgument("Universe::hostname: rank " +
                          std::to_string(world_rank) + " out of range");
  }
  return hostnames_[static_cast<std::size_t>(world_rank)];
}

void Universe::log_line(std::string line) {
  if (echo_output_) {
    // The rank process's stdout is the launcher's multiplexing channel;
    // write-and-flush per line so pdcrun sees output as it happens, not
    // when the stdio buffer fills.
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  std::lock_guard lock(log_mutex_);
  if (output_sink_) output_sink_(line);
  log_.push_back(std::move(line));
}

std::vector<std::string> Universe::log() const {
  std::lock_guard lock(log_mutex_);
  return log_;
}

void Universe::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mailbox : mailboxes_) {
    if (mailbox) mailbox->abort();
  }
  // Wake remote peers exactly once; a second abort (e.g. the local rank
  // reacting to a peer's Abort frame) must not echo frames back forever.
  if (transport_ && !abort_propagated_.exchange(true)) {
    transport_->propagate_abort();
  }
}

}  // namespace pdc::mp
