#include "mp/universe.hpp"

#include "support/error.hpp"

namespace pdc::mp {

Universe::Universe(int num_procs, std::vector<std::string> hostnames)
    : num_procs_(num_procs), hostnames_(std::move(hostnames)) {
  if (num_procs < 1) {
    throw InvalidArgument("Universe requires at least one process");
  }
  if (hostnames_.size() != static_cast<std::size_t>(num_procs)) {
    throw InvalidArgument("Universe: hostnames must match process count");
  }
  mailboxes_.reserve(static_cast<std::size_t>(num_procs));
  for (int r = 0; r < num_procs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& Universe::mailbox(int world_rank) {
  if (world_rank < 0 || world_rank >= num_procs_) {
    throw InvalidArgument("Universe::mailbox: rank " +
                          std::to_string(world_rank) + " out of range");
  }
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

const std::string& Universe::hostname(int world_rank) const {
  if (world_rank < 0 || world_rank >= num_procs_) {
    throw InvalidArgument("Universe::hostname: rank " +
                          std::to_string(world_rank) + " out of range");
  }
  return hostnames_[static_cast<std::size_t>(world_rank)];
}

void Universe::log_line(std::string line) {
  std::lock_guard lock(log_mutex_);
  log_.push_back(std::move(line));
}

std::vector<std::string> Universe::log() const {
  std::lock_guard lock(log_mutex_);
  return log_;
}

void Universe::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mailbox : mailboxes_) mailbox->abort();
}

}  // namespace pdc::mp
