#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mp/communicator.hpp"

namespace pdc::mp {

/// Thrown by mp::run when a job exceeds its watchdog budget: the runtime
/// aborts the universe (waking every rank blocked in a receive, barrier or
/// collective with mp::Aborted), joins the ranks, and rethrows this — so a
/// deadlocked program costs `watchdog_ms`, not forever. The pdc::grade
/// autograder classifies this outcome as a Hang verdict. A rank spinning in
/// a CPU-bound livelock (never touching the runtime) is outside the
/// watchdog's reach.
class TimedOut : public Error {
 public:
  explicit TimedOut(const std::string& what) : Error(what) {}
};

/// Configuration for one message-passing job (the moral equivalent of an
/// `mpirun` command line).
struct RunConfig {
  /// Number of ranks (processes) to launch. Must be >= 1.
  int num_procs = 4;

  /// Wall-clock budget for the whole job in milliseconds; 0 disables the
  /// watchdog (the default — interactive runs hang where a student can see
  /// them). When exceeded, the universe is aborted and TimedOut is thrown.
  int watchdog_ms = 0;

  /// Hostnames, one per rank. Leave empty to place every rank on a single
  /// default host — exactly the situation in the paper's Fig. 2, where all
  /// four Colab ranks report the same container id.
  std::vector<std::string> hostnames;

  /// Default hostname used when `hostnames` is empty. The paper's Colab VM
  /// reported the Docker container id "d6ff4f902ed6"; we keep that spirit
  /// with a recognizable default.
  std::string default_hostname = "d6ff4f902ed6";

  /// Node id per rank (same id ⇔ co-located; see Universe::set_topology).
  /// Empty = one node, the historic loopback shape. Lets the collective
  /// tests exercise the topology-aware (Hierarchical) schedules without
  /// real multi-node processes.
  std::vector<int> topology;

  /// Observe every line the ranks print() as it happens (installed on the
  /// Universe before any rank thread starts). RunResult::output still
  /// carries the complete log; the sink is for live streaming — the lab
  /// worker forwards these as incremental Status frames. Entered with the
  /// universe's log mutex held, from whichever rank thread printed.
  std::function<void(const std::string&)> on_output;
};

/// Outcome of a job: everything the ranks print()ed, in arrival order.
struct RunResult {
  std::vector<std::string> output;
};

/// Launch `cfg.num_procs` ranks, each executing `program(comm)` with its
/// own world communicator, and join them (the in-process `mpirun`).
///
/// If any rank throws, the job is aborted: ranks blocked in receives are
/// woken with mp::Aborted, all ranks are joined, and the first error is
/// rethrown to the caller.
RunResult run(const RunConfig& cfg,
              const std::function<void(Communicator&)>& program);

/// Convenience overload: `run({.num_procs = n}, program)`.
RunResult run(int num_procs, const std::function<void(Communicator&)>& program);

/// Helper used throughout the patternlets: round-robin hostnames over a
/// simulated cluster of `num_nodes` nodes named "<stem>0".."<stem>N-1".
std::vector<std::string> cluster_hostnames(int num_procs, int num_nodes,
                                           const std::string& stem = "node");

}  // namespace pdc::mp
