#include "mp/communicator.hpp"

#include <algorithm>
#include <tuple>

namespace pdc::mp {

Communicator Communicator::world(Universe& universe, int my_world_rank) {
  auto members = std::make_shared<std::vector<int>>();
  members->reserve(static_cast<std::size_t>(universe.size()));
  for (int r = 0; r < universe.size(); ++r) members->push_back(r);
  return Communicator(universe, /*comm_id=*/0, std::move(members),
                      my_world_rank);
}

const std::string& Communicator::processor_name() const {
  return universe_->hostname((*members_)[static_cast<std::size_t>(my_rank_)]);
}

void Communicator::print(std::string line) {
  universe_->log_line(std::move(line));
}

Status Communicator::probe(int source, int tag) {
  trace::Span span("mp.probe", "mp.p2p");
  check_recv_args(source, tag);
  return my_mailbox().probe(comm_id_, source, tag);
}

std::optional<Status> Communicator::iprobe(int source, int tag) {
  check_recv_args(source, tag);
  return my_mailbox().try_probe(comm_id_, source, tag);
}

void Communicator::post_encoded(const SharedPayload& payload, std::size_t hash,
                                const char* tname, int dest, int tag) {
  chaos::on_op("mp.post");  // may throw chaos::InjectedAbort
  universe_->record_send();
  Envelope e;
  e.comm_id = comm_id_;
  e.source = my_rank_;
  e.tag = tag;
  e.type_hash = hash;
  e.type_name = tname;
  e.payload = payload;
  if (trace::enabled()) {
    trace::Counter("mp.bytes_sent").add(static_cast<double>(e.size_bytes()));
    trace::Counter("mp.messages_sent").add(1.0);
  }
  // The transport seam: loopback universes drop the envelope straight into
  // the destination mailbox; distributed ones frame it onto a socket.
  universe_->deliver((*members_)[static_cast<std::size_t>(dest)], std::move(e));
}

Envelope Communicator::recv_envelope_internal(int source, int tag) {
  chaos::on_op("mp.recv");  // may throw chaos::InjectedAbort
  return my_mailbox().receive(comm_id_, source, tag);
}

void Communicator::barrier() {
  // Flat gather-then-release; O(p) messages, plenty for teaching scale.
  // Entry tokens are drained in arrival order, and the release token is
  // encoded once and shared across the fan-out.
  trace::Span span("mp.barrier", "mp.collective");
  const int tag = next_collective_tag();
  constexpr char kToken = 'B';
  if (my_rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      (void)recv_envelope_internal(kAnySource, tag);
    }
    const SharedPayload release = encode_payload(kToken);
    for (int r = 1; r < size(); ++r) {
      post_encoded(release, type_hash<char>(), type_name<char>(), r, tag);
    }
  } else {
    post(kToken, 0, tag);
    (void)recv_internal<char>(0, tag);
  }
}

Communicator Communicator::dup() {
  // Rank 0 allocates the fresh context id and broadcasts it (one encode for
  // the whole fan-out); the group and local ranks carry over unchanged.
  trace::Span span("mp.dup", "mp.collective");
  const int tag = next_collective_tag();
  std::uint64_t new_id = 0;
  if (my_rank_ == 0) {
    new_id = universe_->new_comm_id();
    const SharedPayload payload = encode_payload(new_id);
    for (int r = 1; r < size(); ++r) {
      post_encoded(payload, type_hash<std::uint64_t>(),
                   type_name<std::uint64_t>(), r, tag);
    }
  } else {
    new_id = recv_internal<std::uint64_t>(0, tag);
  }
  return Communicator(*universe_, new_id, members_, my_rank_);
}

Communicator Communicator::split(int color, int key) {
  trace::Span span("mp.split", "mp.collective");
  // MPI_Comm_split treats a negative color as MPI_UNDEFINED ("give me no
  // communicator"), which this value-returning API cannot express — so the
  // contract here is colors >= 0, rejected before any communication. Every
  // rank validates its own argument; if only some ranks pass a bad color,
  // their throw aborts the job and unblocks the others. Keys are
  // unrestricted (any int orders the new ranks).
  if (color < 0) {
    throw InvalidArgument(
        "split: negative color " + std::to_string(color) +
        " (colors must be >= 0; MPI_UNDEFINED-style opt-out is not "
        "supported)");
  }
  const int tag = next_collective_tag();

  // Stage 1: rank 0 learns every rank's (color, key). Entries self-identify
  // via their old-rank field, so they are drained in arrival order.
  struct Entry {
    int color;
    int key;
    int old_rank;
  };
  const std::vector<int> mine{color, key, my_rank_};
  std::vector<std::vector<int>> entries;
  if (my_rank_ == 0) {
    entries.resize(static_cast<std::size_t>(size()));
    entries[0] = mine;
    for (int r = 1; r < size(); ++r) {
      std::vector<int> e = recv_internal<std::vector<int>>(kAnySource, tag);
      entries[static_cast<std::size_t>(e[2])] = std::move(e);
    }
  } else {
    post(mine, 0, tag);
  }

  // Stage 2: rank 0 forms the groups and tells each rank its new
  // communicator: [comm_id_lo, comm_id_hi, new_rank, member_world_ranks...].
  std::vector<int> assignment;
  if (my_rank_ == 0) {
    std::vector<Entry> sorted;
    sorted.reserve(entries.size());
    for (const auto& e : entries) {
      sorted.push_back(Entry{e[0], e[1], e[2]});
    }
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      return std::tie(a.color, a.key, a.old_rank) <
             std::tie(b.color, b.key, b.old_rank);
    });

    std::size_t i = 0;
    std::vector<std::vector<int>> per_rank(static_cast<std::size_t>(size()));
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j < sorted.size() && sorted[j].color == sorted[i].color) ++j;
      const std::uint64_t new_id = universe_->new_comm_id();
      std::vector<int> group_world_ranks;
      for (std::size_t k = i; k < j; ++k) {
        group_world_ranks.push_back(
            (*members_)[static_cast<std::size_t>(sorted[k].old_rank)]);
      }
      for (std::size_t k = i; k < j; ++k) {
        std::vector<int> msg;
        msg.push_back(static_cast<int>(new_id & 0xffffffffu));
        msg.push_back(static_cast<int>(new_id >> 32));
        msg.push_back(static_cast<int>(k - i));  // new local rank
        msg.insert(msg.end(), group_world_ranks.begin(),
                   group_world_ranks.end());
        per_rank[static_cast<std::size_t>(sorted[k].old_rank)] = std::move(msg);
      }
      i = j;
    }
    for (int r = 1; r < size(); ++r) {
      post(per_rank[static_cast<std::size_t>(r)], r, tag);
    }
    assignment = std::move(per_rank[0]);
  } else {
    assignment = recv_internal<std::vector<int>>(0, tag);
  }

  const std::uint64_t new_id =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(assignment[0])) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(assignment[1]))
       << 32);
  const int new_rank = assignment[2];
  auto new_members = std::make_shared<std::vector<int>>(
      assignment.begin() + 3, assignment.end());

  return Communicator(*universe_, new_id, std::move(new_members), new_rank);
}

}  // namespace pdc::mp
