#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace pdc::mp {

/// Wildcard source rank for receives (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Wildcard message tag for receives (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// User tags must lie in [0, kMaxUserTag); larger values are reserved for
/// the runtime's collective-operation protocol.
inline constexpr int kMaxUserTag = 1 << 29;

/// Serialized message bytes.
using Bytes = std::vector<std::byte>;

/// An immutable serialized payload, shared between every envelope it is
/// posted in. Collective fan-outs encode a value once and hand the same
/// buffer to all p-1 destinations; a null payload means a zero-byte message.
using SharedPayload = std::shared_ptr<const Bytes>;

/// Wrap freshly encoded bytes as a shareable immutable payload.
inline SharedPayload make_payload(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

/// The canonical zero-byte payload view (decoding a null payload).
inline const Bytes& empty_bytes() noexcept {
  static const Bytes empty;
  return empty;
}

/// Completion information for a receive or probe (MPI_Status).
struct Status {
  int source = kAnySource;       ///< local rank of the sender
  int tag = kAnyTag;             ///< tag the message was sent with
  std::size_t bytes = 0;         ///< payload size in bytes
};

/// A message in flight: the envelope (communicator, source, tag) plus the
/// serialized payload. The payload's type hash lets the runtime reject a
/// receive whose C++ type does not match what was sent — the moral
/// equivalent of MPI datatype matching, surfaced as an exception instead of
/// silent corruption — and `type_name` names the offending types in that
/// exception. The payload itself is immutable and may be shared with other
/// envelopes of the same fan-out, so nothing may mutate it after delivery.
struct Envelope {
  std::uint64_t comm_id = 0;
  int source = 0;                ///< local rank within the communicator
  int tag = 0;
  std::size_t type_hash = 0;
  const char* type_name = "";    ///< static-storage name of the sent type
  SharedPayload payload;         ///< null ⇔ zero-byte message

  /// Stamped by Mailbox::deliver while a trace session is active (epoch
  /// otherwise); lets the receiver record enqueue-to-match latency.
  std::chrono::steady_clock::time_point delivered_at{};

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return payload ? payload->size() : 0;
  }

  /// The payload bytes (empty view for a zero-byte message).
  [[nodiscard]] const Bytes& bytes() const noexcept {
    return payload ? *payload : empty_bytes();
  }
};

}  // namespace pdc::mp
