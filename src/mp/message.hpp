#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdc::mp {

/// Wildcard source rank for receives (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Wildcard message tag for receives (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// User tags must lie in [0, kMaxUserTag); larger values are reserved for
/// the runtime's collective-operation protocol.
inline constexpr int kMaxUserTag = 1 << 29;

/// Completion information for a receive or probe (MPI_Status).
struct Status {
  int source = kAnySource;       ///< local rank of the sender
  int tag = kAnyTag;             ///< tag the message was sent with
  std::size_t bytes = 0;         ///< payload size in bytes
};

/// A message in flight: the envelope (communicator, source, tag) plus the
/// serialized payload. The payload's type hash lets the runtime reject a
/// receive whose C++ type does not match what was sent — the moral
/// equivalent of MPI datatype matching, surfaced as an exception instead of
/// silent corruption.
struct Envelope {
  std::uint64_t comm_id = 0;
  int source = 0;                ///< local rank within the communicator
  int tag = 0;
  std::size_t type_hash = 0;
  std::vector<std::byte> payload;

  /// Stamped by Mailbox::deliver while a trace session is active (epoch
  /// otherwise); lets the receiver record enqueue-to-match latency.
  std::chrono::steady_clock::time_point delivered_at{};
};

}  // namespace pdc::mp
