#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "chaos/chaos.hpp"
#include "mp/codec.hpp"
#include "mp/message.hpp"
#include "mp/ops.hpp"
#include "mp/universe.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::mp {

class Communicator;

/// Handle for a nonblocking send. Sends in this runtime are eager/buffered,
/// so the operation is complete the moment isend returns; the handle exists
/// so code reads like its MPI counterpart.
class SendRequest {
 public:
  /// Completes immediately.
  void wait() noexcept {}
  /// Always true.
  [[nodiscard]] bool test() const noexcept { return true; }
};

/// Handle for a nonblocking receive of a T (MPI_Irecv + MPI_Wait/MPI_Test).
template <typename T>
class RecvRequest {
 public:
  RecvRequest(Communicator& comm, int source, int tag)
      : comm_(&comm), source_(source), tag_(tag) {}

  /// Non-blocking completion check; on success the value is buffered and
  /// wait() returns it without blocking.
  bool test();

  /// Block until the message arrives and return its payload.
  T wait(Status* status = nullptr);

 private:
  Communicator* comm_;
  int source_;
  int tag_;
  std::optional<T> value_;
  Status status_{};
};

/// An MPI-style communicator: an ordered group of ranks with an isolated
/// message context. Rank r of this communicator is world rank members()[r].
///
/// Point-to-point operations take *local* ranks. All collective operations
/// must be called by every rank of the communicator in the same order.
class Communicator {
 public:
  /// The world communicator for `my_world_rank` (built by mp::run).
  static Communicator world(Universe& universe, int my_world_rank);

  /// This rank's id within the communicator.
  [[nodiscard]] int rank() const noexcept { return my_rank_; }

  /// Number of ranks in the communicator.
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(members_->size());
  }

  /// World ranks of the members, indexed by local rank.
  [[nodiscard]] const std::vector<int>& members() const noexcept {
    return *members_;
  }

  /// Name of the host this rank runs on (MPI_Get_processor_name).
  [[nodiscard]] const std::string& processor_name() const;

  /// Append a line to the job's shared output log; the patternlets use this
  /// the way mpi4py scripts use print().
  void print(std::string line);

  /// The universe this communicator belongs to.
  [[nodiscard]] Universe& universe() const noexcept { return *universe_; }

  // ---- point to point -------------------------------------------------

  /// Eager (buffered, non-blocking-in-effect) send of `value` to `dest`.
  template <typename T>
  void send(const T& value, int dest, int tag = 0) {
    trace::Span span("mp.send", "mp.p2p");
    check_peer(dest, "send");
    check_tag(tag);
    post(value, dest, tag);
  }

  /// Blocking receive of a T. `source`/`tag` accept kAnySource/kAnyTag.
  template <typename T>
  T recv(int source = kAnySource, int tag = kAnyTag, Status* status = nullptr) {
    trace::Span span("mp.recv", "mp.p2p");
    check_recv_args(source, tag);
    Envelope e = my_mailbox().receive(comm_id_, source, tag);
    span.set_bytes(static_cast<std::int64_t>(e.size_bytes()));
    return unpack<T>(e, status);
  }

  /// Non-blocking receive: nullopt when no matching message is queued.
  template <typename T>
  std::optional<T> try_recv(int source = kAnySource, int tag = kAnyTag,
                            Status* status = nullptr) {
    check_recv_args(source, tag);
    auto e = my_mailbox().try_receive(comm_id_, source, tag);
    if (!e) return std::nullopt;
    return unpack<T>(*e, status);
  }

  /// Blocking receive with timeout; nullopt if nothing matched in time.
  /// Turns protocol deadlocks into testable failures.
  template <typename T>
  std::optional<T> recv_for(std::chrono::milliseconds timeout,
                            int source = kAnySource, int tag = kAnyTag,
                            Status* status = nullptr) {
    trace::Span span("mp.recv", "mp.p2p");
    check_recv_args(source, tag);
    auto e = my_mailbox().receive_for(comm_id_, source, tag, timeout);
    if (!e) return std::nullopt;
    span.set_bytes(static_cast<std::int64_t>(e->size_bytes()));
    return unpack<T>(*e, status);
  }

  /// Nonblocking send (completes immediately; see SendRequest).
  template <typename T>
  SendRequest isend(const T& value, int dest, int tag = 0) {
    send(value, dest, tag);
    return SendRequest{};
  }

  /// Nonblocking receive handle.
  template <typename T>
  RecvRequest<T> irecv(int source = kAnySource, int tag = kAnyTag) {
    check_recv_args(source, tag);
    return RecvRequest<T>(*this, source, tag);
  }

  /// Combined send+receive (MPI_Sendrecv); safe because sends are buffered.
  template <typename T>
  T sendrecv(const T& send_value, int dest, int send_tag, int source,
             int recv_tag, Status* status = nullptr) {
    send(send_value, dest, send_tag);
    return recv<T>(source, recv_tag, status);
  }

  /// Blocking probe for a matching message (MPI_Probe).
  Status probe(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe (MPI_Iprobe).
  std::optional<Status> iprobe(int source = kAnySource, int tag = kAnyTag);

  // ---- collectives -----------------------------------------------------

  /// Algorithm used by a collective call.
  ///
  /// Auto: pick per call from the communicator size, the payload's
  /// compile-time size, the operator's declared commutativity
  /// (ops::is_commutative) and the job's node topology
  /// (Universe::set_topology). Every rank derives the same choice from the
  /// same rank-invariant inputs, so the schedules always agree. The
  /// default.
  ///
  /// Flat: the root sends/receives every message itself — O(p) messages on
  /// the root's critical path, trivially correct. Reductions with an
  /// operator not declared commutative combine strictly in rank order (the
  /// deterministic fallback); commutative ones fold in arrival order.
  ///
  /// Binomial: a binomial tree — the same O(p) total messages but only
  /// O(log p) rounds on the critical path, the algorithm real MPI libraries
  /// use for small payloads. Reductions combine in tree order, so the
  /// operator should be commutative (all of mp::ops' built-ins are).
  ///
  /// RecursiveDoubling: allreduce-only — ranks pairwise-exchange partial
  /// results across log2(p) doubling rounds, so every rank finishes with
  /// the full result without a separate broadcast. Requires a commutative
  /// operator; non-power-of-two sizes fold the remainder ranks in and out.
  ///
  /// Hierarchical: the leader-per-node schedule (MPICH's SMP-aware shape).
  /// Each node elects a delegate; traffic crosses node boundaries only
  /// between the root and the delegates, and every other hop stays inside
  /// a node — where co-located ranks ride the shm rings instead of
  /// sockets. Supported by bcast, allgather's broadcast stage, reduce and
  /// allreduce; reductions fold in arrival order within each node, so the
  /// operator must be declared commutative. On a single node it
  /// degenerates into the Flat schedule.
  enum class CollectiveAlgo {
    Auto,
    Flat,
    Binomial,
    RecursiveDoubling,
    Hierarchical
  };

  /// The schedule Auto resolves to for the fan-out collectives (bcast,
  /// allgather's broadcast stage) on this communicator. Pure introspection
  /// — sends nothing; rank-invariant, so every rank reports the same
  /// answer. The bench-backed regression tests pin Auto's choices per
  /// transport through these.
  [[nodiscard]] CollectiveAlgo auto_fanout_algo() const {
    return resolve_fanout_algo(CollectiveAlgo::Auto, "bcast");
  }

  /// The schedule Auto resolves to for reduce with operator `Op`.
  template <typename Op>
  [[nodiscard]] CollectiveAlgo auto_reduce_algo() const {
    return resolve_reduce_algo<Op>(CollectiveAlgo::Auto, "reduce");
  }

  /// The schedule Auto resolves to for allreduce of `T` with operator `Op`.
  template <typename T, typename Op>
  [[nodiscard]] CollectiveAlgo auto_allreduce_algo() const {
    return resolve_allreduce_algo<T, Op>(CollectiveAlgo::Auto);
  }

  /// Block until every rank of the communicator has entered the barrier.
  void barrier();

  /// Broadcast `value` from `root` to every rank, in place (MPI_Bcast).
  /// The root encodes the payload once; every hop shares the same buffer.
  template <typename T>
  void bcast(T& value, int root = 0,
             CollectiveAlgo algo = CollectiveAlgo::Auto) {
    trace::Span span("mp.bcast", "mp.collective");
    check_peer(root, "bcast");
    algo = resolve_fanout_algo(algo, "bcast");
    const int p = size();
    if (p == 1) return;
    const int tag = next_collective_tag();

    if (algo == CollectiveAlgo::Flat) {
      if (my_rank_ == root) {
        const SharedPayload payload = encode_payload(value);
        for (int r = 0; r < p; ++r) {
          if (r != root) {
            post_encoded(payload, type_hash<T>(), type_name<T>(), r, tag);
          }
        }
      } else {
        value = recv_internal<T>(root, tag);
      }
      return;
    }

    if (algo == CollectiveAlgo::Hierarchical) {
      bcast_hierarchical(value, root, tag);
      return;
    }

    // Binomial tree (the classic MPICH small-message algorithm): each rank
    // first receives from its tree parent (unless it is the root), then
    // forwards down its subtrees, highest bit first. Interior ranks forward
    // the payload they received — the value is serialized exactly once, at
    // the root, no matter how many hops it takes.
    SharedPayload payload;
    if (my_rank_ == root) payload = encode_payload(value);
    const int vrank = (my_rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const Envelope e = recv_envelope_internal((my_rank_ - mask + p) % p, tag);
        value = unpack<T>(e, nullptr);
        payload = e.payload;
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < p) {
        post_encoded(payload, type_hash<T>(), type_name<T>(),
                     (my_rank_ + mask) % p, tag);
      }
      mask >>= 1;
    }
  }

  /// Gather one value per rank to `root`; returns the full rank-ordered
  /// vector at root and an empty vector elsewhere (MPI_Gather). The root
  /// drains contributions in arrival order and slots them by source rank,
  /// so a slow low rank no longer stalls the unpacking of queued later
  /// ranks.
  template <typename T>
  std::vector<T> gather(const T& value, int root = 0) {
    trace::Span span("mp.gather", "mp.collective");
    check_peer(root, "gather");
    const int tag = next_collective_tag();
    if (my_rank_ != root) {
      post(value, root, tag);
      return {};
    }
    std::vector<std::optional<T>> slots(static_cast<std::size_t>(size()));
    slots[static_cast<std::size_t>(root)] = value;
    for (int i = 1; i < size(); ++i) {
      const Envelope e = recv_envelope_internal(kAnySource, tag);
      slots[static_cast<std::size_t>(e.source)] = unpack<T>(e, nullptr);
    }
    std::vector<T> all;
    all.reserve(slots.size());
    for (auto& slot : slots) all.push_back(std::move(*slot));
    return all;
  }

  /// Gather one value per rank to every rank (MPI_Allgather). `algo`
  /// selects the broadcast stage's schedule.
  template <typename T>
  std::vector<T> allgather(const T& value,
                           CollectiveAlgo algo = CollectiveAlgo::Auto) {
    trace::Span span("mp.allgather", "mp.collective");
    algo = resolve_fanout_algo(algo, "allgather");
    std::vector<T> all = gather(value, 0);
    bcast(all, 0, algo);
    return all;
  }

  /// Distribute `values[r]` to rank r from `root`; returns this rank's
  /// element (MPI_Scatter). `values` is only read at root and must have
  /// exactly size() entries there.
  template <typename T>
  T scatter(const std::vector<T>& values, int root = 0) {
    trace::Span span("mp.scatter", "mp.collective");
    check_peer(root, "scatter");
    const int tag = next_collective_tag();
    if (my_rank_ == root) {
      if (values.size() != static_cast<std::size_t>(size())) {
        throw InvalidArgument("scatter: need exactly one value per rank");
      }
      for (int r = 0; r < size(); ++r) {
        if (r != root) post(values[static_cast<std::size_t>(r)], r, tag);
      }
      return values[static_cast<std::size_t>(root)];
    }
    return recv_internal<T>(root, tag);
  }

  /// Block-decompose `data` (read at root only) into size() contiguous
  /// chunks — the first (n mod size) chunks one element longer — and send
  /// chunk r to rank r (MPI_Scatterv with the patternlets' decomposition).
  template <typename T>
  std::vector<T> scatter_chunks(const std::vector<T>& data, int root = 0) {
    trace::Span span("mp.scatter_chunks", "mp.collective");
    check_peer(root, "scatter_chunks");
    const int tag = next_collective_tag();
    if (my_rank_ == root) {
      const std::size_t n = data.size();
      const std::size_t p = static_cast<std::size_t>(size());
      const std::size_t base = n / p;
      const std::size_t extra = n % p;
      std::vector<T> mine;
      std::size_t offset = 0;
      for (std::size_t r = 0; r < p; ++r) {
        const std::size_t len = base + (r < extra ? 1 : 0);
        std::vector<T> chunk(data.begin() + static_cast<std::ptrdiff_t>(offset),
                             data.begin() + static_cast<std::ptrdiff_t>(offset + len));
        offset += len;
        if (static_cast<int>(r) == root) {
          mine = std::move(chunk);
        } else {
          post(chunk, static_cast<int>(r), tag);
        }
      }
      return mine;
    }
    return recv_internal<std::vector<T>>(root, tag);
  }

  /// Concatenate per-rank vectors at root, in rank order (MPI_Gatherv).
  /// Like gather, the root deserializes chunks in arrival order — with
  /// megabyte chunks and a straggling rank this overlaps the decode work
  /// with the straggler's delay (BM_GatherStraggler measures the win).
  template <typename T>
  std::vector<T> gather_chunks(const std::vector<T>& chunk, int root = 0) {
    trace::Span span("mp.gather_chunks", "mp.collective");
    check_peer(root, "gather_chunks");
    const int tag = next_collective_tag();
    if (my_rank_ != root) {
      post(chunk, root, tag);
      return {};
    }
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(size()));
    parts[static_cast<std::size_t>(root)] = chunk;
    for (int i = 1; i < size(); ++i) {
      const Envelope e = recv_envelope_internal(kAnySource, tag);
      parts[static_cast<std::size_t>(e.source)] =
          unpack<std::vector<T>>(e, nullptr);
    }
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    std::vector<T> all;
    all.reserve(total);
    for (auto& part : parts) {
      all.insert(all.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return all;
  }

  /// Reduce every rank's `local` with `op`; the result is returned at root,
  /// and each non-root rank gets its own `local` back (mirroring MPI, where
  /// recvbuf is undefined off-root). Operators declared commutative
  /// (ops::is_commutative) fold in arrival order under Flat and may use the
  /// Binomial tree under Auto; any other operator — user lambdas included —
  /// combines strictly in rank order for deterministic results.
  template <typename T, typename Op>
  T reduce(const T& local, Op op, int root = 0,
           CollectiveAlgo algo = CollectiveAlgo::Auto) {
    trace::Span span("mp.reduce", "mp.collective");
    check_peer(root, "reduce");
    algo = resolve_reduce_algo<Op>(algo, "reduce");
    const int tag = next_collective_tag();
    if (algo == CollectiveAlgo::Hierarchical) {
      return reduce_hierarchical(local, op, root, tag);
    }
    if (algo == CollectiveAlgo::Flat) {
      if (my_rank_ != root) {
        post(local, root, tag);
        return local;
      }
      if constexpr (ops::is_commutative_v<Op>) {
        // Commutative: fold each contribution as it arrives instead of
        // blocking on ranks in numeric order.
        T acc = local;
        for (int i = 1; i < size(); ++i) {
          acc = op(acc, recv_internal<T>(kAnySource, tag));
        }
        return acc;
      } else {
        // Combine in rank order for determinism with non-commutative ops.
        std::optional<T> acc;
        for (int r = 0; r < size(); ++r) {
          T contribution = r == root ? local : recv_internal<T>(r, tag);
          acc = acc ? op(*acc, contribution) : contribution;
        }
        return *acc;
      }
    }

    // Binomial tree: the mirror image of the binomial bcast. Each rank
    // absorbs its children's partial results, then sends its own partial
    // up to its parent.
    const int p = size();
    const int vrank = (my_rank_ - root + p) % p;
    T acc = local;
    int mask = 1;
    while (mask < p) {
      if ((vrank & mask) == 0) {
        if (vrank + mask < p) {
          acc = op(acc, recv_internal<T>((my_rank_ + mask) % p, tag));
        }
      } else {
        post(acc, (my_rank_ - mask + p) % p, tag);
        break;
      }
      mask <<= 1;
    }
    return my_rank_ == root ? acc : local;
  }

  /// Reduce and broadcast the result to every rank (MPI_Allreduce). Auto
  /// picks recursive doubling for small trivially-copyable payloads with a
  /// commutative operator, a reduce+bcast tree for large or dynamic ones,
  /// and the rank-order Flat schedule for operators not declared
  /// commutative.
  template <typename T, typename Op>
  T allreduce(const T& local, Op op,
              CollectiveAlgo algo = CollectiveAlgo::Auto) {
    trace::Span span("mp.allreduce", "mp.collective");
    algo = resolve_allreduce_algo<T, Op>(algo);
    if (algo == CollectiveAlgo::RecursiveDoubling) {
      return allreduce_recursive_doubling(local, op);
    }
    T result = reduce(local, op, 0, algo);
    bcast(result, 0, algo);
    return result;
  }

  /// Inclusive prefix reduction: rank r returns op-fold of ranks 0..r
  /// (MPI_Scan). Linear chain, deterministic.
  template <typename T, typename Op>
  T scan(const T& local, Op op) {
    trace::Span span("mp.scan", "mp.collective");
    const int tag = next_collective_tag();
    T acc = local;
    if (my_rank_ > 0) {
      acc = op(recv_internal<T>(my_rank_ - 1, tag), local);
    }
    if (my_rank_ + 1 < size()) {
      post(acc, my_rank_ + 1, tag);
    }
    return acc;
  }

  /// Exclusive prefix reduction: rank 0 returns `identity`, rank r > 0
  /// returns op-fold of ranks 0..r-1 (MPI_Exscan).
  template <typename T, typename Op>
  T exscan(const T& local, Op op, const T& identity) {
    trace::Span span("mp.exscan", "mp.collective");
    const int tag = next_collective_tag();
    T prefix = identity;
    if (my_rank_ > 0) {
      prefix = recv_internal<T>(my_rank_ - 1, tag);
    }
    if (my_rank_ + 1 < size()) {
      post(my_rank_ == 0 ? local : op(prefix, local), my_rank_ + 1, tag);
    }
    return prefix;
  }

  /// Personalized all-to-all exchange: element d of `per_dest` goes to rank
  /// d; returns a vector whose element s came from rank s (MPI_Alltoall).
  /// Incoming exchanges are drained in arrival order and slotted by source.
  template <typename T>
  std::vector<T> alltoall(const std::vector<T>& per_dest) {
    trace::Span span("mp.alltoall", "mp.collective");
    if (per_dest.size() != static_cast<std::size_t>(size())) {
      throw InvalidArgument("alltoall: need exactly one value per rank");
    }
    const int tag = next_collective_tag();
    for (int r = 0; r < size(); ++r) {
      if (r != my_rank_) post(per_dest[static_cast<std::size_t>(r)], r, tag);
    }
    std::vector<std::optional<T>> slots(static_cast<std::size_t>(size()));
    slots[static_cast<std::size_t>(my_rank_)] =
        per_dest[static_cast<std::size_t>(my_rank_)];
    for (int i = 1; i < size(); ++i) {
      const Envelope e = recv_envelope_internal(kAnySource, tag);
      slots[static_cast<std::size_t>(e.source)] = unpack<T>(e, nullptr);
    }
    std::vector<T> received;
    received.reserve(slots.size());
    for (auto& slot : slots) received.push_back(std::move(*slot));
    return received;
  }

  /// Partition the communicator (MPI_Comm_split): ranks with equal `color`
  /// form a new communicator, ordered by (key, old rank). Collective.
  /// Colors must be non-negative (InvalidArgument otherwise); keys are
  /// unrestricted.
  Communicator split(int color, int key);

  /// Duplicate the communicator (MPI_Comm_dup): same group and ranks, but a
  /// fresh message context, so a library's traffic cannot collide with its
  /// caller's. Collective.
  Communicator dup();

  /// In-place exchange (MPI_Sendrecv_replace): send `value` to `dest`,
  /// replace it with what `source` sent.
  template <typename T>
  void sendrecv_replace(T& value, int dest, int send_tag, int source,
                        int recv_tag, Status* status = nullptr) {
    value = sendrecv(value, dest, send_tag, source, recv_tag, status);
  }

 private:
  friend class Universe;
  template <typename>
  friend class RecvRequest;

  Communicator(Universe& universe, std::uint64_t comm_id,
               std::shared_ptr<const std::vector<int>> members, int my_rank)
      : universe_(&universe),
        comm_id_(comm_id),
        members_(std::move(members)),
        my_rank_(my_rank) {}

  Mailbox& my_mailbox() const {
    return universe_->mailbox((*members_)[static_cast<std::size_t>(my_rank_)]);
  }

  void check_peer(int r, const char* what) const {
    if (r < 0 || r >= size()) {
      throw InvalidArgument(std::string(what) + ": rank " + std::to_string(r) +
                            " out of range for communicator of size " +
                            std::to_string(size()));
    }
  }

  static void check_tag(int tag) {
    if (tag < 0 || tag >= kMaxUserTag) {
      throw InvalidArgument("tag " + std::to_string(tag) +
                            " outside the valid range [0, 2^29)");
    }
  }

  void check_recv_args(int source, int tag) const {
    // Every user-facing receive/probe passes through here, which makes it
    // the one chaos checkpoint needed on the receive side (collective legs
    // use recv_internal, which has its own). May throw chaos::InjectedAbort
    // under an active hostile plan.
    chaos::on_op("mp.recv");
    if (source != kAnySource) check_peer(source, "recv");
    if (tag != kAnyTag) {
      if (tag < 0) throw InvalidArgument("recv: negative tag (use kAnyTag)");
    }
  }

  /// Serialize `value` into a shareable payload, counting the encode (the
  /// Universe total and the mp.payload_encodes trace counter are how the
  /// benches verify fan-outs encode once).
  template <typename T>
  SharedPayload encode_payload(const T& value) {
    universe_->record_encode();
    if (trace::enabled()) {
      trace::Counter("mp.payload_encodes").add(1.0);
    }
    return make_payload(Codec<T>::encode(value));
  }

  /// Deliver an already-encoded payload to `dest`, bypassing user-facing
  /// validation (internal tags exceed kMaxUserTag by design). Fan-outs call
  /// this once per destination with the same shared buffer.
  void post_encoded(const SharedPayload& payload, std::size_t hash,
                    const char* tname, int dest, int tag);

  /// Serialize and deliver (the single-destination path).
  template <typename T>
  void post(const T& value, int dest, int tag) {
    post_encoded(encode_payload(value), type_hash<T>(), type_name<T>(), dest,
                 tag);
  }

  /// Blocking matched receive for collective legs; runs the chaos receive
  /// checkpoint but none of the user-facing argument checks.
  Envelope recv_envelope_internal(int source, int tag);

  template <typename T>
  T recv_internal(int source, int tag) {
    return unpack<T>(recv_envelope_internal(source, tag), nullptr);
  }

  template <typename T>
  T unpack(const Envelope& e, Status* status) const {
    if (e.type_hash != type_hash<T>()) {
      throw InvalidArgument(
          std::string("recv: message datatype mismatch: sent as ") +
          (e.type_name != nullptr && *e.type_name != '\0' ? e.type_name
                                                          : "<unknown type>") +
          ", received as " + type_name<T>());
    }
    if (status) *status = Status{e.source, e.tag, e.size_bytes()};
    return Codec<T>::decode(e.bytes());
  }

  /// Resolve Auto for the fan-out collectives (bcast and allgather's
  /// broadcast stage). The choice may depend only on size() and the node
  /// topology: non-root ranks do not know the payload, and every rank must
  /// pick the same schedule.
  CollectiveAlgo resolve_fanout_algo(CollectiveAlgo algo,
                                     const char* what) const {
    if (algo == CollectiveAlgo::RecursiveDoubling) {
      throw InvalidArgument(std::string(what) +
                            ": RecursiveDoubling is an allreduce schedule; "
                            "use Auto, Flat or Binomial");
    }
    if (algo != CollectiveAlgo::Auto) return algo;
    if (hierarchy_pays()) return CollectiveAlgo::Hierarchical;
    return size() <= 4 ? CollectiveAlgo::Flat : CollectiveAlgo::Binomial;
  }

  /// Resolve Auto for reduce (and, via `what`, any collective with reduce
  /// semantics): operators not declared commutative stay on the rank-order
  /// Flat schedule; commutative ones go hierarchical when the members span
  /// several nodes, and climb the binomial tree once the root's O(p) inbox
  /// becomes the bottleneck.
  template <typename Op>
  CollectiveAlgo resolve_reduce_algo(CollectiveAlgo algo,
                                     const char* what) const {
    if (algo == CollectiveAlgo::RecursiveDoubling) {
      throw InvalidArgument(std::string(what) +
                            ": RecursiveDoubling is an allreduce schedule; "
                            "use Auto, Flat or Binomial");
    }
    if (algo == CollectiveAlgo::Hierarchical && !ops::is_commutative_v<Op>) {
      throw InvalidArgument(std::string(what) +
                            ": Hierarchical folds contributions in arrival "
                            "order within each node and requires an operator "
                            "declared commutative (see ops::is_commutative)");
    }
    if (algo != CollectiveAlgo::Auto) return algo;
    if (!ops::is_commutative_v<Op>) return CollectiveAlgo::Flat;
    if (hierarchy_pays()) return CollectiveAlgo::Hierarchical;
    return size() <= 4 ? CollectiveAlgo::Flat : CollectiveAlgo::Binomial;
  }

  /// Resolve Auto for allreduce from size(), the operator's commutativity,
  /// the payload's compile-time size and the node topology — all
  /// rank-invariant inputs, so every rank lands on the same schedule.
  template <typename T, typename Op>
  CollectiveAlgo resolve_allreduce_algo(CollectiveAlgo algo) const {
    if (algo == CollectiveAlgo::RecursiveDoubling) {
      if constexpr (!ops::is_commutative_v<Op>) {
        throw InvalidArgument(
            "allreduce: RecursiveDoubling pairs ranks out of rank order and "
            "requires an operator declared commutative (see "
            "ops::is_commutative)");
      }
      return algo;
    }
    if (algo == CollectiveAlgo::Hierarchical) {
      if constexpr (!ops::is_commutative_v<Op>) {
        throw InvalidArgument(
            "allreduce: Hierarchical folds contributions in arrival order "
            "within each node and requires an operator declared commutative "
            "(see ops::is_commutative)");
      }
      return algo;
    }
    if (algo != CollectiveAlgo::Auto) return algo;
    if constexpr (!ops::is_commutative_v<Op>) {
      return CollectiveAlgo::Flat;  // rank-order determinism
    } else {
      // Members spanning several nodes: keep the cross-node links down to
      // one partial per node — recursive doubling would pair co-located
      // ranks with remote ones on every round.
      if (hierarchy_pays()) return CollectiveAlgo::Hierarchical;
      if (size() <= 2) return CollectiveAlgo::Flat;
      if (!universe_->intra_node_fast()) {
        // Kernel sockets between co-located ranks: every message is a
        // syscall pair, so message count on the critical path is what
        // matters. Recursive doubling's p·log p messages lose to the flat
        // gather+bcast up to moderate sizes (measured at np=8: RD ~1.8×
        // flat over unix sockets, bench_net_transport) and to the binomial
        // tree beyond that.
        return size() <= 8 ? CollectiveAlgo::Flat : CollectiveAlgo::Binomial;
      }
      if constexpr (std::is_trivially_copyable_v<T>) {
        // Small fixed-size payloads: recursive doubling halves the rounds
        // of reduce+bcast. Large ones: the tree keeps total bytes moved at
        // O(p) instead of recursive doubling's O(p log p).
        return sizeof(T) <= 4096 ? CollectiveAlgo::RecursiveDoubling
                                 : CollectiveAlgo::Binomial;
      } else {
        // Dynamic payloads (vectors, strings): size is unknowable before
        // encoding and may differ across ranks — stay with the tree.
        return CollectiveAlgo::Binomial;
      }
    }
  }

  /// Node id (dense, from Universe::set_topology) of communicator rank `r`.
  int node_of_local(int r) const {
    return universe_->node_of((*members_)[static_cast<std::size_t>(r)]);
  }

  /// True when Auto should pick the leader-per-node schedule: the members
  /// span at least two nodes AND at least one node hosts more than one
  /// member (otherwise every rank is its own delegate and Hierarchical is
  /// just Flat with longer code) AND the intra-node hops actually are
  /// cheaper than the inter-node ones — i.e. the transport moves
  /// co-located traffic through shared memory. Over plain kernel sockets
  /// the intra-node fan-out legs cost the same as the links Hierarchical
  /// is trying to avoid, and the extra delegate hop just adds latency
  /// (BENCH_8.json recorded exactly that regression). Rank-invariant:
  /// derived from the shared topology, member list and transport only.
  bool hierarchy_pays() const {
    if (!universe_->intra_node_fast()) return false;
    std::vector<bool> seen(static_cast<std::size_t>(universe_->num_nodes()),
                           false);
    int nodes = 0;
    for (int r = 0; r < size(); ++r) {
      const auto n = static_cast<std::size_t>(node_of_local(r));
      if (!seen[n]) {
        seen[n] = true;
        ++nodes;
      }
    }
    return nodes >= 2 && size() > nodes;
  }

  /// Delegate (leader) of every node for a collective rooted at `root`:
  /// the root itself on the root's node, the lowest communicator rank on
  /// every other node. Indexed by dense node id; -1 where the node hosts
  /// no member of this communicator.
  std::vector<int> node_delegates(int root) const {
    std::vector<int> delegate(static_cast<std::size_t>(universe_->num_nodes()),
                              -1);
    for (int r = 0; r < size(); ++r) {
      const auto n = static_cast<std::size_t>(node_of_local(r));
      if (delegate[n] == -1) delegate[n] = r;
    }
    delegate[static_cast<std::size_t>(node_of_local(root))] = root;
    return delegate;
  }

  /// Leader-per-node broadcast: the root sends the payload once to each
  /// other node's delegate across the inter-node links, then every
  /// delegate fans out to its node-local ranks — hops that ride the shm
  /// rings when the transport has them. One tag; the payload is serialized
  /// exactly once, at the root, and every hop forwards the same buffer.
  template <typename T>
  void bcast_hierarchical(T& value, int root, int tag) {
    const std::vector<int> delegate = node_delegates(root);
    const int my_node = node_of_local(my_rank_);
    const int my_delegate = delegate[static_cast<std::size_t>(my_node)];
    SharedPayload payload;
    if (my_rank_ == root) {
      payload = encode_payload(value);
      for (const int d : delegate) {
        if (d != -1 && d != root) {
          post_encoded(payload, type_hash<T>(), type_name<T>(), d, tag);
        }
      }
    } else if (my_rank_ == my_delegate) {
      const Envelope e = recv_envelope_internal(root, tag);
      value = unpack<T>(e, nullptr);
      payload = e.payload;
    } else {
      value = recv_internal<T>(my_delegate, tag);
      return;
    }
    for (int r = 0; r < size(); ++r) {
      if (r != my_rank_ && node_of_local(r) == my_node) {
        post_encoded(payload, type_hash<T>(), type_name<T>(), r, tag);
      }
    }
  }

  /// Leader-per-node reduce (commutative operators only — the resolvers
  /// enforce it). Non-delegates hand their value to their node's delegate;
  /// each non-root delegate folds its node's contributions in arrival
  /// order and posts one partial to the root; the root folds its own
  /// node's contributions plus one partial per other node. One tag — safe
  /// because every message has exactly one well-known destination, so the
  /// any-source folds can only see their own legs.
  template <typename T, typename Op>
  T reduce_hierarchical(const T& local, Op op, int root, int tag) {
    const std::vector<int> delegate = node_delegates(root);
    const int my_node = node_of_local(my_rank_);
    if (my_rank_ != delegate[static_cast<std::size_t>(my_node)]) {
      post(local, delegate[static_cast<std::size_t>(my_node)], tag);
      return local;
    }
    int pending = -1;  // my own contribution is already in `acc`
    for (int r = 0; r < size(); ++r) {
      if (node_of_local(r) == my_node) ++pending;
    }
    if (my_rank_ == root) {
      for (std::size_t n = 0; n < delegate.size(); ++n) {
        if (delegate[n] != -1 && static_cast<int>(n) != my_node) ++pending;
      }
    }
    T acc = local;
    for (int i = 0; i < pending; ++i) {
      acc = op(acc, recv_internal<T>(kAnySource, tag));
    }
    if (my_rank_ != root) {
      post(acc, root, tag);
      return local;
    }
    return acc;
  }

  /// MPICH-style recursive-doubling allreduce. For non-power-of-two sizes
  /// the first 2*rem ranks pre-fold pairwise (even ranks hand their value
  /// to their odd neighbour and sit out), the surviving power-of-two group
  /// pairwise-exchanges partials across log2 rounds, then the folded-out
  /// ranks get the finished result back.
  template <typename T, typename Op>
  T allreduce_recursive_doubling(const T& local, Op op) {
    const int tag = next_collective_tag();
    const int p = size();
    T acc = local;
    int pow2 = 1;
    while (pow2 * 2 <= p) pow2 *= 2;
    const int rem = p - pow2;

    int vrank;
    if (my_rank_ < 2 * rem) {
      if (my_rank_ % 2 == 0) {
        post(acc, my_rank_ + 1, tag);
        vrank = -1;  // sits out the exchange rounds
      } else {
        acc = op(recv_internal<T>(my_rank_ - 1, tag), acc);
        vrank = my_rank_ / 2;
      }
    } else {
      vrank = my_rank_ - rem;
    }

    if (vrank != -1) {
      for (int mask = 1; mask < pow2; mask <<= 1) {
        const int vpeer = vrank ^ mask;
        const int peer = vpeer < rem ? vpeer * 2 + 1 : vpeer + rem;
        post(acc, peer, tag);
        const T theirs = recv_internal<T>(peer, tag);
        // Keep the lower rank's partial on the left so the reassociation is
        // fixed by the (deterministic) pairing, not by arrival order.
        acc = peer < my_rank_ ? op(theirs, acc) : op(acc, theirs);
      }
    }

    if (my_rank_ < 2 * rem) {
      if (my_rank_ % 2 == 0) {
        acc = recv_internal<T>(my_rank_ + 1, tag);
      } else {
        post(acc, my_rank_ - 1, tag);
      }
    }
    return acc;
  }

  /// Per-rank collective sequence number; identical across ranks because
  /// collectives must be invoked in the same order on every rank.
  int next_collective_tag() noexcept {
    return kCollectiveTagBase | (collective_seq_++ & 0x0FFFFFFF);
  }

  static constexpr int kCollectiveTagBase = 1 << 30;

  Universe* universe_;
  std::uint64_t comm_id_;
  std::shared_ptr<const std::vector<int>> members_;
  int my_rank_;
  int collective_seq_ = 0;
};

/// Wait for every request and collect the values in order (MPI_Waitall).
template <typename T>
std::vector<T> wait_all(std::vector<RecvRequest<T>>& requests) {
  std::vector<T> values;
  values.reserve(requests.size());
  for (auto& request : requests) values.push_back(request.wait());
  return values;
}

/// True iff every request has completed (MPI_Testall); completed values are
/// buffered inside the requests for a later wait.
template <typename T>
bool test_all(std::vector<RecvRequest<T>>& requests) {
  bool all = true;
  for (auto& request : requests) all = request.test() && all;
  return all;
}

template <typename T>
bool RecvRequest<T>::test() {
  if (value_) return true;
  auto got = comm_->try_recv<T>(source_, tag_, &status_);
  if (!got) return false;
  value_ = std::move(*got);
  return true;
}

template <typename T>
T RecvRequest<T>::wait(Status* status) {
  if (!value_) {
    value_ = comm_->recv<T>(source_, tag_, &status_);
  }
  if (status) *status = status_;
  return *value_;
}

}  // namespace pdc::mp
