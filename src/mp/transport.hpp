#pragma once

#include "mp/message.hpp"

namespace pdc::mp {

class Universe;

/// How an envelope leaves the sending rank and reaches the destination
/// rank's mailbox — the seam between the message-passing semantics
/// (Communicator, Mailbox, collectives) and the bytes-moving machinery
/// underneath them.
///
/// The default is no transport at all: a Universe without one hosts every
/// rank in this process and Universe::deliver drops the envelope straight
/// into the destination mailbox, exactly the in-process loopback behaviour
/// the patternlets and tests have always had. Attaching a transport (see
/// pdc::net::SocketTransport) turns the same Universe into one rank of a
/// real multi-process job: local deliveries still short-circuit, remote
/// ones are framed onto a socket and re-materialized into the remote
/// mailbox by the peer's reader thread, so Communicator, the comm→source
/// FIFO index, and the encode-once shared payloads work unchanged.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Human-readable backend name ("unix", "tcp", ...), for diagnostics.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Start delivering inbound traffic into `universe`'s local mailbox.
  /// Called exactly once, by Universe::attach_transport, before any
  /// deliver(); implementations typically spawn their reader threads here.
  virtual void bind(Universe& universe) = 0;

  /// Route `envelope` to world rank `dest_world_rank`'s mailbox. Called on
  /// the sending rank's thread; must not block on the destination program
  /// (sends stay eager/buffered). Never called with the local rank — the
  /// Universe short-circuits self-sends to the local mailbox.
  virtual void deliver(int dest_world_rank, Envelope envelope) = 0;

  /// Propagate a job abort beyond this process, waking peers blocked in
  /// receives. Called at most once, from Universe::abort.
  virtual void propagate_abort() noexcept = 0;

  /// Tear down: flush outstanding sends, announce a clean goodbye to the
  /// peers, join every internal thread and close every descriptor.
  /// Idempotent; called by ~Universe *before* the mailboxes are destroyed,
  /// so no reader thread can touch a dead mailbox.
  virtual void shutdown() noexcept = 0;

  /// True when a message between co-located ranks bypasses the kernel
  /// (shared-memory rings, in-process queues). CollectiveAlgo::Auto uses
  /// this to decide whether chatty schedules (recursive doubling, the
  /// intra-node legs of Hierarchical) pay for themselves: over kernel
  /// sockets every extra message costs a syscall pair and they do not.
  [[nodiscard]] virtual bool intra_node_shared_memory() const noexcept {
    return false;
  }
};

}  // namespace pdc::mp
