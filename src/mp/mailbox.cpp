#include "mp/mailbox.hpp"

namespace pdc::mp {

void Mailbox::deliver(Envelope envelope) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(envelope));
  }
  arrived_.notify_all();
}

std::size_t Mailbox::find_match(std::uint64_t comm_id, int source,
                                int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Envelope& e = queue_[i];
    if (e.comm_id != comm_id) continue;
    if (source != kAnySource && e.source != source) continue;
    if (tag != kAnyTag && e.tag != tag) continue;
    return i;
  }
  return npos;
}

Envelope Mailbox::receive(std::uint64_t comm_id, int source, int tag) {
  std::unique_lock lock(mutex_);
  std::size_t index;
  arrived_.wait(lock, [&] {
    if (aborted_) return true;
    index = find_match(comm_id, source, tag);
    return index != npos;
  });
  if (aborted_) throw Aborted{};
  Envelope out = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return out;
}

std::optional<Envelope> Mailbox::try_receive(std::uint64_t comm_id, int source,
                                             int tag) {
  std::lock_guard lock(mutex_);
  if (aborted_) throw Aborted{};
  const std::size_t index = find_match(comm_id, source, tag);
  if (index == npos) return std::nullopt;
  Envelope out = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return out;
}

std::optional<Envelope> Mailbox::receive_for(std::uint64_t comm_id, int source,
                                             int tag,
                                             std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  std::size_t index = npos;
  const bool matched = arrived_.wait_for(lock, timeout, [&] {
    if (aborted_) return true;
    index = find_match(comm_id, source, tag);
    return index != npos;
  });
  if (aborted_) throw Aborted{};
  if (!matched || index == npos) return std::nullopt;
  Envelope out = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return out;
}

Status Mailbox::probe(std::uint64_t comm_id, int source, int tag) {
  std::unique_lock lock(mutex_);
  std::size_t index;
  arrived_.wait(lock, [&] {
    if (aborted_) return true;
    index = find_match(comm_id, source, tag);
    return index != npos;
  });
  if (aborted_) throw Aborted{};
  const Envelope& e = queue_[index];
  return Status{e.source, e.tag, e.payload.size()};
}

std::optional<Status> Mailbox::try_probe(std::uint64_t comm_id, int source,
                                         int tag) {
  std::lock_guard lock(mutex_);
  if (aborted_) throw Aborted{};
  const std::size_t index = find_match(comm_id, source, tag);
  if (index == npos) return std::nullopt;
  const Envelope& e = queue_[index];
  return Status{e.source, e.tag, e.payload.size()};
}

std::size_t Mailbox::queued() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  arrived_.notify_all();
}

}  // namespace pdc::mp
