#include "mp/mailbox.hpp"

#include "chaos/chaos.hpp"
#include "trace/trace.hpp"

namespace pdc::mp {

void Mailbox::deliver(Envelope envelope) {
  // An active chaos plan may hold the delivery back (delays, drop-retries)
  // on the sender's thread, and may ask for the envelope to jump the queue.
  const bool reorder = chaos::on_deliver("mp.deliver");
  if (trace::enabled()) {
    envelope.delivered_at = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard lock(mutex_);
    Bucket& bucket = buckets_[envelope.comm_id];
    if (reorder && !bucket.empty()) {
      // Overtake other senders' queued traffic but never a message from the
      // same source: MPI's non-overtaking guarantee orders successive sends
      // of one sender (wildcard-tag receives can observe cross-tag order, so
      // the whole per-source stream must stay FIFO), while messages from
      // different senders carry no relative-order promise at all.
      std::size_t insert_at = 0;
      for (std::size_t i = bucket.size(); i > 0; --i) {
        if (bucket[i - 1].source == envelope.source) {
          insert_at = i;
          break;
        }
      }
      bucket.insert(bucket.begin() + static_cast<std::ptrdiff_t>(insert_at),
                    std::move(envelope));
    } else {
      bucket.push_back(std::move(envelope));
    }
    ++queued_;
  }
  arrived_.notify_all();
}

const Mailbox::Bucket* Mailbox::bucket_for(std::uint64_t comm_id) const {
  const auto it = buckets_.find(comm_id);
  return it == buckets_.end() ? nullptr : &it->second;
}

std::size_t Mailbox::find_match(const Bucket& bucket, int source, int tag,
                                std::size_t* scanned) {
  if (scanned) *scanned = 0;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    const Envelope& e = bucket[i];
    if (scanned) ++*scanned;
    if (source != kAnySource && e.source != source) continue;
    if (tag != kAnyTag && e.tag != tag) continue;
    return i;
  }
  return npos;
}

Envelope Mailbox::take(std::uint64_t comm_id, Bucket& bucket,
                       std::size_t index) {
  Envelope out = std::move(bucket[index]);
  bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(index));
  if (bucket.empty()) buckets_.erase(comm_id);
  --queued_;
  return out;
}

void Mailbox::record_match(const Envelope& envelope, std::size_t scanned) {
  trace::TraceSession* session = trace::TraceSession::active();
  if (!session) return;
  session->add_counter("mailbox.matched", 1.0);
  session->add_counter("mailbox.scanned", static_cast<double>(scanned));
  // The latency event needs a delivery stamp, which is only taken while a
  // session is active; a message delivered before tracing began has none.
  if (envelope.delivered_at == std::chrono::steady_clock::time_point{}) return;
  trace::TraceEvent event;
  event.name = "mailbox.match_wait";
  event.category = "mp.mailbox";
  event.type = trace::EventType::Complete;
  event.start_us = session->since_start_us(envelope.delivered_at);
  event.duration_us = session->now_us() - event.start_us;
  event.bytes = static_cast<std::int64_t>(envelope.payload.size());
  session->record(std::move(event));
}

Envelope Mailbox::receive(std::uint64_t comm_id, int source, int tag) {
  std::unique_lock lock(mutex_);
  const Bucket* bucket = nullptr;
  std::size_t index = npos;
  std::size_t scanned = 0;
  arrived_.wait(lock, [&] {
    if (aborted_) return true;
    bucket = bucket_for(comm_id);
    if (!bucket) return false;
    index = find_match(*bucket, source, tag, &scanned);
    return index != npos;
  });
  if (aborted_) throw Aborted{};
  auto& mine = buckets_.at(comm_id);
  record_match(mine[index], scanned);
  return take(comm_id, mine, index);
}

std::optional<Envelope> Mailbox::try_receive(std::uint64_t comm_id, int source,
                                             int tag) {
  std::lock_guard lock(mutex_);
  if (aborted_) throw Aborted{};
  const Bucket* bucket = bucket_for(comm_id);
  if (!bucket) return std::nullopt;
  std::size_t scanned = 0;
  const std::size_t index = find_match(*bucket, source, tag, &scanned);
  if (index == npos) return std::nullopt;
  auto& mine = buckets_.at(comm_id);
  record_match(mine[index], scanned);
  return take(comm_id, mine, index);
}

std::optional<Envelope> Mailbox::receive_for(std::uint64_t comm_id, int source,
                                             int tag,
                                             std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  const Bucket* bucket = nullptr;
  std::size_t index = npos;
  std::size_t scanned = 0;
  const bool matched = arrived_.wait_for(lock, timeout, [&] {
    if (aborted_) return true;
    bucket = bucket_for(comm_id);
    if (!bucket) return false;
    index = find_match(*bucket, source, tag, &scanned);
    return index != npos;
  });
  if (aborted_) throw Aborted{};
  if (!matched || index == npos) return std::nullopt;
  auto& mine = buckets_.at(comm_id);
  record_match(mine[index], scanned);
  return take(comm_id, mine, index);
}

Status Mailbox::probe(std::uint64_t comm_id, int source, int tag) {
  std::unique_lock lock(mutex_);
  const Bucket* bucket = nullptr;
  std::size_t index = npos;
  arrived_.wait(lock, [&] {
    if (aborted_) return true;
    bucket = bucket_for(comm_id);
    if (!bucket) return false;
    index = find_match(*bucket, source, tag);
    return index != npos;
  });
  if (aborted_) throw Aborted{};
  const Envelope& e = (*bucket)[index];
  return Status{e.source, e.tag, e.payload.size()};
}

std::optional<Status> Mailbox::try_probe(std::uint64_t comm_id, int source,
                                         int tag) {
  std::lock_guard lock(mutex_);
  if (aborted_) throw Aborted{};
  const Bucket* bucket = bucket_for(comm_id);
  if (!bucket) return std::nullopt;
  const std::size_t index = find_match(*bucket, source, tag);
  if (index == npos) return std::nullopt;
  const Envelope& e = (*bucket)[index];
  return Status{e.source, e.tag, e.payload.size()};
}

std::size_t Mailbox::queued() const {
  std::lock_guard lock(mutex_);
  return queued_;
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  arrived_.notify_all();
}

}  // namespace pdc::mp
