#include "mp/mailbox.hpp"

#include <algorithm>

#include "chaos/chaos.hpp"
#include "trace/trace.hpp"

namespace pdc::mp {

void Mailbox::deliver(Envelope envelope) {
  // An active chaos plan may hold the delivery back (delays, drop-retries)
  // on the sender's thread, and may ask for the envelope to jump the queue.
  const bool reorder = chaos::on_deliver("mp.deliver");
  if (trace::enabled()) {
    envelope.delivered_at = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard lock(mutex_);
    CommQueue& comm = comms_[envelope.comm_id];
    const int source = envelope.source;
    std::uint64_t seq = comm.next_seq;
    if (reorder && comm.pending > 0) {
      // Overtake other senders' queued traffic but never a message from the
      // same source: MPI's non-overtaking guarantee orders successive sends
      // of one sender (wildcard-tag receives can observe cross-tag order, so
      // the whole per-source stream must stay FIFO), while messages from
      // different senders carry no relative-order promise at all. In
      // sequence-number terms: slot the new envelope just before the
      // earliest other-source item that it is allowed to overtake, i.e. the
      // smallest other-source seq greater than every queued same-source seq.
      std::uint64_t barrier_seq = 0;  // must stay after seqs below this
      if (const auto it = comm.by_source.find(source);
          it != comm.by_source.end() && !it->second.empty()) {
        barrier_seq = it->second.back().seq + 1;
      }
      std::uint64_t target = comm.next_seq;
      bool found = false;
      for (const auto& [src, fifo] : comm.by_source) {
        if (src == source) continue;
        // FIFOs are seq-ascending, so the first qualifying item is the
        // earliest overtakable one in this source's stream.
        const auto jt = std::lower_bound(
            fifo.begin(), fifo.end(), barrier_seq,
            [](const Item& item, std::uint64_t s) { return item.seq < s; });
        if (jt != fifo.end() && jt->seq < target) {
          target = jt->seq;
          found = true;
        }
      }
      if (found) {
        // Shift every queued item at or after the target one slot later.
        // Only other-source items qualify (all same-source seqs are below
        // barrier_seq <= target), so per-source FIFO order is untouched and
        // the new envelope still appends to the tail of its own stream.
        for (auto& [src, fifo] : comm.by_source) {
          for (auto rit = fifo.rbegin();
               rit != fifo.rend() && rit->seq >= target; ++rit) {
            ++rit->seq;
          }
        }
        seq = target;
        ++comm.next_seq;  // bumped items may now reach the old next_seq
      }
    }
    if (seq == comm.next_seq) ++comm.next_seq;
    comm.by_source[source].push_back(Item{std::move(envelope), seq});
    ++comm.pending;
    ++queued_;
  }
  arrived_.notify_all();
  // Receivers blocked through a transport progress engine sleep on its
  // doorbell, not on arrived_; every delivery must ring it too (this covers
  // socket-reader deliveries and self-sends in mixed shm+socket mode).
  if (ProgressEngine* engine = progress_.load(std::memory_order_acquire)) {
    engine->kick();
  }
}

Mailbox::CommQueue* Mailbox::comm_for(std::uint64_t comm_id) {
  const auto it = comms_.find(comm_id);
  return it == comms_.end() ? nullptr : &it->second;
}

std::optional<Mailbox::Hit> Mailbox::find_match(CommQueue& comm, int source,
                                                int tag, std::size_t* scanned) {
  if (scanned) *scanned = 0;
  if (source != kAnySource) {
    const auto it = comm.by_source.find(source);
    if (it == comm.by_source.end()) return std::nullopt;
    SourceFifo& fifo = it->second;
    for (std::size_t i = 0; i < fifo.size(); ++i) {
      if (scanned) ++*scanned;
      if (tag == kAnyTag || fifo[i].envelope.tag == tag) return Hit{&fifo, i};
    }
    return std::nullopt;
  }
  // Wildcard source: the overall arrival-order match is the smallest-seq
  // candidate among each source's earliest tag match.
  std::optional<Hit> best;
  std::uint64_t best_seq = 0;
  for (auto& [src, fifo] : comm.by_source) {
    for (std::size_t i = 0; i < fifo.size(); ++i) {
      if (scanned) ++*scanned;
      if (tag != kAnyTag && fifo[i].envelope.tag != tag) continue;
      if (!best || fifo[i].seq < best_seq) {
        best = Hit{&fifo, i};
        best_seq = fifo[i].seq;
      }
      break;  // later items in this FIFO have larger seqs
    }
  }
  return best;
}

Envelope Mailbox::take(std::uint64_t comm_id, CommQueue& comm, const Hit& hit) {
  SourceFifo& fifo = *hit.fifo;
  Envelope out = std::move(fifo[hit.index].envelope);
  fifo.erase(fifo.begin() + static_cast<std::ptrdiff_t>(hit.index));
  if (fifo.empty()) comm.by_source.erase(out.source);
  --comm.pending;
  if (comm.pending == 0) comms_.erase(comm_id);
  --queued_;
  return out;
}

void Mailbox::record_match(const Envelope& envelope, std::size_t scanned) {
  trace::TraceSession* session = trace::TraceSession::active();
  if (!session) return;
  session->add_counter("mailbox.matched", 1.0);
  session->add_counter("mailbox.scanned", static_cast<double>(scanned));
  // The latency event needs a delivery stamp, which is only taken while a
  // session is active; a message delivered before tracing began has none.
  if (envelope.delivered_at == std::chrono::steady_clock::time_point{}) return;
  trace::TraceEvent event;
  event.name = "mailbox.match_wait";
  event.category = "mp.mailbox";
  event.type = trace::EventType::Complete;
  event.start_us = session->since_start_us(envelope.delivered_at);
  event.duration_us = session->now_us() - event.start_us;
  event.bytes = static_cast<std::int64_t>(envelope.size_bytes());
  session->record(std::move(event));
}

Envelope Mailbox::receive(std::uint64_t comm_id, int source, int tag) {
  // With a progress engine installed the blocked receiver must keep pumping
  // the transport, so the wait is a scan → engine->wait loop instead of a
  // condition-variable predicate. Lost-wakeup safety: the epoch is sampled
  // while still holding the lock (deliver needs the same lock, so nothing
  // can slip between the failed scan and the sample), and every deliver
  // kicks the engine after enqueueing — engine->wait(seen) returns as soon
  // as the epoch moves past `seen`.
  std::unique_lock lock(mutex_);
  for (;;) {
    if (aborted_) throw Aborted{};
    if (CommQueue* comm = comm_for(comm_id)) {
      std::size_t scanned = 0;
      if (const auto hit = find_match(*comm, source, tag, &scanned)) {
        record_match((*hit->fifo)[hit->index].envelope, scanned);
        return take(comm_id, *comm, *hit);
      }
    }
    ProgressEngine* engine = progress_.load(std::memory_order_acquire);
    if (!engine) {
      arrived_.wait(lock);
      continue;
    }
    const std::uint64_t seen = engine->epoch();
    lock.unlock();
    engine->wait(seen, std::chrono::milliseconds(100));
    lock.lock();
  }
}

std::optional<Envelope> Mailbox::try_receive(std::uint64_t comm_id, int source,
                                             int tag) {
  // A non-blocking receive never enters engine->wait, so pump once first —
  // otherwise a try_receive spin loop would only see ring traffic at the
  // backstop thread's cadence.
  if (ProgressEngine* engine = progress_.load(std::memory_order_acquire)) {
    engine->poll();
  }
  std::lock_guard lock(mutex_);
  if (aborted_) throw Aborted{};
  CommQueue* comm = comm_for(comm_id);
  if (!comm) return std::nullopt;
  std::size_t scanned = 0;
  const std::optional<Hit> hit = find_match(*comm, source, tag, &scanned);
  if (!hit) return std::nullopt;
  record_match((*hit->fifo)[hit->index].envelope, scanned);
  return take(comm_id, *comm, *hit);
}

std::optional<Envelope> Mailbox::receive_for(std::uint64_t comm_id, int source,
                                             int tag,
                                             std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (aborted_) throw Aborted{};
    if (CommQueue* comm = comm_for(comm_id)) {
      std::size_t scanned = 0;
      if (const auto hit = find_match(*comm, source, tag, &scanned)) {
        record_match((*hit->fifo)[hit->index].envelope, scanned);
        return take(comm_id, *comm, *hit);
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    ProgressEngine* engine = progress_.load(std::memory_order_acquire);
    if (!engine) {
      arrived_.wait_until(lock, deadline);
      continue;
    }
    const std::uint64_t seen = engine->epoch();
    lock.unlock();
    engine->wait(seen, std::min(left, std::chrono::milliseconds(100)));
    lock.lock();
  }
}

Status Mailbox::probe(std::uint64_t comm_id, int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (aborted_) throw Aborted{};
    if (CommQueue* comm = comm_for(comm_id)) {
      if (const auto hit = find_match(*comm, source, tag)) {
        const Envelope& e = (*hit->fifo)[hit->index].envelope;
        return Status{e.source, e.tag, e.size_bytes()};
      }
    }
    ProgressEngine* engine = progress_.load(std::memory_order_acquire);
    if (!engine) {
      arrived_.wait(lock);
      continue;
    }
    const std::uint64_t seen = engine->epoch();
    lock.unlock();
    engine->wait(seen, std::chrono::milliseconds(100));
    lock.lock();
  }
}

std::optional<Status> Mailbox::try_probe(std::uint64_t comm_id, int source,
                                         int tag) {
  if (ProgressEngine* engine = progress_.load(std::memory_order_acquire)) {
    engine->poll();
  }
  std::lock_guard lock(mutex_);
  if (aborted_) throw Aborted{};
  CommQueue* comm = comm_for(comm_id);
  if (!comm) return std::nullopt;
  const std::optional<Hit> hit = find_match(*comm, source, tag);
  if (!hit) return std::nullopt;
  const Envelope& e = (*hit->fifo)[hit->index].envelope;
  return Status{e.source, e.tag, e.size_bytes()};
}

std::size_t Mailbox::queued() const {
  std::lock_guard lock(mutex_);
  return queued_;
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  arrived_.notify_all();
  if (ProgressEngine* engine = progress_.load(std::memory_order_acquire)) {
    engine->kick();
  }
}

void Mailbox::set_progress(ProgressEngine* engine) noexcept {
  progress_.store(engine, std::memory_order_release);
  // Anyone parked on arrived_ across the transition re-evaluates and picks
  // up the new wait protocol.
  arrived_.notify_all();
}

}  // namespace pdc::mp
