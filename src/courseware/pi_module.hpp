#pragma once

#include <memory>

#include "courseware/module.hpp"

namespace pdc::courseware {

/// Build the "Raspberry Pi virtual handout" — the Runestone Interactive
/// stand-alone module of Section III-A, reconstructed as data for the
/// courseware engine.
///
/// Structure and pacing follow the paper: a setup chapter with video
/// walkthroughs, a half hour of processes/threads/multicore concepts
/// (including the race-condition section shown in Fig. 1, with its video
/// and multiple-choice question `sp_mc_2`), an hour of hands-on OpenMP
/// patternlets, and a final half hour with the numerical-integration and
/// drug-design exemplars plus a small benchmarking study — 2 hours total.
///
/// The hands-on activities reference patternlet ids from
/// `pdc::patternlets::global_registry()`, so the module is runnable, not
/// just readable.
std::unique_ptr<Module> build_raspberry_pi_module();

}  // namespace pdc::courseware
