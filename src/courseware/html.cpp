#include "courseware/html.hpp"

#include "courseware/questions.hpp"
#include "support/strings.hpp"

namespace pdc::courseware {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string render_item_html(const ContentItem& item) {
  if (const auto* text = dynamic_cast<const TextBlock*>(&item)) {
    return "<p>" + html_escape(text->text()) + "</p>\n";
  }
  if (const auto* video = dynamic_cast<const Video*>(&item)) {
    const int m = video->duration_seconds() / 60;
    const int s = video->duration_seconds() % 60;
    std::string out = "<div class=\"video\"><a href=\"" +
                      html_escape(video->url()) + "\">&#9654; " +
                      html_escape(video->title()) + "</a> <span class=\"duration\">" +
                      std::to_string(m) + ":" + (s < 10 ? "0" : "") +
                      std::to_string(s) + "</span></div>\n";
    return out;
  }
  if (const auto* code = dynamic_cast<const CodeListing*>(&item)) {
    std::string out;
    if (!code->caption().empty()) {
      out += "<p class=\"caption\">" + html_escape(code->caption()) + "</p>\n";
    }
    out += "<pre class=\"code " + html_escape(code->language()) + "\">" +
           html_escape(code->code()) + "</pre>\n";
    return out;
  }
  if (const auto* act = dynamic_cast<const HandsOnActivity*>(&item)) {
    return "<div class=\"activity\" id=\"" + html_escape(act->activity_id()) +
           "\"><b>Hands-on:</b> " + html_escape(act->instructions()) +
           " <code>" + html_escape(act->patternlet_id()) + "</code></div>\n";
  }
  if (const auto* mcq = dynamic_cast<const MultipleChoice*>(&item)) {
    std::string out = "<form class=\"mcq\" id=\"" +
                      html_escape(mcq->activity_id()) + "\"><p>" +
                      html_escape(mcq->prompt()) + "</p>\n";
    for (std::size_t i = 0; i < mcq->choices().size(); ++i) {
      out += "  <label><input type=\"radio\" name=\"" +
             html_escape(mcq->activity_id()) + "\" value=\"" +
             std::to_string(i) + "\"> " +
             html_escape(mcq->choices()[i].text) + "</label><br>\n";
    }
    out += "  <button type=\"button\">Check me</button>\n</form>\n";
    return out;
  }
  if (const auto* fib = dynamic_cast<const FillInBlank*>(&item)) {
    return "<form class=\"fib\" id=\"" + html_escape(fib->activity_id()) +
           "\"><p>" + html_escape(fib->prompt()) +
           " <input type=\"text\" size=\"12\"></p></form>\n";
  }
  if (const auto* dnd = dynamic_cast<const DragAndDrop*>(&item)) {
    std::string out = "<div class=\"dnd\" id=\"" +
                      html_escape(dnd->activity_id()) + "\"><p>" +
                      html_escape(dnd->prompt()) + "</p>\n  <ul class=\"terms\">";
    for (const auto& [term, target] : dnd->pairs()) {
      out += "<li draggable=\"true\">" + html_escape(term) + "</li>";
    }
    out += "</ul>\n  <ul class=\"targets\">";
    for (const auto& [term, target] : dnd->pairs()) {
      out += "<li>" + html_escape(target) + "</li>";
    }
    out += "</ul>\n</div>\n";
    return out;
  }
  // Unknown item kinds degrade to their text rendering.
  return "<pre>" + html_escape(item.render()) + "</pre>\n";
}

}  // namespace

std::string render_module_html(const Module& module) {
  std::string out = "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n";
  out += "<title>" + html_escape(module.title()) + "</title>\n</head>\n<body>\n";
  out += "<h1>" + html_escape(module.title()) + "</h1>\n";
  out += "<p class=\"description\">" + html_escape(module.description()) +
         "</p>\n";

  // Table of contents.
  out += "<nav><ul>\n";
  for (const auto& chapter : module.chapters()) {
    out += "  <li>" + html_escape(chapter->title()) + "<ul>\n";
    for (const auto& section : chapter->sections()) {
      out += "    <li><a href=\"#sec-" + html_escape(section->number()) +
             "\">" + html_escape(section->number()) + " " +
             html_escape(section->title()) + "</a> (" +
             std::to_string(section->expected_minutes()) + " min)</li>\n";
    }
    out += "  </ul></li>\n";
  }
  out += "</ul></nav>\n";

  // Body.
  for (const auto& chapter : module.chapters()) {
    out += "<h2>" + html_escape(chapter->title()) + "</h2>\n";
    for (const auto& section : chapter->sections()) {
      out += "<h3 id=\"sec-" + html_escape(section->number()) + "\">" +
             html_escape(section->number()) + " " +
             html_escape(section->title()) + "</h3>\n";
      for (const auto& item : section->items()) {
        out += render_item_html(*item);
      }
    }
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace pdc::courseware
