#pragma once

#include <memory>

#include "courseware/module.hpp"

namespace pdc::courseware {

/// Build the distributed-memory module of Section III-B as courseware: the
/// first hour introduces message passing via the mpi4py patternlets in
/// Google Colab; the second hour lets the learner pick an exemplar (the
/// Forest Fire Simulation or the Drug Design example) and a platform (the
/// Chameleon-backed Jupyter notebook or the St. Olaf 64-core VM) to
/// experience real speedup. Paced to the standard 2-hour lab.
///
/// Hands-on activities bind to the `mpi/...` patternlets of
/// `pdc::patternlets::global_registry()`; the Colab itself is modeled by
/// `pdc::notebook::build_mpi4py_notebook()`.
std::unique_ptr<Module> build_distributed_module();

}  // namespace pdc::courseware
