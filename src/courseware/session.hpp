#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "courseware/module.hpp"
#include "courseware/questions.hpp"

namespace pdc::courseware {

/// Per-question bookkeeping within a learner session.
struct AttemptRecord {
  int attempts = 0;
  bool correct = false;
};

/// One learner's pass through a module: answers, attempts, time on task,
/// and completion state — the course/assignment-management side of
/// Runestone that the paper highlights.
class ModuleSession {
 public:
  /// The module must outlive the session.
  explicit ModuleSession(const Module& module);

  /// Submit a multiple-choice answer; returns whether it was correct.
  /// Throws pdc::NotFound for an unknown id and pdc::InvalidArgument if the
  /// activity is not a multiple-choice question.
  bool submit_choice(const std::string& activity_id,
                     const std::set<std::size_t>& selected);

  /// Single-select convenience.
  bool submit_choice(const std::string& activity_id, std::size_t selected) {
    return submit_choice(activity_id, std::set<std::size_t>{selected});
  }

  /// Submit a fill-in-the-blank answer.
  bool submit_blank(const std::string& activity_id, const std::string& answer);

  /// Submit a drag-and-drop matching.
  bool submit_matching(
      const std::string& activity_id,
      const std::vector<std::pair<std::string, std::string>>& placed);

  /// Record self-paced time spent in a section (validates the number).
  void record_time(const std::string& section_number, double minutes);

  /// Mark a section visited/completed (validates the number).
  void complete_section(const std::string& section_number);

  /// Attempts made on one question (0 if never tried).
  [[nodiscard]] int attempts(const std::string& activity_id) const;

  /// Whether the question has been answered correctly at least once.
  [[nodiscard]] bool is_correct(const std::string& activity_id) const;

  /// Questions answered correctly / total questions in the module.
  [[nodiscard]] double score() const;

  /// Sections completed / total sections.
  [[nodiscard]] double completion_fraction() const;

  /// Total recorded minutes across sections.
  [[nodiscard]] double total_minutes() const;

  /// True once every section is complete and every question correct.
  [[nodiscard]] bool finished() const;

 private:
  /// Record the graded outcome of one submission.
  bool record(const std::string& activity_id, bool correct);

  /// Total number of sections in the module.
  [[nodiscard]] std::size_t section_count() const;

  const Module* module_;
  std::map<std::string, AttemptRecord> records_;
  std::set<std::string> completed_sections_;
  std::map<std::string, double> minutes_;
};

}  // namespace pdc::courseware
