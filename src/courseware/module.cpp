#include "courseware/module.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::courseware {

Section::Section(std::string number, std::string title, int expected_minutes)
    : number_(std::move(number)),
      title_(std::move(title)),
      minutes_(expected_minutes) {
  if (minutes_ <= 0) {
    throw InvalidArgument("Section: expected minutes must be positive");
  }
}

Section& Section::add(std::unique_ptr<ContentItem> item) {
  if (!item) throw InvalidArgument("Section::add: null item");
  items_.push_back(std::move(item));
  return *this;
}

std::vector<const ContentItem*> Section::gradable_items() const {
  std::vector<const ContentItem*> out;
  for (const auto& item : items_) {
    if (item->is_gradable()) out.push_back(item.get());
  }
  return out;
}

std::string Section::render() const {
  std::string out = number_ + " " + title_ + "\n";
  out += strings::repeat("-", out.size() - 1) + "\n";
  for (const auto& item : items_) {
    out += item->render() + "\n";
  }
  return out;
}

Chapter::Chapter(std::string title) : title_(std::move(title)) {
  if (title_.empty()) throw InvalidArgument("Chapter: title required");
}

Section& Chapter::add_section(std::string number, std::string title,
                              int expected_minutes) {
  sections_.push_back(std::make_unique<Section>(
      std::move(number), std::move(title), expected_minutes));
  return *sections_.back();
}

int Chapter::expected_minutes() const {
  int total = 0;
  for (const auto& section : sections_) total += section->expected_minutes();
  return total;
}

Module::Module(std::string title, std::string description)
    : title_(std::move(title)), description_(std::move(description)) {
  if (title_.empty()) throw InvalidArgument("Module: title required");
}

Chapter& Module::add_chapter(std::string title) {
  chapters_.push_back(std::make_unique<Chapter>(std::move(title)));
  return *chapters_.back();
}

int Module::expected_minutes() const {
  int total = 0;
  for (const auto& chapter : chapters_) total += chapter->expected_minutes();
  return total;
}

std::size_t Module::question_count() const {
  std::size_t count = 0;
  for (const auto& chapter : chapters_) {
    for (const auto& section : chapter->sections()) {
      count += section->gradable_items().size();
    }
  }
  return count;
}

const Section& Module::section(const std::string& number) const {
  for (const auto& chapter : chapters_) {
    for (const auto& section : chapter->sections()) {
      if (section->number() == number) return *section;
    }
  }
  throw NotFound("Module: no section numbered '" + number + "'");
}

const ContentItem& Module::question(const std::string& activity_id) const {
  for (const auto& chapter : chapters_) {
    for (const auto& section : chapter->sections()) {
      for (const ContentItem* item : section->gradable_items()) {
        if (item->activity_id() == activity_id) return *item;
      }
    }
  }
  throw NotFound("Module: no question with activity id '" + activity_id + "'");
}

std::string Module::table_of_contents() const {
  std::string out = title_ + "\n";
  for (const auto& chapter : chapters_) {
    out += chapter->title() + "\n";
    for (const auto& section : chapter->sections()) {
      out += "  " + section->number() + " " + section->title() + " (" +
             std::to_string(section->expected_minutes()) + " min)\n";
    }
  }
  out += "Total: " + std::to_string(expected_minutes()) + " minutes\n";
  return out;
}

std::string Module::render() const {
  std::string out = "=== " + title_ + " ===\n" + description_ + "\n\n";
  for (const auto& chapter : chapters_) {
    out += "## " + chapter->title() + "\n\n";
    for (const auto& section : chapter->sections()) {
      out += section->render() + "\n";
    }
  }
  return out;
}

}  // namespace pdc::courseware
