#include "courseware/mpi_module.hpp"

#include "courseware/questions.hpp"
#include "patterns/taxonomy.hpp"

namespace pdc::courseware {

namespace {

std::unique_ptr<TextBlock> text(std::string t) {
  return std::make_unique<TextBlock>(std::move(t));
}

std::unique_ptr<HandsOnActivity> activity(std::string id, std::string instr,
                                          std::string patternlet_id,
                                          int procs = 4) {
  patterns::RunOptions options;
  options.num_procs = procs;
  return std::make_unique<HandsOnActivity>(std::move(id), std::move(instr),
                                           std::move(patternlet_id), options);
}

}  // namespace

std::unique_ptr<Module> build_distributed_module() {
  auto module = std::make_unique<Module>(
      "Hands-on Distributed Computing with mpi4py in the Cloud",
      "A self-paced 2-hour module: learn the message-passing patterns with "
      "mpi4py patternlets in a Google Colab notebook (no setup beyond a "
      "free Google account), then experience real speedup by running an "
      "exemplar on a cluster.");

  // ---- Chapter 1: the Colab patternlets hour.
  auto& colab = module->add_chapter("1. Message Passing in the Colab");
  {
    auto& s = colab.add_section("1.1", "Getting started with Colab", 10);
    s.add(text(
        "Open the shared notebook and save a copy to your Google Drive. "
        "Code cells run on a cloud VM: %%writefile saves a cell as a Python "
        "file and !mpirun launches it on several processes. The VM has a "
        "single core -- fine for learning the concepts, but remember that "
        "real speedup needs real parallel hardware."));
    s.add(std::make_unique<Video>(
        "Colab in three minutes: cells, files, and mpirun", 184,
        "https://colab.research.google.com/drive/mpi4py_patternlets"));
    s.add(std::make_unique<MultipleChoice>(
        "dm_mc_1",
        "Q-1: The Colab VM has one core. What can it still teach well?",
        std::vector<Choice>{
            {"Parallel speedup", "No -- one core cannot run faster than "
                                 "itself; that is the cluster's job."},
            {"Message-passing concepts and patterns",
             "Right: processes, ranks, sends and receives all behave "
             "faithfully on one core."},
            {"Nothing useful", "Too pessimistic!"}},
        std::set<std::size_t>{1}));
  }
  {
    auto& s = colab.add_section("1.2", "SPMD and point-to-point messages", 25);
    s.add(activity("dm_act_1",
                   "Run 00spmd.py with -np 4, then -np 2 and -np 8. What "
                   "changes?",
                   "mpi/00-spmd"));
    s.add(activity("dm_act_2", "Run the send-receive patternlet.",
                   "mpi/01-send-receive"));
    s.add(activity("dm_act_3",
                   "Run the master-worker patternlet and identify the "
                   "conductor's rank.",
                   "mpi/03-master-worker"));
    s.add(std::make_unique<FillInBlank>(
        "dm_fib_1",
        "In an SPMD program every process runs the same program but learns "
        "its own identity, called its ____.",
        std::vector<std::string>{"rank", "id", "process rank"}));
  }
  {
    auto& s = colab.add_section("1.3", "Collective communication", 25);
    s.add(activity("dm_act_4", "Broadcast a list from the conductor.",
                   "mpi/06-broadcast"));
    s.add(activity("dm_act_5", "Scatter chunks and gather them back.",
                   "mpi/07-scatter"));
    s.add(activity("dm_act_6", "Reduce: sum and max across processes.",
                   "mpi/09-reduce"));
    // Collective-vocabulary matching straight from the taxonomy.
    std::vector<std::pair<std::string, std::string>> pairs;
    for (patterns::Pattern p :
         {patterns::Pattern::Broadcast, patterns::Pattern::Scatter,
          patterns::Pattern::Gather, patterns::Pattern::Reduction}) {
      pairs.emplace_back(patterns::to_string(p), patterns::definition_of(p));
    }
    s.add(std::make_unique<DragAndDrop>(
        "dm_dd_1", "Match each collective to what it does:", std::move(pairs)));
  }

  // ---- Chapter 2: the exemplar hour on real hardware.
  auto& exemplar = module->add_chapter("2. Experiencing Speedup on a Cluster");
  {
    auto& s = exemplar.add_section("2.1", "Choose your platform", 10);
    s.add(text(
        "Two routes to real parallel hardware: (i) a Jupyter notebook whose "
        "backend is a cluster on the Chameleon Cloud testbed, or (ii) a VNC "
        "connection to a 64-core VM at St. Olaf. Both run the same "
        "exemplars; pick either. If your VNC access gets blocked (it "
        "happens when logins are attempted before reading the "
        "instructions!), ssh to the same VM instead."));
    s.add(std::make_unique<MultipleChoice>(
        "dm_mc_2",
        "Q-2: Your VNC connection is refused after several failed login "
        "attempts. What should you do?",
        std::vector<Choice>{
            {"Keep retrying VNC with the right password",
             "The firewall block ignores your now-correct password."},
            {"ssh to the same VM and continue in the terminal",
             "Right -- that is exactly the workaround the workshop used."},
            {"Give up on the exercise", "Never!"}},
        std::set<std::size_t>{1}));
  }
  {
    auto& s = exemplar.add_section("2.2", "Exemplar: Forest Fire Simulation",
                                   30);
    s.add(text(
        "A Monte Carlo study: light the center of a forest, spread fire to "
        "neighbors with probability p, and average hundreds of trials per p "
        "to plot burned area and burn duration. The trials are independent "
        "-- farm them across ranks and watch the sweep accelerate."));
    s.add(std::make_unique<FillInBlank>(
        "dm_fib_2",
        "If a sweep of 2000 independent trials takes 64 seconds on 1 "
        "process, a perfectly balanced 16-process run takes about ____ "
        "seconds.",
        4.0, 0.01));
  }
  {
    auto& s = exemplar.add_section("2.3", "Exemplar: Drug Design", 30);
    s.add(text(
        "Score candidate ligands against a protein with the longest common "
        "subsequence. Scoring cost varies with ligand length, so use the "
        "master-worker pattern: the conductor deals ligands to whichever "
        "worker frees up first."));
    s.add(std::make_unique<MultipleChoice>(
        "dm_mc_3",
        "Q-3: Why master-worker here rather than equal chunks?",
        std::vector<Choice>{
            {"Ligand scoring costs vary, so pre-assigned chunks imbalance",
             "Correct: dealing work on demand keeps every worker busy."},
            {"MPI cannot scatter strings", "It can."},
            {"Master-worker is always fastest",
             "Not always -- the master can become the bottleneck."}},
        std::set<std::size_t>{0}));
    s.add(std::make_unique<FillInBlank>(
        "dm_fib_3",
        "With one conductor and 15 workers on 16 cores, at most ____ "
        "processes score ligands at any instant.",
        15.0, 0.0));
  }
  {
    auto& s = exemplar.add_section("2.4", "Your benchmarking report", 20);
    s.add(text(
        "Run your chosen exemplar on 1, 2, 4, 8 and 16 processes; tabulate "
        "time, speedup (t1/tp) and efficiency (speedup/p); then explain "
        "where and why efficiency starts to fall. Amdahl's law plus "
        "communication costs should cover it."));
    s.add(std::make_unique<FillInBlank>(
        "dm_fib_4",
        "A run with speedup 12 on 16 processes has efficiency ____.",
        0.75, 0.001));
  }

  return module;
}

}  // namespace pdc::courseware
