#include "courseware/questions.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::courseware {

Question::Question(std::string activity_id, std::string prompt)
    : id_(std::move(activity_id)), prompt_(std::move(prompt)) {
  if (id_.empty()) throw InvalidArgument("Question: activity id required");
  if (prompt_.empty()) throw InvalidArgument("Question: prompt required");
}

MultipleChoice::MultipleChoice(std::string activity_id, std::string prompt,
                               std::vector<Choice> choices,
                               std::set<std::size_t> correct)
    : Question(std::move(activity_id), std::move(prompt)),
      choices_(std::move(choices)),
      correct_(std::move(correct)) {
  if (choices_.size() < 2) {
    throw InvalidArgument("MultipleChoice: need at least two choices");
  }
  if (correct_.empty()) {
    throw InvalidArgument("MultipleChoice: need at least one correct choice");
  }
  for (std::size_t c : correct_) {
    if (c >= choices_.size()) {
      throw InvalidArgument("MultipleChoice: correct index out of range");
    }
  }
}

std::string MultipleChoice::render() const {
  std::string out = prompt_ + "\n";
  for (std::size_t i = 0; i < choices_.size(); ++i) {
    out += "  ";
    out += static_cast<char>('A' + i);
    out += ". " + choices_[i].text + "\n";
  }
  out += "  [Check me]   Activity: " + id_ + "\n";
  return out;
}

bool MultipleChoice::grade(const std::set<std::size_t>& selected) const {
  for (std::size_t s : selected) {
    if (s >= choices_.size()) {
      throw InvalidArgument("MultipleChoice::grade: choice out of range");
    }
  }
  return selected == correct_;
}

const std::string& MultipleChoice::feedback_for(std::size_t choice) const {
  if (choice >= choices_.size()) {
    throw InvalidArgument("MultipleChoice::feedback_for: choice out of range");
  }
  return choices_[choice].feedback;
}

FillInBlank::FillInBlank(std::string activity_id, std::string prompt,
                         std::vector<std::string> accepted)
    : Question(std::move(activity_id), std::move(prompt)) {
  if (accepted.empty()) {
    throw InvalidArgument("FillInBlank: need at least one accepted answer");
  }
  accepted_.reserve(accepted.size());
  for (const auto& a : accepted) {
    accepted_.push_back(strings::to_lower(strings::trim(a)));
  }
}

FillInBlank::FillInBlank(std::string activity_id, std::string prompt,
                         double expected, double tolerance)
    : Question(std::move(activity_id), std::move(prompt)),
      expected_number_(expected),
      tolerance_(tolerance) {
  if (tolerance < 0.0) {
    throw InvalidArgument("FillInBlank: tolerance must be non-negative");
  }
}

std::string FillInBlank::render() const {
  return prompt_ + "  ________   Activity: " + id_ + "\n";
}

bool FillInBlank::grade(const std::string& answer) const {
  const std::string cleaned = strings::to_lower(strings::trim(answer));
  if (expected_number_) {
    char* end = nullptr;
    const double value = std::strtod(cleaned.c_str(), &end);
    if (end == cleaned.c_str()) return false;  // not a number
    return std::abs(value - *expected_number_) <= tolerance_;
  }
  return std::find(accepted_.begin(), accepted_.end(), cleaned) !=
         accepted_.end();
}

DragAndDrop::DragAndDrop(
    std::string activity_id, std::string prompt,
    std::vector<std::pair<std::string, std::string>> pairs)
    : Question(std::move(activity_id), std::move(prompt)),
      pairs_(std::move(pairs)) {
  if (pairs_.size() < 2) {
    throw InvalidArgument("DragAndDrop: need at least two pairs");
  }
}

std::string DragAndDrop::render() const {
  std::string out = prompt_ + "\n";
  out += "  drag:   ";
  for (const auto& [term, target] : pairs_) out += "[" + term + "] ";
  out += "\n  targets: ";
  for (const auto& [term, target] : pairs_) out += "(" + target + ") ";
  out += "\n  Activity: " + id_ + "\n";
  return out;
}

double DragAndDrop::partial_credit(
    const std::vector<std::pair<std::string, std::string>>& placed) const {
  std::size_t correct = 0;
  for (const auto& [term, target] : placed) {
    for (const auto& [want_term, want_target] : pairs_) {
      if (term == want_term && target == want_target) {
        ++correct;
        break;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(pairs_.size());
}

bool DragAndDrop::grade(
    const std::vector<std::pair<std::string, std::string>>& placed) const {
  return placed.size() == pairs_.size() && partial_credit(placed) == 1.0;
}

}  // namespace pdc::courseware
