#pragma once

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "courseware/content.hpp"

namespace pdc::courseware {

/// Base class of gradable items (Runestone's interactive questions).
class Question : public ContentItem {
 public:
  Question(std::string activity_id, std::string prompt);

  [[nodiscard]] bool is_gradable() const override { return true; }
  [[nodiscard]] std::string activity_id() const override { return id_; }
  [[nodiscard]] const std::string& prompt() const noexcept { return prompt_; }

 protected:
  std::string id_;
  std::string prompt_;
};

/// One selectable option of a multiple-choice question, with the per-option
/// feedback Runestone shows after checking.
struct Choice {
  std::string text;
  std::string feedback;
};

/// Multiple-choice question (single- or multi-select) — the question type
/// shown in the paper's Fig. 1.
class MultipleChoice final : public Question {
 public:
  MultipleChoice(std::string activity_id, std::string prompt,
                 std::vector<Choice> choices, std::set<std::size_t> correct);

  [[nodiscard]] std::string kind() const override { return "multiple-choice"; }
  [[nodiscard]] std::string render() const override;

  /// Grade a selection; exact match with the correct set is required.
  [[nodiscard]] bool grade(const std::set<std::size_t>& selected) const;

  /// Single-select convenience.
  [[nodiscard]] bool grade(std::size_t selected) const {
    return grade(std::set<std::size_t>{selected});
  }

  /// Feedback for one choice (after the learner checks an answer).
  [[nodiscard]] const std::string& feedback_for(std::size_t choice) const;

  [[nodiscard]] const std::vector<Choice>& choices() const noexcept {
    return choices_;
  }
  [[nodiscard]] const std::set<std::size_t>& correct() const noexcept {
    return correct_;
  }

 private:
  std::vector<Choice> choices_;
  std::set<std::size_t> correct_;
};

/// Fill-in-the-blank question. Accepts any of a set of string answers
/// (case-insensitive, trimmed) or a numeric answer within a tolerance.
class FillInBlank final : public Question {
 public:
  /// Text-answer variant.
  FillInBlank(std::string activity_id, std::string prompt,
              std::vector<std::string> accepted);

  /// Numeric-answer variant: correct iff |answer - expected| <= tolerance.
  FillInBlank(std::string activity_id, std::string prompt, double expected,
              double tolerance);

  [[nodiscard]] std::string kind() const override { return "fill-in-blank"; }
  [[nodiscard]] std::string render() const override;

  /// Grade a raw learner answer (string form; numeric questions parse it).
  [[nodiscard]] bool grade(const std::string& answer) const;

 private:
  std::vector<std::string> accepted_;       // lowercase, trimmed
  std::optional<double> expected_number_;
  double tolerance_ = 0.0;
};

/// Drag-and-drop matching question: each draggable term must be dropped on
/// its matching target (e.g. pattern name -> definition).
class DragAndDrop final : public Question {
 public:
  /// `pairs` maps each term to its correct target.
  DragAndDrop(std::string activity_id, std::string prompt,
              std::vector<std::pair<std::string, std::string>> pairs);

  [[nodiscard]] std::string kind() const override { return "drag-and-drop"; }
  [[nodiscard]] std::string render() const override;

  /// Grade a full matching; true iff every term maps to its correct target.
  [[nodiscard]] bool grade(
      const std::vector<std::pair<std::string, std::string>>& placed) const;

  /// Fraction of terms placed correctly (partial credit display).
  [[nodiscard]] double partial_credit(
      const std::vector<std::pair<std::string, std::string>>& placed) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& pairs()
      const noexcept {
    return pairs_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

}  // namespace pdc::courseware
