#pragma once

#include <memory>
#include <string>
#include <vector>

#include "patterns/patternlet.hpp"

namespace pdc::patterns {
class Registry;
}

namespace pdc::courseware {

/// Base class of everything that can appear in a module section: expository
/// text, videos, code listings, hands-on activities, and the interactive
/// questions defined in questions.hpp.
class ContentItem {
 public:
  virtual ~ContentItem() = default;

  /// Machine-readable kind, e.g. "text", "video", "multiple-choice".
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Plain-text rendering for terminal display (what the bench binaries
  /// print when they regenerate Fig. 1).
  [[nodiscard]] virtual std::string render() const = 0;

  /// True for interactive questions that can be graded.
  [[nodiscard]] virtual bool is_gradable() const { return false; }

  /// Stable activity id (Runestone-style, e.g. "sp_mc_2"); empty for
  /// non-interactive items.
  [[nodiscard]] virtual std::string activity_id() const { return {}; }
};

/// A paragraph (or several) of expository text.
class TextBlock final : public ContentItem {
 public:
  explicit TextBlock(std::string text);
  [[nodiscard]] std::string kind() const override { return "text"; }
  [[nodiscard]] std::string render() const override;
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

/// An instructional video. The binary cannot embed MP4s, so the model keeps
/// what the engine actually needs: identity, duration (for pacing), and a
/// transcript stub (for search/accessibility).
class Video final : public ContentItem {
 public:
  Video(std::string title, int duration_seconds, std::string url,
        std::string transcript = {});
  [[nodiscard]] std::string kind() const override { return "video"; }
  [[nodiscard]] std::string render() const override;
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] int duration_seconds() const noexcept { return duration_s_; }
  [[nodiscard]] const std::string& url() const noexcept { return url_; }
  [[nodiscard]] const std::string& transcript() const noexcept {
    return transcript_;
  }

 private:
  std::string title_;
  int duration_s_;
  std::string url_;
  std::string transcript_;
};

/// A displayed source listing (the patternlet code the learner reads).
class CodeListing final : public ContentItem {
 public:
  CodeListing(std::string language, std::string caption, std::string code);
  [[nodiscard]] std::string kind() const override { return "code"; }
  [[nodiscard]] std::string render() const override;
  [[nodiscard]] const std::string& language() const noexcept { return language_; }
  [[nodiscard]] const std::string& code() const noexcept { return code_; }
  [[nodiscard]] const std::string& caption() const noexcept { return caption_; }

 private:
  std::string language_;
  std::string caption_;
  std::string code_;
};

/// A hands-on exercise: "run this patternlet on your Pi with these
/// parameters". Bound to the patternlet registry so the courseware (and the
/// virtual_module example) can actually execute it.
class HandsOnActivity final : public ContentItem {
 public:
  HandsOnActivity(std::string activity_id, std::string instructions,
                  std::string patternlet_id, patterns::RunOptions options);

  [[nodiscard]] std::string kind() const override { return "activity"; }
  [[nodiscard]] std::string render() const override;
  [[nodiscard]] std::string activity_id() const override { return id_; }
  [[nodiscard]] const std::string& patternlet_id() const noexcept {
    return patternlet_id_;
  }
  [[nodiscard]] const patterns::RunOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::string& instructions() const noexcept {
    return instructions_;
  }

  /// Execute the bound patternlet from `registry` and return its output.
  [[nodiscard]] std::vector<std::string> execute(
      const patterns::Registry& registry) const;

 private:
  std::string id_;
  std::string instructions_;
  std::string patternlet_id_;
  patterns::RunOptions options_;
};

}  // namespace pdc::courseware
