#include "courseware/pi_module.hpp"

#include "courseware/questions.hpp"
#include "patterns/taxonomy.hpp"

namespace pdc::courseware {

namespace {

std::unique_ptr<TextBlock> text(std::string t) {
  return std::make_unique<TextBlock>(std::move(t));
}

std::unique_ptr<HandsOnActivity> activity(std::string id, std::string instr,
                                          std::string patternlet_id,
                                          std::size_t threads = 4) {
  patterns::RunOptions options;
  options.num_threads = threads;
  return std::make_unique<HandsOnActivity>(std::move(id), std::move(instr),
                                           std::move(patternlet_id), options);
}

}  // namespace

std::unique_ptr<Module> build_raspberry_pi_module() {
  auto module = std::make_unique<Module>(
      "Hands-on Multicore Computing with OpenMP on the Raspberry Pi",
      "A self-paced 2-hour virtual module: set up your Raspberry Pi, learn "
      "the vocabulary of shared-memory parallel computing, explore the "
      "OpenMP patternlets hands-on, and finish with two exemplar "
      "applications and a small benchmarking study.");

  // ---- Chapter 1: setup (the videos credited with the zero-issue session).
  auto& setup = module->add_chapter("1. Getting Started with your Raspberry Pi");
  {
    auto& s = setup.add_section("1.1", "Unboxing and flashing your kit", 5);
    s.add(text(
        "Your mailed kit contains a CanaKit Raspberry Pi 4, an Ethernet "
        "cable, an Ethernet-USB adapter, and a 16GB microSD card preloaded "
        "with the custom CSinParallel system image. If you already own a Pi "
        "(model 3B or newer), download the image and flash it yourself."));
    s.add(std::make_unique<Video>(
        "Flashing the CSinParallel image onto your microSD card", 263,
        "https://pdcbook.calvin.edu/pdcbook/RaspberryPiHandout/setup1",
        "Insert the card, run the imager, select the csip-image zip, write, "
        "verify, eject."));
    s.add(std::make_unique<FillInBlank>(
        "setup_fib_1",
        "The custom system image works on all Raspberry Pi models from the "
        "____ onward.",
        std::vector<std::string>{"3b", "pi 3b", "raspberry pi 3b", "3 b"}));
  }
  {
    auto& s = setup.add_section("1.2", "Connecting the Pi to your laptop", 5);
    s.add(text(
        "Your laptop doubles as the Pi's monitor, keyboard and mouse: "
        "connect the Ethernet cable between the Pi and the Ethernet-USB "
        "adapter, plug the adapter into your laptop, and open a VNC viewer "
        "at raspberrypi.local. This works the same on Linux, macOS and "
        "Windows."));
    s.add(std::make_unique<Video>(
        "Connecting with a direct Ethernet link and VNC", 341,
        "https://pdcbook.calvin.edu/pdcbook/RaspberryPiHandout/setup2",
        "Cable, adapter, link-local addressing, VNC viewer, troubleshooting "
        "tips for common failures."));
    s.add(std::make_unique<MultipleChoice>(
        "setup_mc_1", "Q-1: Why do the kits include an Ethernet-USB dongle?",
        std::vector<Choice>{
            {"To speed up the Pi's internet downloads",
             "No -- the link is between your laptop and the Pi."},
            {"So the Pi and a laptop can talk directly, with the laptop "
             "acting as the Pi's display and keyboard",
             "Right: no monitor, spare keyboard, or router required."},
            {"To let the Pi join a Beowulf cluster",
             "Clusters are fun, but that is not what the kit targets."}},
        std::set<std::size_t>{1}));
  }

  // ---- Chapter 2: concepts (the first half hour of the module).
  auto& concepts = module->add_chapter("2. Shared-Memory Concepts");
  {
    auto& s = concepts.add_section("2.1", "Processes, threads, and cores", 10);
    s.add(text(
        "A process is a running program with its own memory; a thread is an "
        "independent flow of control inside a process, sharing that memory "
        "with its sibling threads. Your Raspberry Pi's CPU has four cores, "
        "so four threads can execute truly simultaneously."));
    s.add(std::make_unique<Video>(
        "Processes, threads, and your Pi's four cores", 178,
        "https://pdcbook.calvin.edu/pdcbook/RaspberryPiHandout/concepts1"));
    s.add(std::make_unique<MultipleChoice>(
        "sp_mc_1",
        "Q-1: Two threads of the same process always share which of the "
        "following?",
        std::vector<Choice>{
            {"Their program counter", "Each thread has its own."},
            {"Their function-call stack", "Each thread has its own stack."},
            {"The process's global memory",
             "Correct -- and that sharing is both the power and the danger."}},
        std::set<std::size_t>{2}));
  }
  {
    auto& s = concepts.add_section("2.2", "OpenMP and the patternlets", 10);
    s.add(text(
        "OpenMP lets you parallelize C programs by adding #pragma "
        "directives. Each patternlet is a tiny, complete program that "
        "isolates one parallel design pattern; you will build and run each "
        "one on your Pi, predict its output, and then explain what you "
        "actually observed."));
    s.add(std::make_unique<CodeListing>(
        "c", "Your first patternlet (omp/00-spmd):",
        "#pragma omp parallel\n"
        "{\n"
        "  int id = omp_get_thread_num();\n"
        "  int numThreads = omp_get_num_threads();\n"
        "  printf(\"Hello from thread %d of %d\\n\", id, numThreads);\n"
        "}\n"));
    // Pattern-vocabulary matching built straight from the taxonomy.
    std::vector<std::pair<std::string, std::string>> pairs;
    for (patterns::Pattern p :
         {patterns::Pattern::SPMD, patterns::Pattern::ForkJoin,
          patterns::Pattern::Reduction, patterns::Pattern::Barrier}) {
      pairs.emplace_back(patterns::to_string(p), patterns::definition_of(p));
    }
    s.add(std::make_unique<DragAndDrop>(
        "sp_dd_1", "Match each pattern to its definition:", std::move(pairs)));
  }
  {
    auto& s = concepts.add_section("2.3", "Race Conditions", 10);
    s.add(text("The following video will help you understand what is going "
               "on:"));
    s.add(std::make_unique<Video>(
        "Race conditions", 122,
        "https://pdcbook.calvin.edu/pdcbook/RaspberryPiHandout/race",
        "Two threads read the same balance, both add one, both write back: "
        "one update vanishes."));
    s.add(text("Try and answer the following question:"));
    // The exact question shown in the paper's Fig. 1 (activity sp_mc_2).
    s.add(std::make_unique<MultipleChoice>(
        "sp_mc_2", "Q-2: What is a race condition?",
        std::vector<Choice>{
            {"It is the smallest set of instructions that must execute "
             "sequentially to ensure correctness.",
             "That describes a critical section's *contents*, not the race."},
            {"It is a mechanism that helps protect a resource.",
             "That describes mutual exclusion -- the *cure*, not the disease."},
            {"It is something that arises when two or more threads attempt "
             "to modify a shared variable.",
             "Correct: uncoordinated concurrent updates make the outcome "
             "depend on timing."}},
        std::set<std::size_t>{2}));
  }

  // ---- Chapter 3: the hands-on hour.
  auto& hands_on = module->add_chapter("3. Exploring the Patternlets");
  {
    auto& s = hands_on.add_section("3.1", "SPMD and fork-join", 15);
    s.add(activity("sp_act_1",
                   "Build and run the SPMD patternlet three times. Does the "
                   "greeting order repeat?",
                   "omp/00-spmd"));
    s.add(activity("sp_act_2",
                   "Run the fork-join patternlets and map each output line "
                   "to its region.",
                   "omp/01-fork-join"));
    s.add(std::make_unique<MultipleChoice>(
        "sp_mc_3",
        "Q-3: With 4 threads, how many 'During...' lines does the fork-join "
        "patternlet print?",
        std::vector<Choice>{{"1", "Each team member executes the block."},
                            {"4", "Correct: one per team member."},
                            {"It varies", "The count is fixed; the order is "
                                          "what varies."}},
        std::set<std::size_t>{1}));
  }
  {
    auto& s = hands_on.add_section("3.2", "Parallel loops", 15);
    s.add(activity("sp_act_3",
                   "Run the equal-chunks loop; note which iterations thread "
                   "0 performs.",
                   "omp/03-parallel-loop-equal-chunks"));
    s.add(activity("sp_act_4",
                   "Now the chunks-of-1 loop; compare the assignment of "
                   "iterations to threads.",
                   "omp/04-parallel-loop-chunks-of-1"));
    s.add(std::make_unique<FillInBlank>(
        "sp_fib_1",
        "With 16 iterations and 4 threads, schedule(static,1) gives thread 1 "
        "iterations 1, 5, 9, and ____.",
        13.0, 0.0));
  }
  {
    auto& s = hands_on.add_section("3.3", "Races, mutual exclusion, reduction",
                                   15);
    s.add(activity("sp_act_5",
                   "Run the race-condition patternlet several times and "
                   "record the lost-update counts.",
                   "omp/07-race-condition"));
    s.add(activity("sp_act_6",
                   "Fix it two ways: run the critical and atomic versions.",
                   "omp/08-critical"));
    s.add(activity("sp_act_7", "And the reduction patternlet.",
                   "omp/05-reduction"));
    s.add(std::make_unique<MultipleChoice>(
        "sp_mc_4",
        "Q-4: Which fix should you prefer for a single simple update of one "
        "shared variable?",
        std::vector<Choice>{
            {"#pragma omp critical",
             "Works, but serializes more than necessary."},
            {"#pragma omp atomic",
             "Correct: hardware-level and cheapest for single updates."},
            {"Running with one thread", "Safe but defeats the purpose!"}},
        std::set<std::size_t>{1}));
  }
  {
    auto& s = hands_on.add_section("3.4", "Coordination patterns", 15);
    s.add(activity("sp_act_8", "Run the master-worker patternlet.",
                   "omp/10-master-worker"));
    s.add(activity("sp_act_9",
                   "Run the barrier patternlet: verify no AFTER precedes a "
                   "BEFORE.",
                   "omp/11-barrier"));
    s.add(activity("sp_act_10",
                   "Run the dynamic-schedule patternlet and explain why the "
                   "iteration order is scrambled.",
                   "omp/13-dynamic-schedule"));
  }

  // ---- Chapter 4: exemplars + the benchmarking study (final half hour).
  auto& exemplars = module->add_chapter("4. Exemplar Applications");
  {
    auto& s = exemplars.add_section("4.1", "Numerical integration", 10);
    s.add(text(
        "Approximate pi by integrating sqrt(1-x^2) over [-1,1] with the "
        "trapezoidal rule. The loop's iterations are independent, so a "
        "parallel-for with a reduction parallelizes it directly."));
    s.add(std::make_unique<FillInBlank>(
        "ex_fib_1",
        "A program that takes 8.0 seconds on 1 thread and 2.0 seconds on 4 "
        "threads achieved a speedup of ____.",
        4.0, 0.01));
  }
  {
    auto& s = exemplars.add_section("4.2", "Drug design and benchmarking", 20);
    s.add(text(
        "Score randomly generated ligands against a protein string with the "
        "longest-common-subsequence measure; longer ligands cost more to "
        "score, so a dynamic schedule balances the load. Time the serial "
        "and parallel versions on 1, 2, and 4 cores of your Pi and tabulate "
        "speedup and efficiency -- your first benchmarking study."));
    s.add(std::make_unique<MultipleChoice>(
        "ex_mc_1",
        "Q-5: Why does the drug-design exemplar benefit from "
        "schedule(dynamic) while numerical integration does not?",
        std::vector<Choice>{
            {"Its iterations have unequal costs",
             "Correct: ligand lengths vary, so static chunks imbalance."},
            {"It uses more memory", "Memory use is not the issue."},
            {"Dynamic scheduling is always faster",
             "Dynamic scheduling adds overhead; it pays off only under "
             "imbalance."}},
        std::set<std::size_t>{0}));
  }

  return module;
}

}  // namespace pdc::courseware
