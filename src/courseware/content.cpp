#include "courseware/content.hpp"

#include "patterns/registry.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace pdc::courseware {

TextBlock::TextBlock(std::string text) : text_(std::move(text)) {
  if (text_.empty()) throw InvalidArgument("TextBlock: text required");
}

std::string TextBlock::render() const { return text_ + "\n"; }

Video::Video(std::string title, int duration_seconds, std::string url,
             std::string transcript)
    : title_(std::move(title)),
      duration_s_(duration_seconds),
      url_(std::move(url)),
      transcript_(std::move(transcript)) {
  if (duration_s_ <= 0) {
    throw InvalidArgument("Video: duration must be positive");
  }
}

std::string Video::render() const {
  const int minutes = duration_s_ / 60;
  const int seconds = duration_s_ % 60;
  std::string out = "[VIDEO] " + title_ + " (" + std::to_string(minutes) + ":" +
                    (seconds < 10 ? "0" : "") + std::to_string(seconds) + ")";
  if (!url_.empty()) out += "  <" + url_ + ">";
  out += "\n";
  if (!transcript_.empty()) {
    out += "  transcript: " + transcript_ + "\n";
  }
  return out;
}

CodeListing::CodeListing(std::string language, std::string caption,
                         std::string code)
    : language_(std::move(language)),
      caption_(std::move(caption)),
      code_(std::move(code)) {
  if (code_.empty()) throw InvalidArgument("CodeListing: code required");
}

std::string CodeListing::render() const {
  std::string out;
  if (!caption_.empty()) out += caption_ + "\n";
  out += "```" + language_ + "\n" + code_;
  if (code_.back() != '\n') out += "\n";
  out += "```\n";
  return out;
}

HandsOnActivity::HandsOnActivity(std::string activity_id,
                                 std::string instructions,
                                 std::string patternlet_id,
                                 patterns::RunOptions options)
    : id_(std::move(activity_id)),
      instructions_(std::move(instructions)),
      patternlet_id_(std::move(patternlet_id)),
      options_(options) {
  if (id_.empty()) throw InvalidArgument("HandsOnActivity: id required");
  if (patternlet_id_.empty()) {
    throw InvalidArgument("HandsOnActivity: patternlet id required");
  }
}

std::string HandsOnActivity::render() const {
  return "[HANDS-ON " + id_ + "] " + instructions_ + "\n  run: " +
         patternlet_id_ + " (threads=" + std::to_string(options_.num_threads) +
         ", procs=" + std::to_string(options_.num_procs) + ")\n";
}

std::vector<std::string> HandsOnActivity::execute(
    const patterns::Registry& registry) const {
  return registry.at(patternlet_id_).run(options_);
}

}  // namespace pdc::courseware
