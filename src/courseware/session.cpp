#include "courseware/session.hpp"

#include "support/error.hpp"

namespace pdc::courseware {

ModuleSession::ModuleSession(const Module& module) : module_(&module) {}

bool ModuleSession::record(const std::string& activity_id, bool correct) {
  AttemptRecord& rec = records_[activity_id];
  ++rec.attempts;
  if (correct) rec.correct = true;
  return correct;
}

bool ModuleSession::submit_choice(const std::string& activity_id,
                                  const std::set<std::size_t>& selected) {
  const auto* question =
      dynamic_cast<const MultipleChoice*>(&module_->question(activity_id));
  if (!question) {
    throw InvalidArgument("submit_choice: '" + activity_id +
                          "' is not a multiple-choice question");
  }
  return record(activity_id, question->grade(selected));
}

bool ModuleSession::submit_blank(const std::string& activity_id,
                                 const std::string& answer) {
  const auto* question =
      dynamic_cast<const FillInBlank*>(&module_->question(activity_id));
  if (!question) {
    throw InvalidArgument("submit_blank: '" + activity_id +
                          "' is not a fill-in-the-blank question");
  }
  return record(activity_id, question->grade(answer));
}

bool ModuleSession::submit_matching(
    const std::string& activity_id,
    const std::vector<std::pair<std::string, std::string>>& placed) {
  const auto* question =
      dynamic_cast<const DragAndDrop*>(&module_->question(activity_id));
  if (!question) {
    throw InvalidArgument("submit_matching: '" + activity_id +
                          "' is not a drag-and-drop question");
  }
  return record(activity_id, question->grade(placed));
}

void ModuleSession::record_time(const std::string& section_number,
                                double minutes) {
  if (minutes < 0.0) {
    throw InvalidArgument("record_time: minutes must be non-negative");
  }
  (void)module_->section(section_number);  // validates the number
  minutes_[section_number] += minutes;
}

void ModuleSession::complete_section(const std::string& section_number) {
  (void)module_->section(section_number);  // validates the number
  completed_sections_.insert(section_number);
}

int ModuleSession::attempts(const std::string& activity_id) const {
  const auto it = records_.find(activity_id);
  return it == records_.end() ? 0 : it->second.attempts;
}

bool ModuleSession::is_correct(const std::string& activity_id) const {
  const auto it = records_.find(activity_id);
  return it != records_.end() && it->second.correct;
}

double ModuleSession::score() const {
  const std::size_t total = module_->question_count();
  if (total == 0) return 1.0;
  std::size_t correct = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.correct) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

std::size_t ModuleSession::section_count() const {
  std::size_t count = 0;
  for (const auto& chapter : module_->chapters()) {
    count += chapter->sections().size();
  }
  return count;
}

double ModuleSession::completion_fraction() const {
  const std::size_t total = section_count();
  if (total == 0) return 1.0;
  return static_cast<double>(completed_sections_.size()) /
         static_cast<double>(total);
}

double ModuleSession::total_minutes() const {
  double total = 0.0;
  for (const auto& [number, minutes] : minutes_) total += minutes;
  return total;
}

bool ModuleSession::finished() const {
  return completion_fraction() == 1.0 &&
         score() == 1.0;
}

}  // namespace pdc::courseware
