#pragma once

#include <string>

#include "courseware/module.hpp"

namespace pdc::courseware {

/// Escape text for safe inclusion in HTML (&, <, >, ", ').
std::string html_escape(const std::string& text);

/// Render a module as a single self-contained HTML page in the visual
/// spirit of a Runestone book chapter: a nav-style table of contents,
/// chapter/section headings, embedded videos as links with duration badges,
/// <pre> code listings, and interactive questions as forms (statically
/// rendered; grading happens in the engine, not the page).
std::string render_module_html(const Module& module);

}  // namespace pdc::courseware
