#pragma once

#include <memory>
#include <string>
#include <vector>

#include "courseware/content.hpp"

namespace pdc::courseware {

/// A titled run of content items with a pacing budget — Runestone's unit of
/// self-paced work.
class Section {
 public:
  Section(std::string number, std::string title, int expected_minutes);

  /// Append an item (builder style).
  Section& add(std::unique_ptr<ContentItem> item);

  [[nodiscard]] const std::string& number() const noexcept { return number_; }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] int expected_minutes() const noexcept { return minutes_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ContentItem>>& items()
      const noexcept {
    return items_;
  }

  /// All gradable questions in the section, in order.
  [[nodiscard]] std::vector<const ContentItem*> gradable_items() const;

  /// Plain-text rendering with the section heading.
  [[nodiscard]] std::string render() const;

 private:
  std::string number_;
  std::string title_;
  int minutes_;
  std::vector<std::unique_ptr<ContentItem>> items_;
};

/// A titled group of sections (e.g. "2. Shared-Memory Concepts").
class Chapter {
 public:
  explicit Chapter(std::string title);

  Section& add_section(std::string number, std::string title,
                       int expected_minutes);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Section>>& sections()
      const noexcept {
    return sections_;
  }
  [[nodiscard]] int expected_minutes() const;

 private:
  std::string title_;
  std::vector<std::unique_ptr<Section>> sections_;
};

/// A complete self-paced virtual module (the paper's "virtual handout").
class Module {
 public:
  Module(std::string title, std::string description);

  Chapter& add_chapter(std::string title);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Chapter>>& chapters()
      const noexcept {
    return chapters_;
  }

  /// Total pacing budget in minutes (the paper's modules target ~120).
  [[nodiscard]] int expected_minutes() const;

  /// Count of gradable questions across all sections.
  [[nodiscard]] std::size_t question_count() const;

  /// Find a section by its number (e.g. "2.3"); throws pdc::NotFound.
  [[nodiscard]] const Section& section(const std::string& number) const;

  /// Find a gradable item anywhere in the module by activity id; throws
  /// pdc::NotFound.
  [[nodiscard]] const ContentItem& question(const std::string& activity_id) const;

  /// Table of contents (one line per section with pacing).
  [[nodiscard]] std::string table_of_contents() const;

  /// Full plain-text rendering of the module.
  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  std::string description_;
  std::vector<std::unique_ptr<Chapter>> chapters_;
};

}  // namespace pdc::courseware
