#include "smp/thread_pool.hpp"

#include <algorithm>

#include "chaos/chaos.hpp"
#include "smp/config.hpp"

namespace pdc::smp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? default_num_threads() : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Stable chaos lane per worker; which tasks a worker drains is inherently
  // scheduler-dependent, but its perturbation stream is seeded by index.
  chaos::ActorScope chaos_lane(chaos::kPoolActorBase +
                               static_cast<int>(worker_index));
  for (;;) {
    Pending task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Chaos point between claiming a task and running it: shifts which
    // worker ends up with the next queued task.
    chaos::on_schedule_point("pool.dispatch");
    // Queue-wait time (submit to dequeue) as its own span, so a traced
    // timeline separates "sat in the queue" from "actually ran". A task may
    // have been enqueued before the *active* session started (stamped under
    // an earlier session, so its stamp predates this session's epoch);
    // clamp the span to [0, now] so the recorded wait never extends outside
    // the session window and duration_us can never go negative — the
    // garbage the trace lint and ThreadPool.QueueWaitClampedToSessionWindow
    // guard against.
    if (trace::TraceSession* session = trace::TraceSession::active();
        session &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      trace::TraceEvent wait;
      wait.name = "pool.queue_wait";
      wait.category = "smp.pool";
      wait.type = trace::EventType::Complete;
      const std::int64_t now = session->now_us();
      const std::int64_t start =
          std::clamp<std::int64_t>(session->since_start_us(task.enqueued), 0,
                                   now);
      wait.start_us = start;
      wait.duration_us = now - start;
      session->record(std::move(wait));
    }
    {
      trace::Span span("pool.task", "smp.pool");
      task.fn();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
    }
    idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace pdc::smp
