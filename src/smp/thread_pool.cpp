#include "smp/thread_pool.hpp"

#include "chaos/chaos.hpp"
#include "smp/config.hpp"

namespace pdc::smp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? default_num_threads() : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Stable chaos lane per worker; which tasks a worker drains is inherently
  // scheduler-dependent, but its perturbation stream is seeded by index.
  chaos::ActorScope chaos_lane(chaos::kPoolActorBase +
                               static_cast<int>(worker_index));
  for (;;) {
    Pending task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Chaos point between claiming a task and running it: shifts which
    // worker ends up with the next queued task.
    chaos::on_schedule_point("pool.dispatch");
    // Queue-wait time (submit to dequeue) as its own span, so a traced
    // timeline separates "sat in the queue" from "actually ran".
    if (trace::TraceSession* session = trace::TraceSession::active();
        session &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      trace::TraceEvent wait;
      wait.name = "pool.queue_wait";
      wait.category = "smp.pool";
      wait.type = trace::EventType::Complete;
      wait.start_us = session->since_start_us(task.enqueued);
      wait.duration_us = session->now_us() - wait.start_us;
      session->record(std::move(wait));
    }
    {
      trace::Span span("pool.task", "smp.pool");
      task.fn();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
    }
    idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace pdc::smp
