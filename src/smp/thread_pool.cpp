#include "smp/thread_pool.hpp"

#include "smp/config.hpp"

namespace pdc::smp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? default_num_threads() : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
    }
    idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace pdc::smp
