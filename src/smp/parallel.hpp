#pragma once

#include <cstdint>
#include <functional>

#include "smp/team.hpp"

namespace pdc::smp {

/// Fork-join convenience: run `body(i)` for every i in [lo, hi) on a team
/// of `num_threads` threads (0 = default) with the given schedule.
/// Equivalent to `#pragma omp parallel for schedule(...)`. Cheap to call in
/// a loop: the region reuses the process-wide cached worker team, so a
/// region-per-trial driver pays an unpark, not a thread spawn, per call.
inline void parallel_for(std::int64_t lo, std::int64_t hi,
                         const std::function<void(std::int64_t)>& body,
                         Schedule sched = Schedule::static_blocks(),
                         std::size_t num_threads = 0) {
  parallel(num_threads, [&](TeamContext& ctx) {
    ctx.for_each(lo, hi, sched, body, /*nowait=*/true);
  });
}

/// Range-chunk fork-join loop; `body(begin, end)` is called once per
/// dispatched chunk. Prefer this for tight numeric loops.
inline void parallel_for_ranges(
    std::int64_t lo, std::int64_t hi,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    Schedule sched = Schedule::static_blocks(), std::size_t num_threads = 0) {
  parallel(num_threads, [&](TeamContext& ctx) {
    ctx.for_ranges(lo, hi, sched, body, /*nowait=*/true);
  });
}

/// Fork-join reduction: each thread folds its share of [lo, hi) into a local
/// accumulator starting from `identity` using `fold(acc, i)`; thread locals
/// are then combined with `combine`. Equivalent to
/// `#pragma omp parallel for reduction(...)`.
template <typename T, typename Fold, typename Combine>
T parallel_reduce(std::int64_t lo, std::int64_t hi, T identity, Fold fold,
                  Combine combine, Schedule sched = Schedule::static_blocks(),
                  std::size_t num_threads = 0) {
  T result = identity;
  std::mutex result_mutex;
  parallel(num_threads, [&](TeamContext& ctx) {
    T local = identity;
    ctx.for_ranges(
        lo, hi, sched,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) local = fold(local, i);
        },
        /*nowait=*/true);
    std::lock_guard lock(result_mutex);
    result = combine(result, local);
  });
  return result;
}

/// Sum-reduction over [lo, hi) of `term(i)`.
template <typename T, typename Term>
T parallel_sum(std::int64_t lo, std::int64_t hi, Term term,
               Schedule sched = Schedule::static_blocks(),
               std::size_t num_threads = 0) {
  return parallel_reduce(
      lo, hi, T{}, [&](T acc, std::int64_t i) { return acc + term(i); },
      [](T a, T b) { return a + b; }, sched, num_threads);
}

/// In-place parallel inclusive prefix scan: data[i] becomes
/// op(data[0], ..., data[i]). The classic two-phase block algorithm the
/// PDC curriculum teaches: each thread scans its contiguous block, one
/// thread scans the block totals, then every block after the first folds
/// its prefix offset in. `op` must be associative. Equivalent to
/// std::inclusive_scan, but built from the course's own constructs.
template <typename T, typename Op>
void parallel_inclusive_scan(std::vector<T>& data, Op op,
                             std::size_t num_threads = 0) {
  if (data.size() < 2) return;
  const auto n = static_cast<std::int64_t>(data.size());

  // Block totals, shared across the team; element t is written only by
  // thread t in phase 1 and only read after the barrier.
  std::vector<T> block_total;

  parallel(num_threads, [&](TeamContext& ctx) {
    const auto threads = static_cast<std::int64_t>(ctx.num_threads());
    const auto me = static_cast<std::int64_t>(ctx.thread_num());
    // The same contiguous decomposition Schedule::static_blocks() uses.
    const std::int64_t base = n / threads;
    const std::int64_t extra = n % threads;
    const std::int64_t begin = me * base + std::min(me, extra);
    const std::int64_t end = begin + base + (me < extra ? 1 : 0);

    ctx.single([&] { block_total.assign(ctx.num_threads(), T{}); });

    // Phase 1: sequential scan of my block.
    for (std::int64_t i = begin + 1; i < end; ++i) {
      data[static_cast<std::size_t>(i)] =
          op(data[static_cast<std::size_t>(i - 1)],
             data[static_cast<std::size_t>(i)]);
    }
    if (begin < end) {
      block_total[static_cast<std::size_t>(me)] =
          data[static_cast<std::size_t>(end - 1)];
    }
    ctx.barrier();

    // Phase 2: one thread turns block totals into exclusive block prefixes.
    // Empty blocks (possible when threads > elements) are skipped rather
    // than folded, because T{} need not be op's identity.
    ctx.single([&] {
      T running = block_total[0];  // block 0 is never empty (n >= 2)
      for (std::size_t t = 1; t < block_total.size(); ++t) {
        const std::int64_t size =
            base + (static_cast<std::int64_t>(t) < extra ? 1 : 0);
        const T mine = block_total[t];
        block_total[t] = running;
        if (size > 0) running = op(running, mine);
      }
    });

    // Phase 3: every block after the first folds its prefix in. Empty
    // blocks (more threads than elements) have begin == end and skip.
    if (me > 0 && begin < end) {
      const T& prefix = block_total[static_cast<std::size_t>(me)];
      for (std::int64_t i = begin; i < end; ++i) {
        data[static_cast<std::size_t>(i)] =
            op(prefix, data[static_cast<std::size_t>(i)]);
      }
    }
  });
}

}  // namespace pdc::smp
