#pragma once

#include <cstddef>
#include <string>

namespace pdc::smp {

/// Loop iteration schedule for worksharing constructs, mirroring OpenMP's
/// schedule(static | static,chunk | dynamic,chunk | guided,chunk) clause.
/// The "parallel loop, equal chunks" and "parallel loop, chunks of 1"
/// patternlets are Static and StaticChunk(1) respectively.
struct Schedule {
  enum class Kind { Static, StaticChunk, Dynamic, Guided };

  Kind kind = Kind::Static;
  /// Chunk size; interpretation depends on kind (ignored for Static,
  /// block size for StaticChunk/Dynamic, minimum chunk for Guided).
  std::size_t chunk = 1;

  /// Contiguous equal blocks, one per thread (OpenMP `schedule(static)`).
  static constexpr Schedule static_blocks() noexcept {
    return Schedule{Kind::Static, 0};
  }
  /// Round-robin chunks of the given size (OpenMP `schedule(static, c)`).
  static constexpr Schedule static_chunks(std::size_t chunk_size) noexcept {
    return Schedule{Kind::StaticChunk, chunk_size};
  }
  /// First-come first-served chunks (OpenMP `schedule(dynamic, c)`).
  static constexpr Schedule dynamic(std::size_t chunk_size = 1) noexcept {
    return Schedule{Kind::Dynamic, chunk_size};
  }
  /// Exponentially shrinking chunks (OpenMP `schedule(guided, c)`).
  static constexpr Schedule guided(std::size_t min_chunk = 1) noexcept {
    return Schedule{Kind::Guided, min_chunk};
  }

  /// Human-readable name, e.g. "dynamic,4".
  [[nodiscard]] std::string name() const {
    switch (kind) {
      case Kind::Static: return "static";
      case Kind::StaticChunk: return "static," + std::to_string(chunk);
      case Kind::Dynamic: return "dynamic," + std::to_string(chunk);
      case Kind::Guided: return "guided," + std::to_string(chunk);
    }
    return "?";
  }
};

}  // namespace pdc::smp
