#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace pdc::smp {

/// Reusable (cyclic) barrier for a fixed-size thread team.
///
/// This is the synchronization primitive behind the `barrier` patternlet and
/// the implicit barriers at the end of worksharing constructs. It uses a
/// generation counter rather than sense-reversal so it is trivially correct
/// for any number of reuse cycles, and it blocks on a condition variable
/// (friendly to oversubscribed hosts, e.g. a 1-core CI container running a
/// 16-thread teaching example).
class CyclicBarrier {
 public:
  /// A barrier for `parties` threads. Requires parties >= 1.
  explicit CyclicBarrier(std::size_t parties);

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until all `parties` threads have arrived; then all are released
  /// and the barrier resets for the next cycle. Returns the arrival index
  /// within this cycle (0 for the first arriver, parties-1 for the last),
  /// which tests use to observe barrier semantics.
  std::size_t arrive_and_wait();

  /// Number of participating threads.
  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::mutex mutex_;
  std::condition_variable released_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace pdc::smp
