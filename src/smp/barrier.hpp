#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

#include "support/error.hpp"

namespace pdc::smp {

/// Thrown at a team synchronization point (barrier, reduction rendezvous,
/// ordered-region turnstile, slot recycling) after the team was poisoned —
/// i.e. after a sibling threw out of the parallel region. The runtime uses
/// it to unwind every surviving member instead of leaving them parked at a
/// rendezvous nobody will ever complete; `parallel(...)` always rethrows the
/// *original* member exception to its caller, never the TeamAborted echoes.
class TeamAborted : public Error {
 public:
  explicit TeamAborted(const std::string& what) : Error(what) {}
};

namespace detail {

/// One iteration of polite spinning (a pause on x86, plain no-op elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// The shared wait policy of the smp runtime: poll `ready` through a bounded
/// spin phase (config::spin_limit() iterations), then a short yield phase
/// (oversubscription-friendly: a 16-thread teaching example on a 1-core CI
/// container must make progress), then fall through to the caller's blocking
/// wait. Returns true if `ready` turned true before blocking is needed.
template <typename Ready>
bool spin_then_yield(std::size_t spin_budget, Ready&& ready) {
  for (std::size_t i = 0; i < spin_budget; ++i) {
    if (ready()) return true;
    cpu_relax();
  }
  constexpr int kYields = 16;
  for (int i = 0; i < kYields; ++i) {
    if (ready()) return true;
    std::this_thread::yield();
  }
  return ready();
}

}  // namespace detail

/// Reusable (cyclic) barrier for a fixed-size thread team.
///
/// This is the synchronization primitive behind the `barrier` patternlet and
/// the implicit barriers at the end of worksharing constructs. It is a
/// centralized sense-reversing barrier on two atomics: arrivals fetch_add a
/// counter, the last arriver resets it and bumps the phase word every waiter
/// watches. Waiters spin briefly, then yield, then block on an atomic wait
/// (futex) — so an uncontended round trip never touches the kernel while an
/// oversubscribed host (e.g. a 1-core CI container running a 16-thread
/// teaching example) still parks instead of burning its only core. The spin
/// budget is config::spin_limit() (PDCLAB_SMP_SPIN).
///
/// poison() aborts the barrier permanently: every current waiter wakes and
/// every present or future arrival throws TeamAborted instead of blocking —
/// the mechanism `parallel(...)` uses to free survivors when a team member
/// throws (there is no "un-poison"; a Team lives for exactly one region).
class CyclicBarrier {
 public:
  /// A barrier for `parties` threads. Requires parties >= 1.
  explicit CyclicBarrier(std::size_t parties);

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until all `parties` threads have arrived; then all are released
  /// and the barrier resets for the next cycle. Returns the arrival index
  /// within this cycle (0 for the first arriver, parties-1 for the last),
  /// which tests use to observe barrier semantics. Throws TeamAborted if
  /// the barrier is (or becomes) poisoned.
  std::size_t arrive_and_wait();

  /// Poison the barrier: wake every waiter and make every subsequent
  /// arrival throw TeamAborted. Idempotent; safe from any thread.
  void poison() noexcept;

  /// Whether poison() has been called.
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Number of participating threads.
  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  /// Arrival counter for the current cycle; reset by the last arriver
  /// *before* the phase bump, so re-arrivals for the next cycle are counted
  /// correctly. Own cache line: every arrival writes it.
  alignas(64) std::atomic<std::size_t> arrived_{0};
  /// The sense word. 32-bit so the blocking path is a plain futex wait on
  /// the word itself (no libstdc++ proxy-waiter indirection). Own cache
  /// line: waiters poll it while arrivers hammer arrived_.
  alignas(64) std::atomic<std::uint32_t> phase_{0};
  std::atomic<bool> poisoned_{false};
};

/// The pre-overhaul barrier: a mutex + condition-variable generation
/// barrier, preserved verbatim (plus poison support, which the hang-free
/// guarantee requires in every mode) as the synchronization half of the
/// spawn-per-region baseline engine. A Team built while team_reuse() is
/// off uses this instead of the sense-reversing CyclicBarrier, so
/// PDCLAB_SMP_REUSE=0 reproduces the full per-region cost fork-join code
/// paid before the cached team existed — thread spawns *and* the barrier
/// mutex convoy — and bench_smp_primitives can A/B the whole overhaul, not
/// just the thread-reuse third of it.
class LegacyCyclicBarrier {
 public:
  /// A barrier for `parties` threads. Requires parties >= 1.
  explicit LegacyCyclicBarrier(std::size_t parties);

  LegacyCyclicBarrier(const LegacyCyclicBarrier&) = delete;
  LegacyCyclicBarrier& operator=(const LegacyCyclicBarrier&) = delete;

  /// Block until all `parties` threads have arrived; returns the arrival
  /// index within this cycle. Throws TeamAborted if the barrier is (or
  /// becomes) poisoned.
  std::size_t arrive_and_wait();

  /// Wake every waiter and make every subsequent arrival throw
  /// TeamAborted. Idempotent; safe from any thread.
  void poison() noexcept;

  /// Whether poison() has been called.
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Number of participating threads.
  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::mutex mutex_;
  std::condition_variable released_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  std::atomic<bool> poisoned_{false};  ///< written under mutex_, read free
};

}  // namespace pdc::smp
