#include "smp/team.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "chaos/chaos.hpp"
#include "smp/config.hpp"

namespace pdc::smp {

Team::Team(std::size_t num_threads)
    : num_threads_(num_threads), barrier_(num_threads) {
  if (num_threads == 0) {
    throw InvalidArgument("Team requires at least one thread");
  }
  // Baseline engine: teams born in spawn-per-region mode also get the
  // pre-overhaul mutex+CV barrier, so PDCLAB_SMP_REUSE=0 measures the old
  // per-region cost faithfully (spawns + barrier convoy together).
  if (!team_reuse()) legacy_barrier_.emplace(num_threads);
  // Ring entry i starts life serving construct i; the last departer of
  // construct id republishes its entry for id + kSlotRing.
  for (std::size_t i = 0; i < kSlotRing; ++i) {
    slots_[i].serving.store(i, std::memory_order_relaxed);
  }
}

std::mutex& Team::critical_mutex(const std::string& name) {
  std::lock_guard lock(criticals_mutex_);
  auto& slot = criticals_[name];
  if (!slot) slot = std::make_unique<std::mutex>();
  return *slot;
}

Team::Slot& Team::acquire_slot(std::uint64_t id) {
  Slot& slot = slots_[id % kSlotRing];
  // Hot path: one acquire load. The entry already serves this construct
  // unless some sibling is more than kSlotRing constructs behind us.
  if (slot.serving.load(std::memory_order_acquire) != id) {
    // Wraparound: wait for the previous tenant (id - kSlotRing) to fully
    // depart. Deadlock-free — the laggard holding the slot never waits on a
    // thread that is kSlotRing constructs ahead (any construct that blocks
    // does so for the whole team) — but it must still be poison-aware, or a
    // sibling throwing mid-region would strand us here.
    const auto recycled = [&] {
      return slot.serving.load(std::memory_order_acquire) == id ||
             aborted();
    };
    for (;;) {
      if (detail::spin_then_yield(spin_limit(), recycled)) break;
      // Stay in a yield loop (no futex: recycling is too rare to make every
      // depart pay a notify); keep polling the poison flag.
      std::this_thread::yield();
    }
    if (slot.serving.load(std::memory_order_acquire) != id) {
      throw TeamAborted("smp: worksharing slot abandoned, team poisoned");
    }
  }
  slot.entered.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void Team::depart_slot(std::uint64_t id) {
  Slot& slot = slots_[id % kSlotRing];
  if (slot.departed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      num_threads_) {
    // Last departer: every sibling's final (mutex-guarded) accesses
    // happen-before its release fetch_add above, so resetting without the
    // mutex is race-free. The release store of `serving` publishes the
    // reset to the next tenant's acquire load.
    slot.next.store(0, std::memory_order_relaxed);
    slot.ordered_next = 0;
    slot.payload.reset();
    slot.arrived = 0;
    slot.ready = false;
    slot.claimed = false;
    slot.entered.store(0, std::memory_order_relaxed);
    slot.departed.store(0, std::memory_order_relaxed);
    slot.serving.store(id + kSlotRing, std::memory_order_release);
  }
}

void Team::poison() noexcept {
  aborted_.store(true, std::memory_order_release);
  barrier_.poison();
  if (legacy_barrier_) legacy_barrier_->poison();
  // Taking each slot mutex orders the flag store against every
  // condition-variable wait: a waiter either re-checks its predicate after
  // we unlock (and sees the flag) or was already awake.
  for (auto& slot : slots_) {
    std::lock_guard lock(slot.mutex);
    slot.cv.notify_all();
  }
}

std::size_t Team::busy_slots() const noexcept {
  std::size_t busy = 0;
  for (const auto& slot : slots_) {
    if (slot.entered.load(std::memory_order_relaxed) != 0) ++busy;
  }
  return busy;
}

bool TeamContext::single(const std::function<void()>& fn, bool nowait) {
  const std::uint64_t id = next_construct_id();
  auto& slot = team_->acquire_slot(id);
  bool i_ran = false;
  {
    std::lock_guard lock(slot.mutex);
    if (!slot.claimed) {
      slot.claimed = true;
      i_ran = true;
    }
  }
  if (i_ran) fn();
  team_->depart_slot(id);
  if (!nowait) barrier();
  return i_ran;
}

void TeamContext::for_ranges(
    std::int64_t lo, std::int64_t hi, Schedule sched,
    const std::function<void(std::int64_t, std::int64_t)>& body, bool nowait) {
  const std::int64_t n = std::max<std::int64_t>(0, hi - lo);
  const auto threads = static_cast<std::int64_t>(num_threads());
  const auto me = static_cast<std::int64_t>(thread_num());

  switch (sched.kind) {
    case Schedule::Kind::Static: {
      // Contiguous blocks; the first (n % threads) blocks get one extra
      // iteration so the imbalance is at most 1.
      const std::int64_t base = n / threads;
      const std::int64_t extra = n % threads;
      const std::int64_t begin =
          lo + me * base + std::min(me, extra);
      const std::int64_t end = begin + base + (me < extra ? 1 : 0);
      if (begin < end) body(begin, end);
      break;
    }
    case Schedule::Kind::StaticChunk: {
      const auto chunk = static_cast<std::int64_t>(std::max<std::size_t>(1, sched.chunk));
      for (std::int64_t start = me * chunk; start < n; start += threads * chunk) {
        body(lo + start, lo + std::min(n, start + chunk));
      }
      break;
    }
    case Schedule::Kind::Dynamic: {
      const auto chunk = static_cast<std::int64_t>(std::max<std::size_t>(1, sched.chunk));
      const std::uint64_t id = next_construct_id();
      auto& slot = team_->acquire_slot(id);
      for (;;) {
        // Chaos schedule-exploration point: perturbing threads *between*
        // chunk claims shifts which thread wins each chunk of a dynamic
        // schedule, the nondeterminism dynamic-schedule programs must be
        // robust to.
        chaos::on_schedule_point("smp.dispatch");
        const std::int64_t start =
            slot.next.fetch_add(chunk, std::memory_order_relaxed);
        if (start >= n) break;
        body(lo + start, lo + std::min(n, start + chunk));
      }
      team_->depart_slot(id);
      break;
    }
    case Schedule::Kind::Guided: {
      const auto min_chunk = static_cast<std::int64_t>(std::max<std::size_t>(1, sched.chunk));
      const std::uint64_t id = next_construct_id();
      auto& slot = team_->acquire_slot(id);
      for (;;) {
        std::int64_t start = slot.next.load(std::memory_order_relaxed);
        std::int64_t chunk;
        do {
          if (start >= n) {
            chunk = 0;
            break;
          }
          const std::int64_t remaining = n - start;
          chunk = std::max(min_chunk, remaining / (2 * threads));
          chunk = std::min(chunk, remaining);
        } while (!slot.next.compare_exchange_weak(start, start + chunk,
                                                  std::memory_order_relaxed));
        if (chunk == 0) break;
        body(lo + start, lo + start + chunk);
      }
      team_->depart_slot(id);
      break;
    }
  }
  if (!nowait) barrier();
}

void TeamContext::for_each(std::int64_t lo, std::int64_t hi, Schedule sched,
                           const std::function<void(std::int64_t)>& body,
                           bool nowait) {
  for_ranges(
      lo, hi, sched,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) body(i);
      },
      nowait);
}

void TeamContext::OrderedContext::run(std::int64_t i,
                                      const std::function<void()>& fn) {
  std::unique_lock lock(*mutex_);
  cv_->wait(lock, [&] {
    return *next_ == i - lo_ || aborted_->load(std::memory_order_acquire);
  });
  if (*next_ != i - lo_) {
    throw TeamAborted("smp: ordered region abandoned, team poisoned");
  }
  fn();  // still holding the lock: the region is serialized by design
  ++*next_;
  cv_->notify_all();
}

void TeamContext::for_each_ordered(
    std::int64_t lo, std::int64_t hi, Schedule sched,
    const std::function<void(std::int64_t, OrderedContext&)>& body,
    bool nowait) {
  // A dedicated slot provides the ordered-region turnstile; the inner
  // worksharing loop allocates its own dispatch slot as usual.
  const std::uint64_t id = next_construct_id();
  auto& slot = team_->acquire_slot(id);
  OrderedContext ordered(slot.mutex, slot.cv, slot.ordered_next, lo,
                         team_->aborted_);
  for_each(
      lo, hi, sched, [&](std::int64_t i) { body(i, ordered); },
      /*nowait=*/true);
  team_->depart_slot(id);
  if (!nowait) barrier();
}

void TeamContext::sections(const std::vector<std::function<void()>>& tasks,
                           bool nowait) {
  for_each(
      0, static_cast<std::int64_t>(tasks.size()), Schedule::dynamic(1),
      [&](std::int64_t i) { tasks[static_cast<std::size_t>(i)](); }, nowait);
}

namespace {

/// Join state of one parallel region, shared (via shared_ptr) between the
/// forking thread and every dispatched worker so the completion notify can
/// never touch a dead frame.
struct RegionControl {
  std::atomic<std::uint32_t> remaining{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  void record_error(std::exception_ptr error) {
    std::lock_guard lock(error_mutex);
    if (!first_error) first_error = std::move(error);
  }

  /// Called by a worker as its very last touch of the region.
  void finish() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining.notify_all();
    }
  }

  void wait_all_finished() {
    const auto done = [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    };
    if (detail::spin_then_yield(spin_limit(), done)) return;
    // Keep yielding well past the shared budget before the futex sleep: the
    // forking thread's members are the very threads that need the core, so
    // every yield here is donated directly to finishing the region, while a
    // futex sleep puts a wake/switch round trip on the join's critical path.
    for (int i = 0; i < 256; ++i) {
      if (done()) return;
      std::this_thread::yield();
    }
    std::uint32_t r;
    while ((r = remaining.load(std::memory_order_acquire)) != 0) {
      remaining.wait(r, std::memory_order_acquire);
    }
  }
};

struct WorkerSlot;

/// One region's worth of work for one cached worker: an un-owning thunk
/// into `parallel(...)`'s stack frame (which outlives the region by
/// construction) plus the shared join state that keeps the latch alive.
struct Job {
  void (*invoke)(const void* env, std::size_t thread_num) = nullptr;
  const void* env = nullptr;
  std::shared_ptr<RegionControl> control;
  std::size_t thread_num = 0;
  /// Next slot in this region's wake chain: the worker wakes it *before*
  /// running the member, so even a body that blocks at a team sync point
  /// leaves every remaining member a thread to run on.
  WorkerSlot* wake_next = nullptr;
  /// The slot's epoch when this job was assigned; lets the back-steal
  /// detect whether the slot's worker was ever woken for this region.
  std::uint32_t epoch_at_dispatch = 0;
};

struct WorkerSlot {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<std::uint32_t> epoch{0};  ///< bumped to wake the worker
  Job job;
  bool exit = false;
  bool sleeping = false;  ///< worker is blocked in cv.wait (under mutex)
};

/// The process-wide cached worker team behind `parallel(...)`.
///
/// Workers park on a per-worker epoch word (spin-then-yield, then a
/// condition-variable block) instead of exiting, so forking a region costs
/// an unpark — not a ~100 µs thread spawn — per member. The cache grows to
/// the largest concurrent demand (nested regions simply draw more workers)
/// and parks everything between regions; all threads are joined at process
/// exit.
class WorkerCache {
 public:
  static WorkerCache& instance() {
    static WorkerCache cache;
    return cache;
  }

  /// Wake the worker parked on `slot` — but only if the slot still holds a
  /// job. The presence check under the slot mutex makes wake and steal
  /// mutually exclusive per slot: once the forking thread has stolen a job,
  /// the chain never wakes that worker for it, and once a wake has bumped
  /// the epoch, the steal sees the bump and leaves the slot to its worker.
  /// A late wake that lands on a slot already re-drafted by a *newer*
  /// region merely starts that region's member a little early — harmless.
  static void wake(WorkerSlot& slot) {
    bool sleeping;
    {
      std::lock_guard lock(slot.mutex);
      if (!slot.job.invoke) return;  // stolen before we got here
      slot.epoch.fetch_add(1, std::memory_order_release);
      sleeping = slot.sleeping;
    }
    // Skip the notify syscall for a worker still in its yield phase: it
    // polls the epoch before ever blocking, and the locked handoff above
    // means it cannot be mid-transition to sleep.
    if (sleeping) slot.cv.notify_one();
  }

  /// Hand one region's jobs for team members [first, last) to workers: one
  /// pass over the parked list under a single cache lock, then a single
  /// unpark. Fresh threads are spawned only for the demand the parked pool
  /// cannot cover (first region, or growth in team size).
  ///
  /// Wakes are *chained*, not fanned out: only the first drafted worker is
  /// woken here; each worker wakes its successor before running its member
  /// (see worker_main), so the forking thread pays one unpark per region
  /// while a member body that blocks still cannot strand the rest of the
  /// team — its wake duty was discharged before the body ran. Every drafted
  /// slot is also appended to `chain` so the forking thread can back-steal
  /// members the chain has not reached yet (see parallel()).
  void dispatch_region(void (*invoke)(const void*, std::size_t),
                       const void* env,
                       const std::shared_ptr<RegionControl>& control,
                       std::size_t first, std::size_t last,
                       std::vector<std::shared_ptr<WorkerSlot>>& chain) {
    std::size_t thread_num = first;
    std::size_t chained = 0;
    {
      // One pass under a single cache lock, drafting workers straight off
      // the parked list (no refcount churn). Each job write takes the slot
      // mutex: a slot that served an earlier region can still be *read*
      // (under that mutex) by the earlier forking thread's steal walk — a
      // re-drafted slot legitimately lives in two chains at once.
      std::lock_guard lock(mutex_);
      while (thread_num < last && !parked_.empty()) {
        std::shared_ptr<WorkerSlot>& slot = parked_.back();
        {
          std::lock_guard handoff(slot->mutex);
          slot->job = Job{invoke, env, control, thread_num++,
                          /*wake_next=*/nullptr,
                          slot->epoch.load(std::memory_order_relaxed)};
        }
        chain.push_back(std::move(slot));
        parked_.pop_back();
      }
      chained = chain.size();
    }
    for (std::size_t i = 1; i < chained; ++i) {
      // Same rule as above: job fields are only ever touched under the slot
      // mutex once the slot has left the parked list.
      std::lock_guard link(chain[i - 1]->mutex);
      chain[i - 1]->job.wake_next = chain[i].get();
    }
    for (; thread_num < last; ++thread_num) {
      // No parked worker left: start a fresh thread that runs this job and
      // then parks itself for reuse. Fresh threads self-start (no wake
      // needed, so they take no chain link), but they still join `chain` so
      // the back-steal can claim their job if the caller gets there first.
      auto fresh = std::make_shared<WorkerSlot>();
      fresh->job = Job{invoke, env, control, thread_num,
                       /*wake_next=*/nullptr, /*epoch_at_dispatch=*/0};
      fresh->epoch.store(1, std::memory_order_release);
      chain.push_back(fresh);
      std::lock_guard lock(mutex_);
      threads_.emplace_back([this, fresh] { worker_main(std::move(fresh)); });
    }
    if (chained != 0) wake(*chain.front());
  }

  /// Return a drafted-but-never-woken slot to the parked pool after its job
  /// was stolen: its worker is still waiting exactly as a parked worker
  /// does. On the (static-destruction) shutdown race, tell the worker to
  /// exit instead — the destructor has already swapped out the parked list.
  void reclaim(const std::shared_ptr<WorkerSlot>& slot) {
    if (park(slot)) return;
    {
      std::lock_guard lock(slot->mutex);
      slot->exit = true;
      slot->epoch.fetch_add(1, std::memory_order_release);
    }
    slot->cv.notify_one();
  }

  ~WorkerCache() {
    std::vector<std::shared_ptr<WorkerSlot>> parked;
    std::vector<std::thread> threads;
    {
      std::lock_guard lock(mutex_);
      shutdown_ = true;
      parked.swap(parked_);
      threads.swap(threads_);
    }
    for (auto& slot : parked) {
      {
        std::lock_guard lock(slot->mutex);
        slot->exit = true;
        slot->epoch.fetch_add(1, std::memory_order_release);
      }
      slot->cv.notify_one();
    }
    for (auto& thread : threads) thread.join();
  }

 private:
  void worker_main(std::shared_ptr<WorkerSlot> slot) {
    std::uint32_t seen = 0;
    for (;;) {
      wait_for_wakeup(*slot, seen);
      seen = slot->epoch.load(std::memory_order_acquire);
      Job job;
      bool exit;
      {
        std::lock_guard lock(slot->mutex);
        exit = slot->exit;
        job = std::move(slot->job);
        slot->job = Job{};
      }
      if (exit) return;
      if (!job.invoke) {
        // Woken, but the forking thread stole the job first (the steal ran
        // between our wake and our take). By the reverse-order steal
        // invariant there is no chain successor left to serve either —
        // just park again.
        if (!park(slot)) return;
        continue;
      }

      // Discharge the wake duty *before* running the member: if the body
      // blocks at a team sync point, the rest of the chain already has (or
      // is getting) threads to run on, so the sync can complete.
      if (job.wake_next) wake(*job.wake_next);

      job.invoke(job.env, job.thread_num);

      // Re-park *before* releasing the region latch so the very next
      // region can reuse this thread, then drop every reference into the
      // (about to unwind) parallel frame before the final finish().
      auto control = std::move(job.control);
      job = Job{};
      const bool parked = park(slot);
      control->finish();
      if (!parked) return;  // cache shut down while we ran
    }
  }

  void wait_for_wakeup(WorkerSlot& slot, std::uint32_t seen) {
    const auto woken = [&] {
      return slot.epoch.load(std::memory_order_acquire) != seen;
    };
    // The shared spin-then-yield policy before blocking: a worker that just
    // re-parked usually sees the next region's epoch bump while still in
    // the yield phase and skips the futex sleep/wake cycle entirely —
    // that's what makes a region-per-trial loop pay an unpark, not a
    // context-switch round trip, per region.
    if (detail::spin_then_yield(spin_limit(), woken)) return;
    std::unique_lock lock(slot.mutex);
    slot.sleeping = true;
    slot.cv.wait(lock, woken);
    slot.sleeping = false;
  }

  bool park(const std::shared_ptr<WorkerSlot>& slot) {
    std::lock_guard lock(mutex_);
    if (shutdown_) return false;
    parked_.push_back(slot);
    return true;
  }

  std::mutex mutex_;
  std::vector<std::shared_ptr<WorkerSlot>> parked_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace

void parallel(std::size_t num_threads,
              const std::function<void(TeamContext&)>& body) {
  trace::Span region("smp.parallel", "smp.runtime");
  const std::size_t n = num_threads == 0 ? default_num_threads() : num_threads;
  Team team(n);

  auto control = std::make_shared<RegionControl>();

  const auto run_member = [&](std::size_t thread_num) {
    TeamContext ctx(team, thread_num);
    // Chaos decisions for a team member are keyed by its stable thread_num,
    // not the host thread, so seeded perturbations replay per member even
    // when the member runs on a recycled cached worker.
    chaos::ActorScope chaos_lane(chaos::kTeamActorBase +
                                 static_cast<int>(thread_num));
    trace::Span member("smp.member", "smp.runtime");
    try {
      body(ctx);
    } catch (...) {
      // Record first, then poison: siblings unwound by the poison throw
      // TeamAborted *after* the original error is in place, so the caller
      // always sees the root cause, never an echo.
      control->record_error(std::current_exception());
      team.poison();
    }
  };
  using RunMember = decltype(run_member);

  if (n > 1) {
    if (team_reuse()) {
      control->remaining.store(static_cast<std::uint32_t>(n - 1),
                               std::memory_order_relaxed);
      std::vector<std::shared_ptr<WorkerSlot>> chain;
      chain.reserve(n - 1);
      WorkerCache::instance().dispatch_region(
          [](const void* env, std::size_t thread_num) {
            (*static_cast<const RunMember*>(env))(thread_num);
          },
          &run_member, control, 1, n, chain);
      run_member(0);  // the calling thread is team member 0, as in OpenMP

      // Back-steal: members the wake chain has not reached yet are run
      // inline on this thread instead of waiting for their workers to be
      // scheduled — on an oversubscribed host that turns a context-switch
      // convoy into straight-line execution. Stealing in *reverse* chain
      // order is what keeps it deadlock-free: the un-stolen prefix of the
      // chain stays self-waking, and a job can be claimed by exactly one
      // side because both take the slot mutex and the chain's wake skips a
      // slot whose job is gone. Safe to run members inline here: member 0
      // has completed, so every team-wide sync point in the body was
      // already passed by all members — a still-unstarted member cannot be
      // needed by anyone to make progress.
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        WorkerSlot& slot = **it;
        Job stolen;
        bool reclaim = false;
        {
          std::lock_guard lock(slot.mutex);
          // The control check pins the steal to *this* region: a slot whose
          // worker already ran our member and re-parked may have been
          // re-drafted by a nested region, and that job is not ours to take.
          if (slot.job.invoke && slot.job.control == control) {
            stolen = std::move(slot.job);
            slot.job = Job{};
            // Epoch untouched since dispatch means the worker was never
            // woken for this region: it is indistinguishable from a parked
            // worker, so hand it back to the pool.
            reclaim = slot.epoch.load(std::memory_order_relaxed) ==
                      stolen.epoch_at_dispatch;
          }
        }
        if (reclaim) WorkerCache::instance().reclaim(*it);
        if (stolen.invoke) {
          stolen.invoke(stolen.env, stolen.thread_num);
          control->finish();
        }
      }
      control->wait_all_finished();
    } else {
      // Spawn-per-region baseline (PDCLAB_SMP_REUSE=0): fresh threads,
      // joined at region end; the Team was likewise built with the legacy
      // mutex+CV barrier. Together they reproduce what every fork-join
      // region paid before this engine, kept measurable for the
      // microbenchmarks.
      std::vector<std::thread> workers;
      workers.reserve(n - 1);
      for (std::size_t t = 1; t < n; ++t) {
        workers.emplace_back(run_member, t);
      }
      run_member(0);
      for (auto& worker : workers) worker.join();
    }
  } else {
    run_member(0);
  }

  if (control->first_error) std::rethrow_exception(control->first_error);
}

void parallel(const std::function<void(TeamContext&)>& body) {
  parallel(0, body);
}

}  // namespace pdc::smp
