#include "smp/team.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "chaos/chaos.hpp"
#include "smp/config.hpp"

namespace pdc::smp {

Team::Team(std::size_t num_threads)
    : num_threads_(num_threads), barrier_(num_threads) {
  if (num_threads == 0) {
    throw InvalidArgument("Team requires at least one thread");
  }
}

std::mutex& Team::critical_mutex(const std::string& name) {
  std::lock_guard lock(criticals_mutex_);
  auto& slot = criticals_[name];
  if (!slot) slot = std::make_unique<std::mutex>();
  return *slot;
}

Team::Slot& Team::acquire_slot(std::uint64_t id) {
  std::lock_guard lock(slots_mutex_);
  auto& slot = slots_[id];
  if (!slot) slot = std::make_unique<Slot>();
  return *slot;
}

void Team::depart_slot(std::uint64_t id) {
  std::lock_guard lock(slots_mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) return;
  if (++it->second->departed == num_threads_) {
    slots_.erase(it);
  }
}

bool TeamContext::single(const std::function<void()>& fn, bool nowait) {
  const std::uint64_t id = next_construct_id();
  auto& slot = team_->acquire_slot(id);
  bool i_ran = false;
  {
    std::lock_guard lock(slot.mutex);
    if (!slot.claimed) {
      slot.claimed = true;
      i_ran = true;
    }
  }
  if (i_ran) fn();
  team_->depart_slot(id);
  if (!nowait) barrier();
  return i_ran;
}

void TeamContext::for_ranges(
    std::int64_t lo, std::int64_t hi, Schedule sched,
    const std::function<void(std::int64_t, std::int64_t)>& body, bool nowait) {
  const std::int64_t n = std::max<std::int64_t>(0, hi - lo);
  const auto threads = static_cast<std::int64_t>(num_threads());
  const auto me = static_cast<std::int64_t>(thread_num());

  switch (sched.kind) {
    case Schedule::Kind::Static: {
      // Contiguous blocks; the first (n % threads) blocks get one extra
      // iteration so the imbalance is at most 1.
      const std::int64_t base = n / threads;
      const std::int64_t extra = n % threads;
      const std::int64_t begin =
          lo + me * base + std::min(me, extra);
      const std::int64_t end = begin + base + (me < extra ? 1 : 0);
      if (begin < end) body(begin, end);
      break;
    }
    case Schedule::Kind::StaticChunk: {
      const auto chunk = static_cast<std::int64_t>(std::max<std::size_t>(1, sched.chunk));
      for (std::int64_t start = me * chunk; start < n; start += threads * chunk) {
        body(lo + start, lo + std::min(n, start + chunk));
      }
      break;
    }
    case Schedule::Kind::Dynamic: {
      const auto chunk = static_cast<std::int64_t>(std::max<std::size_t>(1, sched.chunk));
      const std::uint64_t id = next_construct_id();
      auto& slot = team_->acquire_slot(id);
      for (;;) {
        // Chaos schedule-exploration point: perturbing threads *between*
        // chunk claims shifts which thread wins each chunk of a dynamic
        // schedule, the nondeterminism dynamic-schedule programs must be
        // robust to.
        chaos::on_schedule_point("smp.dispatch");
        const std::int64_t start =
            slot.next.fetch_add(chunk, std::memory_order_relaxed);
        if (start >= n) break;
        body(lo + start, lo + std::min(n, start + chunk));
      }
      team_->depart_slot(id);
      break;
    }
    case Schedule::Kind::Guided: {
      const auto min_chunk = static_cast<std::int64_t>(std::max<std::size_t>(1, sched.chunk));
      const std::uint64_t id = next_construct_id();
      auto& slot = team_->acquire_slot(id);
      for (;;) {
        std::int64_t start = slot.next.load(std::memory_order_relaxed);
        std::int64_t chunk;
        do {
          if (start >= n) {
            chunk = 0;
            break;
          }
          const std::int64_t remaining = n - start;
          chunk = std::max(min_chunk, remaining / (2 * threads));
          chunk = std::min(chunk, remaining);
        } while (!slot.next.compare_exchange_weak(start, start + chunk,
                                                  std::memory_order_relaxed));
        if (chunk == 0) break;
        body(lo + start, lo + start + chunk);
      }
      team_->depart_slot(id);
      break;
    }
  }
  if (!nowait) barrier();
}

void TeamContext::for_each(std::int64_t lo, std::int64_t hi, Schedule sched,
                           const std::function<void(std::int64_t)>& body,
                           bool nowait) {
  for_ranges(
      lo, hi, sched,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) body(i);
      },
      nowait);
}

void TeamContext::OrderedContext::run(std::int64_t i,
                                      const std::function<void()>& fn) {
  std::unique_lock lock(*mutex_);
  cv_->wait(lock, [&] { return *next_ == i - lo_; });
  fn();  // still holding the lock: the region is serialized by design
  ++*next_;
  cv_->notify_all();
}

void TeamContext::for_each_ordered(
    std::int64_t lo, std::int64_t hi, Schedule sched,
    const std::function<void(std::int64_t, OrderedContext&)>& body,
    bool nowait) {
  // A dedicated slot provides the ordered-region turnstile; the inner
  // worksharing loop allocates its own dispatch slot as usual.
  const std::uint64_t id = next_construct_id();
  auto& slot = team_->acquire_slot(id);
  OrderedContext ordered(slot.mutex, slot.cv, slot.ordered_next, lo);
  for_each(
      lo, hi, sched, [&](std::int64_t i) { body(i, ordered); },
      /*nowait=*/true);
  team_->depart_slot(id);
  if (!nowait) barrier();
}

void TeamContext::sections(const std::vector<std::function<void()>>& tasks,
                           bool nowait) {
  for_each(
      0, static_cast<std::int64_t>(tasks.size()), Schedule::dynamic(1),
      [&](std::int64_t i) { tasks[static_cast<std::size_t>(i)](); }, nowait);
}

void parallel(std::size_t num_threads,
              const std::function<void(TeamContext&)>& body) {
  trace::Span region("smp.parallel", "smp.runtime");
  const std::size_t n = num_threads == 0 ? default_num_threads() : num_threads;
  Team team(n);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto run_member = [&](std::size_t thread_num) {
    TeamContext ctx(team, thread_num);
    // Chaos decisions for a team member are keyed by its stable thread_num,
    // not the host thread, so seeded perturbations replay per member.
    chaos::ActorScope chaos_lane(chaos::kTeamActorBase +
                                 static_cast<int>(thread_num));
    trace::Span member("smp.member", "smp.runtime");
    try {
      body(ctx);
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t) {
    workers.emplace_back(run_member, t);
  }
  run_member(0);  // the calling thread is team member 0, as in OpenMP
  for (auto& worker : workers) worker.join();

  if (first_error) std::rethrow_exception(first_error);
}

void parallel(const std::function<void(TeamContext&)>& body) {
  parallel(0, body);
}

}  // namespace pdc::smp
