#include "smp/config.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

namespace pdc::smp {

namespace {
std::atomic<std::size_t> g_override{0};

// Spin override: kSpinAuto means "unset", anything else is the value.
std::atomic<std::size_t> g_spin_override{kSpinAuto};

// Reuse override: -1 unset, 0 disabled, 1 enabled.
std::atomic<int> g_reuse_override{-1};

std::size_t env_num_threads() {
  if (const char* env = std::getenv("PDC_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;
}
}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::size_t default_num_threads() {
  if (const std::size_t n = g_override.load(std::memory_order_relaxed); n > 0) {
    return n;
  }
  if (const std::size_t n = env_num_threads(); n > 0) return n;
  return hardware_threads();
}

void set_default_num_threads(std::size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

std::size_t spin_limit() {
  if (const std::size_t n = g_spin_override.load(std::memory_order_relaxed);
      n != kSpinAuto) {
    return n;
  }
  if (const char* env = std::getenv("PDCLAB_SMP_SPIN")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 0) return static_cast<std::size_t>(parsed);
  }
  return hardware_threads() > 1 ? 4096 : 0;
}

void set_spin_limit(std::size_t n) {
  g_spin_override.store(n, std::memory_order_relaxed);
}

bool team_reuse() {
  if (const int o = g_reuse_override.load(std::memory_order_relaxed); o >= 0) {
    return o != 0;
  }
  if (const char* env = std::getenv("PDCLAB_SMP_REUSE")) {
    return std::strtol(env, nullptr, 10) != 0;
  }
  return true;
}

void set_team_reuse(bool on) {
  g_reuse_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace pdc::smp
