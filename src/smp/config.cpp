#include "smp/config.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

namespace pdc::smp {

namespace {
std::atomic<std::size_t> g_override{0};

std::size_t env_num_threads() {
  if (const char* env = std::getenv("PDC_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;
}
}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::size_t default_num_threads() {
  if (const std::size_t n = g_override.load(std::memory_order_relaxed); n > 0) {
    return n;
  }
  if (const std::size_t n = env_num_threads(); n > 0) return n;
  return hardware_threads();
}

void set_default_num_threads(std::size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

}  // namespace pdc::smp
