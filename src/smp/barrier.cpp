#include "smp/barrier.hpp"

#include "chaos/chaos.hpp"
#include "smp/config.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::smp {

CyclicBarrier::CyclicBarrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) {
    throw InvalidArgument("CyclicBarrier requires at least one party");
  }
}

std::size_t CyclicBarrier::arrive_and_wait() {
  // Covers explicit `barrier` patternlets and the implicit barriers at the
  // end of worksharing constructs alike: the span is this thread's wait.
  // The chaos schedule point shuffles arrival order (the dimension
  // barrier-dependent code is sensitive to); the chaos checkpoint is where
  // a hostile plan kills a team member mid-region — which must poison, not
  // hang, the survivors.
  chaos::on_schedule_point("smp.barrier");
  chaos::on_op("smp.barrier");
  trace::Span span("smp.barrier", "smp.sync");

  if (poisoned()) {
    throw TeamAborted("smp: barrier poisoned before arrival");
  }

  // Read the sense *before* publishing the arrival: a thread can only
  // re-arrive for cycle k+1 after observing the cycle-k phase bump, so this
  // load can never see a stale cycle.
  const std::uint32_t my_phase = phase_.load(std::memory_order_acquire);
  const std::size_t my_index =
      arrived_.fetch_add(1, std::memory_order_acq_rel);

  if (my_index + 1 == parties_) {
    // Last arriver: reset for the next cycle, then reverse the sense. The
    // reset must precede the bump — a released waiter may re-arrive
    // immediately and its fetch_add has to land on a zeroed counter.
    arrived_.store(0, std::memory_order_relaxed);
    phase_.fetch_add(1, std::memory_order_acq_rel);
    phase_.notify_all();
    if (poisoned()) {
      throw TeamAborted("smp: barrier poisoned during arrival");
    }
    return my_index;
  }

  const auto released = [&] {
    return phase_.load(std::memory_order_acquire) != my_phase;
  };
  if (!detail::spin_then_yield(spin_limit(), released)) {
    while (!released()) phase_.wait(my_phase, std::memory_order_acquire);
  }
  if (poisoned()) {
    throw TeamAborted("smp: barrier poisoned while waiting");
  }
  return my_index;
}

void CyclicBarrier::poison() noexcept {
  poisoned_.store(true, std::memory_order_release);
  // Bump the sense so every current waiter is released; it finds the poison
  // flag on the way out. New arrivals see the flag before they ever wait.
  phase_.fetch_add(1, std::memory_order_acq_rel);
  phase_.notify_all();
}

LegacyCyclicBarrier::LegacyCyclicBarrier(std::size_t parties)
    : parties_(parties) {
  if (parties == 0) {
    throw InvalidArgument("LegacyCyclicBarrier requires at least one party");
  }
}

std::size_t LegacyCyclicBarrier::arrive_and_wait() {
  // Same chaos/trace instrumentation as the sense-reversing barrier: the
  // baseline engine must answer the same hostile schedules and show up in
  // the same trace lanes so the two engines stay comparable.
  chaos::on_schedule_point("smp.barrier");
  chaos::on_op("smp.barrier");
  trace::Span span("smp.barrier", "smp.sync");

  std::unique_lock lock(mutex_);
  if (poisoned()) {
    throw TeamAborted("smp: barrier poisoned before arrival");
  }
  const std::size_t my_index = arrived_++;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    released_.notify_all();
    return my_index;
  }
  const std::size_t my_generation = generation_;
  released_.wait(lock,
                 [&] { return generation_ != my_generation || poisoned(); });
  if (generation_ == my_generation) {
    throw TeamAborted("smp: barrier poisoned while waiting");
  }
  return my_index;
}

void LegacyCyclicBarrier::poison() noexcept {
  // Store under the mutex so a waiter either re-checks its predicate after
  // we unlock (and sees the flag) or was already released.
  std::lock_guard lock(mutex_);
  poisoned_.store(true, std::memory_order_release);
  released_.notify_all();
}

}  // namespace pdc::smp
