#include "smp/barrier.hpp"

#include "chaos/chaos.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::smp {

CyclicBarrier::CyclicBarrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) {
    throw InvalidArgument("CyclicBarrier requires at least one party");
  }
}

std::size_t CyclicBarrier::arrive_and_wait() {
  // Covers explicit `barrier` patternlets and the implicit barriers at the
  // end of worksharing constructs alike: the span is this thread's wait.
  // The chaos point (before taking the lock) shuffles arrival order, which
  // is the schedule dimension barrier-dependent code is sensitive to.
  chaos::on_schedule_point("smp.barrier");
  trace::Span span("smp.barrier", "smp.sync");
  std::unique_lock lock(mutex_);
  const std::size_t my_index = arrived_++;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    released_.notify_all();
    return my_index;
  }
  const std::size_t my_generation = generation_;
  released_.wait(lock, [&] { return generation_ != my_generation; });
  return my_index;
}

}  // namespace pdc::smp
