#pragma once

#include <cstddef>

namespace pdc::smp {

/// Default thread count used when a parallel construct is invoked without an
/// explicit count. Resolution order:
///   1. the value set by set_default_num_threads(),
///   2. the PDC_NUM_THREADS environment variable,
///   3. std::thread::hardware_concurrency() (at least 1).
///
/// This mirrors OMP_NUM_THREADS / omp_set_num_threads in the OpenMP
/// materials the paper teaches.
std::size_t default_num_threads();

/// Programmatic override; `n == 0` restores environment/hardware resolution.
void set_default_num_threads(std::size_t n);

/// The hardware concurrency of this host (never 0).
std::size_t hardware_threads();

}  // namespace pdc::smp
