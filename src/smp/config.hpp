#pragma once

#include <cstddef>

namespace pdc::smp {

/// Default thread count used when a parallel construct is invoked without an
/// explicit count. Resolution order:
///   1. the value set by set_default_num_threads(),
///   2. the PDC_NUM_THREADS environment variable,
///   3. std::thread::hardware_concurrency() (at least 1).
///
/// This mirrors OMP_NUM_THREADS / omp_set_num_threads in the OpenMP
/// materials the paper teaches.
std::size_t default_num_threads();

/// Programmatic override; `n == 0` restores environment/hardware resolution.
void set_default_num_threads(std::size_t n);

/// The hardware concurrency of this host (never 0).
std::size_t hardware_threads();

/// Sentinel for set_spin_limit(): restore environment/hardware resolution.
inline constexpr std::size_t kSpinAuto = static_cast<std::size_t>(-1);

/// How many times a waiting thread polls before it starts yielding and then
/// blocks (the spin phase of every smp wait: barriers, the fork-join
/// completion latch, parked workers, and slot-ring recycling). Resolution:
///   1. the value set by set_spin_limit(),
///   2. the PDCLAB_SMP_SPIN environment variable,
///   3. a hardware default: 0 on single-core hosts (spinning there only
///      steals the core from the thread being waited for), 4096 otherwise.
std::size_t spin_limit();

/// Programmatic override; `kSpinAuto` restores environment/hardware
/// resolution. `0` means "never spin, go straight to yield-then-block" —
/// the right setting for heavily oversubscribed hosts.
void set_spin_limit(std::size_t n);

/// Whether `parallel(...)` reuses the process-wide cached worker team
/// (parked threads woken per region) instead of constructing and joining
/// fresh std::threads per region. Defaults to true; the PDCLAB_SMP_REUSE
/// environment variable set to 0 selects the full pre-overhaul baseline
/// engine — spawn-per-region threads *and* the old mutex+CV barrier — the
/// before-state the fork-join microbenchmarks compare against.
bool team_reuse();

/// Programmatic override of team_reuse(), used by benchmarks to measure the
/// spawn-per-region baseline from the same binary.
void set_team_reuse(bool on);

}  // namespace pdc::smp
