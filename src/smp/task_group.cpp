#include "smp/task_group.hpp"

#include "chaos/chaos.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::smp {

TaskGroup::TaskGroup(ThreadPool& pool) : pool_(&pool) {}

TaskGroup::~TaskGroup() {
  // Draining in the destructor keeps the invariant that captured state
  // outlives every task, even if the user forgot to wait().
  try {
    wait();
  } catch (...) {
    // Swallowing here is the lesser evil; wait() is where errors belong.
  }
}

void TaskGroup::run(std::function<void()> task) {
  if (!task) throw InvalidArgument("TaskGroup::run: task required");
  // Spawn-side chaos point: delaying the spawner reorders how task trees
  // unfold relative to the workers draining them.
  chaos::on_schedule_point("smp.task_spawn");
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  spawned_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    waited_ = false;
  }
  pool_->submit([this, task = std::move(task)] {
    try {
      trace::Span span("taskgroup.task", "smp.tasks");
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // The decrement must happen under the mutex: wait()'s predicate runs
    // with the mutex held, so a waiter cannot observe "drained" (and let the
    // group be destroyed) until this worker has released the lock — after
    // which it never touches the group again.
    std::lock_guard lock(mutex_);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      drained_.notify_all();
    }
  });
}

void TaskGroup::wait() {
  trace::Span span("taskgroup.wait", "smp.tasks");
  std::unique_lock lock(mutex_);
  drained_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
  waited_ = true;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace pdc::smp
