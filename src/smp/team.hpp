#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "smp/barrier.hpp"
#include "smp/schedule.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::smp {

class TeamContext;

/// Shared state of one fork-join thread team.
///
/// A Team is created by `pdc::smp::parallel(...)`; user code only ever sees
/// the per-thread `TeamContext` view. All worksharing constructs (loops,
/// single, reductions, sections) must be encountered by every thread of the
/// team in the same order — the same rule OpenMP imposes — because matching
/// is by per-thread construct sequence number.
class Team {
 public:
  explicit Team(std::size_t num_threads);

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept { return num_threads_; }

  /// Team-wide barrier (also used for the implicit barriers of worksharing
  /// constructs).
  CyclicBarrier& barrier() noexcept { return barrier_; }

  /// The mutex backing a named critical section; created on first use.
  std::mutex& critical_mutex(const std::string& name);

 private:
  friend class TeamContext;

  /// Shared per-construct rendezvous state, keyed by construct sequence id.
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<std::int64_t> next{0};        // loop dispatch cursor
    std::int64_t ordered_next = 0;            // ordered-region turn counter
    std::shared_ptr<void> payload;            // reduction accumulator
    std::size_t arrived = 0;
    std::size_t departed = 0;
    bool ready = false;                       // reduction result complete
    bool claimed = false;                     // `single` executor chosen
  };

  /// Get (creating if first arrival) the slot for construct `id`.
  Slot& acquire_slot(std::uint64_t id);

  /// Called once per thread when done with construct `id`; the last thread
  /// to depart frees the slot so long-running teams don't leak state.
  void depart_slot(std::uint64_t id);

  const std::size_t num_threads_;
  CyclicBarrier barrier_;

  std::mutex slots_mutex_;
  std::map<std::uint64_t, std::unique_ptr<Slot>> slots_;

  std::mutex criticals_mutex_;
  std::map<std::string, std::unique_ptr<std::mutex>> criticals_;
};

/// Per-thread view of a parallel region: what OpenMP exposes through
/// omp_get_thread_num(), `#pragma omp for/critical/single/master/barrier`
/// and reduction clauses.
class TeamContext {
 public:
  TeamContext(Team& team, std::size_t thread_num)
      : team_(&team), thread_num_(thread_num) {}

  /// This thread's id within the team, in [0, num_threads()).
  [[nodiscard]] std::size_t thread_num() const noexcept { return thread_num_; }

  /// Team size.
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return team_->num_threads();
  }

  /// Block until every team member reaches the barrier.
  void barrier() { team_->barrier().arrive_and_wait(); }

  /// Execute `fn` under the team's unnamed critical-section mutex.
  void critical(const std::function<void()>& fn) { critical("", fn); }

  /// Execute `fn` under the named critical-section mutex. Distinct names
  /// never contend with each other, exactly as in OpenMP.
  void critical(const std::string& name, const std::function<void()>& fn) {
    std::lock_guard lock(team_->critical_mutex(name));
    fn();
  }

  /// Execute `fn` on thread 0 only (no implied barrier). Returns true on the
  /// thread that ran it.
  bool master(const std::function<void()>& fn) {
    if (thread_num_ != 0) return false;
    fn();
    return true;
  }

  /// Execute `fn` on exactly one (first-arriving) thread. Unless `nowait`,
  /// all threads synchronize afterwards, as with OpenMP's implicit barrier.
  /// Returns true on the thread that executed `fn`.
  bool single(const std::function<void()>& fn, bool nowait = false);

  /// Worksharing loop over the half-open index range [lo, hi): the team's
  /// threads collectively execute `body(i)` exactly once per index, divided
  /// according to `sched`. Implicit trailing barrier unless `nowait`.
  void for_each(std::int64_t lo, std::int64_t hi, Schedule sched,
                const std::function<void(std::int64_t)>& body,
                bool nowait = false);

  /// Range-chunk variant of for_each: `body(begin, end)` receives each
  /// dispatched chunk, which avoids per-index call overhead in hot loops.
  void for_ranges(std::int64_t lo, std::int64_t hi, Schedule sched,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  bool nowait = false);

  /// Worksharing sections: each task runs exactly once, tasks distributed
  /// dynamically across the team. Implicit trailing barrier unless `nowait`.
  void sections(const std::vector<std::function<void()>>& tasks,
                bool nowait = false);

  /// The `ordered` region of an ordered worksharing loop: code passed to
  /// run() executes strictly in iteration order even though the rest of the
  /// loop body runs in parallel (OpenMP's `ordered` clause + directive).
  /// Obtained only from for_each_ordered.
  class OrderedContext {
   public:
    /// Execute `fn` for iteration `i` once every iteration before `i` has
    /// completed its ordered region. Must be called exactly once per
    /// iteration, with that iteration's index.
    void run(std::int64_t i, const std::function<void()>& fn);

   private:
    friend class TeamContext;
    OrderedContext(std::mutex& mutex, std::condition_variable& cv,
                   std::int64_t& next, std::int64_t lo)
        : mutex_(&mutex), cv_(&cv), next_(&next), lo_(lo) {}
    std::mutex* mutex_;
    std::condition_variable* cv_;
    std::int64_t* next_;  ///< next iteration allowed into the region
    std::int64_t lo_;
  };

  /// Ordered worksharing loop over [lo, hi): iterations are distributed by
  /// `sched` and `body(i, ordered)` bodies run concurrently, but whatever
  /// each body passes to `ordered.run(i, ...)` executes in ascending
  /// iteration order — the construct behind pipelined loops that must emit
  /// results in order. Implicit trailing barrier unless `nowait`.
  void for_each_ordered(
      std::int64_t lo, std::int64_t hi, Schedule sched,
      const std::function<void(std::int64_t, OrderedContext&)>& body,
      bool nowait = false);

  /// Team-wide reduction: combines every thread's `local` value with
  /// `combine` (associative & commutative) and returns the result on every
  /// thread. Acts as a barrier.
  template <typename T, typename Combine>
  T reduce(const T& local, Combine combine) {
    trace::Span span("smp.reduce", "smp.sync");
    const std::uint64_t id = next_construct_id();
    auto& slot = team_->acquire_slot(id);
    T result;
    {
      std::unique_lock lock(slot.mutex);
      if (!slot.payload) {
        slot.payload = std::make_shared<T>(local);
      } else {
        auto& acc = *std::static_pointer_cast<T>(slot.payload);
        acc = combine(acc, local);
      }
      if (++slot.arrived == num_threads()) {
        slot.ready = true;
        slot.cv.notify_all();
      } else {
        slot.cv.wait(lock, [&] { return slot.ready; });
      }
      result = *std::static_pointer_cast<T>(slot.payload);
    }
    team_->depart_slot(id);
    return result;
  }

  /// Sum-reduction convenience (the reduction patternlet's `+` clause).
  template <typename T>
  T reduce_sum(const T& local) {
    return reduce(local, [](const T& a, const T& b) { return a + b; });
  }

 private:
  /// Sequence number for the next worksharing/collective construct this
  /// thread encounters. Identical across threads by the same-order rule.
  std::uint64_t next_construct_id() noexcept { return construct_counter_++; }

  Team* team_;
  std::size_t thread_num_;
  std::uint64_t construct_counter_ = 0;
};

/// Fork `num_threads` threads running `body(ctx)` and join them (the
/// fork-join patternlet; equivalent to `#pragma omp parallel`).
/// The first exception thrown by any thread is rethrown to the caller after
/// all threads have joined. `num_threads == 0` uses default_num_threads().
void parallel(std::size_t num_threads,
              const std::function<void(TeamContext&)>& body);

/// As above with the default thread count.
void parallel(const std::function<void(TeamContext&)>& body);

}  // namespace pdc::smp
