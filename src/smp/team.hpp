#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "smp/barrier.hpp"
#include "smp/schedule.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::smp {

class TeamContext;

/// Shared state of one fork-join thread team.
///
/// A Team is created by `pdc::smp::parallel(...)` and lives for exactly one
/// parallel region; user code only ever sees the per-thread `TeamContext`
/// view. All worksharing constructs (loops, single, reductions, sections)
/// must be encountered by every thread of the team in the same order — the
/// same rule OpenMP imposes — because matching is by per-thread construct
/// sequence number.
class Team {
 public:
  /// Per-construct rendezvous state is preallocated as a ring of this many
  /// slots indexed by construct id; entry `id % kSlotRing` serves construct
  /// `id`. Acquire is a single atomic load on the hot path. An entry
  /// recycles once every thread departs its previous construct, so only a
  /// thread more than kSlotRing nowait-constructs ahead of the slowest
  /// sibling ever waits at acquire (and that wait is poison-aware).
  static constexpr std::size_t kSlotRing = 32;

  explicit Team(std::size_t num_threads);

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept { return num_threads_; }

  /// Team-wide barrier arrival (also the implicit barrier of worksharing
  /// constructs). Returns the arrival index within the cycle. A Team
  /// constructed while team_reuse() is off routes this through the
  /// preserved pre-overhaul mutex+CV barrier so the spawn-per-region
  /// baseline reproduces the old engine end to end.
  std::size_t arrive_and_wait() {
    return legacy_barrier_ ? legacy_barrier_->arrive_and_wait()
                           : barrier_.arrive_and_wait();
  }

  /// The team's sense-reversing barrier (the production engine's).
  CyclicBarrier& barrier() noexcept { return barrier_; }

  /// The mutex backing a named critical section; created on first use.
  std::mutex& critical_mutex(const std::string& name);

  /// Poison the team: wake every member parked at a barrier, reduction
  /// rendezvous, ordered-region turnstile or slot-recycle wait, and make
  /// every subsequent synchronization throw TeamAborted. Called by
  /// `parallel(...)`'s member catch path so a throwing member (or a chaos
  /// InjectedAbort) unwinds the whole team instead of stranding siblings.
  /// Idempotent; there is no un-poison — the Team dies with its region.
  void poison() noexcept;

  /// Whether poison() has been called.
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  /// Introspection for tests: ring slots some thread has entered but not
  /// every thread has departed. A completed (un-poisoned) region must leave
  /// this at zero — the no-slot-leak property of every construct, including
  /// degenerate ones (empty ranges, `sections({})`, threads > iterations).
  [[nodiscard]] std::size_t busy_slots() const noexcept;

 private:
  friend class TeamContext;

  /// Shared per-construct rendezvous state. Lives in the preallocated ring;
  /// `serving` names the construct id the entry currently belongs to.
  struct Slot {
    /// Loop dispatch cursor, alone on its cache line: dynamic/guided chunk
    /// claims fetch_add it concurrently, and sharing a line with the slot
    /// mutex (or anything else threads read) turns every claim into a
    /// false-sharing miss for the whole team.
    alignas(64) std::atomic<std::int64_t> next{0};

    /// Construct id this entry currently serves; published with release by
    /// the last departer of the previous tenant (id - kSlotRing). On its
    /// own line so acquire polling never collides with chunk claims.
    alignas(64) std::atomic<std::uint64_t> serving{0};
    std::atomic<std::size_t> entered{0};   ///< arrivals for current tenant
    std::atomic<std::size_t> departed{0};  ///< departures for current tenant

    std::mutex mutex;
    std::condition_variable cv;
    std::int64_t ordered_next = 0;  ///< ordered-region turn counter
    std::shared_ptr<void> payload;  ///< reduction accumulator
    std::size_t arrived = 0;
    bool ready = false;    ///< reduction result complete
    bool claimed = false;  ///< `single` executor chosen
  };

  /// Get the slot serving construct `id`, waiting (poison-aware) for the
  /// ring entry to recycle if a sibling is still more than kSlotRing
  /// constructs behind. Throws TeamAborted if the team is poisoned.
  Slot& acquire_slot(std::uint64_t id);

  /// Called once per thread when done with construct `id`; the last thread
  /// to depart resets the slot and republishes it for id + kSlotRing, so
  /// long-running teams never leak state.
  void depart_slot(std::uint64_t id);

  const std::size_t num_threads_;
  CyclicBarrier barrier_;
  /// Engaged (and used instead of barrier_) when the Team was constructed
  /// in spawn-per-region baseline mode; see arrive_and_wait().
  std::optional<LegacyCyclicBarrier> legacy_barrier_;
  std::atomic<bool> aborted_{false};

  std::array<Slot, kSlotRing> slots_;

  std::mutex criticals_mutex_;
  std::map<std::string, std::unique_ptr<std::mutex>> criticals_;
};

/// Per-thread view of a parallel region: what OpenMP exposes through
/// omp_get_thread_num(), `#pragma omp for/critical/single/master/barrier`
/// and reduction clauses.
class TeamContext {
 public:
  TeamContext(Team& team, std::size_t thread_num)
      : team_(&team), thread_num_(thread_num) {}

  /// This thread's id within the team, in [0, num_threads()).
  [[nodiscard]] std::size_t thread_num() const noexcept { return thread_num_; }

  /// Team size.
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return team_->num_threads();
  }

  /// Block until every team member reaches the barrier. Throws TeamAborted
  /// if the team is poisoned (a sibling threw out of the region).
  void barrier() { team_->arrive_and_wait(); }

  /// Execute `fn` under the team's unnamed critical-section mutex.
  void critical(const std::function<void()>& fn) { critical("", fn); }

  /// Execute `fn` under the named critical-section mutex. Distinct names
  /// never contend with each other, exactly as in OpenMP.
  void critical(const std::string& name, const std::function<void()>& fn) {
    std::lock_guard lock(team_->critical_mutex(name));
    fn();
  }

  /// Execute `fn` on thread 0 only (no implied barrier). Returns true on the
  /// thread that ran it.
  bool master(const std::function<void()>& fn) {
    if (thread_num_ != 0) return false;
    fn();
    return true;
  }

  /// Execute `fn` on exactly one (first-arriving) thread. Unless `nowait`,
  /// all threads synchronize afterwards, as with OpenMP's implicit barrier.
  /// Returns true on the thread that executed `fn`.
  bool single(const std::function<void()>& fn, bool nowait = false);

  /// Worksharing loop over the half-open index range [lo, hi): the team's
  /// threads collectively execute `body(i)` exactly once per index, divided
  /// according to `sched`. Implicit trailing barrier unless `nowait`.
  void for_each(std::int64_t lo, std::int64_t hi, Schedule sched,
                const std::function<void(std::int64_t)>& body,
                bool nowait = false);

  /// Range-chunk variant of for_each: `body(begin, end)` receives each
  /// dispatched chunk, which avoids per-index call overhead in hot loops.
  void for_ranges(std::int64_t lo, std::int64_t hi, Schedule sched,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  bool nowait = false);

  /// Worksharing sections: each task runs exactly once, tasks distributed
  /// dynamically across the team. Implicit trailing barrier unless `nowait`.
  void sections(const std::vector<std::function<void()>>& tasks,
                bool nowait = false);

  /// The `ordered` region of an ordered worksharing loop: code passed to
  /// run() executes strictly in iteration order even though the rest of the
  /// loop body runs in parallel (OpenMP's `ordered` clause + directive).
  /// Obtained only from for_each_ordered.
  class OrderedContext {
   public:
    /// Execute `fn` for iteration `i` once every iteration before `i` has
    /// completed its ordered region. Must be called exactly once per
    /// iteration, with that iteration's index. Throws TeamAborted instead
    /// of waiting forever if the team is poisoned.
    void run(std::int64_t i, const std::function<void()>& fn);

   private:
    friend class TeamContext;
    OrderedContext(std::mutex& mutex, std::condition_variable& cv,
                   std::int64_t& next, std::int64_t lo,
                   const std::atomic<bool>& aborted)
        : mutex_(&mutex), cv_(&cv), next_(&next), lo_(lo), aborted_(&aborted) {}
    std::mutex* mutex_;
    std::condition_variable* cv_;
    std::int64_t* next_;  ///< next iteration allowed into the region
    std::int64_t lo_;
    const std::atomic<bool>* aborted_;  ///< the owning team's poison flag
  };

  /// Ordered worksharing loop over [lo, hi): iterations are distributed by
  /// `sched` and `body(i, ordered)` bodies run concurrently, but whatever
  /// each body passes to `ordered.run(i, ...)` executes in ascending
  /// iteration order — the construct behind pipelined loops that must emit
  /// results in order. Implicit trailing barrier unless `nowait`.
  void for_each_ordered(
      std::int64_t lo, std::int64_t hi, Schedule sched,
      const std::function<void(std::int64_t, OrderedContext&)>& body,
      bool nowait = false);

  /// Team-wide reduction: combines every thread's `local` value with
  /// `combine` (associative & commutative) and returns the result on every
  /// thread. Acts as a barrier. T must be copy-constructible — it need NOT
  /// be default-constructible: the accumulator is seeded by copying the
  /// first arriver's `local` and the result is copied straight out of the
  /// slot payload.
  template <typename T, typename Combine>
  T reduce(const T& local, Combine combine) {
    trace::Span span("smp.reduce", "smp.sync");
    const std::uint64_t id = next_construct_id();
    auto& slot = team_->acquire_slot(id);
    std::shared_ptr<const T> result;
    {
      std::unique_lock lock(slot.mutex);
      if (!slot.payload) {
        slot.payload = std::make_shared<T>(local);
      } else {
        auto& acc = *std::static_pointer_cast<T>(slot.payload);
        acc = combine(acc, local);
      }
      if (++slot.arrived == num_threads()) {
        slot.ready = true;
        slot.cv.notify_all();
      } else {
        slot.cv.wait(lock,
                     [&] { return slot.ready || team_->aborted(); });
        if (!slot.ready) {
          throw TeamAborted("smp: reduction abandoned, team poisoned");
        }
      }
      // Holding the shared_ptr (not a reference) keeps the accumulator
      // alive past the slot recycle that depart_slot may trigger.
      result = std::static_pointer_cast<const T>(slot.payload);
    }
    team_->depart_slot(id);
    return *result;
  }

  /// Sum-reduction convenience (the reduction patternlet's `+` clause).
  template <typename T>
  T reduce_sum(const T& local) {
    return reduce(local, [](const T& a, const T& b) { return a + b; });
  }

 private:
  /// Sequence number for the next worksharing/collective construct this
  /// thread encounters. Identical across threads by the same-order rule.
  std::uint64_t next_construct_id() noexcept { return construct_counter_++; }

  Team* team_;
  std::size_t thread_num_;
  std::uint64_t construct_counter_ = 0;
};

/// Fork `num_threads` threads running `body(ctx)` and join them (the
/// fork-join patternlet; equivalent to `#pragma omp parallel`).
///
/// The calling thread is always team member 0, as in OpenMP. Members 1..n-1
/// run on the process-wide cached worker team: parked threads woken by an
/// epoch bump, re-parked when the region ends — so a program entering a
/// region per trial/batch (the forest-fire and integration exemplars) pays
/// an unpark, not a thread spawn, per region. Set PDCLAB_SMP_REUSE=0 (or
/// set_team_reuse(false)) to fall back to spawn-per-region.
///
/// The first exception thrown by any member poisons the team — waking every
/// sibling parked at a barrier/reduction/ordered wait with TeamAborted — and
/// is rethrown to the caller after all members have finished. A region
/// where a member throws therefore *completes* (with that exception); it
/// never hangs. `num_threads == 0` uses default_num_threads().
void parallel(std::size_t num_threads,
              const std::function<void(TeamContext&)>& body);

/// As above with the default thread count.
void parallel(const std::function<void(TeamContext&)>& body);

}  // namespace pdc::smp
