#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace pdc::smp {

/// Persistent worker pool with a shared FIFO task queue.
///
/// Distinct from the cached worker team behind `parallel(...)` (fixed-size
/// fork-join membership, per-region): the pool exists for longer-lived
/// pipelines — the drug-design exemplar's shared work queue and the
/// notebook engine's background execution — where tasks are independent
/// futures drained FIFO rather than members of one region.
class ThreadPool {
 public:
  /// Start `num_threads` workers (0 = default_num_threads()).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains nothing: running tasks complete, but tasks still waiting in the
  /// queue are **discarded without ever running**. The future of a discarded
  /// task becomes ready with `std::future_error` /
  /// `std::future_errc::broken_promise` (its packaged_task is destroyed
  /// unfulfilled) — so a `get()` after pool destruction throws rather than
  /// hanging. Call wait_idle() before destruction if every submitted task
  /// must run. Asserted by ThreadPool.DestructorDiscardsPendingTasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    auto future = packaged->get_future();
    Pending pending{[packaged] { (*packaged)(); }, {}};
    if (trace::enabled()) {
      pending.enqueued = std::chrono::steady_clock::now();
    }
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(pending));
    }
    work_available_.notify_one();
    return future;
  }

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks currently waiting in the queue (for observability/tests).
  [[nodiscard]] std::size_t pending() const;

 private:
  /// A queued task plus its submit time (stamped only while a trace session
  /// is active) so workers can record queue-wait vs. run time.
  struct Pending {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void worker_loop(std::size_t worker_index);

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace pdc::smp
