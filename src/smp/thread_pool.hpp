#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdc::smp {

/// Persistent worker pool with a shared FIFO task queue.
///
/// The fork-join `parallel(...)` construct deliberately creates fresh
/// threads (that *is* the fork-join patternlet); the pool exists for
/// longer-lived pipelines — the drug-design exemplar's shared work queue and
/// the notebook engine's background execution — where thread reuse matters.
class ThreadPool {
 public:
  /// Start `num_threads` workers (0 = default_num_threads()).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains nothing: pending tasks are discarded, running tasks complete.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    auto future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    work_available_.notify_one();
    return future;
  }

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks currently waiting in the queue (for observability/tests).
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace pdc::smp
