#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "smp/thread_pool.hpp"

namespace pdc::smp {

/// Structured task parallelism over a ThreadPool: the teaching analogue of
/// OpenMP's `task` + `taskwait`. Tasks may spawn nested tasks into the same
/// group; wait() returns only when the whole tree has completed.
///
/// Exceptions thrown by tasks are captured; wait() rethrows the first one
/// after the group drains (mirroring how `parallel` handles exceptions).
///
/// Tasks must not call wait() themselves — with a bounded pool that is a
/// classic self-deadlock (every worker blocked waiting for tasks no worker
/// is free to run). Recursive algorithms instead spawn children and return,
/// exactly as with OpenMP tasks without taskwait-in-task.
class TaskGroup {
 public:
  /// The pool must outlive the group.
  explicit TaskGroup(ThreadPool& pool);

  /// Drains the group (so captured state always outlives every task); any
  /// unobserved task exception is dropped — call wait() to receive errors.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawn a task; safe to call from inside other tasks of this group.
  void run(std::function<void()> task);

  /// Block until every spawned task (including ones spawned while waiting)
  /// has finished; rethrows the first task exception, if any.
  void wait();

  /// Tasks spawned so far (diagnostics).
  [[nodiscard]] std::size_t spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  ThreadPool* pool_;
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::size_t> spawned_{0};
  std::mutex mutex_;
  std::condition_variable drained_;
  std::exception_ptr first_error_;
  bool waited_ = true;  // a fresh group has nothing pending
};

}  // namespace pdc::smp
