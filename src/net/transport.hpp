#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mp/transport.hpp"
#include "net/socket.hpp"

namespace pdc::net {

namespace shm {
class ShmState;
}

/// Everything a rank needs to join a socket job. pdcrun fills this from
/// the PDCRUN_* environment contract (see runner.hpp); the in-process
/// harness (harness.hpp) and the benches fill it directly.
struct SocketConfig {
  Endpoint::Kind kind = Endpoint::Kind::Unix;
  /// Unix: directory holding one `rank<N>.sock` per rank.
  std::string dir;
  /// TCP: rank 0's rendezvous address. Other ranks listen ephemerally and
  /// publish their real port through the rendezvous.
  std::string host = "127.0.0.1";
  int port = 0;

  int np = 1;
  int rank = 0;
  /// Processor name this rank reports; defaults to the paper's Colab
  /// container id so socket runs match the loopback goldens.
  std::string hostname = "d6ff4f902ed6";
  /// Launcher-chosen token; a Hello with a different token is a stray
  /// process from another job and is rejected.
  std::string job = "local";

  // Wireup budgets: bounded retry with exponential backoff on every dial,
  // poll deadlines on every handshake read — a missing peer is a typed
  // ConnectionError, never a hang.
  int dial_attempts = 50;
  int connect_timeout_ms = 2000;     ///< per dial attempt
  int dial_backoff_initial_ms = 1;   ///< doubles per retry, jittered
  int dial_backoff_cap_ms = 200;     ///< ceiling for the dial backoff
  int handshake_timeout_ms = 10000;  ///< per wireup read / accept
  /// Teardown drain budget: how long to wait for the peers' goodbyes
  /// before closing anyway.
  int linger_ms = 5000;

  /// Carry Data frames between co-located ranks over lock-free shm rings
  /// instead of the pair socket. The socket mesh is still wired up and
  /// keeps carrying wireup, Abort, Bye and death detection (EOF-without-
  /// Bye), so every fault contract is unchanged — only the data path moves.
  bool use_shm = false;
  /// Per-direction shm ring capacity (power of two, >= 16 KiB).
  std::uint32_t shm_ring_bytes = 1u << 20;
  /// Node id per world rank (dense ids; same id ⇔ co-located). Empty means:
  /// every rank on one node when use_shm is set (pdcrun launches locally),
  /// otherwise group ranks by the hostname learned during wireup. Tests
  /// force multi-node topologies on one machine through this knob.
  std::vector<int> topology;
};

/// The real-process transport: one stream socket per peer pair, wired up
/// through a rank-0 rendezvous, a send queue + writer thread per peer on
/// the way out and a reader thread per peer feeding Mailbox::deliver on
/// the way in. Collectives, the comm→source FIFO index and encode-once
/// shared payloads all work unchanged on top.
///
/// Wireup (the constructor):
///   1. Every rank opens its own listener (unix: <dir>/rank<N>.sock;
///      tcp: an ephemeral port).
///   2. Ranks 1..N-1 dial rank 0's well-known endpoint with bounded retry
///      + exponential backoff and send Hello{job, np, rank, endpoint,
///      hostname}.
///   3. Rank 0, once all N-1 Hellos arrived, answers each with the full
///      Welcome address/hostname map. The rendezvous connection doubles as
///      the (0, r) data connection.
///   4. Rank r then dials every rank j with 0 < j < r at its published
///      endpoint (Hello again); rank j accepts from ranks above it. After
///      this, every pair shares exactly one connection.
///
/// A constructor failure (missing peer, hostile handshake, timeout) cleans
/// up after itself: no listener socket, no thread and no half-open peer
/// survives the throw — the Universe shutdown-ordering regression tests
/// pin this.
class SocketTransport final : public mp::Transport {
 public:
  /// Perform wireup and return the connected transport. Blocks until every
  /// pair is connected or a budget expires (ConnectionError) or a peer
  /// misbehaves (ProtocolError).
  explicit SocketTransport(const SocketConfig& config);

  ~SocketTransport() override;

  [[nodiscard]] const char* name() const noexcept override;

  /// Hostnames learned during wireup, indexed by world rank — what the
  /// distributed Universe reports from processor_name().
  [[nodiscard]] const std::vector<std::string>& hostnames() const noexcept {
    return hostnames_;
  }

  /// Node id per world rank (same id ⇔ co-located): the forced topology if
  /// one was configured, all-zero when use_shm is set without one, and
  /// hostname grouping (first-appearance order) otherwise. Feed this to
  /// Universe::set_topology so CollectiveAlgo::Auto sees the real shape.
  [[nodiscard]] std::vector<int> node_ids() const;

  void bind(mp::Universe& universe) override;
  void deliver(int dest_world_rank, mp::Envelope envelope) override;
  void propagate_abort() noexcept override;
  void shutdown() noexcept override;

  /// Co-located Data frames ride the lock-free shm rings only when the
  /// config asked for them; otherwise every intra-node hop is a kernel
  /// socket and the Auto resolvers should treat messages as expensive.
  [[nodiscard]] bool intra_node_shared_memory() const noexcept override {
    return shm_ != nullptr;
  }

  /// The first peer-loss postmortem, if any ("" when the job stayed
  /// healthy) — one line naming the peer and what happened to it.
  [[nodiscard]] std::string postmortem() const;

  /// Test hook: sever the connection to `peer_rank` abruptly (no Bye), as
  /// if that process had been SIGKILLed mid-message. The peer's reader
  /// must surface a typed error and unblock its receivers.
  void debug_sever_peer(int peer_rank);

 private:
  struct Peer {
    int rank = -1;
    Socket socket;
    std::string hostname;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<wire::DataFrame> outbox;
    bool closing = false;  ///< drain outbox, send Bye, exit

    std::thread writer;
    std::thread reader;
    std::atomic<bool> saw_bye{false};
    std::atomic<bool> dead{false};
  };

  void wireup(const SocketConfig& config);
  void wireup_rank0(const SocketConfig& config, const Endpoint& self);
  void wireup_peer(const SocketConfig& config, const Endpoint& self);
  Peer& peer_for(int world_rank);

  void writer_loop(Peer& peer);
  void reader_loop(Peer& peer);
  void enqueue_control(Peer& peer, wire::FrameKind kind);
  void on_peer_lost(Peer& peer, const std::string& why);

  SocketConfig config_;
  Endpoint listen_endpoint_;
  Socket listener_;
  /// One entry per world rank; the self entry has rank == -1 and no socket.
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::string> hostnames_;
  /// Shm rings for co-located peers (use_shm mode). Shut down before the
  /// socket Byes go out, destroyed (unmapped) after the socket teardown.
  std::unique_ptr<shm::ShmState> shm_;

  mp::Universe* universe_ = nullptr;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> abort_sent_{false};
  bool threads_started_ = false;

  mutable std::mutex postmortem_mutex_;
  std::string postmortem_;
};

}  // namespace pdc::net
