#pragma once

#include <chrono>
#include <string>

#include "mp/message.hpp"
#include "net/wire.hpp"

namespace pdc::net {

/// Where a rank can be reached: a Unix-domain socket path or a TCP
/// host:port. Serialized as "unix:<path>" / "tcp:<host>:<port>" in the
/// wireup frames.
struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;                 ///< Unix socket path
  std::string host = "127.0.0.1";   ///< TCP host
  int port = 0;                     ///< TCP port (0 = ephemeral when listening)

  [[nodiscard]] std::string to_string() const;
  /// Parse "unix:<path>" or "tcp:<host>:<port>"; throws ProtocolError.
  static Endpoint parse(const std::string& text);
};

/// RAII file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// ::shutdown(SHUT_RDWR): unblocks any thread parked in recv/send on this
  /// socket (they observe EOF/error), without racing the close of the fd.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen at `endpoint`. For TCP with port 0 the kernel picks an
/// ephemeral port — read it back with local_endpoint(). For Unix the path
/// must not exist yet (stale paths from a previous crashed job are
/// unlinked first). Throws ConnectionError.
Socket listen_at(const Endpoint& endpoint, int backlog);

/// The listener's actual address (resolves TCP port 0). Throws
/// ConnectionError.
Endpoint local_endpoint(const Socket& listener, const Endpoint& requested);

/// Wait up to `timeout` for a connection and accept it. Throws
/// ConnectionError on timeout or error.
Socket accept_for(Socket& listener, std::chrono::milliseconds timeout,
                  const char* who);

/// The sleep before dial attempt `attempt` (1-based: attempt 1 is the first
/// retry). True exponential backoff with a cap plus deterministic jitter:
///
///   base   = min(initial * 2^(attempt-1), cap)     (overflow-guarded)
///   jitter = splitmix64(jitter_key, attempt) % (base/4 + 1)
///   delay  = min(base + jitter, cap)
///
/// A non-positive `initial` is treated as 1ms — the old code slept
/// `initial` then doubled it, so initial=0 busy-dialed forever and any
/// initial never actually grew between attempts. The jitter is a pure
/// function of (jitter_key, attempt), so a rank's schedule is replayable
/// while distinct ranks (distinct keys) still decorrelate their retries.
std::chrono::milliseconds dial_backoff_delay(int attempt,
                                             std::chrono::milliseconds initial,
                                             std::chrono::milliseconds cap,
                                             std::uint64_t jitter_key);

/// Connect to `endpoint` with bounded retry: up to `attempts` tries, each
/// with `timeout_per_attempt`, sleeping dial_backoff_delay(attempt, ...)
/// between tries. Dial retries are counted on the net.dial_retries trace
/// counter. Throws ConnectionError once the budget is spent.
Socket dial(const Endpoint& endpoint, int attempts,
            std::chrono::milliseconds timeout_per_attempt,
            std::chrono::milliseconds backoff_initial, const char* who,
            std::chrono::milliseconds backoff_cap = std::chrono::milliseconds(200),
            std::uint64_t jitter_key = 0);

/// Write all of `data` (and then `payload`, if non-null) to the socket.
/// Uses MSG_NOSIGNAL so a dead peer surfaces as PeerLost, not SIGPIPE.
/// `bye_ok`: failures while writing a Bye during teardown are benign (the
/// peer may already be gone) and are swallowed instead of thrown.
/// A full send buffer (EAGAIN — the transport's peer sockets carry a
/// SO_SNDTIMEO) waits for writability instead of failing; only a peer that
/// makes no progress for `stall_budget` is declared lost.
void send_all(Socket& socket, const mp::Bytes& data,
              const mp::SharedPayload& payload, bool bye_ok, const char* who,
              std::chrono::milliseconds stall_budget =
                  std::chrono::milliseconds(5000));

/// Read exactly `n` bytes. Returns false on a clean EOF at offset 0 (the
/// peer closed between frames); throws PeerLost on an error or an EOF in
/// the middle of the buffer (a mid-message disconnect).
bool recv_exact(Socket& socket, void* out, std::size_t n, const char* who);

/// recv_exact with a poll() deadline (wireup handshakes). Throws
/// ConnectionError on timeout.
bool recv_exact_for(Socket& socket, void* out, std::size_t n,
                    std::chrono::milliseconds timeout, const char* who);

/// Read one whole frame (header + body). Returns false on clean EOF before
/// a header. Applies the header clamps before allocating the body.
bool recv_frame(Socket& socket, wire::Header* header, mp::Bytes* body,
                const char* who);

/// recv_frame with a per-read poll() deadline (wireup). Throws
/// ConnectionError on timeout.
bool recv_frame_for(Socket& socket, wire::Header* header, mp::Bytes* body,
                    std::chrono::milliseconds timeout, const char* who);

}  // namespace pdc::net
