#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdc::net {

// ---- pdcrun exit-code contract -------------------------------------------
// 0        every rank exited 0
// 64       bad command line (usage printed)
// 124      the watchdog expired and the job was killed
// 127      the rank binary does not exist or is not executable
// 128+N    the root-cause rank died on signal N (e.g. 137 = SIGKILL)
// else     the root-cause rank's own exit code (see runner.hpp: 2 config,
//          3 wireup, 4 program error, 5 peer abort). Peer-abort exits (5)
//          are collateral and only become the job code when every failing
//          rank exited 5.

inline constexpr int kLaunchUsage = 64;
inline constexpr int kLaunchTimeout = 124;
inline constexpr int kLaunchMissingBinary = 127;

/// One launched job, the `mpirun -np 4 ./prog` of this codebase:
///   pdcrun -np 4 [options] ./patternlet spmd
struct LaunchOptions {
  int np = 0;
  /// "unix", "tcp" or "shm" (unix mesh for wireup/control + lock-free shm
  /// rings for the co-located data path).
  std::string transport = "unix";
  /// Comma-separated node id per rank (e.g. "0,0,1,1"), exported as
  /// PDCRUN_NODES; "" = let the ranks derive the topology themselves.
  std::string nodes;
  std::string host = "127.0.0.1";  ///< tcp rendezvous host
  int port = 0;                    ///< tcp rendezvous port; 0 = pick one
  /// Whole-job watchdog: if any rank is still alive after this, the job is
  /// SIGKILLed and pdcrun exits 124. A hung distributed job must die here,
  /// not in a teacher's terminal.
  int timeout_ms = 120000;
  /// Grace between the first rank failure and escalation: healthy ranks get
  /// this long to notice the abort and exit on their own before SIGTERM
  /// (then SIGKILL two seconds later).
  int grace_ms = 5000;
  bool have_seed = false;
  std::uint64_t seed = 1;           ///< exported as PDCRUN_SEED
  std::string chaos_mode;           ///< "", "noise", "lossy", "hostile"
  bool chaos_kill = false;          ///< injected aborts become real SIGKILLs
  int kill_rank = -1;               ///< deterministically abort this rank...
  std::uint64_t kill_at_op = 0;     ///< ...at its Nth chaos checkpoint
  std::string trace_path;           ///< per-rank Chrome traces when set
  bool tag_output = true;           ///< prefix child lines with "[rank N] "
  std::string binary;
  std::vector<std::string> args;
};

/// How one rank's process ended.
struct RankOutcome {
  int pid = -1;
  bool exited = false;   ///< false = never reaped (watchdog path)
  int exit_code = 0;     ///< valid when exited && signal == 0
  int signal = 0;        ///< nonzero = died on this signal
  std::vector<std::string> tail;  ///< last lines the rank printed
};

struct LaunchReport {
  int exit_code = 0;
  std::vector<RankOutcome> ranks;
};

/// Parse a pdcrun command line (argv[0] is the program name). Returns 0 and
/// fills `out` on success; returns kLaunchUsage and fills `error` (usage
/// text) otherwise.
int parse_pdcrun_args(int argc, const char* const* argv, LaunchOptions* out,
                      std::string* error);

/// The pdcrun usage string.
std::string pdcrun_usage();

/// Fork one process per rank, export the PDCRUN_* contract to each, pump
/// their stdout/stderr to ours (prefixed "[rank N] "), reap them, and on
/// the first failure give the rest `grace_ms` to abort cleanly before
/// escalating SIGTERM → SIGKILL. Prints a per-rank postmortem to stderr
/// when anything failed. Returns the report (exit_code per the contract
/// above).
LaunchReport launch(const LaunchOptions& options);

}  // namespace pdc::net
