#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mp/communicator.hpp"
#include "net/transport.hpp"

namespace pdc::net {

/// Make a fresh private scratch directory (mkdtemp under $TMPDIR or /tmp)
/// for a job's unix sockets. Caller removes it with remove_scratch_dir.
std::string make_scratch_dir(const std::string& prefix);

/// Best-effort recursive unlink of a scratch dir's entries + rmdir.
void remove_scratch_dir(const std::string& dir);

/// Reserve a TCP port on 127.0.0.1 by binding an ephemeral listener,
/// reading the port back and closing it. Small race window — fine for
/// tests and benches, which is all this is for.
int pick_free_port();

/// In-process socket cluster: every rank is a *thread* of this process with
/// its own distributed Universe and SocketTransport, but the bytes still
/// travel through real unix/TCP sockets, writer threads and reader threads.
///
/// This is how the tsan suite, the chaos sweeps and the benches exercise
/// the full wire path deterministically: one process means one sanitizer
/// run, one chaos plan and one watchdog can cover all ranks, while the
/// framing/handshake/teardown code is byte-for-byte what pdcrun's real
/// processes execute.
struct ClusterOptions {
  Endpoint::Kind kind = Endpoint::Kind::Unix;
  int np = 2;
  std::string job = "harness";
  /// Carry co-located Data frames over lock-free shm rings (the pdcrun
  /// --transport shm data path). The job token is uniquified per cluster so
  /// concurrent tests never collide on segment names.
  bool use_shm = false;
  /// Per-direction shm ring capacity; tests shrink it to force payload
  /// streaming and wrap-around.
  std::uint32_t shm_ring_bytes = 1u << 20;
  /// Forced node id per world rank (see SocketConfig::topology); empty =
  /// derive from the transport (all co-located here).
  std::vector<int> nodes;
  /// Shrunk wireup/teardown budgets so a deliberately-broken test fails in
  /// milliseconds, not the production 10s handshake budget.
  int connect_timeout_ms = 2000;
  int handshake_timeout_ms = 10000;
  int linger_ms = 5000;
  /// Called on each rank thread after wireup + attach, before the program
  /// runs — the hook fault tests use to sever connections mid-job.
  std::function<void(int rank, SocketTransport&)> on_wired;
  /// Observe every printed line as it happens. Each rank thread owns its
  /// own Universe here, so — unlike mp::run — the sink IS entered
  /// concurrently from different ranks and must be thread-safe. Used by
  /// the lab worker to stream incremental Status frames; ClusterResult
  /// still carries the complete per-rank output.
  std::function<void(const std::string&)> on_output;
};

struct ClusterResult {
  /// Per-rank captured output (what each rank print()ed), world-rank order.
  std::vector<std::vector<std::string>> output;
  /// Per-rank error text; "" = the rank completed cleanly.
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const {
    for (const auto& e : errors) {
      if (!e.empty()) return false;
    }
    return true;
  }
  /// All ranks' output concatenated in world-rank order.
  [[nodiscard]] std::vector<std::string> merged() const;
};

ClusterResult run_socket_cluster(
    const ClusterOptions& options,
    const std::function<void(mp::Communicator&)>& program);

}  // namespace pdc::net
