#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mp/communicator.hpp"
#include "net/transport.hpp"

namespace pdc::net {

// ---- rank exit-code contract ---------------------------------------------
// pdcrun reports the first failing rank's code (or 128+signal for a signal
// death); these are what a rank process itself returns.

inline constexpr int kRankOk = 0;         ///< program ran to completion
inline constexpr int kRankConfig = 2;     ///< malformed PDCRUN_* environment
inline constexpr int kRankWireup = 3;     ///< rendezvous/mesh wireup failed
inline constexpr int kRankProgram = 4;    ///< the rank program threw
inline constexpr int kRankPeerAbort = 5;  ///< another rank aborted the job

/// The PDCRUN_* environment contract a launched rank reads, decoded.
///
/// Variables (set by pdcrun for every child):
///   PDCRUN_RANK / PDCRUN_NP          world rank / world size
///   PDCRUN_TRANSPORT                 "unix", "tcp" or "shm" (unix sockets
///                                    for wireup/control + lock-free shm
///                                    rings for co-located data)
///   PDCRUN_DIR                       unix/shm: directory of rank<N>.sock
///                                    files
///   PDCRUN_HOST / PDCRUN_PORT        tcp: rank 0's rendezvous address
///   PDCRUN_NODES                     optional: comma-separated node id per
///                                    rank ("0,0,1,1") — forces the topology
///                                    CollectiveAlgo::Auto sees; ids >= 0,
///                                    exactly NP entries
///   PDCRUN_JOB                       job token; wireup rejects strangers
///   PDCRUN_SEED                      optional: seeds the rank's chaos plan
///   PDCRUN_CONNECT_TIMEOUT_MS        optional: per-dial-attempt budget
///   PDCRUN_CHAOS_MODE                optional: "noise" | "lossy" | "hostile"
///   PDCRUN_CHAOS_KILL                optional: "1" → an injected abort
///                                    SIGKILLs the process (a real node
///                                    death, not a tidy exception)
///   PDCRUN_CHAOS_ABORT_RANK          optional: deterministically abort this
///   PDCRUN_CHAOS_ABORT_AT_OP         world rank at its Nth chaos checkpoint
///   PDCRUN_TRACE                     optional: write a Chrome trace of this
///                                    rank to "<value>.rank<N>.json"
struct RankEnv {
  bool present = false;  ///< PDCRUN_RANK was set at all
  SocketConfig config;
  bool chaos = false;
  std::string chaos_mode;
  std::uint64_t chaos_seed = 1;
  bool chaos_kill = false;
  int kill_rank = -1;           ///< targeted deterministic abort (-1 = off)
  std::uint64_t kill_at_op = 0;
  std::string trace_path;  ///< "" = tracing off
};

/// Decode the PDCRUN_* environment. `present == false` (with everything
/// else defaulted) when PDCRUN_RANK is unset — the process was started by
/// hand, not by pdcrun. Throws pdc::InvalidArgument on a malformed
/// contract (pdcrun and the rank binary disagree about versions, or a user
/// exported garbage).
RankEnv rank_env_from_environment();

/// Execute one rank of a socket job: wire up the transport, build the
/// distributed Universe, run `program` on the world communicator, tear
/// down, and map the outcome onto the exit-code contract above. Everything
/// the program print()s is echoed to stdout line-by-line (pdcrun prefixes
/// it with the rank). Failures print a one-line postmortem to stderr.
int run_rank(const RankEnv& env,
             const std::function<void(mp::Communicator&)>& program);

}  // namespace pdc::net
