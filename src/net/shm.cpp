#include "net/shm.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <new>

#include "chaos/chaos.hpp"
#include "mp/universe.hpp"
#include "net/errors.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::net::shm {
namespace {

constexpr std::uint32_t kSegMagic = 0x4D485350;   // "PSHM"
constexpr std::uint32_t kBellMagic = 0x4C454250;  // "PBEL"
constexpr std::uint32_t kShmVersion = 1;

/// Clamp on a record's head (wire header + metadata). The real maximum is
/// ~4.2 KiB (a clamped type name plus fixed fields); anything larger is a
/// corrupt or hostile ring.
constexpr std::uint32_t kMaxRecordHead = 8192;

/// Smallest ring that always has room for a complete record head at once
/// (payloads stream, heads don't). Must hold 4 + kMaxRecordHead.
constexpr std::uint32_t kMinRingBytes = 16384;
constexpr std::uint32_t kMaxRingBytes = 1u << 28;

constexpr std::size_t kBellBytes = 4096;

/// Futex sleep slice for long waits: every slice the waiter re-checks the
/// dead/aborted flags, so a lost wake (or a SIGKILLed peer) costs at most
/// one slice, never a hang.
constexpr std::chrono::milliseconds kFutexSlice{50};

/// Backstop pump cadence while the receiving program computes.
constexpr std::chrono::milliseconds kBackstopTick{5};

/// One direction of a pair segment. head/tail are free-running byte
/// counters (the data index is pos & (ring_bytes-1)); the space words are
/// the producer-side futex (bumped by the consumer as it frees bytes).
/// Producer-owned and consumer-owned words sit on separate cache lines.
struct RingHdr {
  alignas(64) std::atomic<std::uint64_t> head;  // bytes produced
  alignas(64) std::atomic<std::uint64_t> tail;  // bytes consumed
  alignas(64) std::atomic<std::uint32_t> space_seq;
  std::atomic<std::uint32_t> space_waiters;
};

struct SegHeader {
  std::atomic<std::uint32_t> magic;  // stored last by the creator
  std::uint32_t version;
  std::uint32_t ring_bytes;
  std::atomic<std::uint32_t> attached;
  std::atomic<std::uint32_t> aborted;  // poison: peer death or job abort
  alignas(64) RingHdr ring[2];         // [0] lo→hi, [1] hi→lo
};

/// Per-rank doorbell. One word (data_seq) covers every peer's rings plus
/// mailbox kicks; backstop_seq is the separate low-urgency bell the sender
/// rings when nobody is blocked waiting.
struct BellPage {
  std::atomic<std::uint32_t> magic;
  std::atomic<std::uint32_t> attach_count;
  std::atomic<std::uint32_t> data_seq;
  std::atomic<std::uint32_t> data_waiters;
  std::atomic<std::uint32_t> backstop_seq;
};

static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(sizeof(std::atomic<std::uint32_t>) == 4);
static_assert(sizeof(SegHeader) % 64 == 0);
static_assert(sizeof(BellPage) <= kBellBytes);

/// FUTEX_WAIT on a shared 32-bit word with a relative timeout. EINTR
/// retries; EAGAIN (word changed) and ETIMEDOUT return — callers always
/// re-check their condition in a loop.
void futex_wait_word(std::atomic<std::uint32_t>& word, std::uint32_t expect,
                     std::chrono::milliseconds timeout) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  ts.tv_nsec = static_cast<long>((timeout.count() % 1000) * 1000000L);
  for (;;) {
    // Non-private: the word lives in a MAP_SHARED file mapping.
    const long rc = ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
                              FUTEX_WAIT, expect, &ts, nullptr, 0u);
    if (rc == 0) return;
    if (errno == EINTR) continue;
    return;
  }
}

void futex_wake_word(std::atomic<std::uint32_t>& word, int waiters) {
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
            waiters, nullptr, nullptr, 0u);
}

void ring_copy_in(std::byte* data, std::uint32_t cap, std::uint64_t pos,
                  const std::byte* src, std::size_t n) {
  const std::uint32_t off = static_cast<std::uint32_t>(pos) & (cap - 1);
  const std::size_t first = std::min<std::size_t>(n, cap - off);
  std::memcpy(data + off, src, first);
  if (first < n) std::memcpy(data, src + first, n - first);
}

void ring_copy_out(const std::byte* data, std::uint32_t cap, std::uint64_t pos,
                   std::byte* dst, std::size_t n) {
  const std::uint32_t off = static_cast<std::uint32_t>(pos) & (cap - 1);
  const std::size_t first = std::min<std::size_t>(n, cap - off);
  std::memcpy(dst, data + off, first);
  if (first < n) std::memcpy(dst + first, data, n - first);
}

/// Consumer freed ring bytes: bump the producer-side futex and wake anyone
/// blocked on a full ring.
void signal_space(RingHdr& ring) {
  ring.space_seq.fetch_add(1);
  if (ring.space_waiters.load() > 0) futex_wake_word(ring.space_seq, INT_MAX);
}

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string name_key(const std::string& job) {
  std::string safe;
  for (const char ch : job) {
    if (safe.size() >= 24) break;
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                    ch == '-';
    safe.push_back(ok ? ch : '_');
  }
  // FNV-1a over the full token so jobs that differ only past the truncation
  // (or only in sanitized characters) still get distinct shm names.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char ch : job) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(hash));
  return safe + "-" + hex;
}

struct ShmState::Channel {
  int peer = -1;
  std::string seg_name;
  bool created = false;     ///< we are the segment's creating side
  bool seg_linked = false;  ///< name still present in /dev/shm
  void* seg_mem = nullptr;
  std::size_t seg_len = 0;
  SegHeader* seg = nullptr;
  RingHdr* out = nullptr;  ///< ring we produce into
  RingHdr* in = nullptr;   ///< ring we consume from
  std::byte* out_data = nullptr;
  std::byte* in_data = nullptr;
  void* bell_mem = nullptr;  ///< the peer's bell page
  BellPage* peer_bell = nullptr;
  std::mutex send_mutex;  ///< serializes producers into `out`
  std::mutex pump_mutex;  ///< serializes consumers of `in` (backstop vs program)
  mp::Bytes head_scratch;  ///< drain buffers, reused record to record —
  mp::Bytes body_scratch;  ///< guarded by pump_mutex like the rest of `in`
  std::atomic<bool> dead{false};    ///< peer vanished (EOF-without-Bye)
  std::atomic<bool> closed{false};  ///< peer said a clean goodbye
};

ShmState::ShmState(const Options& options) : options_(options) {
  if (options_.np < 1) throw InvalidArgument("shm: np must be >= 1");
  if (options_.rank < 0 || options_.rank >= options_.np) {
    throw InvalidArgument("shm: rank out of range");
  }
  if (options_.node_ids.size() != static_cast<std::size_t>(options_.np)) {
    throw InvalidArgument("shm: node_ids must have one entry per rank");
  }
  const std::uint32_t ring = options_.ring_bytes;
  if (ring < kMinRingBytes || ring > kMaxRingBytes ||
      (ring & (ring - 1)) != 0) {
    throw InvalidArgument(
        "shm: ring_bytes must be a power of two in [16384, 268435456]");
  }
  key_ = name_key(options_.job);
  bell_name_ = "/pdc-" + key_ + "-b" + std::to_string(options_.rank);
  channels_.resize(static_cast<std::size_t>(options_.np));
  for (int r = 0; r < options_.np; ++r) {
    if (has_peer(r)) ++colocated_;
  }
}

ShmState::~ShmState() {
  shutdown();
  teardown_on_error();
}

bool ShmState::has_peer(int world_rank) const noexcept {
  if (world_rank < 0 || world_rank >= options_.np) return false;
  if (world_rank == options_.rank) return false;
  return options_.node_ids[static_cast<std::size_t>(world_rank)] ==
         options_.node_ids[static_cast<std::size_t>(options_.rank)];
}

void ShmState::create_own_bell() {
  int fd = ::shm_open(bell_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Stale page from a crashed job that recycled our key; replace it.
    ::shm_unlink(bell_name_.c_str());
    fd = ::shm_open(bell_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) throw ConnectionError(errno_text("shm_open(bell)"));
  if (::ftruncate(fd, static_cast<off_t>(kBellBytes)) != 0) {
    ::close(fd);
    throw ConnectionError(errno_text("ftruncate(bell)"));
  }
  void* mem = ::mmap(nullptr, kBellBytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) throw ConnectionError(errno_text("mmap(bell)"));
  bell_mem_ = mem;
  bell_linked_ = true;
  auto* bell = new (mem) BellPage{};
  bell->magic.store(kBellMagic, std::memory_order_release);
}

void ShmState::setup_pair(int peer,
                          std::chrono::steady_clock::time_point deadline) {
  auto c = std::make_unique<Channel>();
  c->peer = peer;
  const int lo = std::min(options_.rank, peer);
  const int hi = std::max(options_.rank, peer);
  c->seg_name = "/pdc-" + key_ + "-p" + std::to_string(lo) + "." +
                std::to_string(hi);
  const std::uint32_t ring = options_.ring_bytes;
  c->seg_len = sizeof(SegHeader) + 2 * static_cast<std::size_t>(ring);

  const bool creator = options_.rank == lo;
  if (creator) {
    int fd = ::shm_open(c->seg_name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno == EEXIST) {
      ::shm_unlink(c->seg_name.c_str());
      fd = ::shm_open(c->seg_name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    }
    if (fd < 0) throw ConnectionError(errno_text("shm_open(segment)"));
    if (::ftruncate(fd, static_cast<off_t>(c->seg_len)) != 0) {
      ::close(fd);
      ::shm_unlink(c->seg_name.c_str());
      throw ConnectionError(errno_text("ftruncate(segment)"));
    }
    void* mem = ::mmap(nullptr, c->seg_len, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED) {
      ::shm_unlink(c->seg_name.c_str());
      throw ConnectionError(errno_text("mmap(segment)"));
    }
    c->seg_mem = mem;
    c->created = true;
    c->seg_linked = true;
    auto* seg = new (mem) SegHeader{};
    seg->version = kShmVersion;
    seg->ring_bytes = ring;
    // Publish last: an attacher that sees the magic sees everything above.
    seg->magic.store(kSegMagic, std::memory_order_release);
    c->seg = seg;
  } else {
    // The creator may not have run yet (it is still wiring up other pairs);
    // retry until the segment appears fully initialized or the handshake
    // budget runs out.
    for (;;) {
      const int fd = ::shm_open(c->seg_name.c_str(), O_RDWR, 0600);
      if (fd >= 0) {
        struct stat st{};
        const bool sized =
            ::fstat(fd, &st) == 0 &&
            st.st_size >= static_cast<off_t>(c->seg_len);
        if (sized) {
          void* mem = ::mmap(nullptr, c->seg_len, PROT_READ | PROT_WRITE,
                             MAP_SHARED, fd, 0);
          ::close(fd);
          if (mem == MAP_FAILED) {
            throw ConnectionError(errno_text("mmap(segment)"));
          }
          auto* seg = static_cast<SegHeader*>(mem);
          if (seg->magic.load(std::memory_order_acquire) == kSegMagic) {
            if (seg->version != kShmVersion || seg->ring_bytes != ring) {
              ::munmap(mem, c->seg_len);
              throw ConnectionError(
                  "shm segment layout mismatch (version/ring_bytes): peers "
                  "disagree on configuration");
            }
            c->seg_mem = mem;
            c->seg = seg;
            seg->attached.store(1, std::memory_order_release);
            break;
          }
          ::munmap(mem, c->seg_len);
        } else {
          ::close(fd);
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        throw ConnectionError("shm wireup timed out waiting for rank " +
                              std::to_string(peer) + "'s segment " +
                              c->seg_name);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  auto* base = static_cast<std::byte*>(c->seg_mem);
  std::byte* data0 = base + sizeof(SegHeader);
  std::byte* data1 = data0 + ring;
  if (creator) {
    c->out = &c->seg->ring[0];
    c->out_data = data0;
    c->in = &c->seg->ring[1];
    c->in_data = data1;
  } else {
    c->out = &c->seg->ring[1];
    c->out_data = data1;
    c->in = &c->seg->ring[0];
    c->in_data = data0;
  }

  // Map the peer's doorbell page (it creates its own before touching pairs).
  const std::string bell_name = "/pdc-" + key_ + "-b" + std::to_string(peer);
  for (;;) {
    const int fd = ::shm_open(bell_name.c_str(), O_RDWR, 0600);
    if (fd >= 0) {
      struct stat st{};
      const bool sized = ::fstat(fd, &st) == 0 &&
                         st.st_size >= static_cast<off_t>(kBellBytes);
      if (sized) {
        void* mem = ::mmap(nullptr, kBellBytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED, fd, 0);
        ::close(fd);
        if (mem == MAP_FAILED) throw ConnectionError(errno_text("mmap(bell)"));
        auto* bell = static_cast<BellPage*>(mem);
        if (bell->magic.load(std::memory_order_acquire) == kBellMagic) {
          c->bell_mem = mem;
          c->peer_bell = bell;
          bell->attach_count.fetch_add(1);
          break;
        }
        ::munmap(mem, kBellBytes);
      } else {
        ::close(fd);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw ConnectionError("shm wireup timed out waiting for rank " +
                            std::to_string(peer) + "'s doorbell");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  channels_[static_cast<std::size_t>(peer)] = std::move(c);
}

void ShmState::connect() {
  if (colocated_ == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.handshake_timeout_ms);
  try {
    create_own_bell();
    for (int r = 0; r < options_.np; ++r) {
      if (has_peer(r)) setup_pair(r, deadline);
    }
    // Unlink every name as soon as both sides hold a mapping: a SIGKILLed
    // job leaks nothing past wireup, and stale names cannot confuse the
    // next job.
    for (auto& cp : channels_) {
      Channel* c = cp.get();
      if (!c || !c->created) continue;
      while (c->seg->attached.load(std::memory_order_acquire) == 0) {
        if (std::chrono::steady_clock::now() >= deadline) {
          throw ConnectionError("shm wireup timed out waiting for rank " +
                                std::to_string(c->peer) + " to attach " +
                                c->seg_name);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      ::shm_unlink(c->seg_name.c_str());
      c->seg_linked = false;
    }
    auto* bell = static_cast<BellPage*>(bell_mem_);
    while (bell->attach_count.load() <
           static_cast<std::uint32_t>(colocated_)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw ConnectionError(
            "shm wireup timed out waiting for peers to attach our doorbell");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ::shm_unlink(bell_name_.c_str());
    bell_linked_ = false;
  } catch (...) {
    teardown_on_error();
    throw;
  }
}

void ShmState::teardown_on_error() noexcept {
  for (auto& cp : channels_) {
    Channel* c = cp.get();
    if (!c) continue;
    if (c->seg_linked) ::shm_unlink(c->seg_name.c_str());
    c->seg_linked = false;
    if (c->bell_mem) ::munmap(c->bell_mem, kBellBytes);
    c->bell_mem = nullptr;
    c->peer_bell = nullptr;
    if (c->seg_mem) ::munmap(c->seg_mem, c->seg_len);
    c->seg_mem = nullptr;
    c->seg = nullptr;
    c->in = c->out = nullptr;
    c->in_data = c->out_data = nullptr;
  }
  if (bell_linked_) ::shm_unlink(bell_name_.c_str());
  bell_linked_ = false;
  if (bell_mem_) ::munmap(bell_mem_, kBellBytes);
  bell_mem_ = nullptr;
}

void ShmState::bind(mp::Universe& universe) {
  universe_ = &universe;
  if (colocated_ == 0) return;
  universe.mailbox(options_.rank).set_progress(this);
  stop_.store(false);
  backstop_ = std::thread([this] { backstop_loop(); });
}

void ShmState::ring_peer_bell(Channel& c, bool urgent) noexcept {
  BellPage* bell = c.peer_bell;
  bell->data_seq.fetch_add(1);
  if (bell->data_waiters.load() > 0) {
    futex_wake_word(bell->data_seq, INT_MAX);
  } else if (urgent) {
    // Nobody is blocked receiving and the caller needs the ring drained by
    // SOMEBODY (it is stalled on a full ring): poke the peer's backstop.
    bell->backstop_seq.fetch_add(1);
    futex_wake_word(bell->backstop_seq, 1);
  }
  // Otherwise the bumped data_seq is enough: every receive path polls the
  // rings before blocking and re-reads the bell before each futex wait, so
  // a peer that is about to wait (its waiters increment not yet visible)
  // still sees the new epoch and drains without a wakeup. Waking the
  // backstop here instead puts a third thread into every message handoff —
  // on a single core that is an extra context switch per message, and it
  // is what pushed the shm ping from ~1.7us to ~2.8us. The peer that
  // genuinely computes for a long time is drained by the backstop's
  // periodic tick.
}

void ShmState::send_data(int dest_world_rank, const wire::DataFrame& frame) {
  Channel* c = channels_[static_cast<std::size_t>(dest_world_rank)].get();
  if (!c) throw InvalidArgument("shm: rank is not a co-located peer");
  if (c->dead.load(std::memory_order_acquire)) {
    throw PeerLost("shm send to rank " + std::to_string(dest_world_rank) +
                   " failed: peer is gone");
  }
  if (c->closed.load(std::memory_order_acquire)) return;  // teardown race

  const std::uint32_t head_len = static_cast<std::uint32_t>(frame.head.size());
  std::byte len_bytes[4];
  std::memcpy(len_bytes, &head_len, sizeof head_len);
  struct Span {
    const std::byte* ptr;
    std::size_t len;
  };
  const mp::Bytes& payload = frame.payload ? *frame.payload : mp::empty_bytes();
  const Span spans[3] = {{len_bytes, sizeof len_bytes},
                         {frame.head.data(), frame.head.size()},
                         {payload.data(), payload.size()}};

  std::lock_guard guard(c->send_mutex);
  const std::uint32_t cap = options_.ring_bytes;
  RingHdr& out = *c->out;
  std::uint64_t pos = out.head.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  std::size_t si = 0;
  std::size_t soff = 0;
  while (si < 3) {
    if (soff == spans[si].len) {
      ++si;
      soff = 0;
      continue;
    }
    const std::uint64_t tail = out.tail.load(std::memory_order_acquire);
    std::uint32_t space = cap - static_cast<std::uint32_t>(pos - tail);
    if (space == 0) {
      if (c->dead.load(std::memory_order_acquire) ||
          c->seg->aborted.load() != 0) {
        throw PeerLost("shm send to rank " + std::to_string(dest_world_rank) +
                       " failed: peer is gone");
      }
      if (c->closed.load(std::memory_order_acquire)) return;
      if (std::chrono::steady_clock::now() - last_progress >
          std::chrono::milliseconds(std::max(options_.linger_ms, 1000))) {
        // Bounded send, mirroring the socket writer's SO_SNDTIMEO: a peer
        // that holds the ring full past the linger budget is treated as
        // lost, not waited on forever.
        record_peer_lost(*c, "rank " + std::to_string(dest_world_rank) +
                                 " stopped draining its shm ring");
        throw PeerLost("shm send to rank " + std::to_string(dest_world_rank) +
                       " failed: peer stopped draining");
      }
      const std::uint32_t seq = out.space_seq.load();
      if (cap - static_cast<std::uint32_t>(
                    pos - out.tail.load(std::memory_order_acquire)) ==
          0) {
        out.space_waiters.fetch_add(1);
        // Make sure SOMEBODY is awake to drain: if the peer's program is
        // computing, only its backstop can free the space we need.
        ring_peer_bell(*c, /*urgent=*/true);
        futex_wait_word(out.space_seq, seq, kFutexSlice);
        out.space_waiters.fetch_sub(1);
      }
      continue;
    }
    // Copy up to `space` bytes across the remaining spans, then publish the
    // burst. Payloads larger than the ring pipeline through here: each
    // burst is visible to (and typically already being drained by) the
    // consumer while the next is written.
    while (space > 0 && si < 3) {
      if (soff == spans[si].len) {
        ++si;
        soff = 0;
        continue;
      }
      const std::size_t chunk =
          std::min<std::size_t>(space, spans[si].len - soff);
      ring_copy_in(c->out_data, cap, pos, spans[si].ptr + soff, chunk);
      pos += chunk;
      soff += chunk;
      space -= static_cast<std::uint32_t>(chunk);
    }
    out.head.store(pos, std::memory_order_release);
    last_progress = std::chrono::steady_clock::now();
    ring_peer_bell(*c);
  }
}

bool ShmState::pump_wait_for_bytes(Channel& c, std::uint64_t needed_head) {
  auto* bell = static_cast<BellPage*>(bell_mem_);
  for (;;) {
    if (c.dead.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire) || c.seg->aborted.load() != 0) {
      return false;
    }
    if (c.in->head.load(std::memory_order_acquire) >= needed_head) return true;
    const std::uint32_t seen = bell->data_seq.load();
    if (c.in->head.load(std::memory_order_acquire) >= needed_head) return true;
    bell->data_waiters.fetch_add(1);
    futex_wait_word(bell->data_seq, seen, kFutexSlice);
    bell->data_waiters.fetch_sub(1);
  }
}

void ShmState::drain_channel(Channel& c) {
  const std::uint32_t cap = options_.ring_bytes;
  RingHdr& in = *c.in;
  for (;;) {
    if (c.dead.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      return;
    }
    std::uint64_t tail = in.tail.load(std::memory_order_relaxed);
    const std::uint64_t head = in.head.load(std::memory_order_acquire);
    if (head - tail < 4) return;  // next burst rings the bell again
    std::uint32_t head_len = 0;
    ring_copy_out(c.in_data, cap, tail,
                  reinterpret_cast<std::byte*>(&head_len), sizeof head_len);
    if (head_len < wire::kHeaderBytes || head_len > kMaxRecordHead) {
      throw ProtocolError("shm record head length " +
                          std::to_string(head_len) + " is outside [12, " +
                          std::to_string(kMaxRecordHead) + "]");
    }
    if (head - tail < 4 + static_cast<std::uint64_t>(head_len)) {
      // Mid-burst head; the ring always has room for a whole head, so the
      // producer is still writing and will ring again.
      return;
    }
    mp::Bytes& head_buf = c.head_scratch;
    head_buf.resize(head_len);
    ring_copy_out(c.in_data, cap, tail + 4, head_buf.data(), head_len);
    std::byte raw[wire::kHeaderBytes];
    std::memcpy(raw, head_buf.data(), wire::kHeaderBytes);
    const wire::Header header = wire::decode_header(raw);
    if (header.kind != wire::FrameKind::Data) {
      throw ProtocolError("shm ring carried a non-Data frame");
    }
    const std::size_t meta_len = head_len - wire::kHeaderBytes;
    if (header.body_len < meta_len) {
      throw ProtocolError("shm record head longer than its declared body");
    }
    const std::size_t payload_len = header.body_len - meta_len;
    tail += 4 + head_len;
    in.tail.store(tail, std::memory_order_release);
    signal_space(in);

    // Rebuild the frame body (metadata + payload) and stream the payload
    // out of the ring — for payloads larger than the ring this interleaves
    // with the producer's bursts.
    mp::Bytes& body = c.body_scratch;
    body.resize(header.body_len);
    std::memcpy(body.data(), head_buf.data() + wire::kHeaderBytes, meta_len);
    std::size_t got = 0;
    while (got < payload_len) {
      const std::uint64_t avail =
          in.head.load(std::memory_order_acquire) - tail;
      if (avail == 0) {
        if (!pump_wait_for_bytes(c, tail + 1)) return;  // abandon: peer gone
        continue;
      }
      const std::size_t take =
          std::min<std::uint64_t>(avail, payload_len - got);
      ring_copy_out(c.in_data, cap, tail, body.data() + meta_len + got, take);
      tail += take;
      got += take;
      in.tail.store(tail, std::memory_order_release);
      signal_space(in);
    }

    mp::Envelope envelope = wire::decode_data(body, options_.rank);
    if (trace::enabled()) {
      trace::Counter("net.bytes_recv")
          .add(static_cast<double>(wire::kHeaderBytes + header.body_len));
      trace::Counter("net.frames_recv").add(1.0);
    }
    universe_->mailbox(options_.rank).deliver(std::move(envelope));
  }
}

void ShmState::record_peer_lost(Channel& c, const std::string& why) noexcept {
  c.dead.store(true, std::memory_order_release);
  if (c.seg) c.seg->aborted.store(1);
  {
    std::lock_guard lock(postmortem_mutex_);
    if (postmortem_.empty()) {
      postmortem_ = "shm channel to rank " + std::to_string(c.peer) +
                    " lost: " + why;
    }
  }
  trace::instant("net.peer_lost", "net");
  if (c.out) signal_space(*c.out);  // unblock our producer
  kick();                           // unblock engine waiters / mid-record pumps
  if (!stop_.load(std::memory_order_acquire) && universe_) {
    universe_->abort();
  }
}

void ShmState::mark_peer_dead(int world_rank) noexcept {
  Channel* c = world_rank >= 0 && world_rank < options_.np
                   ? channels_[static_cast<std::size_t>(world_rank)].get()
                   : nullptr;
  if (!c || c->dead.load(std::memory_order_acquire)) return;
  c->dead.store(true, std::memory_order_release);
  if (c->seg) c->seg->aborted.store(1);
  if (c->out) signal_space(*c->out);
  kick();
}

void ShmState::mark_peer_closed(int world_rank) noexcept {
  Channel* c = world_rank >= 0 && world_rank < options_.np
                   ? channels_[static_cast<std::size_t>(world_rank)].get()
                   : nullptr;
  if (!c) return;
  c->closed.store(true, std::memory_order_release);
  if (c->out) signal_space(*c->out);  // a blocked producer drops the frame
  kick();
}

void ShmState::local_abort() noexcept {
  for (auto& cp : channels_) {
    Channel* c = cp.get();
    if (!c || !c->seg) continue;
    c->seg->aborted.store(1);
    // Wake both sides: our producer/pump and the peer's.
    signal_space(c->seg->ring[0]);
    signal_space(c->seg->ring[1]);
    if (c->peer_bell) {
      c->peer_bell->data_seq.fetch_add(1);
      futex_wake_word(c->peer_bell->data_seq, INT_MAX);
      c->peer_bell->backstop_seq.fetch_add(1);
      futex_wake_word(c->peer_bell->backstop_seq, INT_MAX);
    }
  }
  kick();
}

void ShmState::backstop_loop() {
  chaos::ActorScope actor(options_.rank);
  auto* bell = static_cast<BellPage*>(bell_mem_);
  while (!stop_.load(std::memory_order_acquire)) {
    // Lost-wakeup-free: read the bell, then pump, then wait on the value
    // read. A ring between the pump and the wait makes the wait return
    // immediately; the short tick heals the remaining waiters-flag race.
    const std::uint32_t seen = bell->backstop_seq.load();
    poll();
    if (stop_.load(std::memory_order_acquire)) break;
    futex_wait_word(bell->backstop_seq, seen, kBackstopTick);
  }
}

std::uint64_t ShmState::epoch() noexcept {
  auto* bell = static_cast<BellPage*>(bell_mem_);
  return bell ? bell->data_seq.load() : 0;
}

void ShmState::poll() {
  for (auto& cp : channels_) {
    Channel* c = cp.get();
    if (!c || c->dead.load(std::memory_order_relaxed)) continue;
    std::unique_lock lock(c->pump_mutex, std::try_to_lock);
    if (!lock.owns_lock()) continue;  // someone else is already pumping it
    try {
      drain_channel(*c);
    } catch (const Error& error) {
      record_peer_lost(*c, error.what());
    }
  }
}

void ShmState::wait(std::uint64_t seen, std::chrono::milliseconds max_wait) {
  auto* bell = static_cast<BellPage*>(bell_mem_);
  if (!bell) return;
  // waiters is raised across the pump so concurrent senders route their
  // wake to the data bell (not the backstop) while we are here.
  bell->data_waiters.fetch_add(1);
  poll();
  if (bell->data_seq.load() == static_cast<std::uint32_t>(seen) &&
      !stop_.load(std::memory_order_acquire)) {
    futex_wait_word(bell->data_seq, static_cast<std::uint32_t>(seen),
                    std::min(max_wait, kFutexSlice));
  }
  bell->data_waiters.fetch_sub(1);
}

void ShmState::kick() noexcept {
  auto* bell = static_cast<BellPage*>(bell_mem_);
  if (!bell) return;
  bell->data_seq.fetch_add(1);
  if (bell->data_waiters.load() > 0) futex_wake_word(bell->data_seq, INT_MAX);
}

void ShmState::shutdown() noexcept {
  if (shut_.exchange(true)) return;
  stop_.store(true, std::memory_order_release);
  if (auto* bell = static_cast<BellPage*>(bell_mem_)) {
    bell->backstop_seq.fetch_add(1);
    futex_wake_word(bell->backstop_seq, INT_MAX);
    bell->data_seq.fetch_add(1);
    futex_wake_word(bell->data_seq, INT_MAX);
  }
  if (backstop_.joinable()) backstop_.join();
  if (universe_ && colocated_ > 0) {
    universe_->mailbox(options_.rank).set_progress(nullptr);
  }
  // Mappings stay alive until destruction: socket reader threads may still
  // flip channel flags during the socket transport's own teardown.
}

std::string ShmState::postmortem() const {
  std::lock_guard lock(postmortem_mutex_);
  return postmortem_;
}

}  // namespace pdc::net::shm
