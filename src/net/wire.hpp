#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mp/message.hpp"

namespace pdc::net::wire {

/// "PDCN", little-endian, first on every frame. A connection that opens
/// with anything else is not speaking this protocol.
inline constexpr std::uint32_t kMagic = 0x4E434450;

/// Bumped on any incompatible layout change; both sides must agree.
inline constexpr std::uint16_t kVersion = 1;

/// Hard clamp on a Data frame body. A length prefix above this is hostile
/// or corrupt and is rejected before it can drive an allocation.
inline constexpr std::uint32_t kMaxBodyBytes = 256u << 20;  // 256 MiB

/// Tighter clamp for every non-Data frame (handshakes carry a few strings,
/// Abort/Bye carry nothing): a hostile rendezvous connection cannot make
/// rank 0 allocate more than this per frame.
inline constexpr std::uint32_t kMaxControlBodyBytes = 1u << 20;  // 1 MiB

/// Clamp on a type name carried in a Data frame.
inline constexpr std::uint32_t kMaxTypeNameBytes = 4096;

/// Clamp on endpoint/hostname/job strings in handshake frames.
inline constexpr std::uint32_t kMaxHandshakeString = 4096;

/// Every frame: | magic u32 | version u16 | kind u16 | body_len u32 | body |.
inline constexpr std::size_t kHeaderBytes = 12;

enum class FrameKind : std::uint16_t {
  Hello = 1,    ///< dialer → acceptor: who am I (wireup)
  Welcome = 2,  ///< rank 0 → peer: the full address/hostname map (wireup)
  Data = 3,     ///< one mp::Envelope
  Abort = 4,    ///< the sending rank's job aborted; wake your receivers
  Bye = 5,      ///< clean goodbye; EOF after this is normal teardown

  // ---- lab service frames (src/lab) — client ↔ pdc::lab::Server --------
  Submit = 6,  ///< client → server: run this patternlet/exemplar/notebook
  Accept = 7,  ///< server → client: admitted; job id + queue position
  Status = 8,  ///< either direction: job-state query (client) / reply;
               ///< server pushes may carry incremental output lines
  Result = 9,  ///< server → client: terminal outcome + captured output
  Reject = 10, ///< server → client: refused (auth, quota, lockout, bad req)
  Cancel = 11, ///< client → server: dequeue or kill an admitted job
  Dispatch = 12, ///< lab server → worker process: execute this job
  Report = 13, ///< client → server: cohort-aggregate query; server → client:
               ///< one streamed per-cohort aggregate (or the end marker)
};

struct Header {
  FrameKind kind = FrameKind::Data;
  std::uint32_t body_len = 0;
};

/// Identity a dialer presents when it connects (and, dialing rank 0 during
/// rendezvous, registers with).
struct Hello {
  std::string job;       ///< launcher-chosen token; all ranks must agree
  int np = 0;            ///< world size the dialer believes in
  int rank = -1;         ///< the dialer's world rank
  std::string endpoint;  ///< where the dialer's own listener accepts
  std::string hostname;  ///< processor name the dialer reports
};

/// Rank 0's reply to a rendezvous Hello: endpoint + hostname per world rank.
struct Welcome {
  std::vector<std::pair<std::string, std::string>> peers;
};

/// A Data frame ready to write: the header + metadata head, then the
/// payload bytes. Kept separate so a fan-out's shared encoded payload is
/// never copied per destination — the writer thread sends head then
/// payload back to back.
struct DataFrame {
  mp::Bytes head;
  mp::SharedPayload payload;  ///< null ⇔ zero-byte message
};

// ---- primitives (append to / read from byte vectors) ---------------------

void put_u16(mp::Bytes& out, std::uint16_t v);
void put_u32(mp::Bytes& out, std::uint32_t v);
void put_u64(mp::Bytes& out, std::uint64_t v);
void put_i32(mp::Bytes& out, std::int32_t v);
void put_string(mp::Bytes& out, std::string_view s);

/// Cursor over a received body; every read validates against the bytes
/// actually present and throws ProtocolError when the frame lies.
class Reader {
 public:
  explicit Reader(const mp::Bytes& bytes) : bytes_(&bytes) {}

  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  /// Length-prefixed string, clamped to `max_len`.
  std::string string(std::uint32_t max_len);
  /// Same as string() without the copy: a view into the body, valid only
  /// while the body outlives the Reader. For hot paths feeding interners.
  std::string_view string_view(std::uint32_t max_len);
  /// All remaining bytes (the Data payload tail).
  mp::Bytes rest();
  /// Throws ProtocolError unless the cursor consumed the body exactly.
  void expect_end() const;
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_->size() - pos_;
  }

 private:
  void need(std::size_t n) const;
  const mp::Bytes* bytes_;
  std::size_t pos_ = 0;
};

// ---- frames --------------------------------------------------------------

/// The 12-byte header for a frame with `body_len` body bytes. Throws
/// ProtocolError if body_len exceeds the clamp (a frame we must never emit).
mp::Bytes encode_header(FrameKind kind, std::size_t body_len);

/// Parse and validate a received header: magic, version, kind range and the
/// body-length clamp. Throws ProtocolError with a message naming what was
/// wrong — the error a hostile or mismatched peer produces.
Header decode_header(const std::byte (&raw)[kHeaderBytes]);

mp::Bytes encode_hello(const Hello& hello);
Hello decode_hello(const mp::Bytes& body);

mp::Bytes encode_welcome(const Welcome& welcome);
Welcome decode_welcome(const mp::Bytes& body);

/// Frame an envelope for the peer hosting world rank `dest_world_rank`.
/// `envelope.source` stays communicator-local, exactly as Mailbox expects.
DataFrame encode_data(const mp::Envelope& envelope, int dest_world_rank);

/// Rebuild the envelope from a Data body. Validates every length, checks
/// the frame was addressed to `expect_dest_world_rank` (a routing bug
/// otherwise), and interns the type name so Envelope::type_name keeps its
/// static-storage contract.
mp::Envelope decode_data(const mp::Bytes& body, int expect_dest_world_rank);

/// Process-wide intern pool for type names received off the wire. Bounded:
/// after `kInternPoolCap` distinct names, further names collapse to a
/// shared "<remote type>" constant instead of growing without limit under
/// a hostile peer.
inline constexpr std::size_t kInternPoolCap = 1024;
const char* intern_type_name(std::string_view name);

}  // namespace pdc::net::wire
