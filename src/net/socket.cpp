#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/errors.hpp"
#include "trace/trace.hpp"

namespace pdc::net {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// sockaddr for an endpoint; returns the length actually used.
socklen_t fill_sockaddr(const Endpoint& endpoint, sockaddr_storage* storage) {
  std::memset(storage, 0, sizeof(*storage));
  if (endpoint.kind == Endpoint::Kind::Unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(sun->sun_path)) {
      throw ConnectionError("socket: unix path too long: " + endpoint.path);
    }
    std::memcpy(sun->sun_path, endpoint.path.c_str(), endpoint.path.size() + 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  endpoint.path.size() + 1);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &sin->sin_addr) != 1) {
    throw ConnectionError("socket: bad IPv4 address: " + endpoint.host);
  }
  return sizeof(sockaddr_in);
}

int family_of(const Endpoint& endpoint) {
  return endpoint.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
}

/// Wait for the socket to become readable/writable; true when it did.
bool poll_one(int fd, short events, std::chrono::milliseconds timeout) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int n = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint Endpoint::parse(const std::string& text) {
  Endpoint e;
  if (text.rfind("unix:", 0) == 0) {
    e.kind = Kind::Unix;
    e.path = text.substr(5);
    if (e.path.empty()) throw ProtocolError("endpoint: empty unix path");
    return e;
  }
  if (text.rfind("tcp:", 0) == 0) {
    e.kind = Kind::Tcp;
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw ProtocolError("endpoint: expected tcp:<host>:<port>, got " + text);
    }
    e.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
      throw ProtocolError("endpoint: bad port in " + text);
    }
    e.port = static_cast<int>(port);
    return e;
  }
  throw ProtocolError("endpoint: unknown scheme in \"" + text +
                      "\" (expected unix:<path> or tcp:<host>:<port>)");
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_at(const Endpoint& endpoint, int backlog) {
  Socket sock(::socket(family_of(endpoint), SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw ConnectionError("socket: cannot create listener: " + errno_text());
  }
  if (endpoint.kind == Endpoint::Kind::Unix) {
    // A stale path from a crashed previous job would make bind fail.
    ::unlink(endpoint.path.c_str());
  } else {
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  sockaddr_storage storage;
  const socklen_t len = fill_sockaddr(endpoint, &storage);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    throw ConnectionError("socket: cannot bind " + endpoint.to_string() + ": " +
                          errno_text());
  }
  if (::listen(sock.fd(), backlog) != 0) {
    throw ConnectionError("socket: cannot listen at " + endpoint.to_string() +
                          ": " + errno_text());
  }
  return sock;
}

Endpoint local_endpoint(const Socket& listener, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::Unix) return requested;
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&sin), &len) !=
      0) {
    throw ConnectionError("socket: getsockname failed: " + errno_text());
  }
  Endpoint actual = requested;
  actual.port = ntohs(sin.sin_port);
  return actual;
}

Socket accept_for(Socket& listener, std::chrono::milliseconds timeout,
                  const char* who) {
  if (!poll_one(listener.fd(), POLLIN, timeout)) {
    throw ConnectionError(std::string(who) + ": no peer dialed in within " +
                          std::to_string(timeout.count()) + "ms");
  }
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    throw ConnectionError(std::string(who) + ": accept failed: " +
                          errno_text());
  }
  Socket sock(fd);
  // Disable Nagle on accepted TCP connections too (the dial side already
  // does): a ping-pong over an accepted socket otherwise serializes behind
  // delayed ACKs — ~40ms per small reply instead of microseconds.
  // setsockopt fails harmlessly (ENOTSUP/EOPNOTSUPP) on unix sockets.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

namespace {

/// splitmix64 — the standard 64-bit finalizer; a pure, high-quality hash of
/// its input, used to derive deterministic dial jitter.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::milliseconds dial_backoff_delay(int attempt,
                                             std::chrono::milliseconds initial,
                                             std::chrono::milliseconds cap,
                                             std::uint64_t jitter_key) {
  if (attempt < 1) attempt = 1;
  // The old schedule slept `initial` then doubled afterwards, so initial=0
  // busy-dialed forever; treat non-positive as the smallest real sleep.
  std::uint64_t base_ms =
      initial.count() > 0 ? static_cast<std::uint64_t>(initial.count()) : 1;
  std::uint64_t cap_ms = cap.count() > 0 ? static_cast<std::uint64_t>(cap.count())
                                         : base_ms;
  if (cap_ms < base_ms) cap_ms = base_ms;
  for (int i = 1; i < attempt && base_ms < cap_ms; ++i) {
    base_ms = base_ms > cap_ms / 2 ? cap_ms : base_ms * 2;  // overflow-safe
  }
  base_ms = std::min(base_ms, cap_ms);
  const std::uint64_t jitter =
      splitmix64(jitter_key ^ (0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(attempt))) %
      (base_ms / 4 + 1);
  return std::chrono::milliseconds(std::min(base_ms + jitter, cap_ms));
}

Socket dial(const Endpoint& endpoint, int attempts,
            std::chrono::milliseconds timeout_per_attempt,
            std::chrono::milliseconds backoff_initial, const char* who,
            std::chrono::milliseconds backoff_cap, std::uint64_t jitter_key) {
  std::string last_error = "no attempts made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (trace::enabled()) trace::Counter("net.dial_retries").add(1.0);
      std::this_thread::sleep_for(
          dial_backoff_delay(attempt, backoff_initial, backoff_cap, jitter_key));
    }
    Socket sock(::socket(family_of(endpoint), SOCK_STREAM, 0));
    if (!sock.valid()) {
      last_error = "cannot create socket: " + errno_text();
      continue;
    }
    // Non-blocking connect so a dead address honours the timeout instead of
    // the kernel's (much longer) default.
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
    sockaddr_storage storage;
    const socklen_t len = fill_sockaddr(endpoint, &storage);
    const int rc =
        ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&storage), len);
    if (rc != 0 && errno != EINPROGRESS) {
      last_error = errno_text();
      continue;
    }
    if (rc != 0) {
      if (!poll_one(sock.fd(), POLLOUT, timeout_per_attempt)) {
        last_error = "connect timed out after " +
                     std::to_string(timeout_per_attempt.count()) + "ms";
        continue;
      }
      int so_error = 0;
      socklen_t so_len = sizeof so_error;
      ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &so_len);
      if (so_error != 0) {
        last_error = std::strerror(so_error);
        continue;
      }
    }
    ::fcntl(sock.fd(), F_SETFL, flags);
    if (endpoint.kind == Endpoint::Kind::Tcp) {
      const int one = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    return sock;
  }
  throw ConnectionError(std::string(who) + ": dialing " +
                        endpoint.to_string() + " failed after " +
                        std::to_string(attempts) + " attempts: " + last_error);
}

namespace {

void send_buffer(Socket& socket, const std::byte* data, std::size_t n,
                 std::chrono::milliseconds stall_budget, const char* who) {
  std::size_t sent = 0;
  auto last_progress = std::chrono::steady_clock::now();
  while (sent < n) {
    const ssize_t rc =
        ::send(socket.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Full send buffer. The transport's peer sockets carry a SO_SNDTIMEO,
      // so a slow-but-alive peer surfaces here rather than blocking forever
      // in send(); that used to be declared PeerLost immediately. Wait for
      // writability and keep going — only a peer that makes *no* progress
      // for the whole stall budget is lost.
      const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - last_progress);
      if (stalled >= stall_budget) {
        throw PeerLost(std::string(who) + ": peer stopped draining (" +
                       std::to_string(sent) + " of " + std::to_string(n) +
                       " bytes sent, no progress in " +
                       std::to_string(stalled.count()) + "ms)");
      }
      poll_one(socket.fd(), POLLOUT,
               std::min(stall_budget - stalled, std::chrono::milliseconds(100)));
      continue;
    }
    throw PeerLost(std::string(who) + ": send failed: " + errno_text());
  }
}

}  // namespace

void send_all(Socket& socket, const mp::Bytes& data,
              const mp::SharedPayload& payload, bool bye_ok, const char* who,
              std::chrono::milliseconds stall_budget) {
  try {
    send_buffer(socket, data.data(), data.size(), stall_budget, who);
    if (payload && !payload->empty()) {
      send_buffer(socket, payload->data(), payload->size(), stall_budget, who);
    }
  } catch (const PeerLost&) {
    // During teardown a peer that finished first has every right to be
    // gone; its missed goodbye is not an error.
    if (!bye_ok) throw;
  }
}

bool recv_exact(Socket& socket, void* out, std::size_t n, const char* who) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(socket.fd(), dst + got, n - got, 0);
    if (rc == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw PeerLost(std::string(who) + ": peer disconnected mid-message (" +
                     std::to_string(got) + " of " + std::to_string(n) +
                     " bytes read)");
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw PeerLost(std::string(who) + ": recv failed: " + errno_text());
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

bool recv_exact_for(Socket& socket, void* out, std::size_t n,
                    std::chrono::milliseconds timeout, const char* who) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t got = 0;
  while (got < n) {
    if (!poll_one(socket.fd(), POLLIN, timeout)) {
      throw ConnectionError(std::string(who) + ": handshake read timed out (" +
                            std::to_string(got) + " of " + std::to_string(n) +
                            " bytes after " + std::to_string(timeout.count()) +
                            "ms)");
    }
    const ssize_t rc = ::recv(socket.fd(), dst + got, n - got, 0);
    if (rc == 0) {
      if (got == 0) return false;
      throw PeerLost(std::string(who) + ": peer disconnected mid-message (" +
                     std::to_string(got) + " of " + std::to_string(n) +
                     " bytes read)");
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw PeerLost(std::string(who) + ": recv failed: " + errno_text());
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

namespace {

template <typename RecvFn>
bool recv_frame_impl(wire::Header* header, mp::Bytes* body, RecvFn&& read,
                     const char* who) {
  std::byte raw[wire::kHeaderBytes];
  if (!read(raw, sizeof raw, /*allow_eof=*/true)) return false;
  *header = wire::decode_header(raw);  // validates magic/version/clamps
  body->assign(header->body_len, std::byte{0});
  if (header->body_len > 0) {
    if (!read(body->data(), body->size(), /*allow_eof=*/false)) {
      throw PeerLost(std::string(who) +
                     ": peer disconnected between header and body");
    }
  }
  return true;
}

}  // namespace

bool recv_frame(Socket& socket, wire::Header* header, mp::Bytes* body,
                const char* who) {
  return recv_frame_impl(
      header, body,
      [&](void* out, std::size_t n, bool) {
        return recv_exact(socket, out, n, who);
      },
      who);
}

bool recv_frame_for(Socket& socket, wire::Header* header, mp::Bytes* body,
                    std::chrono::milliseconds timeout, const char* who) {
  return recv_frame_impl(
      header, body,
      [&](void* out, std::size_t n, bool) {
        return recv_exact_for(socket, out, n, timeout, who);
      },
      who);
}

}  // namespace pdc::net
