#include "net/launcher.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "net/harness.hpp"

extern char** environ;

namespace pdc::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kTailLines = 30;

struct Child {
  int rank = -1;
  pid_t pid = -1;
  int pipe_fd = -1;  ///< read end of the child's stdout+stderr; -1 = closed
  std::string partial;
  std::deque<std::string> tail;
  bool reaped = false;
  int exit_code = 0;
  int signal = 0;
};

void remember_tail(Child& child, const std::string& line) {
  child.tail.push_back(line);
  if (child.tail.size() > kTailLines) child.tail.pop_front();
}

/// Resolve `binary` the way execvp would, but up front: a launcher must say
/// "no such program" before forking N ranks, not from inside each child.
std::string resolve_binary(const std::string& binary) {
  const auto runnable = [](const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
           ::access(path.c_str(), X_OK) == 0;
  };
  if (binary.find('/') != std::string::npos) {
    return runnable(binary) ? binary : std::string{};
  }
  const char* path_env = std::getenv("PATH");
  if (path_env == nullptr) return {};
  std::string path = path_env;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t sep = path.find(':', start);
    const std::string dir =
        path.substr(start, sep == std::string::npos ? sep : sep - start);
    if (!dir.empty()) {
      const std::string candidate = dir + "/" + binary;
      if (runnable(candidate)) return candidate;
    }
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return {};
}

bool flag_with_value(const std::string& arg, int argc,
                     const char* const* argv, int* i, std::string* value) {
  if (*i + 1 >= argc) return false;
  ++*i;
  *value = argv[*i];
  (void)arg;
  return true;
}

}  // namespace

std::string pdcrun_usage() {
  return
      "usage: pdcrun -np N [options] <binary> [args...]\n"
      "\n"
      "Launch N ranks of <binary> as separate OS processes connected by the\n"
      "pdc::net socket transport (the mpirun of this codebase).\n"
      "\n"
      "options:\n"
      "  -np, -n N            number of ranks (required, >= 1)\n"
      "  --transport unix|tcp|shm\n"
      "                       transport backend (default: unix); shm keeps\n"
      "                       the unix mesh for control and moves co-located\n"
      "                       data onto lock-free shared-memory rings\n"
      "  --nodes LIST         comma-separated node id per rank (\"0,0,1,1\")\n"
      "                       forced onto the ranks as PDCRUN_NODES; drives\n"
      "                       the topology-aware collective schedules\n"
      "  --host H             tcp rendezvous host (default: 127.0.0.1)\n"
      "  --port P             tcp rendezvous port (default: pick a free one)\n"
      "  --timeout-ms T       whole-job watchdog; kill + exit 124 (default\n"
      "                       120000)\n"
      "  --grace-ms T         grace after a rank fails before SIGTERM of the\n"
      "                       rest (default 5000)\n"
      "  --seed S             exported to every rank as PDCRUN_SEED\n"
      "  --chaos MODE         noise|lossy|hostile fault injection per rank\n"
      "  --chaos-kill         injected aborts SIGKILL the rank (real death)\n"
      "  --kill-rank R        deterministically abort rank R at its\n"
      "  --kill-at-op K       Kth operation (default 0; combine with\n"
      "                       --chaos-kill for a real mid-collective death)\n"
      "  --trace PATH         each rank writes PATH.rank<N>.json (Chrome\n"
      "                       trace with real pids)\n"
      "  --no-tag             do not prefix child output with [rank N]\n"
      "\n"
      "exit codes: 0 ok; 64 usage; 124 watchdog; 127 binary not found;\n"
      "128+N first failing rank died on signal N; otherwise the first\n"
      "failing rank's own exit code (2 config, 3 wireup, 4 program error,\n"
      "5 peer abort).\n";
}

int parse_pdcrun_args(int argc, const char* const* argv, LaunchOptions* out,
                      std::string* error) {
  LaunchOptions options;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    if (arg.empty() || arg[0] != '-') break;  // the binary
    std::string value;
    if (arg == "-np" || arg == "-n" || arg == "--np") {
      if (!flag_with_value(arg, argc, argv, &i, &value)) {
        *error = arg + " needs a value\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      char* end = nullptr;
      options.np = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0' || options.np < 1) {
        *error = "-np " + value + " is not a positive rank count\n" +
                 pdcrun_usage();
        return kLaunchUsage;
      }
    } else if (arg == "--transport" || arg == "-t") {
      if (!flag_with_value(arg, argc, argv, &i, &value) ||
          (value != "unix" && value != "tcp" && value != "shm")) {
        *error = "--transport needs unix, tcp or shm\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      options.transport = value;
    } else if (arg == "--nodes") {
      if (!flag_with_value(arg, argc, argv, &i, &value) || value.empty()) {
        *error = "--nodes needs a comma-separated node id list\n" +
                 pdcrun_usage();
        return kLaunchUsage;
      }
      options.nodes = value;
    } else if (arg == "--host") {
      if (!flag_with_value(arg, argc, argv, &i, &value)) {
        *error = "--host needs a value\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      options.host = value;
    } else if (arg == "--port" || arg == "--timeout-ms" ||
               arg == "--grace-ms" || arg == "--seed" ||
               arg == "--kill-rank" || arg == "--kill-at-op") {
      const std::string flag = arg;
      if (!flag_with_value(arg, argc, argv, &i, &value)) {
        *error = flag + " needs a value\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        *error = flag + " " + value + " is not a number\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      if (flag == "--port") {
        options.port = static_cast<int>(parsed);
      } else if (flag == "--timeout-ms") {
        options.timeout_ms = static_cast<int>(parsed);
      } else if (flag == "--grace-ms") {
        options.grace_ms = static_cast<int>(parsed);
      } else if (flag == "--kill-rank") {
        options.kill_rank = static_cast<int>(parsed);
      } else if (flag == "--kill-at-op") {
        options.kill_at_op = static_cast<std::uint64_t>(parsed);
      } else {
        options.have_seed = true;
        options.seed = static_cast<std::uint64_t>(parsed);
      }
    } else if (arg == "--chaos") {
      if (!flag_with_value(arg, argc, argv, &i, &value) ||
          (value != "noise" && value != "lossy" && value != "hostile")) {
        *error = "--chaos needs noise, lossy or hostile\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      options.chaos_mode = value;
    } else if (arg == "--chaos-kill") {
      options.chaos_kill = true;
    } else if (arg == "--trace") {
      if (!flag_with_value(arg, argc, argv, &i, &value)) {
        *error = "--trace needs a path\n" + pdcrun_usage();
        return kLaunchUsage;
      }
      options.trace_path = value;
    } else if (arg == "--no-tag") {
      options.tag_output = false;
    } else if (arg == "-h" || arg == "--help") {
      *error = pdcrun_usage();
      return kLaunchUsage;
    } else {
      *error = "unknown option " + arg + "\n" + pdcrun_usage();
      return kLaunchUsage;
    }
  }
  if (options.np < 1) {
    *error = "-np is required\n" + pdcrun_usage();
    return kLaunchUsage;
  }
  if (i >= argc) {
    *error = "no rank binary given\n" + pdcrun_usage();
    return kLaunchUsage;
  }
  if (!options.nodes.empty()) {
    // Fail here, with usage, instead of from inside every rank process.
    int entries = 0;
    const char* p = options.nodes.c_str();
    for (;;) {
      char* end = nullptr;
      const long id = std::strtol(p, &end, 10);
      if (end == p || id < 0) {
        *error = "--nodes " + options.nodes +
                 " is not a comma-separated list of node ids >= 0\n" +
                 pdcrun_usage();
        return kLaunchUsage;
      }
      ++entries;
      p = end;
      if (*p == '\0') break;
      if (*p != ',') {
        *error = "--nodes " + options.nodes +
                 " is not a comma-separated list of node ids >= 0\n" +
                 pdcrun_usage();
        return kLaunchUsage;
      }
      ++p;
    }
    if (entries != options.np) {
      *error = "--nodes needs exactly one node id per rank (-np " +
               std::to_string(options.np) + ")\n" + pdcrun_usage();
      return kLaunchUsage;
    }
  }
  options.binary = argv[i];
  for (++i; i < argc; ++i) options.args.emplace_back(argv[i]);
  *out = std::move(options);
  return 0;
}

LaunchReport launch(const LaunchOptions& options) {
  LaunchReport report;
  report.ranks.resize(static_cast<std::size_t>(options.np));

  const std::string resolved = resolve_binary(options.binary);
  if (resolved.empty()) {
    std::fprintf(stderr, "pdcrun: %s: no such executable\n",
                 options.binary.c_str());
    report.exit_code = kLaunchMissingBinary;
    return report;
  }

  const bool unix_mode = options.transport != "tcp";  // unix and shm
  const std::string dir = unix_mode ? make_scratch_dir("pdcrun") : "";
  const int port =
      unix_mode ? 0 : (options.port > 0 ? options.port : pick_free_port());
  const std::string job =
      "pdcrun-" + std::to_string(static_cast<long>(::getpid()));

  // The env is assembled once up front (the parent's environment minus any
  // stale PDCRUN_* plus this job's contract); only PDCRUN_RANK differs per
  // child — execve gets prebuilt arrays, nothing allocates after fork.
  std::vector<std::string> env_common;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "PDCRUN_", 7) != 0) env_common.emplace_back(*e);
  }
  env_common.push_back("PDCRUN_NP=" + std::to_string(options.np));
  env_common.push_back("PDCRUN_TRANSPORT=" + options.transport);
  env_common.push_back("PDCRUN_JOB=" + job);
  if (unix_mode) {
    env_common.push_back("PDCRUN_DIR=" + dir);
  } else {
    env_common.push_back("PDCRUN_HOST=" + options.host);
    env_common.push_back("PDCRUN_PORT=" + std::to_string(port));
  }
  if (!options.nodes.empty()) {
    env_common.push_back("PDCRUN_NODES=" + options.nodes);
  }
  if (options.have_seed) {
    env_common.push_back("PDCRUN_SEED=" + std::to_string(options.seed));
  }
  if (!options.chaos_mode.empty()) {
    env_common.push_back("PDCRUN_CHAOS_MODE=" + options.chaos_mode);
  }
  if (options.kill_rank >= 0) {
    env_common.push_back("PDCRUN_CHAOS_ABORT_RANK=" +
                         std::to_string(options.kill_rank));
    env_common.push_back("PDCRUN_CHAOS_ABORT_AT_OP=" +
                         std::to_string(options.kill_at_op));
  }
  if ((!options.chaos_mode.empty() || options.kill_rank >= 0) &&
      options.chaos_kill) {
    env_common.push_back("PDCRUN_CHAOS_KILL=1");
  }
  if (!options.trace_path.empty()) {
    env_common.push_back("PDCRUN_TRACE=" + options.trace_path);
  }

  std::vector<std::string> child_args;
  child_args.push_back(options.binary);
  child_args.insert(child_args.end(), options.args.begin(),
                    options.args.end());
  std::vector<char*> argv;
  for (auto& a : child_args) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<Child> children(static_cast<std::size_t>(options.np));
  for (int r = 0; r < options.np; ++r) {
    Child& child = children[static_cast<std::size_t>(r)];
    child.rank = r;

    std::vector<std::string> env_strings = env_common;
    env_strings.push_back("PDCRUN_RANK=" + std::to_string(r));
    std::vector<char*> envp;
    for (auto& e : env_strings) envp.push_back(e.data());
    envp.push_back(nullptr);

    int fds[2];
    if (::pipe(fds) != 0) {
      std::fprintf(stderr, "pdcrun: pipe failed: %s\n", std::strerror(errno));
      for (auto& c : children) {
        if (c.pid > 0) ::kill(c.pid, SIGKILL);
      }
      report.exit_code = kLaunchMissingBinary;
      return report;
    }

    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: stdout and stderr both feed the parent's pump so a rank's
      // postmortem interleaves with its output in one ordered stream.
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      ::execve(resolved.c_str(), argv.data(), envp.data());
      std::fprintf(stderr, "pdcrun: exec %s failed: %s\n", resolved.c_str(),
                   std::strerror(errno));
      std::fflush(stderr);
      ::_exit(kLaunchMissingBinary);
    }
    ::close(fds[1]);
    child.pid = pid;
    child.pipe_fd = fds[0];
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  }

  const auto start = Clock::now();
  const auto watchdog_at =
      start + std::chrono::milliseconds(options.timeout_ms);
  bool timed_out = false;
  bool saw_failure = false;
  Clock::time_point failure_at{};
  bool sent_term = false;
  bool sent_kill = false;
  int first_bad = -1;  ///< rank index of the first failure, reap order

  const auto emit_line = [&](Child& child, const std::string& line) {
    if (options.tag_output) {
      std::printf("[rank %d] %s\n", child.rank, line.c_str());
    } else {
      std::printf("%s\n", line.c_str());
    }
    remember_tail(child, line);
  };

  const auto signal_all = [&](int sig) {
    for (Child& child : children) {
      if (!child.reaped && child.pid > 0) ::kill(child.pid, sig);
    }
  };

  for (;;) {
    bool any_pipe = false;
    std::vector<pollfd> fds;
    std::vector<Child*> owners;
    for (Child& child : children) {
      if (child.pipe_fd >= 0) {
        fds.push_back(pollfd{child.pipe_fd, POLLIN, 0});
        owners.push_back(&child);
        any_pipe = true;
      }
    }
    bool any_alive = false;
    for (const Child& child : children) {
      if (!child.reaped) any_alive = true;
    }
    if (!any_pipe && !any_alive) break;

    if (any_pipe) {
      ::poll(fds.data(), fds.size(), 100);
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Child& child = *owners[i];
        char buf[4096];
        for (;;) {
          const ssize_t n = ::read(child.pipe_fd, buf, sizeof buf);
          if (n > 0) {
            child.partial.append(buf, static_cast<std::size_t>(n));
            std::size_t pos;
            while ((pos = child.partial.find('\n')) != std::string::npos) {
              emit_line(child, child.partial.substr(0, pos));
              child.partial.erase(0, pos + 1);
            }
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          // EOF or error: the rank is done talking.
          if (!child.partial.empty()) {
            emit_line(child, child.partial);
            child.partial.clear();
          }
          ::close(child.pipe_fd);
          child.pipe_fd = -1;
          break;
        }
      }
    } else {
      // Pipes are drained but a child still runs: just pace the reaping.
      ::usleep(20000);
    }

    for (Child& child : children) {
      if (child.reaped || child.pid <= 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(child.pid, &status, WNOHANG);
      if (got != child.pid) continue;
      child.reaped = true;
      if (WIFEXITED(status)) {
        child.exit_code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        child.signal = WTERMSIG(status);
      }
      if ((child.exit_code != 0 || child.signal != 0) && !saw_failure) {
        saw_failure = true;
        failure_at = Clock::now();
        first_bad = child.rank;
      }
    }

    const auto now = Clock::now();
    if (!timed_out && now >= watchdog_at) {
      timed_out = true;
      std::fprintf(stderr,
                   "pdcrun: watchdog expired after %d ms; killing the job\n",
                   options.timeout_ms);
      signal_all(SIGKILL);
      sent_kill = true;
    }
    if (saw_failure && !sent_term &&
        now >= failure_at + std::chrono::milliseconds(options.grace_ms)) {
      signal_all(SIGTERM);
      sent_term = true;
      failure_at = now;  // reuse as the SIGTERM timestamp for escalation
    } else if (sent_term && !sent_kill &&
               now >= failure_at + std::chrono::seconds(2)) {
      signal_all(SIGKILL);
      sent_kill = true;
    }
  }

  for (const Child& child : children) {
    RankOutcome& outcome = report.ranks[static_cast<std::size_t>(child.rank)];
    outcome.pid = static_cast<int>(child.pid);
    outcome.exited = child.reaped;
    outcome.exit_code = child.exit_code;
    outcome.signal = child.signal;
    outcome.tail.assign(child.tail.begin(), child.tail.end());
  }

  if (unix_mode) remove_scratch_dir(dir);

  if (timed_out) {
    report.exit_code = kLaunchTimeout;
  } else if (first_bad >= 0) {
    // Report the root cause, not the collateral: a rank that exited 5
    // (peer abort) did so because some *other* rank died, so a signal
    // death or a non-5 exit anywhere wins over it.
    const RankOutcome* bad = &report.ranks[static_cast<std::size_t>(first_bad)];
    if (bad->signal == 0 && bad->exit_code == 5) {
      for (const RankOutcome& outcome : report.ranks) {
        if (outcome.signal != 0 ||
            (outcome.exit_code != 0 && outcome.exit_code != 5)) {
          bad = &outcome;
          break;
        }
      }
    }
    report.exit_code = bad->signal != 0 ? 128 + bad->signal : bad->exit_code;
  }

  if (report.exit_code != 0) {
    std::fprintf(stderr, "pdcrun: job failed (exit %d); per-rank postmortem:\n",
                 report.exit_code);
    for (const RankOutcome& outcome : report.ranks) {
      const int rank = static_cast<int>(&outcome - report.ranks.data());
      if (outcome.signal != 0) {
        std::fprintf(stderr, "  rank %d (pid %d): killed by signal %d\n", rank,
                     outcome.pid, outcome.signal);
      } else if (outcome.exited) {
        std::fprintf(stderr, "  rank %d (pid %d): exit %d\n", rank,
                     outcome.pid, outcome.exit_code);
      } else {
        std::fprintf(stderr, "  rank %d (pid %d): never exited (watchdog)\n",
                     rank, outcome.pid);
      }
      if (outcome.signal != 0 || outcome.exit_code != 0) {
        for (const std::string& line : outcome.tail) {
          std::fprintf(stderr, "    | %s\n", line.c_str());
        }
      }
    }
    std::fflush(stderr);
  }
  std::fflush(stdout);
  return report;
}

}  // namespace pdc::net
