#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mp/mailbox.hpp"
#include "net/wire.hpp"

namespace pdc::mp {
class Universe;
}

namespace pdc::net::shm {

/// One shm segment per co-located rank pair, two SPSC byte-stream rings per
/// segment (one per direction), one futex "bell" page per rank. The design
/// in one paragraph:
///
///   - A Data record is [u32 head_len][wire head][payload bytes] written
///     straight into the sender's outbound ring by the *program* thread —
///     no writer thread, no socket syscall. Payloads of any size stream
///     through the ring in bursts (the rendezvous path): each payload is
///     staged in shared memory exactly once, instead of the two kernel
///     traversals a socket send+recv costs.
///   - The receiving side drains rings from two places: a per-transport
///     backstop thread (so sends stay eager while the peer computes), and —
///     the latency path — the receiving program thread itself, via the
///     mp::ProgressEngine hook, pumping the rings from inside its blocked
///     receive. A one-word futex doorbell per rank covers all of its peers,
///     so a ping-pong costs one futex wake + one context switch end to end.
///   - All blocking waits are futexes on shared 32-bit words with EINTR-safe
///     retry and a short timeout backstop that re-checks the dead/aborted
///     flags, so a SIGKILLed peer (detected by the socket layer's
///     EOF-without-Bye) wakes every waiter within one tick even if the wake
///     itself was lost.
///
/// The segment files live under /dev/shm (shm_open) with names derived from
/// the launcher's job token; every name is unlinked as soon as both sides
/// attached, so even a SIGKILLed job leaks nothing past wireup.
struct Options {
  std::string job;            ///< launcher token; both sides derive names from it
  int np = 1;
  int rank = 0;
  std::vector<int> node_ids;  ///< dense node id per world rank (size np)
  /// Per-direction ring capacity in bytes; must be a power of two. Small
  /// rings are valid (tests use 4 KiB to force the streaming/wrap paths).
  std::uint32_t ring_bytes = 1u << 20;
  int handshake_timeout_ms = 10000;
  /// A peer that stops draining our outbound ring for this long while we
  /// have bytes to write is treated as lost (the bounded-send property the
  /// socket writer has via SO_SNDTIMEO).
  int linger_ms = 5000;
};

/// The shm name key for a job token: sanitized for shm_open plus a hash of
/// the full token so distinct jobs never collide after sanitization.
std::string name_key(const std::string& job);

class ShmState final : public mp::ProgressEngine {
 public:
  /// Validates options and computes the co-located peer set; creates
  /// nothing until connect().
  explicit ShmState(const Options& options);
  ~ShmState() override;

  ShmState(const ShmState&) = delete;
  ShmState& operator=(const ShmState&) = delete;

  /// True when `world_rank` shares this rank's node (and is not self).
  [[nodiscard]] bool has_peer(int world_rank) const noexcept;
  [[nodiscard]] int peer_count() const noexcept { return colocated_; }

  /// Create/attach every pair segment and bell page. Call after the socket
  /// mesh is up (so every peer is alive and inside its own connect()).
  /// Bounded by the handshake budget; throws ConnectionError on timeout and
  /// cleans up everything it created.
  void connect();

  /// Install the progress engine into the local mailbox and start the
  /// backstop pump thread.
  void bind(mp::Universe& universe);

  /// Producer path: frame already encoded by the caller. Returns silently
  /// when the peer already said a clean goodbye (teardown race — the socket
  /// writer drops such frames too); throws PeerLost when the peer died or
  /// stopped draining past the linger budget.
  void send_data(int dest_world_rank, const wire::DataFrame& frame);

  /// Socket layer callbacks: EOF-without-Bye poisons the channel and wakes
  /// every local waiter; a clean Bye only fails fast future sends.
  void mark_peer_dead(int world_rank) noexcept;
  void mark_peer_closed(int world_rank) noexcept;

  /// Our job aborted: poison every segment and ring the peers' bells so
  /// their blocked pumps/producers wake and observe it.
  void local_abort() noexcept;

  /// Stop and join the backstop thread and uninstall the progress engine.
  /// Segments stay mapped (socket reader threads may still flip channel
  /// flags) until destruction. Idempotent.
  void shutdown() noexcept;

  /// First shm-side peer-loss postmortem ("" when healthy).
  [[nodiscard]] std::string postmortem() const;

  // ---- mp::ProgressEngine ------------------------------------------------
  std::uint64_t epoch() noexcept override;
  void poll() override;
  void wait(std::uint64_t seen, std::chrono::milliseconds max_wait) override;
  void kick() noexcept override;

 private:
  struct Channel;

  void setup_pair(int peer, std::chrono::steady_clock::time_point deadline);
  void create_own_bell();
  void teardown_on_error() noexcept;

  void drain_channel(Channel& c);
  bool pump_wait_for_bytes(Channel& c, std::uint64_t needed_head);
  void record_peer_lost(Channel& c, const std::string& why) noexcept;
  void ring_peer_bell(Channel& c, bool urgent = false) noexcept;
  void backstop_loop();

  Options options_;
  std::string key_;
  int colocated_ = 0;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< by world rank

  void* bell_mem_ = nullptr;
  std::string bell_name_;
  bool bell_linked_ = false;  ///< name still present in /dev/shm

  mp::Universe* universe_ = nullptr;
  std::thread backstop_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_{false};

  mutable std::mutex postmortem_mutex_;
  std::string postmortem_;
};

}  // namespace pdc::net::shm
