#include "net/wire.hpp"

#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_set>

#include "net/errors.hpp"

namespace pdc::net::wire {

void put_u16(mp::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void put_u32(mp::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(mp::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(mp::Bytes& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_string(mp::Bytes& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  for (char c : s) out.push_back(static_cast<std::byte>(c));
}

void Reader::need(std::size_t n) const {
  if (bytes_->size() - pos_ < n) {
    throw ProtocolError("wire: truncated frame body (needed " +
                        std::to_string(n) + " more bytes, " +
                        std::to_string(bytes_->size() - pos_) + " present)");
  }
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>((*bytes_)[pos_]) |
                                 static_cast<std::uint16_t>((*bytes_)[pos_ + 1])
                                     << 8);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>((*bytes_)[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>((*bytes_)[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

std::string Reader::string(std::uint32_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) {
    throw ProtocolError("wire: string length " + std::to_string(len) +
                        " exceeds the clamp of " + std::to_string(max_len));
  }
  // The length is validated against the bytes actually present before it
  // sizes the std::string — a hostile prefix cannot drive an allocation.
  need(len);
  std::string s(reinterpret_cast<const char*>(bytes_->data() + pos_), len);
  pos_ += len;
  return s;
}

std::string_view Reader::string_view(std::uint32_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) {
    throw ProtocolError("wire: string length " + std::to_string(len) +
                        " exceeds the clamp of " + std::to_string(max_len));
  }
  need(len);
  const std::string_view s(
      reinterpret_cast<const char*>(bytes_->data() + pos_), len);
  pos_ += len;
  return s;
}

mp::Bytes Reader::rest() {
  mp::Bytes out(bytes_->begin() + static_cast<std::ptrdiff_t>(pos_),
                bytes_->end());
  pos_ = bytes_->size();
  return out;
}

void Reader::expect_end() const {
  if (pos_ != bytes_->size()) {
    throw ProtocolError("wire: frame body has " +
                        std::to_string(bytes_->size() - pos_) +
                        " trailing bytes");
  }
}

namespace {

void append_header(mp::Bytes& out, FrameKind kind, std::size_t body_len) {
  if (body_len > kMaxBodyBytes) {
    throw ProtocolError("wire: refusing to emit a " +
                        std::to_string(body_len) +
                        "-byte frame body (clamp is " +
                        std::to_string(kMaxBodyBytes) + ")");
  }
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(kind));
  put_u32(out, static_cast<std::uint32_t>(body_len));
}

}  // namespace

mp::Bytes encode_header(FrameKind kind, std::size_t body_len) {
  mp::Bytes out;
  out.reserve(kHeaderBytes);
  append_header(out, kind, body_len);
  return out;
}

Header decode_header(const std::byte (&raw)[kHeaderBytes]) {
  mp::Bytes bytes(raw, raw + kHeaderBytes);
  Reader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw ProtocolError("wire: bad magic 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x", magic);
      return std::string(buf);
    }() + " (peer is not a pdc::net endpoint)");
  }
  const std::uint16_t version = r.u16();
  if (version != kVersion) {
    throw ProtocolError("wire: protocol version " + std::to_string(version) +
                        " (this build speaks " + std::to_string(kVersion) +
                        ")");
  }
  const std::uint16_t kind = r.u16();
  if (kind < static_cast<std::uint16_t>(FrameKind::Hello) ||
      kind > static_cast<std::uint16_t>(FrameKind::Report)) {
    throw ProtocolError("wire: unknown frame kind " + std::to_string(kind));
  }
  const std::uint32_t body_len = r.u32();
  const std::uint32_t clamp = static_cast<FrameKind>(kind) == FrameKind::Data
                                  ? kMaxBodyBytes
                                  : kMaxControlBodyBytes;
  if (body_len > clamp) {
    throw ProtocolError("wire: frame body length " + std::to_string(body_len) +
                        " exceeds the clamp of " + std::to_string(clamp) +
                        " (hostile or corrupt length prefix)");
  }
  return Header{static_cast<FrameKind>(kind), body_len};
}

mp::Bytes encode_hello(const Hello& hello) {
  mp::Bytes body;
  put_string(body, hello.job);
  put_i32(body, hello.np);
  put_i32(body, hello.rank);
  put_string(body, hello.endpoint);
  put_string(body, hello.hostname);
  return body;
}

Hello decode_hello(const mp::Bytes& body) {
  Reader r(body);
  Hello hello;
  hello.job = r.string(kMaxHandshakeString);
  hello.np = r.i32();
  hello.rank = r.i32();
  hello.endpoint = r.string(kMaxHandshakeString);
  hello.hostname = r.string(kMaxHandshakeString);
  r.expect_end();
  return hello;
}

mp::Bytes encode_welcome(const Welcome& welcome) {
  mp::Bytes body;
  put_u32(body, static_cast<std::uint32_t>(welcome.peers.size()));
  for (const auto& [endpoint, hostname] : welcome.peers) {
    put_string(body, endpoint);
    put_string(body, hostname);
  }
  return body;
}

Welcome decode_welcome(const mp::Bytes& body) {
  Reader r(body);
  const std::uint32_t count = r.u32();
  // Each entry costs at least its two 4-byte length prefixes; a count the
  // remaining bytes cannot hold is a hostile prefix, rejected before
  // reserve().
  if (count > r.remaining() / 8) {
    throw ProtocolError("wire: welcome peer count " + std::to_string(count) +
                        " exceeds what " + std::to_string(r.remaining()) +
                        " body bytes could hold");
  }
  Welcome welcome;
  welcome.peers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string endpoint = r.string(kMaxHandshakeString);
    std::string hostname = r.string(kMaxHandshakeString);
    welcome.peers.emplace_back(std::move(endpoint), std::move(hostname));
  }
  r.expect_end();
  return welcome;
}

DataFrame encode_data(const mp::Envelope& envelope, int dest_world_rank) {
  const std::size_t payload_len = envelope.size_bytes();
  const std::string_view name =
      envelope.type_name != nullptr ? envelope.type_name : "";
  // head = header + metadata + payload length prefix; the payload bytes
  // follow on the wire but stay in their shared buffer here. The metadata
  // layout is fixed-width apart from the name — dest(4) comm_id(8)
  // source(4) tag(4) type_hash(8) name(4+len) payload_len(4) — so the head
  // is sized once and filled in place: one allocation per frame, on the
  // per-message hot path of every transport.
  const std::size_t meta_len = 4 + 8 + 4 + 4 + 8 + (4 + name.size()) + 4;
  DataFrame frame;
  frame.head.reserve(kHeaderBytes + meta_len);
  append_header(frame.head, FrameKind::Data, meta_len + payload_len);
  put_i32(frame.head, dest_world_rank);
  put_u64(frame.head, envelope.comm_id);
  put_i32(frame.head, envelope.source);
  put_i32(frame.head, envelope.tag);
  put_u64(frame.head, static_cast<std::uint64_t>(envelope.type_hash));
  put_string(frame.head, name);
  put_u32(frame.head, static_cast<std::uint32_t>(payload_len));
  frame.payload = envelope.payload;
  return frame;
}

mp::Envelope decode_data(const mp::Bytes& body, int expect_dest_world_rank) {
  Reader r(body);
  const std::int32_t dest = r.i32();
  if (dest != expect_dest_world_rank) {
    throw ProtocolError("wire: data frame addressed to world rank " +
                        std::to_string(dest) + " arrived at rank " +
                        std::to_string(expect_dest_world_rank));
  }
  mp::Envelope envelope;
  envelope.comm_id = r.u64();
  envelope.source = r.i32();
  envelope.tag = r.i32();
  envelope.type_hash = static_cast<std::size_t>(r.u64());
  envelope.type_name = intern_type_name(r.string_view(kMaxTypeNameBytes));
  const std::uint32_t payload_len = r.u32();
  if (payload_len != r.remaining()) {
    throw ProtocolError("wire: data payload length " +
                        std::to_string(payload_len) + " disagrees with the " +
                        std::to_string(r.remaining()) +
                        " bytes present in the frame");
  }
  if (payload_len > 0) {
    envelope.payload = mp::make_payload(r.rest());
  }
  return envelope;
}

const char* intern_type_name(std::string_view name) {
  if (name.empty()) return "";
  // A receiver overwhelmingly sees the same few type names back to back, so
  // a small thread-local cache answers the steady state without the global
  // mutex, the temporary std::string, or the hash probe. Interned pointers
  // are stable (node-based set, never erased), so cached entries stay valid.
  struct CachedName {
    std::string name;
    const char* interned = nullptr;
  };
  thread_local CachedName cache[4];
  CachedName& hit = cache[name.size() & 3u];
  if (hit.interned != nullptr && hit.name == name) return hit.interned;

  static std::mutex mutex;
  static std::unordered_set<std::string> pool;
  static const char* const kOverflow = "<remote type>";
  const char* interned = nullptr;
  {
    std::lock_guard lock(mutex);
    if (const auto it = pool.find(std::string(name)); it != pool.end()) {
      interned = it->c_str();
    } else if (pool.size() >= kInternPoolCap) {
      interned = kOverflow;
    } else {
      interned = pool.emplace(name).first->c_str();
    }
  }
  hit.name.assign(name);
  hit.interned = interned;
  return interned;
}

}  // namespace pdc::net::wire
