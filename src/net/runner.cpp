#include "net/runner.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <unistd.h>

#include "chaos/chaos.hpp"
#include "mp/universe.hpp"
#include "net/errors.hpp"
#include "support/error.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace pdc::net {

namespace {

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : fallback;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    throw InvalidArgument(std::string(name) + "=\"" + v +
                          "\" is not a number");
  }
  return parsed;
}

chaos::Config chaos_config(const RankEnv& env) {
  chaos::Config config;
  if (env.chaos_mode.empty() || env.chaos_mode == "none") {
    config.seed = env.chaos_seed;
  } else if (env.chaos_mode == "noise") {
    config = chaos::Config::noise(env.chaos_seed);
  } else if (env.chaos_mode == "lossy") {
    config = chaos::Config::lossy(env.chaos_seed);
  } else if (env.chaos_mode == "hostile") {
    config = chaos::Config::hostile(env.chaos_seed);
  } else {
    throw InvalidArgument("PDCRUN_CHAOS_MODE=\"" + env.chaos_mode +
                          "\" (supported: none, noise, lossy, hostile)");
  }
  config.abort_actor = env.kill_rank;
  config.abort_at_op = env.kill_at_op;
  return config;
}

std::vector<int> parse_node_list(const char* text, int np) {
  std::vector<int> ids;
  const char* p = text;
  for (;;) {
    char* end = nullptr;
    const long id = std::strtol(p, &end, 10);
    if (end == p || id < 0) {
      throw InvalidArgument(std::string("PDCRUN_NODES=\"") + text +
                            "\" must be a comma-separated list of node ids "
                            ">= 0");
    }
    ids.push_back(static_cast<int>(id));
    p = end;
    if (*p == '\0') break;
    if (*p != ',') {
      throw InvalidArgument(std::string("PDCRUN_NODES=\"") + text +
                            "\" must be a comma-separated list of node ids "
                            ">= 0");
    }
    ++p;
  }
  if (ids.size() != static_cast<std::size_t>(np)) {
    throw InvalidArgument(std::string("PDCRUN_NODES=\"") + text +
                          "\" needs exactly one node id per rank "
                          "(PDCRUN_NP=" +
                          std::to_string(np) + ")");
  }
  return ids;
}

void postmortem_line(int rank, const char* what, const std::string& detail) {
  std::fprintf(stderr, "pdc::net rank %d %s: %s\n", rank, what,
               detail.c_str());
  std::fflush(stderr);
}

}  // namespace

RankEnv rank_env_from_environment() {
  RankEnv env;
  if (std::getenv("PDCRUN_RANK") == nullptr) return env;
  env.present = true;

  SocketConfig& cfg = env.config;
  cfg.rank = static_cast<int>(env_long("PDCRUN_RANK", 0));
  cfg.np = static_cast<int>(env_long("PDCRUN_NP", 1));
  if (cfg.np < 1 || cfg.rank < 0 || cfg.rank >= cfg.np) {
    throw InvalidArgument("PDCRUN_RANK=" + std::to_string(cfg.rank) +
                          " out of range for PDCRUN_NP=" +
                          std::to_string(cfg.np));
  }
  const std::string transport = env_or("PDCRUN_TRANSPORT", "unix");
  if (transport == "unix" || transport == "shm") {
    // "shm" keeps the unix-socket mesh for wireup/control and moves the
    // co-located data path onto the shm rings.
    cfg.kind = Endpoint::Kind::Unix;
    cfg.use_shm = transport == "shm";
    cfg.dir = env_or("PDCRUN_DIR", "");
    if (cfg.dir.empty()) {
      throw InvalidArgument("PDCRUN_TRANSPORT=" + transport +
                            " needs PDCRUN_DIR");
    }
  } else if (transport == "tcp") {
    cfg.kind = Endpoint::Kind::Tcp;
    cfg.host = env_or("PDCRUN_HOST", "127.0.0.1");
    cfg.port = static_cast<int>(env_long("PDCRUN_PORT", 0));
    if (cfg.port <= 0) {
      throw InvalidArgument("PDCRUN_TRANSPORT=tcp needs PDCRUN_PORT");
    }
  } else {
    throw InvalidArgument("PDCRUN_TRANSPORT=\"" + transport +
                          "\" (supported: unix, tcp, shm)");
  }
  const char* nodes = std::getenv("PDCRUN_NODES");
  if (nodes != nullptr && *nodes != '\0') {
    cfg.topology = parse_node_list(nodes, cfg.np);
  }
  cfg.job = env_or("PDCRUN_JOB", "local");
  cfg.connect_timeout_ms = static_cast<int>(
      env_long("PDCRUN_CONNECT_TIMEOUT_MS", cfg.connect_timeout_ms));

  const char* mode = std::getenv("PDCRUN_CHAOS_MODE");
  env.kill_rank = static_cast<int>(env_long("PDCRUN_CHAOS_ABORT_RANK", -1));
  if ((mode != nullptr && *mode != '\0') || env.kill_rank >= 0) {
    env.chaos = true;
    env.chaos_mode = mode != nullptr ? mode : "";
    env.chaos_seed =
        static_cast<std::uint64_t>(env_long("PDCRUN_SEED", 1));
    env.chaos_kill = env_long("PDCRUN_CHAOS_KILL", 0) != 0;
    env.kill_at_op = static_cast<std::uint64_t>(
        env_long("PDCRUN_CHAOS_ABORT_AT_OP", 0));
  }
  env.trace_path = env_or("PDCRUN_TRACE", "");
  return env;
}

int run_rank(const RankEnv& env,
             const std::function<void(mp::Communicator&)>& program) {
  const int rank = env.config.rank;

  // Per-process trace session: each rank records its own timeline and
  // exports it under its rank suffix; stitch them in chrome://tracing.
  std::optional<trace::TraceSession> session;
  if (!env.trace_path.empty()) {
    session.emplace();
    session->start();
  }
  std::optional<chaos::Scope> chaos_scope;
  if (env.chaos) {
    try {
      chaos_scope.emplace(chaos_config(env));
    } catch (const Error& error) {
      postmortem_line(rank, "config error", error.what());
      return kRankConfig;
    }
  }

  int code = kRankOk;
  {
    // Wireup first: a rank that cannot reach its peers fails before any
    // Universe exists, so there is nothing to tear down but the sockets —
    // which the SocketTransport constructor already cleaned up.
    std::unique_ptr<SocketTransport> transport;
    try {
      transport = std::make_unique<SocketTransport>(env.config);
    } catch (const Error& error) {
      postmortem_line(rank, "wireup failed", error.what());
      return kRankWireup;
    }

    mp::Universe universe(env.config.np, transport->hostnames(), rank);
    // pdcrun multiplexes child stdout; echo every print() as it happens
    // instead of holding it in the in-memory log until the job ends.
    universe.set_echo_output(true);
    SocketTransport* net = transport.get();
    universe.attach_transport(std::move(transport));
    // Tell Auto the real node shape (forced PDCRUN_NODES, or what wireup
    // learned) before any user collective can resolve a schedule.
    universe.set_topology(net->node_ids());

    // Trace lanes carry the real OS pid (the whole point of running as
    // processes); chaos decisions stay keyed by world rank.
    trace::PidScope lane(static_cast<int>(::getpid()),
                         "rank " + std::to_string(rank));
    chaos::ActorScope actor(rank);
    try {
      trace::Span lifetime("mp.rank", "mp.runtime");
      mp::Communicator comm = mp::Communicator::world(universe, rank);
      program(comm);
    } catch (const chaos::InjectedAbort& abort) {
      if (env.chaos_kill) {
        // Die the way a real node dies: no Bye, no unwinding, no flush.
        // Peers must detect the EOF-without-goodbye and pdcrun must reap
        // the SIGKILL.
        ::raise(SIGKILL);
      }
      postmortem_line(rank, "chaos abort", abort.what());
      universe.abort();
      code = kRankProgram;
    } catch (const mp::Aborted&) {
      const std::string why = net->postmortem();
      postmortem_line(rank, "aborted",
                      why.empty() ? "another rank aborted the job" : why);
      code = kRankPeerAbort;
    } catch (const std::exception& error) {
      postmortem_line(rank, "program error", error.what());
      universe.abort();
      code = kRankProgram;
    }
    // ~Universe shuts the transport down (drain, Bye, join) before the
    // mailbox a reader thread delivers into is destroyed.
  }

  if (session) {
    session->stop();
    try {
      trace::write_chrome_json(
          *session, env.trace_path + ".rank" + std::to_string(rank) + ".json");
    } catch (const Error& error) {
      postmortem_line(rank, "trace export failed", error.what());
    }
  }
  return code;
}

}  // namespace pdc::net
