#include "net/harness.hpp"

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

#include "chaos/chaos.hpp"
#include "mp/universe.hpp"
#include "net/errors.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::net {

std::string make_scratch_dir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string templ = (base != nullptr && *base != '\0' ? base : "/tmp");
  if (templ.back() != '/') templ += '/';
  templ += prefix + "XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw ConnectionError("mkdtemp failed for " + templ);
  }
  return std::string(buf.data());
}

void remove_scratch_dir(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

int pick_free_port() {
  Endpoint ephemeral;
  ephemeral.kind = Endpoint::Kind::Tcp;
  ephemeral.host = "127.0.0.1";
  ephemeral.port = 0;
  Socket probe = listen_at(ephemeral, 1);
  return local_endpoint(probe, ephemeral).port;
}

std::vector<std::string> ClusterResult::merged() const {
  std::vector<std::string> all;
  for (const auto& rank_lines : output) {
    all.insert(all.end(), rank_lines.begin(), rank_lines.end());
  }
  return all;
}

ClusterResult run_socket_cluster(
    const ClusterOptions& options,
    const std::function<void(mp::Communicator&)>& program) {
  if (options.np < 1) {
    throw InvalidArgument("run_socket_cluster: np must be >= 1");
  }
  const std::size_t np = static_cast<std::size_t>(options.np);

  const bool unix_mode = options.kind == Endpoint::Kind::Unix;
  const std::string dir = unix_mode ? make_scratch_dir("pdcnet") : "";
  const int port = unix_mode ? 0 : pick_free_port();

  // Shm segment names are derived from the job token and global to the
  // machine; uniquify per cluster so concurrent test binaries (or repeated
  // clusters in one binary) never collide on a leftover segment.
  std::string job = options.job;
  if (options.use_shm) {
    static std::atomic<unsigned> cluster_seq{0};
    job += "-" + std::to_string(static_cast<long>(::getpid())) + "-" +
           std::to_string(cluster_seq.fetch_add(1));
  }

  ClusterResult result;
  result.output.resize(np);
  result.errors.assign(np, "");

  const auto rank_body = [&](int rank) {
    // Same lanes a real pdcrun rank gets: trace events per rank, chaos
    // decisions keyed by world rank.
    trace::PidScope lane(rank, "rank " + std::to_string(rank));
    chaos::ActorScope actor(rank);
    try {
      SocketConfig cfg;
      cfg.kind = options.kind;
      cfg.dir = dir;
      cfg.port = port;
      cfg.np = options.np;
      cfg.rank = rank;
      cfg.job = job;
      cfg.connect_timeout_ms = options.connect_timeout_ms;
      cfg.handshake_timeout_ms = options.handshake_timeout_ms;
      cfg.linger_ms = options.linger_ms;
      cfg.use_shm = options.use_shm;
      cfg.shm_ring_bytes = options.shm_ring_bytes;
      cfg.topology = options.nodes;

      auto transport = std::make_unique<SocketTransport>(cfg);
      mp::Universe universe(options.np, transport->hostnames(), rank);
      SocketTransport* net = transport.get();
      universe.attach_transport(std::move(transport));
      universe.set_topology(net->node_ids());
      if (options.on_output) universe.set_output_sink(options.on_output);
      if (options.on_wired) options.on_wired(rank, *net);

      mp::Communicator comm = mp::Communicator::world(universe, rank);
      try {
        program(comm);
      } catch (const std::exception& error) {
        // Wake the other ranks (and, through the transport, the other
        // universes) exactly as a failing pdcrun rank would.
        result.errors[static_cast<std::size_t>(rank)] = error.what();
        universe.abort();
      }
      result.output[static_cast<std::size_t>(rank)] = universe.log();
    } catch (const std::exception& error) {
      result.errors[static_cast<std::size_t>(rank)] = error.what();
    }
    // ~Universe → transport shutdown → Bye/join before the thread exits.
  };

  std::vector<std::thread> ranks;
  ranks.reserve(np);
  for (int r = 0; r < options.np; ++r) ranks.emplace_back(rank_body, r);
  for (auto& t : ranks) t.join();

  if (unix_mode) remove_scratch_dir(dir);
  return result;
}

}  // namespace pdc::net
