#pragma once

#include <string>

#include "support/error.hpp"

namespace pdc::net {

/// A frame that violates the wire protocol: bad magic, unknown version,
/// a length prefix larger than the clamp, or a body whose internal lengths
/// disagree with the bytes actually present. Hostile input surfaces here —
/// as a typed error before any allocation the lengths would have driven.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// A connection could not be established within its retry/timeout budget:
/// dial failures after bounded exponential backoff, accept timeouts during
/// wireup, or a rendezvous that never completed.
class ConnectionError : public Error {
 public:
  explicit ConnectionError(const std::string& what) : Error(what) {}
};

/// An established peer vanished mid-job: EOF in the middle of a frame, a
/// socket error on read or write, or a close without the protocol's
/// goodbye. The transport turns this into a local job abort so blocked
/// receives throw instead of hanging.
class PeerLost : public Error {
 public:
  explicit PeerLost(const std::string& what) : Error(what) {}
};

}  // namespace pdc::net
