#include "net/transport.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "chaos/chaos.hpp"
#include "mp/universe.hpp"
#include "net/errors.hpp"
#include "net/shm.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::net {

namespace {

/// The well-known endpoint of `rank` under this config (unix mode), or the
/// rendezvous endpoint (tcp, rank 0 only — other tcp ranks are ephemeral).
Endpoint endpoint_for(const SocketConfig& config, int rank) {
  Endpoint e;
  e.kind = config.kind;
  if (config.kind == Endpoint::Kind::Unix) {
    e.path = config.dir + "/rank" + std::to_string(rank) + ".sock";
  } else {
    e.host = config.host;
    e.port = rank == 0 ? config.port : 0;
  }
  return e;
}

void set_send_timeout(const Socket& socket, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

SocketTransport::SocketTransport(const SocketConfig& config)
    : config_(config) {
  if (config.np < 1) {
    throw InvalidArgument("SocketTransport: np must be >= 1");
  }
  if (config.rank < 0 || config.rank >= config.np) {
    throw InvalidArgument("SocketTransport: rank " +
                          std::to_string(config.rank) +
                          " out of range for np=" + std::to_string(config.np));
  }
  if (config.kind == Endpoint::Kind::Unix && config.dir.empty()) {
    throw InvalidArgument("SocketTransport: unix transport needs a socket dir");
  }
  if (config.kind == Endpoint::Kind::Tcp && config.rank != 0 &&
      config.port <= 0) {
    throw InvalidArgument(
        "SocketTransport: tcp transport needs the rendezvous port");
  }
  if (!config.topology.empty()) {
    if (config.topology.size() != static_cast<std::size_t>(config.np)) {
      throw InvalidArgument(
          "SocketTransport: topology must list one node id per rank");
    }
    for (const int id : config.topology) {
      if (id < 0) {
        throw InvalidArgument("SocketTransport: node ids must be >= 0");
      }
    }
  }
  peers_.resize(static_cast<std::size_t>(config.np));
  hostnames_.assign(static_cast<std::size_t>(config.np), std::string{});
  hostnames_[static_cast<std::size_t>(config.rank)] = config.hostname;
  try {
    wireup(config);
    if (config.use_shm) {
      // The socket mesh is the rendezvous barrier: every peer is alive and
      // inside (or past) its own shm wireup by now, so the create/attach
      // retries below only have to cover scheduling skew.
      shm::Options options;
      options.job = config.job;
      options.np = config.np;
      options.rank = config.rank;
      options.node_ids = node_ids();
      options.ring_bytes = config.shm_ring_bytes;
      options.handshake_timeout_ms = config.handshake_timeout_ms;
      options.linger_ms = config.linger_ms;
      shm_ = std::make_unique<shm::ShmState>(options);
      shm_->connect();
    }
  } catch (...) {
    // A rank that fails during wireup must not leak its listening socket or
    // any half-open peer connection; no thread has been started yet, so
    // closing descriptors (and unmapping/unlinking any shm) is the whole
    // cleanup.
    shm_.reset();
    for (auto& peer : peers_) {
      if (peer) peer->socket.close();
    }
    listener_.close();
    if (config.kind == Endpoint::Kind::Unix && !listen_endpoint_.path.empty()) {
      ::unlink(listen_endpoint_.path.c_str());
    }
    throw;
  }
}

SocketTransport::~SocketTransport() { shutdown(); }

const char* SocketTransport::name() const noexcept {
  if (config_.use_shm) return "shm";
  return config_.kind == Endpoint::Kind::Unix ? "unix" : "tcp";
}

std::vector<int> SocketTransport::node_ids() const {
  if (!config_.topology.empty()) return config_.topology;
  std::vector<int> ids(hostnames_.size(), 0);
  if (config_.use_shm) return ids;  // shm without a map ⇔ one local node
  std::vector<std::string> seen;
  for (std::size_t r = 0; r < hostnames_.size(); ++r) {
    const auto it = std::find(seen.begin(), seen.end(), hostnames_[r]);
    if (it == seen.end()) {
      ids[r] = static_cast<int>(seen.size());
      seen.push_back(hostnames_[r]);
    } else {
      ids[r] = static_cast<int>(it - seen.begin());
    }
  }
  return ids;
}

void SocketTransport::wireup(const SocketConfig& config) {
  trace::Span span("net.wireup", "net");
  // Every rank — including rank 0, whose listener doubles as the
  // rendezvous point — opens its own listener first, so a dialing peer's
  // bounded retries only have to outlast process startup skew.
  Endpoint requested = endpoint_for(config, config.rank);
  listener_ = listen_at(requested, std::max(8, config.np));
  listen_endpoint_ = local_endpoint(listener_, requested);

  if (config.rank == 0) {
    wireup_rank0(config, listen_endpoint_);
  } else {
    wireup_peer(config, listen_endpoint_);
  }
  // Wireup is complete; nobody new should be dialing in. Closing the
  // listener now (not at shutdown) means a stray connection attempt fails
  // fast at the OS level instead of sitting in our backlog forever.
  listener_.close();
  if (config.kind == Endpoint::Kind::Unix) {
    ::unlink(listen_endpoint_.path.c_str());
  }
}

void SocketTransport::wireup_rank0(const SocketConfig& config,
                                   const Endpoint& self) {
  const auto handshake = std::chrono::milliseconds(config.handshake_timeout_ms);
  std::vector<std::string> endpoints(static_cast<std::size_t>(config.np));
  endpoints[0] = self.to_string();

  // Collect one Hello per peer; the rendezvous connection becomes the
  // (0, r) data connection.
  for (int i = 1; i < config.np; ++i) {
    Socket conn = accept_for(listener_, handshake, "rank 0 rendezvous");
    wire::Header header;
    mp::Bytes body;
    if (!recv_frame_for(conn, &header, &body, handshake, "rank 0 rendezvous")) {
      throw ConnectionError(
          "rank 0 rendezvous: peer closed before sending its hello");
    }
    if (header.kind != wire::FrameKind::Hello) {
      throw ProtocolError("rank 0 rendezvous: expected a hello frame, got kind " +
                          std::to_string(static_cast<int>(header.kind)));
    }
    const wire::Hello hello = wire::decode_hello(body);
    if (hello.job != config.job) {
      throw ProtocolError("rank 0 rendezvous: hello from job \"" + hello.job +
                          "\" (this job is \"" + config.job + "\")");
    }
    if (hello.np != config.np) {
      throw ProtocolError("rank 0 rendezvous: peer believes np=" +
                          std::to_string(hello.np) + ", this job has np=" +
                          std::to_string(config.np));
    }
    if (hello.rank < 1 || hello.rank >= config.np) {
      throw ProtocolError("rank 0 rendezvous: hello claims world rank " +
                          std::to_string(hello.rank));
    }
    auto& slot = peers_[static_cast<std::size_t>(hello.rank)];
    if (slot != nullptr) {
      throw ProtocolError("rank 0 rendezvous: duplicate hello for rank " +
                          std::to_string(hello.rank));
    }
    slot = std::make_unique<Peer>();
    slot->rank = hello.rank;
    slot->socket = std::move(conn);
    slot->hostname = hello.hostname;
    endpoints[static_cast<std::size_t>(hello.rank)] = hello.endpoint;
    hostnames_[static_cast<std::size_t>(hello.rank)] = hello.hostname;
  }

  // Everyone registered: publish the map.
  wire::Welcome welcome;
  welcome.peers.reserve(static_cast<std::size_t>(config.np));
  for (int r = 0; r < config.np; ++r) {
    welcome.peers.emplace_back(endpoints[static_cast<std::size_t>(r)],
                               hostnames_[static_cast<std::size_t>(r)]);
  }
  const mp::Bytes body = wire::encode_welcome(welcome);
  mp::Bytes frame = wire::encode_header(wire::FrameKind::Welcome, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  for (int r = 1; r < config.np; ++r) {
    send_all(peers_[static_cast<std::size_t>(r)]->socket, frame, nullptr,
             /*bye_ok=*/false, "rank 0 rendezvous");
  }
}

void SocketTransport::wireup_peer(const SocketConfig& config,
                                  const Endpoint& self) {
  const auto handshake = std::chrono::milliseconds(config.handshake_timeout_ms);
  const auto per_attempt = std::chrono::milliseconds(config.connect_timeout_ms);
  const auto backoff = std::chrono::milliseconds(config.dial_backoff_initial_ms);
  const auto backoff_cap = std::chrono::milliseconds(config.dial_backoff_cap_ms);
  // Jitter is a pure function of the rank, so one rank's retry schedule is
  // replayable while a thundering herd of dialers still decorrelates.
  const auto jitter_key = static_cast<std::uint64_t>(config.rank);

  const auto say_hello = [&](Socket& conn, const char* who) {
    wire::Hello hello;
    hello.job = config.job;
    hello.np = config.np;
    hello.rank = config.rank;
    hello.endpoint = self.to_string();
    hello.hostname = config.hostname;
    const mp::Bytes body = wire::encode_hello(hello);
    mp::Bytes frame = wire::encode_header(wire::FrameKind::Hello, body.size());
    frame.insert(frame.end(), body.begin(), body.end());
    send_all(conn, frame, nullptr, /*bye_ok=*/false, who);
  };

  // 1. Rendezvous with rank 0 and learn the address map.
  trace::Span dial_span("net.connect", "net");
  Socket to_zero = dial(endpoint_for(config, 0), config.dial_attempts,
                        per_attempt, backoff, "rendezvous dial", backoff_cap,
                        jitter_key);
  say_hello(to_zero, "rendezvous dial");
  wire::Header header;
  mp::Bytes body;
  if (!recv_frame_for(to_zero, &header, &body, handshake, "rendezvous dial")) {
    throw ConnectionError("rendezvous: rank 0 closed before the welcome");
  }
  if (header.kind != wire::FrameKind::Welcome) {
    throw ProtocolError("rendezvous: expected a welcome frame, got kind " +
                        std::to_string(static_cast<int>(header.kind)));
  }
  const wire::Welcome welcome = wire::decode_welcome(body);
  if (welcome.peers.size() != static_cast<std::size_t>(config.np)) {
    throw ProtocolError("rendezvous: welcome lists " +
                        std::to_string(welcome.peers.size()) +
                        " ranks, this job has np=" + std::to_string(config.np));
  }
  for (int r = 0; r < config.np; ++r) {
    if (r != config.rank) {
      hostnames_[static_cast<std::size_t>(r)] =
          welcome.peers[static_cast<std::size_t>(r)].second;
    }
  }
  auto& zero = peers_[0];
  zero = std::make_unique<Peer>();
  zero->rank = 0;
  zero->socket = std::move(to_zero);
  zero->hostname = hostnames_[0];

  // 2. Mesh: dial every rank below us (they are already listening — their
  // hello reached rank 0 before our welcome was sent) ...
  for (int j = 1; j < config.rank; ++j) {
    const Endpoint where =
        Endpoint::parse(welcome.peers[static_cast<std::size_t>(j)].first);
    Socket conn = dial(where, config.dial_attempts, per_attempt, backoff,
                       "mesh dial", backoff_cap, jitter_key);
    say_hello(conn, "mesh dial");
    auto& slot = peers_[static_cast<std::size_t>(j)];
    slot = std::make_unique<Peer>();
    slot->rank = j;
    slot->socket = std::move(conn);
    slot->hostname = hostnames_[static_cast<std::size_t>(j)];
  }

  // 3. ... and accept one connection from every rank above us.
  for (int n = config.rank + 1; n < config.np; ++n) {
    Socket conn = accept_for(listener_, handshake, "mesh accept");
    wire::Header h;
    mp::Bytes b;
    if (!recv_frame_for(conn, &h, &b, handshake, "mesh accept")) {
      throw ConnectionError("mesh accept: peer closed before its hello");
    }
    if (h.kind != wire::FrameKind::Hello) {
      throw ProtocolError("mesh accept: expected a hello frame, got kind " +
                          std::to_string(static_cast<int>(h.kind)));
    }
    const wire::Hello hello = wire::decode_hello(b);
    if (hello.job != config.job || hello.np != config.np) {
      throw ProtocolError("mesh accept: hello from a different job");
    }
    if (hello.rank <= config.rank || hello.rank >= config.np) {
      throw ProtocolError("mesh accept: unexpected world rank " +
                          std::to_string(hello.rank));
    }
    auto& slot = peers_[static_cast<std::size_t>(hello.rank)];
    if (slot != nullptr) {
      throw ProtocolError("mesh accept: duplicate connection from rank " +
                          std::to_string(hello.rank));
    }
    slot = std::make_unique<Peer>();
    slot->rank = hello.rank;
    slot->socket = std::move(conn);
    slot->hostname = hello.hostname;
  }
}

SocketTransport::Peer& SocketTransport::peer_for(int world_rank) {
  if (world_rank < 0 || world_rank >= config_.np) {
    throw InvalidArgument("SocketTransport: rank " +
                          std::to_string(world_rank) + " out of range");
  }
  Peer* peer = peers_[static_cast<std::size_t>(world_rank)].get();
  if (peer == nullptr) {
    throw InvalidArgument("SocketTransport: rank " +
                          std::to_string(world_rank) +
                          " is the local rank, not a peer");
  }
  return *peer;
}

void SocketTransport::bind(mp::Universe& universe) {
  universe_ = &universe;
  for (auto& peer : peers_) {
    if (!peer) continue;
    // Bound sends: if a peer stops draining for this long it is treated as
    // lost, so no writer (and therefore no shutdown) can hang forever.
    set_send_timeout(peer->socket, std::max(config_.linger_ms, 1000));
    peer->writer = std::thread([this, p = peer.get()] { writer_loop(*p); });
    peer->reader = std::thread([this, p = peer.get()] { reader_loop(*p); });
  }
  threads_started_ = true;
  // Install the shm progress engine and start its backstop pump only once
  // the mailbox exists; the socket readers above may already be delivering,
  // which is fine — deliver kicks the engine once it is installed.
  if (shm_) shm_->bind(universe);
}

void SocketTransport::deliver(int dest_world_rank, mp::Envelope envelope) {
  // The socket boundary is a chaos checkpoint: a hostile plan can kill the
  // sending rank right here, mid-collective, the way a real node dies.
  chaos::on_op("net.send");
  Peer& peer = peer_for(dest_world_rank);
  if (peer.dead.load(std::memory_order_acquire)) {
    throw PeerLost("net: rank " + std::to_string(dest_world_rank) +
                   " is gone: " + postmortem());
  }
  wire::DataFrame frame = wire::encode_data(envelope, dest_world_rank);
  if (trace::enabled()) {
    trace::Counter("net.bytes_sent")
        .add(static_cast<double>(frame.head.size() + envelope.size_bytes()));
    trace::Counter("net.frames_sent").add(1.0);
  }
  if (shm_ && shm_->has_peer(dest_world_rank)) {
    // Co-located peer: the whole Data frame goes through the shm ring — one
    // staging copy into shared memory, written by this (the program's) own
    // thread. Every Data frame for this peer takes this path, so the
    // per-source FIFO guarantee is carried by the ring's byte order exactly
    // as the socket's stream order used to carry it.
    shm_->send_data(dest_world_rank, frame);
    return;
  }
  {
    std::lock_guard lock(peer.mutex);
    peer.outbox.push_back(std::move(frame));
  }
  peer.cv.notify_one();
}

void SocketTransport::enqueue_control(Peer& peer, wire::FrameKind kind) {
  wire::DataFrame frame;
  frame.head = wire::encode_header(kind, 0);
  {
    std::lock_guard lock(peer.mutex);
    // Control frames (Abort) overtake queued data: waking a blocked peer
    // must not wait behind a fat payload.
    peer.outbox.push_front(std::move(frame));
  }
  peer.cv.notify_one();
}

void SocketTransport::writer_loop(Peer& peer) {
  trace::Span span("net.writer", "net");
  for (;;) {
    wire::DataFrame frame;
    bool closing = false;
    {
      std::unique_lock lock(peer.mutex);
      peer.cv.wait(lock, [&] { return !peer.outbox.empty() || peer.closing; });
      if (peer.outbox.empty()) {
        closing = true;
      } else {
        frame = std::move(peer.outbox.front());
        peer.outbox.pop_front();
      }
    }
    if (closing) break;
    if (peer.dead.load(std::memory_order_acquire)) continue;  // drain & drop
    try {
      trace::Span send_span("net.send", "net");
      send_span.set_bytes(static_cast<std::int64_t>(
          frame.head.size() + (frame.payload ? frame.payload->size() : 0)));
      send_all(peer.socket, frame.head, frame.payload, /*bye_ok=*/false,
               "net writer");
    } catch (const Error& error) {
      on_peer_lost(peer, error.what());
    }
  }
  // Clean goodbye, then half-close: bytes already written (including the
  // Bye) still reach the peer, and its reader sees an orderly end.
  if (!peer.dead.load(std::memory_order_acquire)) {
    mp::Bytes bye = wire::encode_header(wire::FrameKind::Bye, 0);
    send_all(peer.socket, bye, nullptr, /*bye_ok=*/true, "net writer");
  }
  if (peer.socket.valid()) ::shutdown(peer.socket.fd(), SHUT_WR);
}

void SocketTransport::reader_loop(Peer& peer) {
  // Faults a chaos plan injects at this boundary (delays, reorders, bounded
  // drops inside Mailbox::deliver) must key off the receiving rank's
  // deterministic stream, whichever thread carries them.
  chaos::ActorScope actor(config_.rank);
  const int local = config_.rank;
  try {
    for (;;) {
      wire::Header header;
      mp::Bytes body;
      if (!recv_frame(peer.socket, &header, &body, "net reader")) {
        // Clean EOF. After a Bye (or during our own teardown) this is the
        // normal end of the connection; otherwise the peer vanished.
        if (!peer.saw_bye.load(std::memory_order_acquire) &&
            !shutting_down_.load(std::memory_order_acquire)) {
          on_peer_lost(peer, "net: rank " + std::to_string(peer.rank) +
                                 " closed without a goodbye (crashed?)");
        }
        return;
      }
      switch (header.kind) {
        case wire::FrameKind::Data: {
          mp::Envelope envelope = wire::decode_data(body, local);
          if (trace::enabled()) {
            trace::Counter("net.bytes_recv")
                .add(static_cast<double>(wire::kHeaderBytes + body.size()));
            trace::Counter("net.frames_recv").add(1.0);
          }
          universe_->mailbox(local).deliver(std::move(envelope));
          break;
        }
        case wire::FrameKind::Abort:
          // A peer's job died; wake our blocked receivers. universe_
          // suppresses infinite re-propagation.
          trace::instant("net.remote_abort", "net");
          universe_->abort();
          break;
        case wire::FrameKind::Bye:
          peer.saw_bye.store(true, std::memory_order_release);
          // A clean goodbye also retires the peer's shm channel: later
          // sends to it are silently dropped (the socket writer's
          // drain-and-drop teardown semantics). The peer stopped its ring
          // pump *before* sending this Bye, so no torn record can be left
          // behind by an abandoned producer.
          if (shm_) shm_->mark_peer_closed(peer.rank);
          // Nothing follows a Bye by protocol; exit without waiting for
          // the EOF so two ranks tearing down simultaneously never wait on
          // each other's close.
          return;
        default:
          throw ProtocolError("net reader: unexpected frame kind " +
                              std::to_string(static_cast<int>(header.kind)) +
                              " mid-job");
      }
    }
  } catch (const Error& error) {
    on_peer_lost(peer, error.what());
  }
}

void SocketTransport::on_peer_lost(Peer& peer, const std::string& why) {
  peer.dead.store(true, std::memory_order_release);
  // The socket EOF-without-Bye is the shm backend's death detector too:
  // poison the rings so blocked shm producers/pumps wake and see it.
  if (shm_) shm_->mark_peer_dead(peer.rank);
  {
    std::lock_guard lock(postmortem_mutex_);
    if (postmortem_.empty()) postmortem_ = why;
  }
  if (shutting_down_.load(std::memory_order_acquire)) return;
  trace::instant("net.peer_lost", "net");
  // Turn the loss into a job abort so blocked receives throw instead of
  // waiting for a message that can never arrive.
  if (universe_ != nullptr) universe_->abort();
}

void SocketTransport::propagate_abort() noexcept {
  if (abort_sent_.exchange(true)) return;
  // Poison the shm segments first: a peer blocked inside a ring wait wakes
  // on the doorbell immediately, possibly before its socket reader even
  // sees our Abort frame.
  if (shm_) shm_->local_abort();
  try {
    for (auto& peer : peers_) {
      if (peer && !peer->dead.load(std::memory_order_acquire)) {
        enqueue_control(*peer, wire::FrameKind::Abort);
      }
    }
  } catch (...) {
    // Waking peers is best-effort; the launcher's heartbeat is the backstop.
  }
}

void SocketTransport::shutdown() noexcept {
  if (shutting_down_.exchange(true)) {
    // Second call (e.g. ~SocketTransport after ~Universe already shut us
    // down): everything below already ran to completion.
    return;
  }
  // Stop the shm pump *before* any socket Bye goes out. Order matters: a
  // peer that reads our Bye may abandon a send into our ring mid-record
  // (drain-and-drop), and that is only safe because nothing on our side
  // will ever try to parse the ring again. The segments stay mapped until
  // destruction — the reader threads below still flip channel flags.
  if (shm_) shm_->shutdown();
  // Ask every writer to drain its outbox and say goodbye.
  for (auto& peer : peers_) {
    if (!peer) continue;
    {
      std::lock_guard lock(peer->mutex);
      peer->closing = true;
    }
    peer->cv.notify_all();
  }
  if (threads_started_) {
    // Writers finish within the send-timeout bound; readers exit on the
    // peers' Bye/EOF. A peer that never says goodbye is cut off after the
    // linger budget by shutting the socket down under its reader.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(config_.linger_ms);
    for (auto& peer : peers_) {
      if (!peer) continue;
      if (peer->writer.joinable()) peer->writer.join();
    }
    for (auto& peer : peers_) {
      if (!peer) continue;
      while (peer->reader.joinable() &&
             std::chrono::steady_clock::now() < deadline) {
        // The reader exits on Bye, EOF, or error; poke it once per tick so
        // a straggler is bounded by the deadline, not by the peer.
        if (peer->saw_bye.load(std::memory_order_acquire) ||
            peer->dead.load(std::memory_order_acquire)) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      peer->socket.shutdown_both();  // unblocks a reader still in recv()
      if (peer->reader.joinable()) peer->reader.join();
    }
  }
  for (auto& peer : peers_) {
    if (peer) peer->socket.close();
  }
  listener_.close();
  if (config_.kind == Endpoint::Kind::Unix && !listen_endpoint_.path.empty()) {
    ::unlink(listen_endpoint_.path.c_str());
  }
}

std::string SocketTransport::postmortem() const {
  {
    std::lock_guard lock(postmortem_mutex_);
    if (!postmortem_.empty()) return postmortem_;
  }
  return shm_ ? shm_->postmortem() : std::string{};
}

void SocketTransport::debug_sever_peer(int peer_rank) {
  peer_for(peer_rank).socket.shutdown_both();
}

}  // namespace pdc::net
