#include "patterns/taxonomy.hpp"

namespace pdc::patterns {

std::string to_string(Paradigm paradigm) {
  switch (paradigm) {
    case Paradigm::SharedMemory: return "shared memory";
    case Paradigm::MessagePassing: return "message passing";
  }
  return "?";
}

std::string to_string(PatternCategory category) {
  switch (category) {
    case PatternCategory::ProgramStructure: return "program structure";
    case PatternCategory::DataDecomposition: return "data decomposition";
    case PatternCategory::Communication: return "communication";
    case PatternCategory::Coordination: return "coordination";
    case PatternCategory::AntiPattern: return "anti-pattern";
  }
  return "?";
}

std::string to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::SPMD: return "single program, multiple data";
    case Pattern::ForkJoin: return "fork-join";
    case Pattern::ParallelLoopEqualChunks: return "parallel loop, equal chunks";
    case Pattern::ParallelLoopChunksOf1: return "parallel loop, chunks of 1";
    case Pattern::DynamicLoopSchedule: return "dynamic loop schedule";
    case Pattern::Reduction: return "reduction";
    case Pattern::PrivateVariable: return "private variable";
    case Pattern::RaceCondition: return "race condition";
    case Pattern::MutualExclusion: return "mutual exclusion";
    case Pattern::AtomicOperation: return "atomic operation";
    case Pattern::Barrier: return "barrier";
    case Pattern::MasterWorker: return "master-worker";
    case Pattern::Sections: return "sections";
    case Pattern::MessagePassing: return "message passing";
    case Pattern::Broadcast: return "broadcast";
    case Pattern::Scatter: return "scatter";
    case Pattern::Gather: return "gather";
    case Pattern::TaggedMessages: return "tagged messages";
    case Pattern::RingPass: return "ring pass";
  }
  return "?";
}

PatternCategory category_of(Pattern pattern) {
  switch (pattern) {
    case Pattern::SPMD:
    case Pattern::ForkJoin:
    case Pattern::MasterWorker:
    case Pattern::Sections:
      return PatternCategory::ProgramStructure;
    case Pattern::ParallelLoopEqualChunks:
    case Pattern::ParallelLoopChunksOf1:
    case Pattern::DynamicLoopSchedule:
    case Pattern::Scatter:
    case Pattern::Gather:
      return PatternCategory::DataDecomposition;
    case Pattern::MessagePassing:
    case Pattern::Broadcast:
    case Pattern::TaggedMessages:
    case Pattern::RingPass:
      return PatternCategory::Communication;
    case Pattern::Reduction:
    case Pattern::PrivateVariable:
    case Pattern::MutualExclusion:
    case Pattern::AtomicOperation:
    case Pattern::Barrier:
      return PatternCategory::Coordination;
    case Pattern::RaceCondition:
      return PatternCategory::AntiPattern;
  }
  return PatternCategory::ProgramStructure;
}

std::string definition_of(Pattern pattern) {
  switch (pattern) {
    case Pattern::SPMD:
      return "every process/thread runs the same program, acting on its own "
             "id and data";
    case Pattern::ForkJoin:
      return "a sequential flow forks a team of workers and joins them back "
             "before continuing";
    case Pattern::ParallelLoopEqualChunks:
      return "loop iterations are divided into one contiguous block per "
             "worker";
    case Pattern::ParallelLoopChunksOf1:
      return "loop iterations are dealt out round-robin, one at a time";
    case Pattern::DynamicLoopSchedule:
      return "workers grab the next chunk of iterations as they become free, "
             "balancing uneven work";
    case Pattern::Reduction:
      return "per-worker partial results are combined with an associative "
             "operation into one value";
    case Pattern::PrivateVariable:
      return "each worker gets its own copy of a variable so updates do not "
             "collide";
    case Pattern::RaceCondition:
      return "two or more threads update a shared variable without "
             "coordination, losing updates nondeterministically";
    case Pattern::MutualExclusion:
      return "a critical section ensures only one thread at a time touches a "
             "shared resource";
    case Pattern::AtomicOperation:
      return "a hardware-indivisible update protects a single shared memory "
             "location";
    case Pattern::Barrier:
      return "no worker proceeds past the barrier until all have arrived";
    case Pattern::MasterWorker:
      return "one coordinator hands out work to and collects results from "
             "the other workers";
    case Pattern::Sections:
      return "independent tasks are each assigned to a different worker";
    case Pattern::MessagePassing:
      return "processes with separate memories cooperate by sending and "
             "receiving messages";
    case Pattern::Broadcast:
      return "one process sends the same data to every other process";
    case Pattern::Scatter:
      return "one process splits a data set and sends each piece to a "
             "different process";
    case Pattern::Gather:
      return "every process sends its piece to one process, which reassembles "
             "the whole";
    case Pattern::TaggedMessages:
      return "message tags let a receiver distinguish kinds of messages from "
             "the same sender";
    case Pattern::RingPass:
      return "each process receives from its left neighbor and sends to its "
             "right, around a ring";
  }
  return "?";
}

const std::vector<Pattern>& all_patterns() {
  static const std::vector<Pattern> kAll = {
      Pattern::SPMD,
      Pattern::ForkJoin,
      Pattern::ParallelLoopEqualChunks,
      Pattern::ParallelLoopChunksOf1,
      Pattern::DynamicLoopSchedule,
      Pattern::Reduction,
      Pattern::PrivateVariable,
      Pattern::RaceCondition,
      Pattern::MutualExclusion,
      Pattern::AtomicOperation,
      Pattern::Barrier,
      Pattern::MasterWorker,
      Pattern::Sections,
      Pattern::MessagePassing,
      Pattern::Broadcast,
      Pattern::Scatter,
      Pattern::Gather,
      Pattern::TaggedMessages,
      Pattern::RingPass,
  };
  return kAll;
}

}  // namespace pdc::patterns
