#pragma once

#include <string>
#include <vector>

namespace pdc::patterns {

/// Which programming model a patternlet teaches (the paper's two modules).
enum class Paradigm {
  SharedMemory,    ///< module 1: OpenMP-style multithreading on the Pi
  MessagePassing,  ///< module 2: MPI/mpi4py-style multiprocessing
};

std::string to_string(Paradigm paradigm);

/// Level of the OPL-inspired hierarchy a pattern belongs to.
enum class PatternCategory {
  ProgramStructure,   ///< how the computation is organized (SPMD, fork-join)
  DataDecomposition,  ///< how data/iterations are divided
  Communication,      ///< how processes exchange data
  Coordination,       ///< how activities synchronize
  AntiPattern,        ///< what can go wrong (race conditions)
};

std::string to_string(PatternCategory category);

/// The parallel design patterns the patternlets illustrate — the working
/// vocabulary of "parallel thinking" that Adams' patternlets paper distills
/// from the Berkeley/Intel OPL project.
enum class Pattern {
  SPMD,
  ForkJoin,
  ParallelLoopEqualChunks,
  ParallelLoopChunksOf1,
  DynamicLoopSchedule,
  Reduction,
  PrivateVariable,
  RaceCondition,
  MutualExclusion,
  AtomicOperation,
  Barrier,
  MasterWorker,
  Sections,
  MessagePassing,
  Broadcast,
  Scatter,
  Gather,
  TaggedMessages,
  RingPass,
};

std::string to_string(Pattern pattern);

/// Category of each pattern in the hierarchy.
PatternCategory category_of(Pattern pattern);

/// One-sentence teaching definition shown by the courseware glossary.
std::string definition_of(Pattern pattern);

/// Every Pattern enumerator, in declaration order.
const std::vector<Pattern>& all_patterns();

}  // namespace pdc::patterns
