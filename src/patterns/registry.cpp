#include "patterns/registry.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pdc::patterns {

void Registry::add(Patternlet patternlet) {
  if (contains(patternlet.info().id)) {
    throw InvalidArgument("Registry: duplicate patternlet id '" +
                          patternlet.info().id + "'");
  }
  items_.push_back(std::make_unique<Patternlet>(std::move(patternlet)));
}

bool Registry::contains(const std::string& id) const {
  for (const auto& item : items_) {
    if (item->info().id == id) return true;
  }
  return false;
}

const Patternlet& Registry::at(const std::string& id) const {
  for (const auto& item : items_) {
    if (item->info().id == id) return *item;
  }
  throw NotFound("Registry: no patternlet with id '" + id + "'");
}

namespace {
std::vector<const Patternlet*> sorted_by_id(std::vector<const Patternlet*> v) {
  std::sort(v.begin(), v.end(), [](const Patternlet* a, const Patternlet* b) {
    return a->info().id < b->info().id;
  });
  return v;
}
}  // namespace

std::vector<const Patternlet*> Registry::all() const {
  std::vector<const Patternlet*> v;
  v.reserve(items_.size());
  for (const auto& item : items_) v.push_back(item.get());
  return sorted_by_id(std::move(v));
}

std::vector<const Patternlet*> Registry::by_paradigm(Paradigm p) const {
  std::vector<const Patternlet*> v;
  for (const auto& item : items_) {
    if (item->info().paradigm == p) v.push_back(item.get());
  }
  return sorted_by_id(std::move(v));
}

std::vector<const Patternlet*> Registry::by_pattern(Pattern pattern) const {
  std::vector<const Patternlet*> v;
  for (const auto& item : items_) {
    const auto& pats = item->info().patterns;
    if (std::find(pats.begin(), pats.end(), pattern) != pats.end()) {
      v.push_back(item.get());
    }
  }
  return sorted_by_id(std::move(v));
}

}  // namespace pdc::patterns
