#include "patterns/patternlet.hpp"

#include "support/error.hpp"

namespace pdc::patterns {

void OutputLog::println(std::string line) {
  std::lock_guard lock(mutex_);
  lines_.push_back(std::move(line));
}

std::vector<std::string> OutputLog::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

Patternlet::Patternlet(PatternletInfo info, Body body)
    : info_(std::move(info)), body_(std::move(body)) {
  if (info_.id.empty()) throw InvalidArgument("Patternlet: id required");
  if (!body_) throw InvalidArgument("Patternlet: body required");
}

std::vector<std::string> Patternlet::run(const RunOptions& options) const {
  OutputLog log;
  body_(options, log);
  return log.lines();
}

}  // namespace pdc::patterns
