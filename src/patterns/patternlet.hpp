#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "patterns/taxonomy.hpp"

namespace pdc::patterns {

/// Thread-safe line collector: the "console" that a patternlet's threads or
/// ranks print to, so a run's output can be captured, displayed by the
/// courseware/notebook, and asserted on by tests.
class OutputLog {
 public:
  /// Append one line (atomic with respect to other appenders).
  void println(std::string line);

  /// Snapshot of lines in arrival order.
  [[nodiscard]] std::vector<std::string> lines() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// Knobs for one patternlet run: the values a learner passes to
/// OMP_NUM_THREADS or `mpirun -np`.
struct RunOptions {
  std::size_t num_threads = 4;  ///< shared-memory team size
  int num_procs = 4;            ///< message-passing rank count
  std::uint64_t seed = 42;      ///< for patternlets with random workloads
};

/// Static description of a patternlet: everything the courseware shows a
/// learner *before* they run it.
struct PatternletInfo {
  std::string id;           ///< stable key, e.g. "omp/00-spmd"
  std::string title;        ///< display title, e.g. "SPMD: hello from threads"
  Paradigm paradigm = Paradigm::SharedMemory;
  std::vector<Pattern> patterns;  ///< patterns this patternlet illustrates
  std::string description;        ///< expository paragraph from the handout
  std::string source_listing;     ///< the short teaching code shown verbatim
};

/// A runnable patternlet: metadata plus an executable body whose printed
/// lines are captured and returned.
class Patternlet {
 public:
  using Body = std::function<void(const RunOptions&, OutputLog&)>;

  Patternlet(PatternletInfo info, Body body);

  [[nodiscard]] const PatternletInfo& info() const noexcept { return info_; }

  /// Execute the patternlet and return everything it printed, in the order
  /// it was printed. Interleaving across threads/ranks is real — observing
  /// the nondeterminism is part of the lesson.
  [[nodiscard]] std::vector<std::string> run(const RunOptions& options) const;

 private:
  PatternletInfo info_;
  Body body_;
};

}  // namespace pdc::patterns
