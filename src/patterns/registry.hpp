#pragma once

#include <memory>
#include <vector>

#include "patterns/patternlet.hpp"

namespace pdc::patterns {

/// Catalog of patternlets, keyed by id.
///
/// The patternlets library registers the full CSinParallel-style collection
/// via `pdc::patternlets::register_all(...)`; the courseware, notebook,
/// examples and tests all look patternlets up here.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register a patternlet; throws pdc::InvalidArgument on duplicate id.
  void add(Patternlet patternlet);

  /// True if `id` is registered.
  [[nodiscard]] bool contains(const std::string& id) const;

  /// Look up by id; throws pdc::NotFound.
  [[nodiscard]] const Patternlet& at(const std::string& id) const;

  /// All patternlets sorted by id.
  [[nodiscard]] std::vector<const Patternlet*> all() const;

  /// All patternlets of one paradigm, sorted by id.
  [[nodiscard]] std::vector<const Patternlet*> by_paradigm(Paradigm p) const;

  /// All patternlets that illustrate `pattern`, sorted by id.
  [[nodiscard]] std::vector<const Patternlet*> by_pattern(Pattern pattern) const;

  /// Number of registered patternlets.
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

 private:
  std::vector<std::unique_ptr<Patternlet>> items_;
};

}  // namespace pdc::patterns
