#include "assessment/workshop.hpp"

namespace pdc::assessment {

namespace {

std::vector<Participant> make_participants() {
  using R = Participant::Role;
  using T = Participant::Track;
  using G = Participant::Gender;
  using L = Participant::Location;

  // 22 participants matching every reported marginal:
  // roles 19 faculty / 3 grad; tracks 10 TT / 9 NTT / 3 grad;
  // gender 17 M / 4 F / 1 other; locations 19 US / 1 PR / 2 intl.
  std::vector<Participant> people;
  int id = 1;
  const auto add = [&](R role, T track, G gender, L loc) {
    people.push_back(Participant{id++, role, track, gender, loc});
  };

  // Tenure-track faculty (10): 8 male, 2 female; 9 US, 1 international.
  for (int i = 0; i < 8; ++i) {
    add(R::Faculty, T::TenureTrack, G::Male,
        i == 0 ? L::International : L::ContinentalUS);
  }
  add(R::Faculty, T::TenureTrack, G::Female, L::ContinentalUS);
  add(R::Faculty, T::TenureTrack, G::Female, L::ContinentalUS);

  // Non-tenure-track faculty (9): 7 male, 1 female, 1 other;
  // 7 US, 1 Puerto Rico, 1 international.
  for (int i = 0; i < 7; ++i) {
    add(R::Faculty, T::NonTenureTrack, G::Male,
        i == 0 ? L::PuertoRico
               : (i == 1 ? L::International : L::ContinentalUS));
  }
  add(R::Faculty, T::NonTenureTrack, G::Female, L::ContinentalUS);
  add(R::Faculty, T::NonTenureTrack, G::Other, L::ContinentalUS);

  // Graduate students (3): 2 male, 1 female; all US.
  add(R::GradStudent, T::GradStudent, G::Male, L::ContinentalUS);
  add(R::GradStudent, T::GradStudent, G::Male, L::ContinentalUS);
  add(R::GradStudent, T::GradStudent, G::Female, L::ContinentalUS);

  return people;
}

}  // namespace

WorkshopEvaluation::WorkshopEvaluation()
    : openmp_courses_("tab2_openmp_a",
                      "How useful was the 'OpenMP on Raspberry Pi' session "
                      "for implementing PDC in your courses?",
                      LikertScale::usefulness()),
      openmp_development_("tab2_openmp_b",
                          "How useful was the 'OpenMP on Raspberry Pi' "
                          "session for your professional development?",
                          LikertScale::usefulness()),
      mpi_courses_("tab2_mpi_a",
                   "How useful was the 'MPI & Distributed Cluster Computing' "
                   "session for implementing PDC in your courses?",
                   LikertScale::usefulness()),
      mpi_development_("tab2_mpi_b",
                       "How useful was the 'MPI & Distributed Cluster "
                       "Computing' session for your professional development?",
                       LikertScale::usefulness()),
      confidence_pre_("fig3_pre",
                      "Indicate your current level of confidence in "
                      "implementing PDC topics in your courses. (pre)",
                      LikertScale::confidence()),
      confidence_post_("fig3_post",
                       "Indicate your current level of confidence in "
                       "implementing PDC topics in your courses. (post)",
                       LikertScale::confidence()),
      preparedness_pre_("fig4_pre",
                        "How prepared do you feel to successfully implement "
                        "PDC topics in your courses? (pre)",
                        LikertScale::preparedness()),
      preparedness_post_("fig4_post",
                         "How prepared do you feel to successfully implement "
                         "PDC topics in your courses? (post)",
                         LikertScale::preparedness()) {
  participants_ = make_participants();

  // ---- Table II ---------------------------------------------------------
  // OpenMP/Pi session, n = 22:
  //   (A) twelve 5s + ten 4s  -> 100/22 = 4.5455 -> 4.55
  //   (B) ten 5s + twelve 4s  ->  98/22 = 4.4545 -> 4.45
  openmp_courses_.add_responses(
      {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4});
  openmp_development_.add_responses(
      {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4});

  // MPI & cluster session, n = 21 (one participant skipped the item; the
  // reported means 4.38 and 4.29 are unreachable with integer responses at
  // n = 22 but exact at n = 21):
  //   (A) eight 5s + thirteen 4s -> 92/21 = 4.3810 -> 4.38
  //   (B) six 5s + fifteen 4s    -> 90/21 = 4.2857 -> 4.29
  mpi_courses_.add_responses(
      {5, 5, 5, 5, 5, 5, 5, 5, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4});
  mpi_development_.add_responses(
      {5, 5, 5, 5, 5, 5, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4});

  // ---- Fig. 3: confidence (paired; element i is participant i) ----------
  // Pre histogram  [2, 7, 7, 5, 1] -> sum  62 -> mean 2.8182 -> 2.82
  // Post histogram [0, 3, 8, 6, 5] -> sum  79 -> mean 3.5909 -> 3.59
  // Differences {-1 x1, 0 x7, +1 x11, +2 x2, +3 x1}: t(21) = 4.17,
  // p = 4.4e-4 — matching the paper's p = 0.0004.
  const int conf_pre[] = {1, 1, 2, 2, 2, 2, 2, 2, 2, 3, 3,
                          3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 5};
  const int conf_post[] = {2, 3, 2, 2, 3, 3, 3, 4, 5, 3, 3,
                           3, 4, 4, 4, 4, 3, 4, 5, 5, 5, 5};
  confidence_pre_.add_responses(
      std::vector<int>(std::begin(conf_pre), std::end(conf_pre)));
  confidence_post_.add_responses(
      std::vector<int>(std::begin(conf_post), std::end(conf_post)));

  // ---- Fig. 4: preparedness (paired) -------------------------------------
  // Pre histogram  [3, 8, 6, 5, 0] -> sum 57 -> mean 2.5909 -> 2.59
  // Post histogram [0, 2, 6, 9, 5] -> sum 83 -> mean 3.7727 -> 3.77
  // Differences {0 x3, +1 x13, +2 x5, +3 x1}: t(21) = 7.6, p ~= 1e-7 —
  // the same order of magnitude as the paper's p = 4.18e-8.
  const int prep_pre[] = {1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2,
                          3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4};
  const int prep_post[] = {2, 3, 4, 2, 3, 3, 3, 3, 4, 4, 4,
                           3, 4, 4, 4, 4, 5, 4, 5, 5, 5, 5};
  preparedness_pre_.add_responses(
      std::vector<int>(std::begin(prep_pre), std::end(prep_pre)));
  preparedness_post_.add_responses(
      std::vector<int>(std::begin(prep_post), std::end(prep_post)));
}

WorkshopEvaluation WorkshopEvaluation::july_2020() {
  return WorkshopEvaluation();
}

}  // namespace pdc::assessment
