#include "assessment/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace pdc::assessment {

void Welford::add(double value) noexcept {
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan/Golub/LeVeque pairwise update.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::mean() const {
  if (n_ == 0) throw InvalidArgument("mean: empty sample");
  return mean_;
}

double Welford::sample_variance() const {
  if (n_ < 2) {
    throw InvalidArgument("sample_variance: need at least two values");
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::sample_stddev() const { return std::sqrt(sample_variance()); }

double Welford::min() const {
  if (n_ == 0) throw InvalidArgument("min: empty sample");
  return min_;
}

double Welford::max() const {
  if (n_ == 0) throw InvalidArgument("max: empty sample");
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(lo < hi)) {
    throw InvalidArgument("Histogram: requires lo < hi");
  }
  if (bins < 1) {
    throw InvalidArgument("Histogram: requires at least one bucket");
  }
  counts_.assign(bins, 0);
}

std::size_t Histogram::bucket_of(double value) const noexcept {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(bin, counts_.size() - 1);
}

void Histogram::add(double value) noexcept {
  ++counts_[bucket_of(value)];
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw InvalidArgument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
}

std::uint64_t Histogram::bin_count(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw InvalidArgument("Histogram: bucket index out of range");
  }
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw InvalidArgument("Histogram: bucket index out of range");
  }
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::value_at_rank(std::uint64_t rank) const {
  if (rank >= count_) {
    throw InvalidArgument("Histogram: rank out of range");
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank < seen) return bin_center(i);
  }
  return bin_center(counts_.size() - 1);  // unreachable: counts sum to count_
}

double Histogram::median() const {
  if (count_ == 0) throw InvalidArgument("median: empty sample");
  if (count_ % 2 == 1) return value_at_rank(count_ / 2);
  return (value_at_rank(count_ / 2 - 1) + value_at_rank(count_ / 2)) / 2.0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) throw InvalidArgument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) {
    throw InvalidArgument("quantile: q must be in [0, 1]");
  }
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  return value_at_rank(std::min(rank, count_ - 1));
}

std::string Histogram::to_text() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << "[" << lo_ + static_cast<double>(i) * width_ << ", "
        << lo_ + static_cast<double>(i + 1) * width_ << "): " << counts_[i]
        << "\n";
  }
  return out.str();
}

Fallible<Description> describe(const std::vector<double>& values) {
  Fallible<Description> out;
  try {
    out.value.n = values.size();
    out.value.mean = mean(values);
    out.value.sample_variance = sample_variance(values);
    out.value.median = median(values);
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    out.value.min = *lo;
    out.value.max = *hi;
  } catch (const Error& error) {
    out.error = error.what();
  }
  return out;
}

Fallible<PairedTTest> try_paired_t_test(const std::vector<double>& pre,
                                        const std::vector<double>& post) {
  Fallible<PairedTTest> out;
  try {
    out.value = paired_t_test(pre, post);
  } catch (const Error& error) {
    out.error = error.what();
  }
  return out;
}

Fallible<WelchTTest> try_welch_t_test(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  Fallible<WelchTTest> out;
  try {
    out.value = welch_t_test(a, b);
  } catch (const Error& error) {
    out.error = error.what();
  }
  return out;
}

}  // namespace pdc::assessment
