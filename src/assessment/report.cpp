#include "assessment/report.hpp"

#include <cmath>

#include "assessment/stats.hpp"
#include "support/bar_chart.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace pdc::assessment {

std::string render_table_ii(const WorkshopEvaluation& eval) {
  TextTable table({"Session", "(A)", "(B)"});
  table.set_align(1, Align::Right);
  table.set_align(2, Align::Right);
  table.add_row({"OpenMP on Raspberry Pi",
                 strings::fixed(eval.openmp_usefulness_courses().mean_2dp(), 2),
                 strings::fixed(eval.openmp_usefulness_development().mean_2dp(), 2)});
  table.add_row({"MPI & Distr. Cluster Computing",
                 strings::fixed(eval.mpi_usefulness_courses().mean_2dp(), 2),
                 strings::fixed(eval.mpi_usefulness_development().mean_2dp(), 2)});
  std::string out =
      "TABLE II: How useful was each session for (A) implementing PDC in "
      "your courses; (B) your professional development?\n";
  out += table.render();
  return out;
}

namespace {

std::string render_pre_post_figure(const std::string& caption,
                                   const LikertItem& pre,
                                   const LikertItem& post) {
  std::vector<std::string> categories(pre.scale().labels.begin(),
                                      pre.scale().labels.end());
  BarChart chart(categories);
  chart.set_title(caption);

  const auto to_doubles = [](const std::array<int, 5>& counts) {
    return std::vector<double>(counts.begin(), counts.end());
  };
  chart.add_series({"Pre-Survey", to_doubles(pre.histogram())});
  chart.add_series({"Post-Survey", to_doubles(post.histogram())});

  const PairedTTest test = paired_t_test(pre.as_doubles(), post.as_doubles());
  char stats_line[160];
  std::snprintf(stats_line, sizeof(stats_line),
                "paired t-test: pre_m = %.2f, post_m = %.2f, t(%d) = %.2f, "
                "p = %.3g\n",
                test.mean_pre, test.mean_post, static_cast<int>(test.df),
                test.t, test.p_two_tailed);
  return chart.render() + stats_line;
}

}  // namespace

std::string render_figure_3(const WorkshopEvaluation& eval) {
  return render_pre_post_figure(
      "Fig. 3: Indicate your current level of confidence in implementing "
      "PDC topics in your courses.",
      eval.confidence_pre(), eval.confidence_post());
}

std::string render_figure_4(const WorkshopEvaluation& eval) {
  return render_pre_post_figure(
      "Fig. 4: How prepared do you feel to successfully implement PDC "
      "topics in your courses?",
      eval.preparedness_pre(), eval.preparedness_post());
}

std::string render_demographics(const WorkshopEvaluation& eval) {
  const auto& people = eval.participants();
  const double n = static_cast<double>(people.size());

  int faculty = 0, grad = 0, tt = 0, ntt = 0;
  int male = 0, female = 0, other = 0;
  int us = 0, pr = 0, intl = 0;
  for (const auto& p : people) {
    faculty += p.role == Participant::Role::Faculty;
    grad += p.role == Participant::Role::GradStudent;
    tt += p.track == Participant::Track::TenureTrack;
    ntt += p.track == Participant::Track::NonTenureTrack;
    male += p.gender == Participant::Gender::Male;
    female += p.gender == Participant::Gender::Female;
    other += p.gender == Participant::Gender::Other;
    us += p.location == Participant::Location::ContinentalUS;
    pr += p.location == Participant::Location::PuertoRico;
    intl += p.location == Participant::Location::International;
  }
  const auto pct = [&](int count) {
    return std::to_string(
               static_cast<int>(std::round(100.0 * count / n))) + "%";
  };

  std::string out = "Workshop participants: " +
                    std::to_string(people.size()) + "\n";
  out += "  roles:    " + pct(faculty) + " faculty, " + pct(grad) +
         " graduate students\n";
  out += "  tracks:   " + pct(tt) + " tenured/tenure-track, " + pct(ntt) +
         " non-tenure-track, " + pct(grad) + " graduate students\n";
  out += "  gender:   " + pct(male) + " male, " + pct(female) + " female, " +
         pct(other) + " other\n";
  out += "  location: " + std::to_string(us) + " continental US, " +
         std::to_string(pr) + " Puerto Rico, " + std::to_string(intl) +
         " international\n";
  return out;
}

}  // namespace pdc::assessment
