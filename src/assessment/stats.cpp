#include "assessment/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace pdc::assessment {

double mean(const std::vector<double>& values) {
  if (values.empty()) throw InvalidArgument("mean: empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sample_variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    throw InvalidArgument("sample_variance: need at least two values");
  }
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(values.size() - 1);
}

double sample_stddev(const std::vector<double>& values) {
  return std::sqrt(sample_variance(values));
}

double median(std::vector<double> values) {
  if (values.empty()) throw InvalidArgument("median: empty sample");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double ln_gamma(double x) {
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoeffs[] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - ln_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoeffs[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {

/// Continued fraction for the incomplete beta function (Lentz's algorithm).
double beta_cont_frac(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw InvalidArgument("incomplete_beta: a and b must be positive");
  }
  if (x < 0.0 || x > 1.0) {
    throw InvalidArgument("incomplete_beta: x must be in [0, 1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to stay in the rapidly converging region.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cont_frac(a, b, x) / a;
  }
  return 1.0 - std::exp(ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) +
                        b * std::log(1.0 - x) + a * std::log(x)) *
                   beta_cont_frac(b, a, 1.0 - x) / b;
}

double t_two_tailed_p(double t, double df) {
  if (df <= 0.0) throw InvalidArgument("t_two_tailed_p: df must be positive");
  return incomplete_beta(df / 2.0, 0.5, df / (df + t * t));
}

PairedTTest paired_t_test(const std::vector<double>& pre,
                          const std::vector<double>& post) {
  if (pre.size() != post.size()) {
    throw InvalidArgument("paired_t_test: samples must be the same size");
  }
  if (pre.size() < 2) {
    throw InvalidArgument("paired_t_test: need at least two pairs");
  }
  std::vector<double> diffs(pre.size());
  for (std::size_t i = 0; i < pre.size(); ++i) diffs[i] = post[i] - pre[i];

  PairedTTest result;
  result.n = pre.size();
  result.mean_pre = mean(pre);
  result.mean_post = mean(post);
  result.mean_diff = mean(diffs);
  result.sd_diff = sample_stddev(diffs);
  if (result.sd_diff == 0.0) {
    throw InvalidArgument("paired_t_test: zero variance in differences");
  }
  result.df = static_cast<double>(pre.size() - 1);
  result.t = result.mean_diff /
             (result.sd_diff / std::sqrt(static_cast<double>(pre.size())));
  result.p_two_tailed = t_two_tailed_p(result.t, result.df);
  result.cohens_d = result.mean_diff / result.sd_diff;
  return result;
}

WelchTTest welch_t_test(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    throw InvalidArgument("welch_t_test: each sample needs >= 2 values");
  }
  const double va = sample_variance(a) / static_cast<double>(a.size());
  const double vb = sample_variance(b) / static_cast<double>(b.size());
  if (va + vb == 0.0) {
    throw InvalidArgument("welch_t_test: both samples have zero variance");
  }
  WelchTTest result;
  result.t = (mean(a) - mean(b)) / std::sqrt(va + vb);
  result.df = (va + vb) * (va + vb) /
              (va * va / (static_cast<double>(a.size()) - 1.0) +
               vb * vb / (static_cast<double>(b.size()) - 1.0));
  result.p_two_tailed = t_two_tailed_p(result.t, result.df);
  return result;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

WilcoxonTest wilcoxon_signed_rank(const std::vector<double>& pre,
                                  const std::vector<double>& post) {
  if (pre.size() != post.size()) {
    throw InvalidArgument("wilcoxon: samples must be the same size");
  }
  // Non-zero differences, as (|d|, sign) pairs.
  struct Diff {
    double magnitude;
    bool positive;
  };
  std::vector<Diff> diffs;
  for (std::size_t i = 0; i < pre.size(); ++i) {
    const double d = post[i] - pre[i];
    if (d != 0.0) diffs.push_back(Diff{std::abs(d), d > 0.0});
  }
  if (diffs.size() < 4) {
    throw InvalidArgument(
        "wilcoxon: need at least 4 non-zero differences for the normal "
        "approximation");
  }
  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& a, const Diff& b) { return a.magnitude < b.magnitude; });

  const std::size_t n = diffs.size();
  WilcoxonTest result;
  result.n_nonzero = n;

  // Average ranks over tie groups; accumulate W+ and the tie correction.
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && diffs[j].magnitude == diffs[i].magnitude) ++j;
    const double group = static_cast<double>(j - i);
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (diffs[k].positive) result.w_plus += avg_rank;
    }
    tie_correction += group * group * group - group;
    i = j;
  }

  const double nd = static_cast<double>(n);
  const double mean = nd * (nd + 1.0) / 4.0;
  const double variance =
      nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_correction / 48.0;
  if (variance <= 0.0) {
    throw InvalidArgument("wilcoxon: zero variance (all differences tied?)");
  }
  // Continuity correction toward the mean.
  const double delta = result.w_plus - mean;
  const double corrected =
      delta > 0.0 ? delta - 0.5 : (delta < 0.0 ? delta + 0.5 : 0.0);
  result.z = corrected / std::sqrt(variance);
  result.p_two_tailed = 2.0 * normal_cdf(-std::abs(result.z));
  if (result.p_two_tailed > 1.0) result.p_two_tailed = 1.0;
  return result;
}

}  // namespace pdc::assessment
