#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "assessment/stats.hpp"

namespace pdc::assessment {

// Streaming / merge-able descriptive statistics.
//
// The batch helpers in stats.hpp materialize their whole sample — fine for
// a 22-participant workshop survey, not for a grading cohort of 10^6
// verdicts. The accumulators here hold O(1) (Welford) or O(bins)
// (Histogram) state, accept one value at a time, and merge exactly, so a
// worker fleet can keep per-worker shards and combine them at join time.
// The property tests in tests/assessment/test_streaming.cpp pin the
// contract: any split of a sample into shards, merged in any order, agrees
// with the batch mean/sample_variance/median to 1e-9.

/// Welford's online mean/variance accumulator with the parallel (Chan et
/// al.) merge. Also tracks min/max. Empty accumulators merge as identities.
class Welford {
 public:
  /// Fold one observation in.
  void add(double value) noexcept;

  /// Fold another accumulator in (exact up to floating-point rounding;
  /// empty shards are identity).
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

  /// Mean of everything added so far. Throws pdc::InvalidArgument when
  /// empty (same precondition as the batch mean()).
  [[nodiscard]] double mean() const;

  /// Sample variance (n-1 denominator). Throws pdc::InvalidArgument when
  /// count() < 2 (same precondition as the batch sample_variance()).
  [[nodiscard]] double sample_variance() const;

  /// Sample standard deviation. Same precondition as sample_variance().
  [[nodiscard]] double sample_stddev() const;

  /// Smallest / largest observation. Throw pdc::InvalidArgument when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  ///< sum of squared deviations from the running mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A merge-able fixed-shape histogram: `bins` equal-width buckets spanning
/// [lo, hi), plus clamping — out-of-range observations land in the edge
/// buckets, so count() is always the number of add() calls and a cohort is
/// never silently dropped. Rank queries (median, quantile) answer with the
/// center of the bucket holding that rank, which makes them *exact* for
/// discrete data aligned to bucket centers (verdict codes, seed counts,
/// divergence scores) and one-bucket-accurate otherwise.
///
/// Merging requires identical shape (lo, hi, bins) and is exact: bucket
/// counts are integers, so shard partitioning and merge order can never
/// change the merged histogram — the property the byte-identical grade
/// reports lean on.
class Histogram {
 public:
  /// Throws pdc::InvalidArgument unless lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  /// Fold another histogram in. Throws pdc::InvalidArgument on shape
  /// mismatch.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const;

  /// Center value of bucket `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Center of the bucket holding the rank-th smallest observation
  /// (0-indexed). Throws pdc::InvalidArgument when rank >= count().
  [[nodiscard]] double value_at_rank(std::uint64_t rank) const;

  /// Median over bucket centers: the average of the two middle ranks for
  /// even counts, matching the batch median() exactly for center-aligned
  /// data. Throws pdc::InvalidArgument when empty.
  [[nodiscard]] double median() const;

  /// Quantile q in [0, 1] over bucket centers (nearest-rank).
  [[nodiscard]] double quantile(double q) const;

  /// One line per non-empty bucket: "[lo, hi): count". Deterministic, used
  /// verbatim in the canonical grade report.
  [[nodiscard]] std::string to_text() const;

 private:
  [[nodiscard]] std::size_t bucket_of(double value) const noexcept;

  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
};

// ---- non-throwing wrappers ----------------------------------------------
// The batch statistics guard their preconditions with throws (n >= 2,
// nonzero difference variance, ...). In a batch pipeline one degenerate
// item used to abort the whole cohort; these wrappers surface the reason
// per item instead, so callers (the pdc::grade autograder) can record a
// Skipped verdict and keep going.

/// Outcome of a statistic that may be undefined for its input: either a
/// value or the precondition message the throwing API would have raised.
template <typename T>
struct Fallible {
  T value{};
  std::string error;  ///< empty ⇔ value is meaningful

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Five-number descriptive summary of a small sample.
struct Description {
  std::size_t n = 0;
  double mean = 0.0;
  double sample_variance = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Batch describe: requires n >= 2 (for the variance). On failure the
/// error names the violated precondition ("mean: empty sample",
/// "sample_variance: need at least two values").
[[nodiscard]] Fallible<Description> describe(const std::vector<double>& values);

/// paired_t_test / welch_t_test with the precondition throws converted to
/// per-item errors.
[[nodiscard]] Fallible<PairedTTest> try_paired_t_test(
    const std::vector<double>& pre, const std::vector<double>& post);
[[nodiscard]] Fallible<WelchTTest> try_welch_t_test(
    const std::vector<double>& a, const std::vector<double>& b);

}  // namespace pdc::assessment
