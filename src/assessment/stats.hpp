#pragma once

#include <vector>

namespace pdc::assessment {

/// Arithmetic mean. Throws pdc::InvalidArgument on empty input.
double mean(const std::vector<double>& values);

/// Sample variance (n-1 denominator). Requires at least two values.
double sample_variance(const std::vector<double>& values);

/// Sample standard deviation.
double sample_stddev(const std::vector<double>& values);

/// Median (average of middle two for even n).
double median(std::vector<double> values);

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10).
double ln_gamma(double x);

/// Regularized incomplete beta function I_x(a, b), the workhorse behind the
/// Student's t distribution.
double incomplete_beta(double a, double b, double x);

/// Two-tailed p-value of a Student's t statistic with `df` degrees of
/// freedom: P(|T| >= |t|).
double t_two_tailed_p(double t, double df);

/// Result of a paired Student's t-test (the test the paper applies to its
/// pre/post workshop surveys).
struct PairedTTest {
  std::size_t n = 0;
  double mean_pre = 0.0;
  double mean_post = 0.0;
  double mean_diff = 0.0;    ///< mean of (post - pre)
  double sd_diff = 0.0;      ///< sample sd of the differences
  double t = 0.0;
  double df = 0.0;
  double p_two_tailed = 1.0;
  double cohens_d = 0.0;     ///< mean_diff / sd_diff
};

/// Paired t-test of post vs pre (same subjects, in the same order).
/// Requires equal sizes and n >= 2, with nonzero difference variance.
PairedTTest paired_t_test(const std::vector<double>& pre,
                          const std::vector<double>& post);

/// Result of Welch's unequal-variance two-sample t-test.
struct WelchTTest {
  double t = 0.0;
  double df = 0.0;
  double p_two_tailed = 1.0;
};

/// Welch's t-test of two independent samples (each of size >= 2).
WelchTTest welch_t_test(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Standard normal CDF.
double normal_cdf(double z);

/// Result of a Wilcoxon signed-rank test (normal approximation with tie
/// correction and continuity correction) — the nonparametric companion to
/// the paired t-test, appropriate for ordinal Likert responses like the
/// paper's pre/post surveys.
struct WilcoxonTest {
  std::size_t n_nonzero = 0;   ///< pairs with a non-zero difference
  double w_plus = 0.0;         ///< sum of ranks of positive differences
  double z = 0.0;
  double p_two_tailed = 1.0;
};

/// Wilcoxon signed-rank test of post vs pre (paired, same order). Zero
/// differences are dropped (Wilcoxon's original treatment); ties in
/// |difference| receive average ranks with the variance correction.
/// Requires at least 4 non-zero differences for the approximation.
WilcoxonTest wilcoxon_signed_rank(const std::vector<double>& pre,
                                  const std::vector<double>& post);

}  // namespace pdc::assessment
