#pragma once

#include <string>

#include "assessment/workshop.hpp"

namespace pdc::assessment {

/// Renderers that regenerate the paper's evaluation artifacts as text.

/// Table II: "How useful was each session for (A) implementing PDC in your
/// courses; (B) your professional development?"
std::string render_table_ii(const WorkshopEvaluation& eval);

/// Fig. 3: pre/post confidence histograms plus the paired t-test line
/// (pre = 2.82, post = 3.59, p = 0.0004 in the paper).
std::string render_figure_3(const WorkshopEvaluation& eval);

/// Fig. 4: pre/post preparedness histograms plus the paired t-test line
/// (pre = 2.59, post = 3.77, p = 4.18e-08 in the paper).
std::string render_figure_4(const WorkshopEvaluation& eval);

/// Demographic summary of Section IV's first paragraphs.
std::string render_demographics(const WorkshopEvaluation& eval);

}  // namespace pdc::assessment
