#include "assessment/likert.hpp"

#include <cmath>

#include "assessment/stats.hpp"
#include "support/error.hpp"

namespace pdc::assessment {

LikertScale LikertScale::usefulness() {
  return LikertScale{{"not at all useful", "slightly useful",
                      "moderately useful", "very useful", "extremely useful"}};
}

LikertScale LikertScale::confidence() {
  return LikertScale{
      {"not at all", "slightly", "moderately", "very", "extremely"}};
}

LikertScale LikertScale::preparedness() {
  return LikertScale{
      {"not at all", "a little bit", "somewhat", "quite a bit", "very much"}};
}

const std::string& LikertScale::label(int v) const {
  if (v < 1 || v > 5) {
    throw InvalidArgument("LikertScale: value must be in [1, 5]");
  }
  return labels[static_cast<std::size_t>(v - 1)];
}

LikertItem::LikertItem(std::string id, std::string prompt, LikertScale scale)
    : id_(std::move(id)), prompt_(std::move(prompt)), scale_(std::move(scale)) {
  if (id_.empty()) throw InvalidArgument("LikertItem: id required");
}

void LikertItem::add_response(int value) {
  if (value < 1 || value > 5) {
    throw InvalidArgument("LikertItem: response must be in [1, 5]");
  }
  responses_.push_back(value);
}

void LikertItem::add_responses(const std::vector<int>& values) {
  for (int v : values) add_response(v);
}

double LikertItem::mean() const {
  return assessment::mean(as_doubles());
}

double LikertItem::mean_2dp() const {
  return std::round(mean() * 100.0) / 100.0;
}

std::array<int, 5> LikertItem::histogram() const {
  std::array<int, 5> counts{};
  for (int v : responses_) ++counts[static_cast<std::size_t>(v - 1)];
  return counts;
}

std::vector<double> LikertItem::as_doubles() const {
  std::vector<double> out;
  out.reserve(responses_.size());
  for (int v : responses_) out.push_back(static_cast<double>(v));
  return out;
}

}  // namespace pdc::assessment
