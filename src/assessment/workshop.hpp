#pragma once

#include <string>
#include <vector>

#include "assessment/likert.hpp"

namespace pdc::assessment {

/// A workshop participant's demographic record (Section IV).
struct Participant {
  enum class Role { Faculty, GradStudent };
  enum class Track { TenureTrack, NonTenureTrack, GradStudent };
  enum class Gender { Male, Female, Other };
  enum class Location { ContinentalUS, PuertoRico, International };

  int id = 0;
  Role role = Role::Faculty;
  Track track = Track::TenureTrack;
  Gender gender = Gender::Male;
  Location location = Location::ContinentalUS;
};

/// The July 2020 virtual workshop evaluation dataset, reconstructed from
/// every marginal the paper reports.
///
/// The paper publishes only aggregates (Table II means, Fig. 3/4 histogram
/// bars, t statistics, demographic percentages); this class carries a
/// per-participant reconstruction that reproduces *all* of them at once:
///   - 22 participants; 19 faculty / 3 grad students; 17 male, 4 female,
///     1 other; 19 continental US, 1 Puerto Rico, 2 international;
///     10 tenure-track, 9 non-tenure-track, 3 grad students.
///   - Table II: session usefulness means 4.55/4.45 (OpenMP/Pi, n=22) and
///     4.38/4.29 (MPI & cluster). The latter two are only consistent with
///     the 1..5 scale at n=21, so the reconstruction records one
///     non-respondent for the MPI session — an inference, documented here.
///   - Fig. 3: paired confidence, pre mean 2.82, post 3.59, p ~= 4e-4.
///   - Fig. 4: paired preparedness, pre mean 2.59, post 3.77, p ~= 4e-8.
class WorkshopEvaluation {
 public:
  /// The reconstructed dataset.
  static WorkshopEvaluation july_2020();

  [[nodiscard]] const std::vector<Participant>& participants() const noexcept {
    return participants_;
  }

  /// Table II rows: usefulness of each session for (A) implementing PDC in
  /// courses and (B) professional development.
  [[nodiscard]] const LikertItem& openmp_usefulness_courses() const noexcept {
    return openmp_courses_;
  }
  [[nodiscard]] const LikertItem& openmp_usefulness_development() const noexcept {
    return openmp_development_;
  }
  [[nodiscard]] const LikertItem& mpi_usefulness_courses() const noexcept {
    return mpi_courses_;
  }
  [[nodiscard]] const LikertItem& mpi_usefulness_development() const noexcept {
    return mpi_development_;
  }

  /// Fig. 3: paired pre/post confidence (22 participants, same order).
  [[nodiscard]] const LikertItem& confidence_pre() const noexcept {
    return confidence_pre_;
  }
  [[nodiscard]] const LikertItem& confidence_post() const noexcept {
    return confidence_post_;
  }

  /// Fig. 4: paired pre/post preparedness.
  [[nodiscard]] const LikertItem& preparedness_pre() const noexcept {
    return preparedness_pre_;
  }
  [[nodiscard]] const LikertItem& preparedness_post() const noexcept {
    return preparedness_post_;
  }

  /// Fall-2020 teaching-plan percentages the paper reports (fully remote /
  /// hybrid / in-person), as fractions of participants.
  [[nodiscard]] double fraction_planning_remote() const noexcept { return 0.39; }
  [[nodiscard]] double fraction_planning_hybrid() const noexcept { return 0.35; }
  [[nodiscard]] double fraction_planning_in_person() const noexcept {
    return 0.17;
  }

 private:
  WorkshopEvaluation();

  std::vector<Participant> participants_;
  LikertItem openmp_courses_;
  LikertItem openmp_development_;
  LikertItem mpi_courses_;
  LikertItem mpi_development_;
  LikertItem confidence_pre_;
  LikertItem confidence_post_;
  LikertItem preparedness_pre_;
  LikertItem preparedness_post_;
};

}  // namespace pdc::assessment
