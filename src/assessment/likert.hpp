#pragma once

#include <array>
#include <string>
#include <vector>

namespace pdc::assessment {

/// A 5-point Likert scale: value v in [1, 5] carries label labels[v-1].
struct LikertScale {
  std::array<std::string, 5> labels;

  /// "not at all useful" ... "extremely useful" (Table II's scale).
  static LikertScale usefulness();

  /// "not at all" ... "extremely" (Fig. 3's confidence scale).
  static LikertScale confidence();

  /// "not at all" ... "very much" (Fig. 4's preparedness scale).
  static LikertScale preparedness();

  /// Label for value v (throws pdc::InvalidArgument unless 1 <= v <= 5).
  [[nodiscard]] const std::string& label(int v) const;
};

/// One survey item plus its collected integer responses (1..5).
class LikertItem {
 public:
  LikertItem(std::string id, std::string prompt, LikertScale scale);

  /// Record one response; throws pdc::InvalidArgument outside [1, 5].
  void add_response(int value);

  /// Record many responses.
  void add_responses(const std::vector<int>& values);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& prompt() const noexcept { return prompt_; }
  [[nodiscard]] const LikertScale& scale() const noexcept { return scale_; }
  [[nodiscard]] const std::vector<int>& responses() const noexcept {
    return responses_;
  }

  /// Number of responses collected.
  [[nodiscard]] std::size_t count() const noexcept { return responses_.size(); }

  /// Mean response (throws if no responses).
  [[nodiscard]] double mean() const;

  /// Mean rounded to two decimals, as the paper reports.
  [[nodiscard]] double mean_2dp() const;

  /// Histogram: counts[v-1] = number of responses with value v.
  [[nodiscard]] std::array<int, 5> histogram() const;

  /// Responses as doubles (for the stats functions).
  [[nodiscard]] std::vector<double> as_doubles() const;

 private:
  std::string id_;
  std::string prompt_;
  LikertScale scale_;
  std::vector<int> responses_;
};

}  // namespace pdc::assessment
