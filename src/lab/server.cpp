#include "lab/server.hpp"

#include <unistd.h>

#include <chrono>
#include <utility>

#include "chaos/chaos.hpp"
#include "grade/gradebook.hpp"
#include "grade/grader.hpp"
#include "net/errors.hpp"
#include "trace/trace.hpp"

namespace pdc::lab {

using protocol::JobState;
using protocol::RejectCode;
using protocol::Result;
using protocol::Submit;

namespace {
constexpr int kListenBacklog = 64;

/// Lowercase hex of a digest — the store's per-submission tag for grade
/// records, so re-gradings of the same mutant with different options
/// (distinct digests) coexist while exact re-submissions upsert.
std::string digest_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

store::ResultRecord to_record(std::uint64_t digest,
                              const protocol::Submit& submit,
                              const protocol::Result& result) {
  store::ResultRecord record;
  record.digest = digest;
  record.tenant = submit.tenant;
  record.kind = static_cast<std::uint16_t>(submit.kind);
  record.name = submit.name;
  record.np = submit.np;
  record.seed = submit.seed;
  record.exit_code = result.exit_code;
  record.exec_us = result.exec_us;
  record.output = result.output;
  record.error = result.error;
  return record;
}
}  // namespace

bool Server::Session::send(const mp::Bytes& frame) {
  std::lock_guard lock(send_mutex);
  if (!alive.load(std::memory_order_acquire)) return false;
  try {
    net::send_all(socket, frame, nullptr, /*bye_ok=*/false, "lab server");
    return true;
  } catch (const Error&) {
    alive.store(false, std::memory_order_release);
    socket.shutdown_both();
    return false;
  }
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      executor_(config_.executor),
      cache_(config_.cache_capacity),
      queue_(config_.queue),
      firewall_(config_.firewall) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) return;

  // Recover the store (if configured) before anything can submit: replay
  // log-over-snapshot, then warm the result cache with every cacheable
  // recovered record — a restarted server answers repeat submissions from
  // cache at ≈ its pre-restart hit rate instead of re-executing the class.
  // Failed/cancelled results were journaled but stay out of the cache (the
  // "failures never cached" rule survives restarts too).
  if (!config_.store.dir.empty() && !store_) {
    store_ = std::make_unique<store::Store>(config_.store);
    for (const auto& [digest, record] : store_->results()) {
      if (!record.cacheable()) continue;
      Result result;
      result.exit_code = record.exit_code;
      result.exec_us = record.exec_us;
      result.output = record.output;
      result.error = record.error;
      cache_.insert(digest, std::move(result));
      ++warmed_;
    }
    trace::Counter("store.warmed").add(static_cast<double>(warmed_));
  }

  listener_ = net::listen_at(config_.endpoint, kListenBacklog);
  bound_ = net::local_endpoint(listener_, config_.endpoint);
  started_ = std::chrono::steady_clock::now();

  // ExecMode::Socket: each worker thread fronts a forked worker *process*
  // (slot w serves thread w), so a crashing or hanging job takes down one
  // process, not the server. Inline keeps the historic in-process shape.
  if (config_.executor.mode == ExecMode::Socket) {
    WorkerPoolConfig shard = config_.shard;
    shard.workers = config_.workers;
    shard.executor = config_.executor;
    pool_ = std::make_unique<WorkerPool>(shard);
    try {
      pool_->start();
    } catch (...) {
      pool_.reset();
      listener_.close();
      throw;
    }
  }
  running_.store(true);

  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) {
    // Never started (or a second stop): nothing to tear down.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }

  // 1. No new connections: unblock the accept loop and join it.
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. No new work: close the queue, fail whatever never got a worker with
  // a shutdown Result (the client was promised a terminal frame at Accept).
  queue_.close();
  for (Job& job : queue_.drain()) {
    Result result;
    result.job_id = job.id;
    result.exit_code = 3;
    result.error = "lab server shutting down";
    set_job_state(job.id, JobState::Done);
    if (job.deliver) job.deliver(result);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Every thread that could be inside execute() is joined; the pool object
  // itself outlives stop() so stats() keeps reporting its totals.
  if (pool_) pool_->stop();

  // 3. Sessions: shut every socket down (their readers observe EOF/error
  // and exit), then wait for the detached readers to drain.
  {
    std::unique_lock lock(sessions_mutex_);
    for (const auto& weak : sessions_) {
      if (const auto session = weak.lock()) {
        session->alive.store(false, std::memory_order_release);
        session->socket.shutdown_both();
      }
    }
    sessions_cv_.wait(lock, [this] { return active_sessions_ == 0; });
    sessions_.clear();
  }

  listener_.close();
  if (config_.endpoint.kind == net::Endpoint::Kind::Unix &&
      !config_.endpoint.path.empty()) {
    ::unlink(config_.endpoint.path.c_str());
  }

  // 4. Persistence: every deliver above journaled before sending, so this
  // sync is a backstop that also covers the fsync=off configuration's
  // buffered tail. The store object survives stop() for inspection.
  if (store_) store_->sync();
}

net::Endpoint Server::endpoint() const { return bound_; }

ServerStats Server::stats() const {
  ServerStats out;
  out.submits = stats_.submits.load();
  out.accepted = stats_.accepted.load();
  out.rejected = stats_.rejected.load();
  out.completed = stats_.completed.load();
  out.failed = stats_.failed.load();
  out.cache_hits = stats_.cache_hits.load();
  out.executed = executor_.executions() + (pool_ ? pool_->executions() : 0);
  out.lockouts = stats_.lockouts.load();
  out.lost_results = stats_.lost_results.load();
  out.sessions = stats_.sessions.load();
  out.cancelled = stats_.cancelled.load();
  out.worker_respawns = pool_ ? pool_->respawns() : 0;
  out.warmed_results = warmed_;
  out.queue_depth = queue_.depth();
  return out;
}

double Server::now_minutes() const {
  if (config_.now_minutes) return config_.now_minutes();
  return std::chrono::duration<double, std::ratio<60>>(
             std::chrono::steady_clock::now() - started_)
      .count();
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    net::Socket accepted;
    try {
      accepted = net::accept_for(
          listener_, std::chrono::milliseconds(config_.accept_poll_ms),
          "lab server accept");
    } catch (const Error&) {
      continue;  // poll timeout, or the listener was shut down by stop()
    }
    auto session = std::make_shared<Session>();
    session->socket = std::move(accepted);
    stats_.sessions.fetch_add(1, std::memory_order_relaxed);
    trace::Counter("lab.sessions").add(1.0);
    {
      std::lock_guard lock(sessions_mutex_);
      // Prune entries whose sessions are fully gone so a long-lived server
      // does not accumulate one weak_ptr per historical connection.
      std::erase_if(sessions_,
                    [](const std::weak_ptr<Session>& weak) {
                      return weak.expired();
                    });
      sessions_.push_back(session);
      ++active_sessions_;
    }
    std::thread([this, session] { session_loop(session); }).detach();
  }
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  // Admission decisions (the "lab.admit" checkpoint) draw from the lab's
  // admission chaos lane, not lane 0 — which belongs to mp rank 0.
  chaos::ActorScope actor(kLabAdmitActor);
  try {
    wire::Header header;
    mp::Bytes body;
    // Note: no `running_` in this condition. A stopping server still owes
    // queued jobs their terminal Results over this socket; the reader must
    // keep the session alive until stop()'s session-shutdown phase (or the
    // client's own EOF/Bye) unblocks the recv below. Submits that race the
    // drain are refused at the closed queue with a Shutdown reject.
    bool open = true;
    while (open && session->alive.load(std::memory_order_acquire)) {
      if (!net::recv_frame(session->socket, &header, &body, "lab server")) {
        break;  // clean EOF between frames: client left without a Bye
      }
      switch (header.kind) {
        case wire::FrameKind::Submit: {
          stats_.submits.fetch_add(1, std::memory_order_relaxed);
          trace::Counter("lab.submits").add(1.0);
          admit(session, protocol::decode_submit(body));
          break;
        }
        case wire::FrameKind::Status: {
          const protocol::Status query = protocol::decode_status(body);
          protocol::Status reply;
          reply.job_id = query.job_id;
          reply.state = job_state(query.job_id);
          reply.queue_depth = static_cast<std::uint32_t>(queue_.depth());
          session->send(protocol::encode_status(reply));
          break;
        }
        case wire::FrameKind::Cancel: {
          handle_cancel(session, protocol::decode_cancel(body));
          break;
        }
        case wire::FrameKind::Report: {
          handle_report(session, protocol::decode_report(body));
          break;
        }
        case wire::FrameKind::Bye:
          open = false;  // clean goodbye
          break;
        default:
          throw net::ProtocolError(
              "lab server: unexpected frame kind " +
              std::to_string(static_cast<int>(header.kind)) +
              " on a client connection");
      }
    }
  } catch (const net::ProtocolError& error) {
    // A hostile or confused client: answer with the reason (best effort)
    // and drop the connection; the server itself keeps serving.
    reject(session, RejectCode::BadRequest, error.what());
  } catch (const Error&) {
    // PeerLost (mid-submit disconnect) or a send failure: drop quietly.
  }
  session->alive.store(false, std::memory_order_release);
  session->socket.shutdown_both();
  std::lock_guard lock(sessions_mutex_);
  --active_sessions_;
  sessions_cv_.notify_all();
}

void Server::admit(const std::shared_ptr<Session>& session, Submit submit) {
  trace::Span span("lab.admit", "lab");
  try {
    chaos::on_op("lab.admit");
  } catch (const chaos::InjectedAbort& abort) {
    return reject(session, RejectCode::Overloaded, abort.what());
  }
  if (submit.tenant.empty()) {
    return reject(session, RejectCode::BadRequest,
                  "submit carries no tenant id");
  }

  // Auth + the eager-beaver firewall, keyed by tenant. A blocked tenant is
  // refused even with the right token (what made the paper's incident
  // confusing); wrong tokens accumulate toward the lockout.
  {
    std::lock_guard lock(firewall_mutex_);
    const double now = now_minutes();
    if (firewall_.is_blocked(submit.tenant, now)) {
      return reject(session, RejectCode::LockedOut,
                    "tenant is locked out (the VNC-firewall incident; wait "
                    "for the block to lapse or ask staff to unblock)");
    }
    if (submit.token != config_.token) {
      if (firewall_.record_failure(submit.tenant, now)) {
        stats_.lockouts.fetch_add(1, std::memory_order_relaxed);
        trace::instant("lab.lockout", "lab");
        return reject(session, RejectCode::LockedOut,
                      "too many bad tokens; tenant locked out");
      }
      return reject(session, RejectCode::BadToken, "wrong auth token");
    }
    firewall_.record_success(submit.tenant);
  }

  try {
    executor_.validate(submit);
  } catch (const Error& error) {
    return reject(session, RejectCode::BadRequest, error.what());
  }

  const std::uint64_t digest = protocol::digest(submit);
  const std::uint64_t job_id =
      next_job_id_.fetch_add(1, std::memory_order_relaxed);

  // Identical submission already answered: serve the golden output without
  // touching the queue or the fleet.
  if (auto cached = cache_.lookup(digest)) {
    cached->job_id = job_id;
    {
      std::lock_guard lock(jobs_mutex_);
      job_states_[job_id] = JobRecord{JobState::Done, submit.tenant};
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    trace::Counter("lab.cache_hits").add(1.0);
    // Same acked ⇒ durable rule as an executed job: the journal upsert
    // (idempotent for an exact re-submission) lands before the frames.
    journal(digest, submit, *cached);
    protocol::Accept accept;
    accept.job_id = job_id;
    accept.queue_position = 0;
    if (session->send(protocol::encode_accept(accept))) {
      session->send(protocol::encode_result(*cached));
    }
    return;
  }

  Job job;
  job.id = job_id;
  job.submit = std::move(submit);
  job.digest = digest;
  job.deliver = [this, session, job_id, digest,
                 submit = job.submit](const Result& result) {
    finish_job(session, job_id, digest, submit, result);
  };
  // Incremental Status pushes (shard workers streaming output) go back to
  // the submitting connection, best effort.
  job.notify = [this, session](const protocol::Status& status) {
    protocol::Status push = status;
    push.queue_depth = static_cast<std::uint32_t>(queue_.depth());
    session->send(protocol::encode_status(push));
  };
  // Record Queued before the push: once the job is in the queue a worker can
  // pop it and write Running/Done, and a late Queued write here would stomp
  // the terminal state a client has already been told about.
  {
    std::lock_guard lock(jobs_mutex_);
    job_states_[job_id] = JobRecord{JobState::Queued, job.submit.tenant};
  }
  const auto position = queue_.push(std::move(job));
  if (!position) {
    {
      std::lock_guard lock(jobs_mutex_);
      job_states_.erase(job_id);
    }
    const bool shutting_down = !running_.load(std::memory_order_acquire);
    return reject(session,
                  shutting_down ? RejectCode::Shutdown : RejectCode::QuotaFull,
                  shutting_down ? "lab server shutting down"
                                : "tenant queue quota exhausted");
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  trace::Counter("lab.queue_depth").add(1.0);
  protocol::Accept accept;
  accept.job_id = job_id;
  accept.queue_position = static_cast<std::uint32_t>(*position);
  session->send(protocol::encode_accept(accept));
}

void Server::handle_cancel(const std::shared_ptr<Session>& session,
                           const protocol::Cancel& cancel) {
  trace::Span span("lab.cancel", "lab");
  if (cancel.tenant.empty()) {
    return reject(session, RejectCode::BadRequest,
                  "cancel carries no tenant id");
  }

  // The same auth + firewall wall as admission: Cancel is a door a hostile
  // client can knock on too, and wrong tokens count toward the lockout.
  {
    std::lock_guard lock(firewall_mutex_);
    const double now = now_minutes();
    if (firewall_.is_blocked(cancel.tenant, now)) {
      return reject(session, RejectCode::LockedOut, "tenant is locked out");
    }
    if (cancel.token != config_.token) {
      if (firewall_.record_failure(cancel.tenant, now)) {
        stats_.lockouts.fetch_add(1, std::memory_order_relaxed);
        trace::instant("lab.lockout", "lab");
        return reject(session, RejectCode::LockedOut,
                      "too many bad tokens; tenant locked out");
      }
      return reject(session, RejectCode::BadToken, "wrong auth token");
    }
    firewall_.record_success(cancel.tenant);
  }

  JobState state = JobState::Unknown;
  {
    std::lock_guard lock(jobs_mutex_);
    const auto it = job_states_.find(cancel.job_id);
    // An unknown job and another tenant's job answer identically: job ids
    // are sequential, so a cancel probe must not confirm a foreign job
    // exists.
    if (it == job_states_.end() || it->second.tenant != cancel.tenant) {
      state = JobState::Unknown;
    } else {
      state = it->second.state;
    }
  }
  if (state == JobState::Unknown) {
    return reject(session, RejectCode::BadRequest,
                  "no such job for this tenant");
  }
  if (state == JobState::Done) {
    return reject(session, RejectCode::BadRequest, "job already finished");
  }

  const auto ack = [this, &session, &cancel] {
    stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
    trace::Counter("lab.cancelled").add(1.0);
    protocol::Status frame;
    frame.job_id = cancel.job_id;
    frame.state = JobState::Done;
    frame.queue_depth = static_cast<std::uint32_t>(queue_.depth());
    session->send(protocol::encode_status(frame));
  };

  // Still queued: pull it out (the quota slot frees, the tenant's virtual
  // tag rewinds) and deliver the terminal Result the Accept promised.
  if (auto removed = queue_.remove(cancel.job_id)) {
    trace::Counter("lab.queue_depth").add(-1.0);
    Result result;
    result.job_id = cancel.job_id;
    result.exit_code = 130;  // the interrupted-job convention
    result.error = "cancelled by tenant";
    if (removed->deliver) {
      removed->deliver(result);
    } else {
      set_job_state(cancel.job_id, JobState::Done);
    }
    return ack();
  }

  // A worker already has it. With a shard pool the worker is a process we
  // can kill — its execute() observes the death and returns the cancelled
  // Result. Inline mode runs jobs on server threads; those cannot be
  // killed, so a running inline job is past the point of no return.
  if (pool_ && pool_->cancel(cancel.job_id)) {
    return ack();
  }
  return reject(session, RejectCode::BadRequest,
                pool_ ? "job just finished; nothing to cancel"
                      : "job is already running (inline executor cannot "
                        "cancel a running job)");
}

void Server::reject(const std::shared_ptr<Session>& session, RejectCode code,
                    const std::string& reason) {
  stats_.rejected.fetch_add(1, std::memory_order_relaxed);
  trace::Counter("lab.rejects").add(1.0);
  protocol::Reject frame;
  frame.code = code;
  frame.reason = reason;
  session->send(protocol::encode_reject(frame));
}

void Server::worker_loop(int worker_index) {
  // Each worker draws from its own deterministic chaos stream, like a pool
  // worker or an mp rank would.
  chaos::ActorScope actor(kLabWorkerActorBase + worker_index);
  while (auto job = queue_.pop()) {
    trace::Counter("lab.queue_depth").add(-1.0);
    set_job_state(job->id, JobState::Running);
    Result result;
    try {
      chaos::on_op("lab.dispatch");
      // Pool mode: slot w belongs to this thread, and the pool absorbs
      // worker crashes/hangs/cancels into a terminal Result by itself.
      result = pool_ ? pool_->execute(worker_index, job->id, job->submit,
                                      job->notify)
                     : executor_.execute(job->submit);
    } catch (const chaos::InjectedAbort& abort) {
      result.exit_code = 2;
      result.error = abort.what();
    }
    result.job_id = job->id;
    if (job->deliver) job->deliver(result);
  }
}

void Server::finish_job(const std::shared_ptr<Session>& session,
                        std::uint64_t job_id, std::uint64_t digest,
                        const Submit& submit, const Result& result) {
  if (result.exit_code == 0) {
    // Only clean runs become golden outputs; a chaos-aborted or failed run
    // must re-execute next time, never haunt the cache.
    cache_.insert(digest, result);
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  set_job_state(job_id, JobState::Done);
  trace::Counter("lab.results").add(1.0);
  // Journal-before-ack: the record is fsync-covered when journal() returns,
  // so any Result frame the client ever sees is already durable. A kill
  // between the two costs the client a frame (a retry re-submits into the
  // warm cache), never a journaled record.
  journal(digest, submit, result);
  if (!session->send(protocol::encode_result(result))) {
    stats_.lost_results.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::journal(std::uint64_t digest, const Submit& submit,
                     const Result& result) {
  if (!store_) return;
  store_->put_result(to_record(digest, submit, result));
  // A successful grade job additionally lands in the grade index: its first
  // output line is the canonical grade line, parsed back into a structured
  // verdict. Cohort = tenant, mutant = the submitted MutantSpec id.
  if (submit.kind != protocol::JobKind::Grade || result.exit_code != 0 ||
      result.output.empty()) {
    return;
  }
  try {
    const grade::Grade graded = grade::Grade::parse_line(result.output[0]);
    store_->put_grade(grade::GradeBook::to_record(graded, submit.tenant,
                                                  digest_hex(digest)));
  } catch (const Error&) {
    // A grade job whose output is not a grade line (a foreign executor or a
    // hand-rolled worker): the result record above still journals it.
  }
}

void Server::handle_report(const std::shared_ptr<Session>& session,
                           const protocol::Report& query) {
  if (query.role != protocol::ReportRole::Query) {
    throw net::ProtocolError("lab server: non-query Report frame from client");
  }
  if (query.tenant.empty()) {
    return reject(session, RejectCode::BadRequest,
                  "report carries no tenant id");
  }
  // Same auth wall as admission: reports leak a whole class's aggregate
  // state, so bad tokens count toward the same lockout.
  {
    std::lock_guard lock(firewall_mutex_);
    const double now = now_minutes();
    if (firewall_.is_blocked(query.tenant, now)) {
      return reject(session, RejectCode::LockedOut, "tenant is locked out");
    }
    if (query.token != config_.token) {
      if (firewall_.record_failure(query.tenant, now)) {
        stats_.lockouts.fetch_add(1, std::memory_order_relaxed);
        trace::instant("lab.lockout", "lab");
        return reject(session, RejectCode::LockedOut,
                      "too many bad tokens; tenant locked out");
      }
      return reject(session, RejectCode::BadToken, "wrong auth token");
    }
    firewall_.record_success(query.tenant);
  }
  if (!store_) {
    return reject(session, RejectCode::BadRequest,
                  "this lab server runs without a store (no --store dir)");
  }

  // Stream one Cohort frame per cohort (sorted — the store folds in sorted
  // key order, so the bytes are a pure function of the record set), then
  // the End marker.
  const std::vector<std::string> cohorts =
      query.cohort.empty() ? store_->cohorts()
                           : std::vector<std::string>{query.cohort};
  for (const std::string& cohort : cohorts) {
    protocol::Report reply;
    reply.role = protocol::ReportRole::Cohort;
    reply.cohort = cohort;
    reply.aggregate = store_->report(cohort);
    if (!session->send(protocol::encode_report(reply))) return;
    trace::Counter("lab.reports").add(1.0);
  }
  protocol::Report end;
  end.role = protocol::ReportRole::End;
  session->send(protocol::encode_report(end));
}

void Server::set_job_state(std::uint64_t job_id, JobState state) {
  std::lock_guard lock(jobs_mutex_);
  job_states_[job_id].state = state;  // tenant (set at admission) survives
}

protocol::JobState Server::job_state(std::uint64_t job_id) const {
  std::lock_guard lock(jobs_mutex_);
  const auto it = job_states_.find(job_id);
  return it == job_states_.end() ? JobState::Unknown : it->second.state;
}

}  // namespace pdc::lab
