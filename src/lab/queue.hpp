#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "lab/protocol.hpp"

namespace pdc::lab {

/// One admitted job waiting for (or holding) a worker.
struct Job {
  std::uint64_t id = 0;
  protocol::Submit submit;
  std::uint64_t digest = 0;
  /// Where the result goes when the job finishes (the server binds this to
  /// the submitting connection). May be empty in tests.
  std::function<void(const protocol::Result&)> deliver;
  /// Where incremental Status frames go while the job runs (best-effort
  /// streaming to the submitting connection). May be empty.
  std::function<void(const protocol::Status&)> notify;
};

/// Weighted fair queue with per-tenant quotas — the admission buffer
/// between the server's connection threads and its worker fleet.
///
/// Scheduling is start-time fair queuing: each tenant carries a virtual
/// finish tag; a pushed job's tag is max(global virtual time, tenant's last
/// tag) + cost/weight (cost = 1 per job), and pop() serves the non-empty
/// tenant with the smallest head tag. A tenant that floods the queue only
/// advances its own tag, so a light tenant's next job always carries an
/// earlier tag than the flood's tail — the starvation test pins this.
///
/// Thread safety: all members are safe to call concurrently; pop() blocks
/// until a job arrives or the queue is closed.
class FairQueue {
 public:
  struct Policy {
    int default_weight = 1;
    /// Max jobs one tenant may have queued at once (the paper's per-student
    /// quota); pushing past it is a QuotaFull rejection.
    std::size_t max_queued_per_tenant = 64;
  };

  explicit FairQueue(Policy policy) : policy_(policy) {}

  /// Give `tenant` a scheduling weight (2 = served twice as often as a
  /// weight-1 tenant under contention). Clamped to >= 1.
  void set_weight(const std::string& tenant, int weight);

  /// Enqueue under the submit's tenant. Returns the number of jobs queued
  /// ahead of it (0 = next in line), or nullopt when the tenant's quota is
  /// full or the queue is closed.
  std::optional<std::size_t> push(Job job);

  /// Block until a job is schedulable or the queue closes; nullopt = closed.
  std::optional<Job> pop();

  /// Close: pop() returns nullopt from now on (after the queue drains);
  /// push() refuses. Wakes every blocked popper.
  void close();

  /// Remove and return everything still queued (for reject-on-shutdown).
  std::vector<Job> drain();

  /// Remove one queued job by id (cancellation); nullopt when no queued
  /// job carries the id — already dispatched, finished or never admitted.
  /// The tenant's quota slot frees immediately, and a removed tail rewinds
  /// the tenant's virtual finish tag so its next push is not scheduled
  /// behind a job that never ran.
  std::optional<Job> remove(std::uint64_t job_id);

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t depth(const std::string& tenant) const;

 private:
  struct Tenant {
    int weight = 1;
    double last_tag = 0.0;  ///< virtual finish tag of the newest queued job
    std::deque<std::pair<double, Job>> jobs;  ///< (finish tag, job)
  };

  const Policy policy_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_;
  double virtual_time_ = 0.0;  ///< finish tag of the last job served
  std::size_t depth_ = 0;
  bool closed_ = false;
};

}  // namespace pdc::lab
