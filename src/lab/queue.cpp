#include "lab/queue.hpp"

#include <algorithm>

namespace pdc::lab {

void FairQueue::set_weight(const std::string& tenant, int weight) {
  std::lock_guard lock(mutex_);
  tenants_[tenant].weight = std::max(1, weight);
}

std::optional<std::size_t> FairQueue::push(Job job) {
  std::lock_guard lock(mutex_);
  if (closed_) return std::nullopt;
  auto [it, inserted] = tenants_.try_emplace(job.submit.tenant);
  Tenant& tenant = it->second;
  if (inserted) tenant.weight = policy_.default_weight;
  if (tenant.jobs.size() >= policy_.max_queued_per_tenant) return std::nullopt;

  // Start-time fair queuing: a tenant whose queue was empty starts at the
  // current virtual time (it is not punished for having been idle); a
  // backlogged tenant chains behind its own tail.
  const double start = tenant.jobs.empty()
                           ? std::max(virtual_time_, tenant.last_tag)
                           : tenant.last_tag;
  const double tag = start + 1.0 / static_cast<double>(tenant.weight);
  tenant.last_tag = tag;
  tenant.jobs.emplace_back(tag, std::move(job));
  const std::size_t position = depth_;
  ++depth_;
  cv_.notify_one();
  return position;
}

std::optional<Job> FairQueue::pop() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return depth_ > 0 || closed_; });
  if (depth_ == 0) return std::nullopt;

  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.jobs.empty()) continue;
    if (best == nullptr || tenant.jobs.front().first < best->jobs.front().first) {
      best = &tenant;
    }
  }
  auto [tag, job] = std::move(best->jobs.front());
  best->jobs.pop_front();
  virtual_time_ = std::max(virtual_time_, tag);
  --depth_;
  return std::move(job);
}

void FairQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

std::vector<Job> FairQueue::drain() {
  std::lock_guard lock(mutex_);
  std::vector<Job> out;
  out.reserve(depth_);
  // Drain in tag order so shutdown rejections follow the schedule the jobs
  // would have run in.
  while (depth_ > 0) {
    Tenant* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.jobs.empty()) continue;
      if (best == nullptr ||
          tenant.jobs.front().first < best->jobs.front().first) {
        best = &tenant;
      }
    }
    out.push_back(std::move(best->jobs.front().second));
    best->jobs.pop_front();
    --depth_;
  }
  return out;
}

std::optional<Job> FairQueue::remove(std::uint64_t job_id) {
  std::lock_guard lock(mutex_);
  for (auto& [name, tenant] : tenants_) {
    for (auto it = tenant.jobs.begin(); it != tenant.jobs.end(); ++it) {
      if (it->second.id != job_id) continue;
      Job job = std::move(it->second);
      const bool was_tail = std::next(it) == tenant.jobs.end();
      const double tag = it->first;
      tenant.jobs.erase(it);
      if (was_tail) {
        // Rewind so the tenant's next push chains behind the new tail, not
        // behind the cancelled job's phantom slot. (Mid-queue removals
        // leave a tag gap, which start-time fair queuing tolerates.)
        tenant.last_tag =
            tenant.jobs.empty()
                ? tag - 1.0 / static_cast<double>(tenant.weight)
                : tenant.jobs.back().first;
      }
      --depth_;
      return job;
    }
  }
  return std::nullopt;
}

std::size_t FairQueue::depth() const {
  std::lock_guard lock(mutex_);
  return depth_;
}

std::size_t FairQueue::depth(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.jobs.size();
}

}  // namespace pdc::lab
