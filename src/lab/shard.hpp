#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lab/executor.hpp"
#include "lab/protocol.hpp"
#include "net/socket.hpp"

namespace pdc::lab {

/// Chaos site injected after each Dispatch is written to a worker process:
/// an injected abort here is translated into a real SIGKILL of that worker,
/// so a chaos sweep over the shard pool exercises the same crash-detection,
/// respawn and redispatch path a segfaulting student job would.
inline constexpr const char* kShardKillSite = "lab.shard.kill";

struct WorkerPoolConfig {
  /// Worker processes (one per server worker thread; slot w serves thread w).
  int workers = 2;

  /// Path to the pdclab binary to exec in `worker` mode. Empty: try the
  /// PDCLAB_WORKER_BIN environment variable, then /proc/self/exe when this
  /// process itself is pdclab. Throws at start() when nothing resolves.
  std::string worker_bin;

  /// Forwarded to each worker's own Executor (--executor / --max-np).
  ExecutorConfig executor;

  /// fork → accepted connection + Hello deadline. A binary that is not a
  /// pdclab worker (or dies on startup) surfaces here.
  int spawn_timeout_ms = 10000;

  /// Longest silence tolerated from a worker executing a job. The worker
  /// heartbeats an empty Status every `heartbeat_ms` while running, so only
  /// a truly wedged process (hung job, stopped worker) goes silent this
  /// long — it is SIGKILLed and the job redispatched.
  int hang_timeout_ms = 30000;

  /// Worker-side cadence for flushing buffered output lines / heartbeats.
  int heartbeat_ms = 250;

  /// Dispatch attempts per job across worker crashes before the job is
  /// declared failed (a job that reliably kills its worker must not respawn
  /// forever).
  int max_attempts = 3;
};

/// A fleet of forked pdclab worker processes, one per slot, each reached
/// over a private unix socket speaking PDCN Dispatch/Status/Result frames.
/// This is what makes ExecMode::Socket a real isolation boundary: a job
/// that crashes or hangs takes down one worker *process*, the pool reaps
/// it, respawns a fresh worker and redispatches the job — the server and
/// every other tenant's job keep running.
///
/// Threading contract: slot `s` is owned by exactly one server worker
/// thread, which is the only caller of execute(s, ...). cancel() and
/// slot_pid() may race execute() from other threads; per-slot state they
/// share is mutex/atomic-guarded. start()/stop() bracket all of it.
class WorkerPool {
 public:
  using StatusSink = std::function<void(const protocol::Status&)>;

  explicit WorkerPool(WorkerPoolConfig config);

  /// stop()s the fleet.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Resolve the worker binary, create the per-slot listeners (in a private
  /// scratch dir) and spawn the initial fleet. A slot whose first spawn
  /// fails is left empty and retried at its first execute(). Throws
  /// pdc::InvalidArgument when no worker binary resolves.
  void start();

  /// Say Bye to every worker, give each a short grace to exit, then
  /// SIGKILL + reap the stragglers and remove the scratch dir. Idempotent.
  /// Callers must have joined every thread that may be inside execute().
  void stop();

  /// Run one job on slot `slot`'s worker process, blocking until a terminal
  /// Result. Never throws: worker crashes and hangs are absorbed by
  /// respawn + redispatch (bounded by max_attempts), and the exhausted
  /// budget comes back as an exit_code 2 Result. A cancel() that lands
  /// mid-run comes back as exit_code 130 with error "cancelled by tenant".
  /// `on_status` (optional) receives every non-empty incremental Status the
  /// worker streams, on this thread.
  protocol::Result execute(int slot, std::uint64_t job_id,
                           const protocol::Submit& submit,
                           const StatusSink& on_status);

  /// Kill the worker process currently executing `job_id` (SIGKILL — the
  /// job may be wedged). The owning execute() observes the death and
  /// returns the cancelled Result instead of redispatching. Returns false
  /// when no slot is executing that job (already finished or never
  /// dispatched).
  bool cancel(std::uint64_t job_id);

  [[nodiscard]] int workers() const noexcept { return config_.workers; }

  /// Worker processes respawned after a crash/hang/kill (not the initial
  /// spawns). The chaos sweeps assert this moved.
  [[nodiscard]] std::uint64_t respawns() const noexcept {
    return respawns_.load(std::memory_order_relaxed);
  }

  /// Jobs dispatched to the fleet (counted once per job, not per attempt) —
  /// the pool-mode contribution to ServerStats::executed.
  [[nodiscard]] std::uint64_t executions() const noexcept {
    return executions_.load(std::memory_order_relaxed);
  }

  /// The live worker pid of `slot`, or -1 when none (tests kill this
  /// directly to simulate a crashed worker).
  [[nodiscard]] pid_t slot_pid(int slot) const;

 private:
  struct Slot {
    int index = 0;
    net::Endpoint endpoint;  ///< this slot's private unix listener address
    net::Socket listener;
    /// Guards pid/conn lifecycle (spawn/reap/stop vs cancel's kill).
    mutable std::mutex mutex;
    net::Socket conn;   ///< connection to the live worker; invalid = none
    pid_t pid = -1;
    bool ever_spawned = false;  ///< a later spawn is a respawn
    /// Job currently dispatched on this slot (0 = idle) and whether a
    /// cancel was requested for it.
    std::atomic<std::uint64_t> job{0};
    std::atomic<bool> cancelled{false};
  };

  /// Fork + exec a fresh worker for `slot`, accept its connection and wait
  /// for its Hello. Caller holds slot.mutex. Throws on failure (child
  /// reaped first).
  void spawn_locked(Slot& slot);

  /// SIGKILL (if still alive) + waitpid + drop the connection. Caller must
  /// NOT hold slot.mutex.
  void reap(Slot& slot);

  WorkerPoolConfig config_;
  std::string worker_bin_;
  std::string scratch_dir_;
  std::vector<std::unique_ptr<Slot>> slots_;
  bool started_ = false;
  std::atomic<std::uint64_t> respawns_{0};
  std::atomic<std::uint64_t> executions_{0};
};

/// The worker-process side (`pdclab worker --connect ... --slot N`): dial
/// the pool's listener, announce readiness with a Hello, then serve
/// Dispatch frames — executing each job on an own Executor while a
/// background streamer batches printed lines into Status frames (plus
/// empty-Status heartbeats, so the pool can tell "long job" from "wedged
/// worker") — until Bye or EOF. Returns the process exit code.
int worker_main(const net::Endpoint& endpoint, int slot,
                const ExecutorConfig& executor, int heartbeat_ms);

}  // namespace pdc::lab
