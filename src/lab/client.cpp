#include "lab/client.hpp"

#include <chrono>

#include "net/errors.hpp"

namespace pdc::lab {

using protocol::Result;
using protocol::Status;

Client::Client(ClientConfig config) : config_(std::move(config)) {
  socket_ = net::dial(config_.endpoint, config_.dial_attempts,
                      std::chrono::milliseconds(config_.connect_timeout_ms),
                      std::chrono::milliseconds(config_.dial_backoff_initial_ms),
                      "lab client");
  open_ = true;
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (!open_) return;
  open_ = false;
  try {
    const mp::Bytes bye = wire::encode_header(wire::FrameKind::Bye, 0);
    net::send_all(socket_, bye, nullptr, /*bye_ok=*/true, "lab client");
  } catch (...) {
    // Best effort; the server treats a bare EOF as a silent leaver.
  }
  socket_.shutdown_both();
  socket_.close();
}

wire::Header Client::read_frame(mp::Bytes* body) {
  wire::Header header;
  if (!net::recv_frame_for(socket_, &header, body,
                           std::chrono::milliseconds(config_.reply_timeout_ms),
                           "lab client")) {
    throw net::PeerLost("lab client: server closed the connection");
  }
  return header;
}

Client::Outcome Client::submit(const protocol::Submit& submit) {
  net::send_all(socket_, protocol::encode_submit(submit), nullptr,
                /*bye_ok=*/false, "lab client");
  // The Accept/Reject for this submit is the next non-Result frame: Results
  // of earlier jobs may land first (a worker beat the admission reply), so
  // park those for wait_result().
  for (;;) {
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Accept: {
        Outcome outcome;
        outcome.accept = protocol::decode_accept(body);
        return outcome;
      }
      case wire::FrameKind::Reject: {
        Outcome outcome;
        outcome.reject = protocol::decode_reject(body);
        return outcome;
      }
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for Accept/Reject");
    }
  }
}

Result Client::wait_result(std::uint64_t job_id) {
  for (;;) {
    if (const auto it = parked_results_.find(job_id);
        it != parked_results_.end()) {
      Result result = std::move(it->second);
      parked_results_.erase(it);
      return result;
    }
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      case wire::FrameKind::Status:
        break;  // a stale status reply; harmless
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for a Result");
    }
  }
}

Status Client::query_status(std::uint64_t job_id) {
  Status query;
  query.job_id = job_id;
  query.state = protocol::JobState::Unknown;
  net::send_all(socket_, protocol::encode_status(query), nullptr,
                /*bye_ok=*/false, "lab client");
  for (;;) {
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Status:
        return protocol::decode_status(body);
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for a Status reply");
    }
  }
}

}  // namespace pdc::lab
