#include "lab/client.hpp"

#include <chrono>

#include "net/errors.hpp"

namespace pdc::lab {

using protocol::Result;
using protocol::Status;

Client::Client(ClientConfig config) : config_(std::move(config)) {
  socket_ = net::dial(config_.endpoint, config_.dial_attempts,
                      std::chrono::milliseconds(config_.connect_timeout_ms),
                      std::chrono::milliseconds(config_.dial_backoff_initial_ms),
                      "lab client");
  open_ = true;
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (!open_) return;
  open_ = false;
  try {
    const mp::Bytes bye = wire::encode_header(wire::FrameKind::Bye, 0);
    net::send_all(socket_, bye, nullptr, /*bye_ok=*/true, "lab client");
  } catch (...) {
    // Best effort; the server treats a bare EOF as a silent leaver.
  }
  socket_.shutdown_both();
  socket_.close();
}

wire::Header Client::read_frame(mp::Bytes* body) {
  wire::Header header;
  if (!net::recv_frame_for(socket_, &header, body,
                           std::chrono::milliseconds(config_.reply_timeout_ms),
                           "lab client")) {
    throw net::PeerLost("lab client: server closed the connection");
  }
  return header;
}

Client::Outcome Client::submit(const protocol::Submit& submit) {
  net::send_all(socket_, protocol::encode_submit(submit), nullptr,
                /*bye_ok=*/false, "lab client");
  // The Accept/Reject for this submit is the next non-Result frame: Results
  // of earlier jobs may land first (a worker beat the admission reply), so
  // park those for wait_result().
  for (;;) {
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Accept: {
        Outcome outcome;
        outcome.accept = protocol::decode_accept(body);
        return outcome;
      }
      case wire::FrameKind::Reject: {
        Outcome outcome;
        outcome.reject = protocol::decode_reject(body);
        return outcome;
      }
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      case wire::FrameKind::Status: {
        // A fast worker's first streamed batch can beat the Accept onto
        // the wire (the job is queued before the Accept is sent); park it
        // for wait_result()'s sink.
        parked_statuses_.push_back(protocol::decode_status(body));
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for Accept/Reject");
    }
  }
}

Result Client::wait_result(std::uint64_t job_id, const StatusSink& on_status) {
  // Replay (and drop) pushes for this job that landed before the caller
  // asked — they arrived while submit()/cancel() was demultiplexing.
  std::erase_if(parked_statuses_, [&](const Status& status) {
    if (status.job_id != job_id) return false;
    if (on_status && !status.output.empty()) on_status(status);
    return true;
  });
  for (;;) {
    if (const auto it = parked_results_.find(job_id);
        it != parked_results_.end()) {
      Result result = std::move(it->second);
      parked_results_.erase(it);
      return result;
    }
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      case wire::FrameKind::Status: {
        // A pushed output batch for our job goes to the sink; anything else
        // (stale query reply, another job's push) is harmless noise — the
        // terminal Result always carries the complete output.
        if (!on_status) break;
        const Status status = protocol::decode_status(body);
        if (status.job_id == job_id && !status.output.empty()) {
          on_status(status);
        }
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for a Result");
    }
  }
}

Client::CancelOutcome Client::cancel(std::uint64_t job_id,
                                     const std::string& token,
                                     const std::string& tenant) {
  protocol::Cancel frame;
  frame.token = token;
  frame.tenant = tenant;
  frame.job_id = job_id;
  net::send_all(socket_, protocol::encode_cancel(frame), nullptr,
                /*bye_ok=*/false, "lab client");
  // The answer is the first Reject, or the Status ack for this job: an ack
  // is Done with no output lines, which no streamed push ever is.
  for (;;) {
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Status: {
        Status status = protocol::decode_status(body);
        if (status.job_id == job_id &&
            status.state == protocol::JobState::Done &&
            status.output.empty()) {
          CancelOutcome outcome;
          outcome.ack = std::move(status);
          return outcome;
        }
        break;  // a streamed push racing the cancel; drop it
      }
      case wire::FrameKind::Reject: {
        CancelOutcome outcome;
        outcome.reject = protocol::decode_reject(body);
        return outcome;
      }
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for a Cancel answer");
    }
  }
}

Client::ReportOutcome Client::report(const std::string& token,
                                     const std::string& tenant,
                                     const std::string& cohort) {
  protocol::Report query;
  query.role = protocol::ReportRole::Query;
  query.token = token;
  query.tenant = tenant;
  query.cohort = cohort;
  net::send_all(socket_, protocol::encode_report(query), nullptr,
                /*bye_ok=*/false, "lab client");
  ReportOutcome outcome;
  for (;;) {
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Report: {
        protocol::Report reply = protocol::decode_report(body);
        if (reply.role == protocol::ReportRole::End) return outcome;
        if (reply.role != protocol::ReportRole::Cohort) {
          throw net::ProtocolError(
              "lab client: server echoed a Report query back");
        }
        outcome.cohorts.push_back(std::move(reply));
        break;
      }
      case wire::FrameKind::Reject: {
        outcome.reject = protocol::decode_reject(body);
        return outcome;
      }
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      case wire::FrameKind::Status: {
        parked_statuses_.push_back(protocol::decode_status(body));
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for a Report stream");
    }
  }
}

Status Client::query_status(std::uint64_t job_id) {
  Status query;
  query.job_id = job_id;
  query.state = protocol::JobState::Unknown;
  net::send_all(socket_, protocol::encode_status(query), nullptr,
                /*bye_ok=*/false, "lab client");
  for (;;) {
    mp::Bytes body;
    const wire::Header header = read_frame(&body);
    switch (header.kind) {
      case wire::FrameKind::Status:
        return protocol::decode_status(body);
      case wire::FrameKind::Result: {
        Result result = protocol::decode_result(body);
        parked_results_[result.job_id] = std::move(result);
        break;
      }
      default:
        throw net::ProtocolError(
            "lab client: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " while waiting for a Status reply");
    }
  }
}

}  // namespace pdc::lab
