#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mp/message.hpp"
#include "net/wire.hpp"
#include "store/store.hpp"

namespace pdc::lab {
/// The lab subsystem frames everything in the PDCN wire vocabulary.
namespace wire = pdc::net::wire;
}  // namespace pdc::lab

namespace pdc::lab::protocol {

// The lab service speaks PDCN frames (net/wire.hpp) with the Submit..Reject
// frame kinds. Every body decoder here reads through wire::Reader, so a
// hostile client hits the same typed-ProtocolError-before-allocation wall
// the transport's Data frames do: the 1 MiB control-frame clamp at the
// header, then per-field clamps before any string/vector is sized.

/// Clamp on the auth token and tenant id strings.
inline constexpr std::uint32_t kMaxIdentityBytes = 256;

/// Clamp on a patternlet/exemplar/notebook program name.
inline constexpr std::uint32_t kMaxNameBytes = 256;

/// Clamp on an inline source payload (a notebook cell). Validated against
/// the bytes actually present before the std::string is sized — an
/// oversized length prefix is rejected, not allocated.
inline constexpr std::uint32_t kMaxSourceBytes = 64u << 10;  // 64 KiB

/// Clamps on a Result frame's captured output.
inline constexpr std::uint32_t kMaxOutputLines = 4096;
inline constexpr std::uint32_t kMaxLineBytes = 4096;

/// Clamp on a Reject reason / Result error string.
inline constexpr std::uint32_t kMaxReasonBytes = 1024;

/// Largest world size a submission may request.
inline constexpr int kMaxProcs = 16;

/// What a Submit asks the server to run.
enum class JobKind : std::uint16_t {
  Patternlet = 1,  ///< a named mpi patternlet rank program (`name`, `np`)
  Exemplar = 2,    ///< a named exemplar kernel; `seed` feeds its RNG
  Notebook = 3,    ///< notebook cell source executed by the mpi4py engine
  Grade = 4,       ///< autograde one mutant: `name` is a MutantSpec id
                   ///< ("spmd~race#0@np4"), `seed` the schedule seed base,
                   ///< `source` optional "k=N watchdog_ms=N" options
};

const char* job_kind_name(JobKind kind) noexcept;

/// Client → server: one run request. `token` authenticates, `tenant`
/// identifies the student for quota/fairness, the rest describes the job.
struct Submit {
  std::string token;
  std::string tenant;
  JobKind kind = JobKind::Patternlet;
  std::string name;        ///< program name ("spmd", "pi", ...); "" for Notebook
  int np = 1;              ///< requested world size
  std::uint64_t seed = 0;  ///< exemplar RNG seed (part of the cache digest)
  std::string source;      ///< notebook cell source; "" otherwise

  bool operator==(const Submit&) const = default;
};

/// Server → client: the submission was admitted.
struct Accept {
  std::uint64_t job_id = 0;
  std::uint32_t queue_position = 0;  ///< 0 = dispatched without queuing
};

/// Job lifecycle states reported by Status frames.
enum class JobState : std::uint16_t {
  Unknown = 0,  ///< the server has no such job (also the query value)
  Queued = 1,
  Running = 2,
  Done = 3,
};

/// Client → server: `state == Unknown` asks about `job_id`.
/// Server → client: the reply, with the server's current queue depth.
/// While a job runs, the server may also push unsolicited Status frames
/// carrying `output` — the lines the job printed since the last push, a
/// bounded best-effort preview. The terminal Result always carries the
/// complete output; a dropped or truncated Status stream loses nothing.
struct Status {
  std::uint64_t job_id = 0;
  JobState state = JobState::Unknown;
  std::uint32_t queue_depth = 0;
  std::vector<std::string> output;  ///< incremental lines; usually empty

  bool operator==(const Status&) const = default;
};

/// Server → client: terminal outcome of an admitted job.
struct Result {
  std::uint64_t job_id = 0;
  std::int32_t exit_code = 0;  ///< 0 = the program ran to completion
  bool cached = false;         ///< served from the result cache, not executed
  std::uint64_t exec_us = 0;   ///< execution time (the cached run's, if cached)
  std::vector<std::string> output;  ///< captured lines, run order
  std::string error;                ///< one-line failure cause; "" when ok

  bool operator==(const Result&) const = default;
};

/// Why a submission was refused.
enum class RejectCode : std::uint16_t {
  BadToken = 1,    ///< wrong auth token (counts toward the firewall lockout)
  LockedOut = 2,   ///< the tenant tripped the eager-beaver firewall
  QuotaFull = 3,   ///< tenant's queued-jobs quota exhausted
  BadRequest = 4,  ///< unknown program, np out of range, malformed fields
  Overloaded = 5,  ///< admission aborted (chaos or shedding); retry later
  Shutdown = 6,    ///< the server is draining
};

const char* reject_code_name(RejectCode code) noexcept;

struct Reject {
  RejectCode code = RejectCode::BadRequest;
  std::string reason;
};

/// Client → server: withdraw an admitted job. A queued job is dequeued
/// (its tenant's quota slot frees immediately); a running job's worker
/// process is killed. `token` re-authenticates and `tenant` must match
/// the submitting tenant — one student cannot cancel another's job. The
/// server acks a successful cancel with Status{job_id, Done} and answers
/// an unknown/foreign/already-finished job with a Reject.
struct Cancel {
  std::string token;
  std::string tenant;
  std::uint64_t job_id = 0;

  bool operator==(const Cancel&) const = default;
};

/// Lab server → worker process: execute this admitted job. Internal to
/// the shard pool (tools/pdclab `worker` mode); never sent by clients —
/// a Dispatch arriving on a client session is a protocol violation.
struct Dispatch {
  std::uint64_t job_id = 0;
  Submit submit;

  bool operator==(const Dispatch&) const = default;
};

/// Role of a Report frame in the query/stream exchange.
enum class ReportRole : std::uint16_t {
  Query = 0,   ///< client → server: send me cohort aggregates
  Cohort = 1,  ///< server → client: one cohort's aggregate
  End = 2,     ///< server → client: stream complete (`cohort` = "" always)
};

/// Clamp on the distinct verdict names one cohort aggregate may carry.
inline constexpr std::uint32_t kMaxReportVerdicts = 64;
/// Clamp on the histogram shape a Report frame may claim.
inline constexpr std::uint32_t kMaxReportBins = 256;

/// Cohort-aggregate exchange. The client sends a Query (`cohort` = "" asks
/// for every cohort; a name asks for that one, answered even when empty).
/// The server — store-backed only; without a store the query is Rejected —
/// streams one Cohort frame per cohort, sorted by name, then one End frame.
/// The aggregate payload is a store::CohortReport: counts plus the folded
/// Welford/Histogram state, deterministic for a given record set.
struct Report {
  ReportRole role = ReportRole::Query;
  std::string token;   ///< Query only: authenticates like Submit
  std::string tenant;  ///< Query only: requester (firewall accounting)
  std::string cohort;  ///< Query: filter ("" = all); Cohort: the name
  store::CohortReport aggregate;  ///< Cohort role only

  bool operator==(const Report&) const = default;
};

// ---- framing -------------------------------------------------------------
// encode_* return a complete frame (header + body) ready for send_all;
// decode_* take the received body for the matching FrameKind and throw
// net::ProtocolError on anything malformed, truncated, oversized or
// trailing-byte-ridden.

mp::Bytes encode_submit(const Submit& submit);
Submit decode_submit(const mp::Bytes& body);

mp::Bytes encode_accept(const Accept& accept);
Accept decode_accept(const mp::Bytes& body);

mp::Bytes encode_status(const Status& status);
Status decode_status(const mp::Bytes& body);

mp::Bytes encode_result(const Result& result);
Result decode_result(const mp::Bytes& body);

mp::Bytes encode_reject(const Reject& reject);
Reject decode_reject(const mp::Bytes& body);

mp::Bytes encode_cancel(const Cancel& cancel);
Cancel decode_cancel(const mp::Bytes& body);

mp::Bytes encode_dispatch(const Dispatch& dispatch);
Dispatch decode_dispatch(const mp::Bytes& body);

mp::Bytes encode_report(const Report& report);
Report decode_report(const mp::Bytes& body);

/// Content digest of a submission: everything that determines the job's
/// output (kind, name, np, seed, source) and nothing that doesn't (token,
/// tenant) — so two students running the same patternlet share one cached
/// golden output. FNV-1a over the canonical field encoding.
std::uint64_t digest(const Submit& submit) noexcept;

}  // namespace pdc::lab::protocol
