#include "lab/protocol.hpp"

#include <bit>

#include "net/errors.hpp"

namespace pdc::lab::protocol {

using net::ProtocolError;
using wire::FrameKind;
using wire::Reader;

const char* job_kind_name(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::Patternlet: return "patternlet";
    case JobKind::Exemplar: return "exemplar";
    case JobKind::Notebook: return "notebook";
    case JobKind::Grade: return "grade";
  }
  return "?";
}

const char* reject_code_name(RejectCode code) noexcept {
  switch (code) {
    case RejectCode::BadToken: return "bad-token";
    case RejectCode::LockedOut: return "locked-out";
    case RejectCode::QuotaFull: return "quota-full";
    case RejectCode::BadRequest: return "bad-request";
    case RejectCode::Overloaded: return "overloaded";
    case RejectCode::Shutdown: return "shutdown";
  }
  return "?";
}

namespace {

/// Header + body in one buffer (lab frames are small; no shared payload).
mp::Bytes frame(FrameKind kind, const mp::Bytes& body) {
  mp::Bytes out = wire::encode_header(kind, body.size());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

JobKind decode_job_kind(std::uint16_t raw) {
  if (raw < static_cast<std::uint16_t>(JobKind::Patternlet) ||
      raw > static_cast<std::uint16_t>(JobKind::Grade)) {
    throw ProtocolError("lab: unknown job kind " + std::to_string(raw));
  }
  return static_cast<JobKind>(raw);
}

JobState decode_job_state(std::uint16_t raw) {
  if (raw > static_cast<std::uint16_t>(JobState::Done)) {
    throw ProtocolError("lab: unknown job state " + std::to_string(raw));
  }
  return static_cast<JobState>(raw);
}

}  // namespace

mp::Bytes encode_submit(const Submit& submit) {
  mp::Bytes body;
  wire::put_string(body, submit.token);
  wire::put_string(body, submit.tenant);
  wire::put_u16(body, static_cast<std::uint16_t>(submit.kind));
  wire::put_string(body, submit.name);
  wire::put_i32(body, submit.np);
  wire::put_u64(body, submit.seed);
  wire::put_string(body, submit.source);
  return frame(FrameKind::Submit, body);
}

Submit decode_submit(const mp::Bytes& body) {
  Reader r(body);
  Submit submit;
  submit.token = r.string(kMaxIdentityBytes);
  submit.tenant = r.string(kMaxIdentityBytes);
  submit.kind = decode_job_kind(r.u16());
  submit.name = r.string(kMaxNameBytes);
  submit.np = r.i32();
  submit.seed = r.u64();
  submit.source = r.string(kMaxSourceBytes);
  r.expect_end();
  return submit;
}

mp::Bytes encode_accept(const Accept& accept) {
  mp::Bytes body;
  wire::put_u64(body, accept.job_id);
  wire::put_u32(body, accept.queue_position);
  return frame(FrameKind::Accept, body);
}

Accept decode_accept(const mp::Bytes& body) {
  Reader r(body);
  Accept accept;
  accept.job_id = r.u64();
  accept.queue_position = r.u32();
  r.expect_end();
  return accept;
}

namespace {

/// Shared by Status and Result: a counted list of clamped lines, with the
/// hostile-prefix check (each line costs at least its 4-byte length
/// prefix) before any reserve().
void put_lines(mp::Bytes& body, const std::vector<std::string>& lines) {
  wire::put_u32(body, static_cast<std::uint32_t>(lines.size()));
  for (const std::string& line : lines) wire::put_string(body, line);
}

std::vector<std::string> read_lines(Reader& r, const char* what) {
  const std::uint32_t count = r.u32();
  if (count > kMaxOutputLines) {
    throw ProtocolError(std::string("lab: ") + what + " line count " +
                        std::to_string(count) + " exceeds the clamp of " +
                        std::to_string(kMaxOutputLines));
  }
  if (count > r.remaining() / 4) {
    throw ProtocolError(std::string("lab: ") + what + " line count " +
                        std::to_string(count) + " exceeds what " +
                        std::to_string(r.remaining()) +
                        " body bytes could hold");
  }
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    lines.push_back(r.string(kMaxLineBytes));
  }
  return lines;
}

}  // namespace

mp::Bytes encode_status(const Status& status) {
  mp::Bytes body;
  wire::put_u64(body, status.job_id);
  wire::put_u16(body, static_cast<std::uint16_t>(status.state));
  wire::put_u32(body, status.queue_depth);
  put_lines(body, status.output);
  return frame(FrameKind::Status, body);
}

Status decode_status(const mp::Bytes& body) {
  Reader r(body);
  Status status;
  status.job_id = r.u64();
  status.state = decode_job_state(r.u16());
  status.queue_depth = r.u32();
  status.output = read_lines(r, "status output");
  r.expect_end();
  return status;
}

mp::Bytes encode_result(const Result& result) {
  mp::Bytes body;
  wire::put_u64(body, result.job_id);
  wire::put_i32(body, result.exit_code);
  wire::put_u16(body, result.cached ? 1 : 0);
  wire::put_u64(body, result.exec_us);
  wire::put_string(body, result.error);
  put_lines(body, result.output);
  return frame(FrameKind::Result, body);
}

Result decode_result(const mp::Bytes& body) {
  Reader r(body);
  Result result;
  result.job_id = r.u64();
  result.exit_code = r.i32();
  result.cached = r.u16() != 0;
  result.exec_us = r.u64();
  result.error = r.string(kMaxReasonBytes);
  result.output = read_lines(r, "result output");
  r.expect_end();
  return result;
}

mp::Bytes encode_reject(const Reject& reject) {
  mp::Bytes body;
  wire::put_u16(body, static_cast<std::uint16_t>(reject.code));
  wire::put_string(body, reject.reason);
  return frame(FrameKind::Reject, body);
}

Reject decode_reject(const mp::Bytes& body) {
  Reader r(body);
  Reject reject;
  const std::uint16_t raw = r.u16();
  if (raw < static_cast<std::uint16_t>(RejectCode::BadToken) ||
      raw > static_cast<std::uint16_t>(RejectCode::Shutdown)) {
    throw ProtocolError("lab: unknown reject code " + std::to_string(raw));
  }
  reject.code = static_cast<RejectCode>(raw);
  reject.reason = r.string(kMaxReasonBytes);
  r.expect_end();
  return reject;
}

mp::Bytes encode_cancel(const Cancel& cancel) {
  mp::Bytes body;
  wire::put_string(body, cancel.token);
  wire::put_string(body, cancel.tenant);
  wire::put_u64(body, cancel.job_id);
  return frame(FrameKind::Cancel, body);
}

Cancel decode_cancel(const mp::Bytes& body) {
  Reader r(body);
  Cancel cancel;
  cancel.token = r.string(kMaxIdentityBytes);
  cancel.tenant = r.string(kMaxIdentityBytes);
  cancel.job_id = r.u64();
  r.expect_end();
  return cancel;
}

mp::Bytes encode_dispatch(const Dispatch& dispatch) {
  mp::Bytes body;
  wire::put_u64(body, dispatch.job_id);
  wire::put_string(body, dispatch.submit.token);
  wire::put_string(body, dispatch.submit.tenant);
  wire::put_u16(body, static_cast<std::uint16_t>(dispatch.submit.kind));
  wire::put_string(body, dispatch.submit.name);
  wire::put_i32(body, dispatch.submit.np);
  wire::put_u64(body, dispatch.submit.seed);
  wire::put_string(body, dispatch.submit.source);
  return frame(FrameKind::Dispatch, body);
}

Dispatch decode_dispatch(const mp::Bytes& body) {
  Reader r(body);
  Dispatch dispatch;
  dispatch.job_id = r.u64();
  dispatch.submit.token = r.string(kMaxIdentityBytes);
  dispatch.submit.tenant = r.string(kMaxIdentityBytes);
  dispatch.submit.kind = decode_job_kind(r.u16());
  dispatch.submit.name = r.string(kMaxNameBytes);
  dispatch.submit.np = r.i32();
  dispatch.submit.seed = r.u64();
  dispatch.submit.source = r.string(kMaxSourceBytes);
  r.expect_end();
  return dispatch;
}

mp::Bytes encode_report(const Report& report) {
  mp::Bytes body;
  wire::put_u16(body, static_cast<std::uint16_t>(report.role));
  wire::put_string(body, report.token);
  wire::put_string(body, report.tenant);
  wire::put_string(body, report.cohort);
  const store::CohortReport& a = report.aggregate;
  wire::put_u64(body, a.results);
  wire::put_u64(body, a.failures);
  wire::put_u64(body, a.grades);
  wire::put_u32(body, static_cast<std::uint32_t>(a.verdicts.size()));
  for (const auto& [verdict, count] : a.verdicts) {
    wire::put_string(body, verdict);
    wire::put_u64(body, count);
  }
  wire::put_u64(body, a.matched);
  wire::put_u64(body, a.explored);
  wire::put_u64(body, a.divergence_count);
  wire::put_u64(body, std::bit_cast<std::uint64_t>(a.divergence_mean));
  wire::put_u64(body, std::bit_cast<std::uint64_t>(a.divergence_stddev));
  wire::put_u64(body, std::bit_cast<std::uint64_t>(a.divergence_min));
  wire::put_u64(body, std::bit_cast<std::uint64_t>(a.divergence_max));
  wire::put_u32(body, static_cast<std::uint32_t>(a.histogram.size()));
  for (const std::uint64_t count : a.histogram) wire::put_u64(body, count);
  return frame(FrameKind::Report, body);
}

Report decode_report(const mp::Bytes& body) {
  Reader r(body);
  Report report;
  const std::uint16_t role = r.u16();
  if (role > static_cast<std::uint16_t>(ReportRole::End)) {
    throw ProtocolError("lab: unknown report role " + std::to_string(role));
  }
  report.role = static_cast<ReportRole>(role);
  report.token = r.string(kMaxIdentityBytes);
  report.tenant = r.string(kMaxIdentityBytes);
  report.cohort = r.string(kMaxIdentityBytes);
  store::CohortReport& a = report.aggregate;
  a.cohort = report.cohort;
  a.results = r.u64();
  a.failures = r.u64();
  a.grades = r.u64();
  const std::uint32_t verdicts = r.u32();
  if (verdicts > kMaxReportVerdicts) {
    throw ProtocolError("lab: report claims " + std::to_string(verdicts) +
                        " verdict kinds (clamp " +
                        std::to_string(kMaxReportVerdicts) + ")");
  }
  a.verdicts.reserve(verdicts);
  for (std::uint32_t i = 0; i < verdicts; ++i) {
    std::string verdict = r.string(kMaxNameBytes);
    const std::uint64_t count = r.u64();
    a.verdicts.emplace_back(std::move(verdict), count);
  }
  a.matched = r.u64();
  a.explored = r.u64();
  a.divergence_count = r.u64();
  a.divergence_mean = std::bit_cast<double>(r.u64());
  a.divergence_stddev = std::bit_cast<double>(r.u64());
  a.divergence_min = std::bit_cast<double>(r.u64());
  a.divergence_max = std::bit_cast<double>(r.u64());
  const std::uint32_t bins = r.u32();
  if (bins > kMaxReportBins) {
    throw ProtocolError("lab: report claims " + std::to_string(bins) +
                        " histogram bins (clamp " +
                        std::to_string(kMaxReportBins) + ")");
  }
  if (bins > r.remaining() / 8) {
    throw ProtocolError("lab: report histogram bin count " +
                        std::to_string(bins) +
                        " exceeds what the frame carries");
  }
  a.histogram.reserve(bins);
  for (std::uint32_t i = 0; i < bins; ++i) a.histogram.push_back(r.u64());
  r.expect_end();
  return report;
}

std::uint64_t digest(const Submit& submit) noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](const void* data, std::size_t n) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_string = [&](const std::string& s) noexcept {
    const std::uint64_t len = s.size();
    mix(&len, sizeof len);  // length-prefixed so "ab","c" != "a","bc"
    mix(s.data(), s.size());
  };
  const std::uint16_t kind = static_cast<std::uint16_t>(submit.kind);
  mix(&kind, sizeof kind);
  mix_string(submit.name);
  const std::int32_t np = submit.np;
  mix(&np, sizeof np);
  mix(&submit.seed, sizeof submit.seed);
  mix_string(submit.source);
  return h;
}

}  // namespace pdc::lab::protocol
