#include "lab/shard.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "chaos/chaos.hpp"
#include "net/errors.hpp"
#include "net/harness.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::lab {

using protocol::Result;
using protocol::Status;
using protocol::Submit;

namespace {

constexpr std::chrono::milliseconds ms(int n) {
  return std::chrono::milliseconds(n);
}

/// The binary the pool execs: configured path, then $PDCLAB_WORKER_BIN
/// (how the tests and benches point a non-pdclab host process at the real
/// binary), then this very executable when it *is* pdclab.
std::string resolve_worker_bin(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("PDCLAB_WORKER_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    const std::string self(buf);
    const std::size_t slash = self.rfind('/');
    const std::string base =
        slash == std::string::npos ? self : self.substr(slash + 1);
    if (base == "pdclab") return self;
  }
  throw InvalidArgument(
      "lab shard: cannot resolve the pdclab worker binary (set "
      "WorkerPoolConfig::worker_bin or PDCLAB_WORKER_BIN)");
}

Result cancelled_result(std::uint64_t job_id) {
  Result result;
  result.job_id = job_id;
  result.exit_code = 130;  // the interrupted-job convention
  result.error = "cancelled by tenant";
  return result;
}

}  // namespace

WorkerPool::WorkerPool(WorkerPoolConfig config) : config_(std::move(config)) {}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::start() {
  if (started_) return;
  worker_bin_ = resolve_worker_bin(config_.worker_bin);
  scratch_dir_ = net::make_scratch_dir("pdclab-shard");
  slots_.clear();
  slots_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    auto slot = std::make_unique<Slot>();
    slot->index = w;
    slot->endpoint.kind = net::Endpoint::Kind::Unix;
    slot->endpoint.path = scratch_dir_ + "/worker-" + std::to_string(w) + ".sock";
    slot->listener = net::listen_at(slot->endpoint, 1);
    slots_.push_back(std::move(slot));
  }
  started_ = true;
  for (auto& slot : slots_) {
    std::lock_guard lock(slot->mutex);
    try {
      spawn_locked(*slot);
    } catch (const Error&) {
      // Leave the slot empty; its first execute() retries the spawn and
      // reports the job-level failure if the binary really is broken.
    }
  }
}

void WorkerPool::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    std::lock_guard lock(slot.mutex);
    if (slot.conn.valid()) {
      try {
        net::send_all(slot.conn, wire::encode_header(wire::FrameKind::Bye, 0),
                      nullptr, /*bye_ok=*/true, "lab shard");
      } catch (...) {
        // The worker may already be gone; the reap below still runs.
      }
      slot.conn.shutdown_both();
      slot.conn.close();
    }
    if (slot.pid > 0) {
      // The worker exits on Bye/EOF; give it a short grace, then escalate.
      int status = 0;
      bool reaped = false;
      for (int i = 0; i < 50; ++i) {
        if (::waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(ms(10));
      }
      if (!reaped) {
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &status, 0);
      }
      slot.pid = -1;
    }
    slot.listener.close();
  }
  slots_.clear();
  if (!scratch_dir_.empty()) net::remove_scratch_dir(scratch_dir_);
  scratch_dir_.clear();
}

pid_t WorkerPool::slot_pid(int slot) const {
  const Slot& s = *slots_[static_cast<std::size_t>(slot)];
  std::lock_guard lock(s.mutex);
  return s.pid;
}

void WorkerPool::spawn_locked(Slot& slot) {
  const std::string endpoint_arg = slot.endpoint.to_string();
  const std::string slot_arg = std::to_string(slot.index);
  const std::string max_np_arg = std::to_string(config_.executor.max_np);
  const std::string heartbeat_arg = std::to_string(config_.heartbeat_ms);
  const char* executor_arg = exec_mode_name(config_.executor.mode);

  const pid_t pid = ::fork();
  if (pid < 0) throw net::ConnectionError("lab shard: fork failed");
  if (pid == 0) {
    // Child: drop every inherited descriptor above stdio (the server's
    // listener, client sessions, sibling workers' sockets) so a worker
    // never holds another connection open past its owner, then exec.
    for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    ::execl(worker_bin_.c_str(), "pdclab", "worker", "--connect",
            endpoint_arg.c_str(), "--slot", slot_arg.c_str(), "--executor",
            executor_arg, "--max-np", max_np_arg.c_str(), "--heartbeat-ms",
            heartbeat_arg.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the parent sees EOF-before-Hello
  }

  try {
    net::Socket conn = net::accept_for(
        slot.listener, ms(config_.spawn_timeout_ms), "lab shard spawn");
    wire::Header header;
    mp::Bytes body;
    if (!net::recv_frame_for(conn, &header, &body, ms(config_.spawn_timeout_ms),
                             "lab shard spawn")) {
      throw net::PeerLost("lab shard: worker exited before its Hello");
    }
    if (header.kind != wire::FrameKind::Hello) {
      throw net::ProtocolError("lab shard: worker opened with frame kind " +
                               std::to_string(static_cast<int>(header.kind)) +
                               " instead of Hello");
    }
    (void)wire::decode_hello(body);
    slot.conn = std::move(conn);
    slot.pid = pid;
  } catch (...) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw;
  }
  if (slot.ever_spawned) {
    respawns_.fetch_add(1, std::memory_order_relaxed);
    trace::Counter("lab.shard.respawns").add(1.0);
  }
  slot.ever_spawned = true;
}

void WorkerPool::reap(Slot& slot) {
  std::lock_guard lock(slot.mutex);
  if (slot.pid > 0) {
    ::kill(slot.pid, SIGKILL);  // may already be dead; reap either way
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    slot.pid = -1;
  }
  slot.conn.shutdown_both();
  slot.conn.close();
}

Result WorkerPool::execute(int slot_index, std::uint64_t job_id,
                           const Submit& submit, const StatusSink& on_status) {
  Slot& slot = *slots_[static_cast<std::size_t>(slot_index)];
  slot.cancelled.store(false, std::memory_order_release);
  slot.job.store(job_id, std::memory_order_release);
  executions_.fetch_add(1, std::memory_order_relaxed);

  Result result;
  bool have_result = false;
  std::string last_error;
  for (int attempt = 1; attempt <= config_.max_attempts && !have_result;
       ++attempt) {
    if (slot.cancelled.load(std::memory_order_acquire)) {
      result = cancelled_result(job_id);
      have_result = true;
      break;
    }
    {
      std::lock_guard lock(slot.mutex);
      if (!slot.conn.valid()) {
        try {
          spawn_locked(slot);
        } catch (const Error& error) {
          last_error = error.what();
          continue;
        }
      }
    }
    try {
      net::send_all(slot.conn,
                    protocol::encode_dispatch({job_id, submit}), nullptr,
                    /*bye_ok=*/false, "lab shard");
    } catch (const Error& error) {
      // The worker died idle (or a cancel's kill landed between jobs):
      // reap and let the next attempt respawn.
      last_error = error.what();
      reap(slot);
      continue;
    }
    // The worker-kill chaos lane: an injected abort right after dispatch
    // becomes a real SIGKILL of the worker process — the recovery path
    // below (EOF → reap → respawn → redispatch) is what is under test.
    try {
      chaos::on_op(kShardKillSite);
    } catch (const chaos::InjectedAbort&) {
      std::lock_guard lock(slot.mutex);
      if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
    }
    try {
      for (;;) {
        wire::Header header;
        mp::Bytes body;
        if (!net::recv_frame_for(slot.conn, &header, &body,
                                 ms(config_.hang_timeout_ms), "lab shard")) {
          throw net::PeerLost("lab shard: worker closed mid-job");
        }
        if (header.kind == wire::FrameKind::Status) {
          // Heartbeat (empty) or live output; either way the worker is
          // making progress, which is what resets the recv deadline.
          Status status = protocol::decode_status(body);
          if (on_status && !status.output.empty() && status.job_id == job_id) {
            on_status(status);
          }
          continue;
        }
        if (header.kind == wire::FrameKind::Result) {
          result = protocol::decode_result(body);
          if (result.job_id != job_id) {
            throw net::ProtocolError("lab shard: worker answered job " +
                                     std::to_string(result.job_id) +
                                     " instead of " + std::to_string(job_id));
          }
          have_result = true;
          break;
        }
        throw net::ProtocolError(
            "lab shard: unexpected frame kind " +
            std::to_string(static_cast<int>(header.kind)) +
            " from a worker");
      }
    } catch (const Error& error) {
      // EOF (crash, SIGKILL), a hang past the heartbeat deadline, or a
      // confused worker: in every case the process is untrustworthy. Reap
      // it; a cancelled job terminates here, anything else is respawned
      // and redispatched until the attempt budget runs out.
      last_error = error.what();
      reap(slot);
      trace::instant("lab.shard.worker_lost", "lab");
      if (slot.cancelled.load(std::memory_order_acquire)) {
        result = cancelled_result(job_id);
        have_result = true;
      }
    }
  }
  if (!have_result) {
    result = Result{};
    result.job_id = job_id;
    result.exit_code = 2;
    result.error = "lab shard: job failed after " +
                   std::to_string(config_.max_attempts) +
                   " worker attempts (last: " + last_error + ")";
  }
  slot.job.store(0, std::memory_order_release);
  return result;
}

bool WorkerPool::cancel(std::uint64_t job_id) {
  for (auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    std::lock_guard lock(slot.mutex);
    if (slot.job.load(std::memory_order_acquire) != job_id) continue;
    slot.cancelled.store(true, std::memory_order_release);
    if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
    trace::instant("lab.shard.cancel_kill", "lab");
    return true;
  }
  return false;
}

// ---- the worker-process side ---------------------------------------------

namespace {

/// Batches the lines a running job prints into Status frames on a fixed
/// cadence, sending an empty heartbeat Status when nothing was printed —
/// the pool's liveness signal. add() is entered from rank threads; all
/// socket writes happen on the flusher thread (and once more, after it is
/// joined, from stop()'s final flush), so no send lock is needed: the
/// main thread only writes the Result after stop() returns.
class Streamer {
 public:
  Streamer(net::Socket& socket, std::uint64_t job_id, int interval_ms)
      : socket_(socket), job_id_(job_id), interval_(std::max(1, interval_ms)) {
    flusher_ = std::thread([this] { loop(); });
  }

  void add(const std::string& line) {
    std::lock_guard lock(mutex_);
    // Clamp per line so every pushed frame stays decodable; the terminal
    // Result still carries the job's own lines.
    pending_.push_back(line.size() > protocol::kMaxLineBytes
                           ? line.substr(0, protocol::kMaxLineBytes)
                           : line);
  }

  /// Join the flusher, then flush whatever is still buffered — every
  /// streamed line is on the wire before the caller's Result follows.
  void stop() {
    {
      std::lock_guard lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    flusher_.join();
    flush(/*heartbeat_when_empty=*/false);
  }

 private:
  void loop() {
    std::unique_lock lock(mutex_);
    while (!done_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_),
                   [this] { return done_; });
      if (done_) break;
      lock.unlock();
      flush(/*heartbeat_when_empty=*/true);
      lock.lock();
    }
  }

  void flush(bool heartbeat_when_empty) {
    std::vector<std::string> lines;
    {
      std::lock_guard lock(mutex_);
      lines.swap(pending_);
    }
    try {
      if (lines.empty()) {
        if (!heartbeat_when_empty) return;
        Status beat;
        beat.job_id = job_id_;
        beat.state = protocol::JobState::Running;
        net::send_all(socket_, protocol::encode_status(beat), nullptr,
                      /*bye_ok=*/false, "lab worker");
        return;
      }
      for (std::size_t at = 0; at < lines.size();
           at += protocol::kMaxOutputLines) {
        const std::size_t end =
            std::min(lines.size(), at + protocol::kMaxOutputLines);
        Status status;
        status.job_id = job_id_;
        status.state = protocol::JobState::Running;
        status.output.assign(std::make_move_iterator(lines.begin() +
                                                     static_cast<long>(at)),
                             std::make_move_iterator(lines.begin() +
                                                     static_cast<long>(end)));
        net::send_all(socket_, protocol::encode_status(status), nullptr,
                      /*bye_ok=*/false, "lab worker");
      }
    } catch (const Error&) {
      // The server is gone; the job still runs to completion and the
      // Result send will surface the dead socket to the main loop.
    }
  }

  net::Socket& socket_;
  const std::uint64_t job_id_;
  const int interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> pending_;
  bool done_ = false;
  std::thread flusher_;
};

}  // namespace

int worker_main(const net::Endpoint& endpoint, int slot,
                const ExecutorConfig& executor_config, int heartbeat_ms) {
  try {
    net::Socket socket = net::dial(endpoint, /*attempts=*/50, ms(2000), ms(1),
                                   "lab worker");
    wire::Hello hello;
    hello.job = "pdclab-shard";
    hello.np = 0;
    hello.rank = slot;
    hello.hostname = "pdclab-worker";
    const mp::Bytes hello_body = wire::encode_hello(hello);
    mp::Bytes hello_frame =
        wire::encode_header(wire::FrameKind::Hello, hello_body.size());
    hello_frame.insert(hello_frame.end(), hello_body.begin(), hello_body.end());
    net::send_all(socket, hello_frame, nullptr, /*bye_ok=*/false, "lab worker");

    Executor executor(executor_config);
    for (;;) {
      wire::Header header;
      mp::Bytes body;
      if (!net::recv_frame(socket, &header, &body, "lab worker")) {
        return 0;  // the server is gone; so is our reason to exist
      }
      if (header.kind == wire::FrameKind::Bye) return 0;
      if (header.kind != wire::FrameKind::Dispatch) {
        std::fprintf(stderr, "pdclab worker: unexpected frame kind %d\n",
                     static_cast<int>(header.kind));
        return 1;
      }
      const protocol::Dispatch dispatch = protocol::decode_dispatch(body);
      Streamer streamer(socket, dispatch.job_id, heartbeat_ms);
      // Test hook: every lab job finishes in milliseconds, far too fast to
      // cancel or SIGKILL mid-run deterministically. Holding here — after
      // the streamer starts heartbeating, before the job executes — pins
      // the job in its running state for the cancellation race tests.
      if (const char* hold = std::getenv("PDCLAB_TEST_HOLD_MS");
          hold != nullptr && *hold != '\0') {
        std::this_thread::sleep_for(ms(std::atoi(hold)));
      }
      Result result = executor.execute(
          dispatch.submit,
          [&streamer](const std::string& line) { streamer.add(line); });
      streamer.stop();
      result.job_id = dispatch.job_id;
      net::send_all(socket, protocol::encode_result(result), nullptr,
                    /*bye_ok=*/false, "lab worker");
    }
  } catch (const Error& error) {
    std::fprintf(stderr, "pdclab worker: %s\n", error.what());
    return 1;
  }
}

}  // namespace pdc::lab
