#include "lab/cache.hpp"

namespace pdc::lab {

std::optional<protocol::Result> ResultCache::lookup(std::uint64_t digest) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(digest);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  protocol::Result result = it->second->result;
  result.cached = true;
  return result;
}

void ResultCache::insert(std::uint64_t digest, protocol::Result result) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  if (const auto it = index_.find(digest); it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().digest);
    lru_.pop_back();
  }
  lru_.push_front(Entry{digest, std::move(result)});
  index_[digest] = lru_.begin();
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

}  // namespace pdc::lab
