#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "lab/protocol.hpp"

namespace pdc::lab {

/// How the worker fleet realizes a job's ranks.
enum class ExecMode {
  Inline,  ///< mp::run — loopback transport, rank-per-thread (fast path)
  Socket,  ///< net::run_socket_cluster — real PDCN sockets per rank pair,
           ///< the byte-for-byte pdcrun wire path
};

const char* exec_mode_name(ExecMode mode) noexcept;

struct ExecutorConfig {
  ExecMode mode = ExecMode::Inline;
  /// Upper bound accepted for Submit::np (the Colab VM would not launch
  /// more — notebook/EngineConfig has the same knob).
  int max_np = protocol::kMaxProcs;
};

/// Turns one validated Submit into a Result by running it on the matching
/// engine: patternlet rank programs and exemplar kernels on the mp runtime
/// (loopback or socket transport per ExecMode), notebook cell source on a
/// fresh per-job ExecutionEngine (its virtual filesystem is the tenant
/// isolation boundary). Stateless apart from the execution counter; safe to
/// call from every worker thread concurrently.
class Executor {
 public:
  explicit Executor(ExecutorConfig config = {}) : config_(config) {}

  /// Admission-time validation: throws pdc::InvalidArgument (np out of
  /// range, empty notebook source) or pdc::NotFound (unknown program name)
  /// with a message naming the problem — the text of the BadRequest reject.
  void validate(const protocol::Submit& submit) const;

  /// A live-output observer: called once per printed line, as the job
  /// runs. Socket-mode jobs call it concurrently from every rank thread,
  /// so the sink must be thread-safe.
  using LineSink = std::function<void(const std::string&)>;

  /// Run the job. Never throws: a failing program (including an injected
  /// chaos abort inside the runtime) comes back as exit_code != 0 with the
  /// one-line cause in `error`. Fills exec_us; leaves job_id/cached to the
  /// caller.
  ///
  /// `on_line` (optional) streams rank output incrementally for the
  /// patternlet/exemplar kinds; Notebook and Grade jobs produce their
  /// output only at completion, so the sink stays silent for them. The
  /// returned Result always carries the complete output either way.
  [[nodiscard]] protocol::Result execute(const protocol::Submit& submit,
                                         const LineSink& on_line) const;
  [[nodiscard]] protocol::Result execute(const protocol::Submit& submit) const {
    return execute(submit, LineSink{});
  }

  /// Real executions performed so far (cache hits do not pass through here
  /// — the cache-correctness tests pin that).
  [[nodiscard]] std::uint64_t executions() const noexcept {
    return executions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ExecutorConfig& config() const noexcept {
    return config_;
  }

 private:
  ExecutorConfig config_;
  mutable std::atomic<std::uint64_t> executions_{0};
};

}  // namespace pdc::lab
