#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lab/protocol.hpp"
#include "net/socket.hpp"

namespace pdc::lab {

struct ClientConfig {
  net::Endpoint endpoint;
  /// Dial budget (bounded retry + exponential backoff, like the transport).
  int dial_attempts = 50;
  int connect_timeout_ms = 2000;
  int dial_backoff_initial_ms = 1;
  /// Per-frame receive deadline. A server that stops answering is a typed
  /// ConnectionError, never a hang — the same posture as wireup.
  int reply_timeout_ms = 60000;
};

/// One student's connection to a lab server. Sends Submit/Status frames and
/// demultiplexes the replies: Results may arrive before the Accept of a
/// later submit (or out of submission order across jobs), so frames for
/// jobs the caller has not asked about yet are parked until wait_result().
///
/// Not thread-safe: one Client per session thread, which is how both the
/// load driver and a student terminal use it.
class Client {
 public:
  /// Dial the server. Throws net::ConnectionError when it cannot connect.
  explicit Client(ClientConfig config);

  /// Says Bye (best effort) and closes.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One of the two answers a Submit can get.
  struct Outcome {
    std::optional<protocol::Accept> accept;
    std::optional<protocol::Reject> reject;

    [[nodiscard]] bool accepted() const noexcept { return accept.has_value(); }
  };

  /// Send a Submit and read frames until its Accept or Reject arrives.
  Outcome submit(const protocol::Submit& submit);

  /// Read frames until the Result for `job_id` arrives (instant when it was
  /// already parked). Throws ConnectionError on the reply deadline.
  protocol::Result wait_result(std::uint64_t job_id) {
    return wait_result(job_id, StatusSink{});
  }

  /// Incremental Status frames the server pushes while a job runs.
  using StatusSink = std::function<void(const protocol::Status&)>;

  /// wait_result, forwarding every pushed Status for `job_id` that carries
  /// output lines to `on_status` as it arrives — live output streaming.
  protocol::Result wait_result(std::uint64_t job_id,
                               const StatusSink& on_status);

  /// What a Cancel can get back: the server's Status ack (the cancel took)
  /// or a Reject (unknown/foreign/finished job, bad token, running inline).
  struct CancelOutcome {
    std::optional<protocol::Status> ack;
    std::optional<protocol::Reject> reject;

    [[nodiscard]] bool cancelled() const noexcept { return ack.has_value(); }
  };

  /// Withdraw job `job_id`: dequeue it if still queued, kill its worker
  /// process if running on a shard pool. The terminal exit-130 Result still
  /// arrives (collect it with wait_result).
  CancelOutcome cancel(std::uint64_t job_id, const std::string& token,
                       const std::string& tenant);

  /// Ask the server about `job_id` and wait for its Status reply.
  protocol::Status query_status(std::uint64_t job_id);

  /// What a Report query gets back: the streamed cohort aggregates (empty
  /// when the named cohort has no records... the server answers anyway) or
  /// a Reject (bad token, no store behind the server).
  struct ReportOutcome {
    std::vector<protocol::Report> cohorts;
    std::optional<protocol::Reject> reject;

    [[nodiscard]] bool ok() const noexcept { return !reject.has_value(); }
  };

  /// Query per-cohort aggregates: `cohort` = "" streams every cohort the
  /// store knows, a name streams just that one. Collects Cohort frames
  /// until the End marker.
  ReportOutcome report(const std::string& token, const std::string& tenant,
                       const std::string& cohort);

  /// Send a Bye and shut the connection down. Idempotent.
  void close() noexcept;

 private:
  /// Receive one frame within the reply deadline and park/dispatch it.
  /// Returns the header kind. Throws on EOF, deadline, or garbage.
  wire::Header read_frame(mp::Bytes* body);

  ClientConfig config_;
  net::Socket socket_;
  bool open_ = false;
  std::map<std::uint64_t, protocol::Result> parked_results_;
  /// Streamed Status pushes that arrived while waiting for something else
  /// (a fast worker's first output batch can beat the Accept onto the
  /// wire); wait_result() replays them to its sink in arrival order.
  std::vector<protocol::Status> parked_statuses_;
};

}  // namespace pdc::lab
