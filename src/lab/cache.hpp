#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "lab/protocol.hpp"

namespace pdc::lab {

/// LRU cache of golden outputs keyed by submission digest.
///
/// The server consults it at admission: an identical submission (same kind,
/// name, np, seed, source — see protocol::digest) is answered with the
/// stored output byte-for-byte, skipping the queue and the worker fleet
/// entirely. Only *successful* runs are stored; failures re-execute, so a
/// transient fault (a chaos abort, say) is never frozen into the cache.
///
/// Thread safety: all members are safe to call concurrently (one mutex —
/// entries are small and the critical sections are pointer shuffles).
class ResultCache {
 public:
  /// `capacity` = max stored results; 0 disables caching entirely.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// The stored result for `digest`, marked cached=true, or nullopt.
  /// A hit refreshes the entry's LRU position.
  [[nodiscard]] std::optional<protocol::Result> lookup(std::uint64_t digest);

  /// Store `result` under `digest` (overwriting any previous entry),
  /// evicting the least-recently-used entry when full.
  void insert(std::uint64_t digest, protocol::Result result);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  struct Entry {
    std::uint64_t digest = 0;
    protocol::Result result;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pdc::lab
