#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lab/cache.hpp"
#include "lab/executor.hpp"
#include "lab/queue.hpp"
#include "lab/shard.hpp"
#include "net/socket.hpp"
#include "remote/firewall.hpp"
#include "store/store.hpp"

namespace pdc::lab {

/// Chaos lanes for the lab server (mp ranks use low lanes, smp teams
/// 1<<16, pools 1<<17 — see chaos.hpp). Session reader threads share the
/// admission lane (each thread keeps its own decision counter); worker `w`
/// gets its own lane above it. Distinct from the rank lanes on purpose: a
/// targeted abort at "lab.admit"/"lab.dispatch" must not also kill rank 0
/// of the jobs the fleet is executing.
inline constexpr int kLabAdmitActor = 1 << 18;
inline constexpr int kLabWorkerActorBase = (1 << 18) + 1;

struct ServerConfig {
  /// Where to listen. Unix path or TCP host:port (port 0 = ephemeral; read
  /// the real one back from Server::endpoint()).
  net::Endpoint endpoint;

  /// Size of the worker fleet (bounded: this is the whole point — a
  /// thousand students share these workers, they do not each get a VM).
  int workers = 2;

  /// The auth token every Submit must carry. Wrong tokens count toward the
  /// firewall lockout — the paper's "eager beaver" incident, served cold.
  std::string token = "hands-on";

  ExecutorConfig executor;

  /// Shard-pool knobs for ExecMode::Socket, where each worker thread owns
  /// a forked pdclab worker *process* (crash/hang isolation per job).
  /// `shard.workers` and `shard.executor` are overwritten from the
  /// server's own `workers`/`executor` fields at start(); set worker_bin
  /// and the timeouts here. Inline mode ignores all of it.
  WorkerPoolConfig shard;

  std::size_t cache_capacity = 256;
  FairQueue::Policy queue;
  remote::Firewall::Policy firewall{/*max_failures=*/3,
                                    /*lockout_minutes=*/30.0};

  /// Injectable clock for the firewall (minutes). Defaults to minutes of
  /// steady time since start(); tests substitute a hand-cranked clock to
  /// prove lockout expiry without sleeping.
  std::function<double()> now_minutes;

  /// How often the accept loop wakes to notice stop() (ms).
  int accept_poll_ms = 200;

  /// Persistence. `store.dir` empty = the historic in-memory-only shape.
  /// With a store: start() recovers it and warms the result cache with
  /// every cacheable recovered record (warm start ≈ pre-restart hit rate);
  /// every terminal Result is journaled *durable before its frame is sent*
  /// (acked ⇒ it survives a kill); grade-job verdicts are additionally
  /// journaled into the (cohort, mutant, submission) grade index; and
  /// Report queries stream per-cohort aggregates back.
  store::StoreConfig store;
};

/// Monotonic totals since start().
struct ServerStats {
  std::uint64_t submits = 0;      ///< Submit frames that decoded
  std::uint64_t accepted = 0;     ///< admitted (queued or cache-served)
  std::uint64_t rejected = 0;     ///< Reject frames sent
  std::uint64_t completed = 0;    ///< Results delivered with exit_code 0
  std::uint64_t failed = 0;       ///< Results delivered with exit_code != 0
  std::uint64_t cache_hits = 0;   ///< served from the result cache
  std::uint64_t executed = 0;     ///< jobs that reached the Executor
  std::uint64_t lockouts = 0;     ///< times a tenant crossed into lockout
  std::uint64_t lost_results = 0; ///< finished jobs whose client was gone
  std::uint64_t sessions = 0;     ///< connections accepted
  std::uint64_t cancelled = 0;    ///< jobs withdrawn by a Cancel frame
  std::uint64_t worker_respawns = 0;  ///< shard workers respawned after loss
  std::uint64_t warmed_results = 0;   ///< cache entries recovered at start()
  std::size_t queue_depth = 0;    ///< current (not monotonic)
};

/// The multi-tenant lab server: accepts PDCN connections, admits Submit
/// frames through token auth + firewall + quota, schedules admitted jobs on
/// a weighted fair queue feeding a bounded worker fleet, serves identical
/// submissions from the LRU result cache, and streams Accept/Status/Result/
/// Reject frames back. One reader thread per connection, `workers` worker
/// threads, one accept thread; stop() tears all of it down deterministically.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spin up the fleet. Throws net::ConnectionError when
  /// the endpoint cannot be bound.
  void start();

  /// Drain and shut down: refuse new connections, fail still-queued jobs
  /// with a shutdown Result, finish in-flight jobs, close every session.
  /// Idempotent.
  void stop();

  /// The bound endpoint (ephemeral TCP port resolved). Valid after start().
  [[nodiscard]] net::Endpoint endpoint() const;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const Executor& executor() const noexcept { return executor_; }
  /// The admission firewall (exposed for the workshop-staff unblock path).
  [[nodiscard]] remote::Firewall& firewall() noexcept { return firewall_; }
  /// The shard worker pool (Socket mode, after start(); nullptr inline).
  /// The load driver's chaos monkey reads slot pids off it to pick victims.
  [[nodiscard]] WorkerPool* shard_pool() noexcept { return pool_.get(); }
  /// The persistent store (after start(), when config.store.dir is set;
  /// nullptr otherwise). Outlives stop() so tests can inspect recovery.
  [[nodiscard]] store::Store* store() noexcept { return store_.get(); }

 private:
  /// One client connection. Workers and the reader both write frames, so
  /// sends serialize on `send_mutex`; `alive` flips once the socket dies.
  struct Session {
    net::Socket socket;
    std::mutex send_mutex;
    std::atomic<bool> alive{true};

    /// Serialized best-effort send; returns false (and marks dead) when
    /// the client is gone.
    bool send(const mp::Bytes& frame);
  };

  void accept_loop();
  void session_loop(const std::shared_ptr<Session>& session);
  void worker_loop(int worker_index);

  /// Admission: everything between a decoded Submit and an Accept/Reject
  /// on the wire.
  void admit(const std::shared_ptr<Session>& session,
             protocol::Submit submit);
  /// Cancellation: everything between a decoded Cancel and its Status ack
  /// (or Reject) on the wire.
  void handle_cancel(const std::shared_ptr<Session>& session,
                     const protocol::Cancel& cancel);
  /// Report query: auth, then stream one Cohort frame per cohort + End.
  void handle_report(const std::shared_ptr<Session>& session,
                     const protocol::Report& query);
  void reject(const std::shared_ptr<Session>& session, protocol::RejectCode code,
              const std::string& reason);
  void finish_job(const std::shared_ptr<Session>& session, std::uint64_t job_id,
                  std::uint64_t digest, const protocol::Submit& submit,
                  const protocol::Result& result);
  /// Journal one terminal result (and, for grade jobs, its verdict) into
  /// the store; durable when it returns. No-op without a store.
  void journal(std::uint64_t digest, const protocol::Submit& submit,
               const protocol::Result& result);

  void set_job_state(std::uint64_t job_id, protocol::JobState state);
  [[nodiscard]] protocol::JobState job_state(std::uint64_t job_id) const;

  [[nodiscard]] double now_minutes() const;

  ServerConfig config_;
  Executor executor_;
  ResultCache cache_;
  FairQueue queue_;
  /// The crash-safe persistence layer; null without --store.
  std::unique_ptr<store::Store> store_;
  std::uint64_t warmed_ = 0;  ///< cache entries recovered at start()
  /// The worker-process fleet; null in ExecMode::Inline (rank-per-thread
  /// execution inside this process, the historic shape).
  std::unique_ptr<WorkerPool> pool_;
  remote::Firewall firewall_;
  std::mutex firewall_mutex_;  ///< Firewall itself is not thread-safe

  net::Socket listener_;
  net::Endpoint bound_;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point started_{};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Detached session readers: stop() shuts each socket down, then waits
  /// for `active_sessions_` to reach zero before tearing down the rest.
  mutable std::mutex sessions_mutex_;
  std::condition_variable sessions_cv_;
  std::vector<std::weak_ptr<Session>> sessions_;
  std::size_t active_sessions_ = 0;

  std::atomic<std::uint64_t> next_job_id_{1};

  /// What the server remembers about a job after admission: its lifecycle
  /// state (Status queries) and its tenant (only the submitting tenant may
  /// Cancel it).
  struct JobRecord {
    protocol::JobState state = protocol::JobState::Unknown;
    std::string tenant;
  };

  mutable std::mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, JobRecord> job_states_;

  struct AtomicStats {
    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> lockouts{0};
    std::atomic<std::uint64_t> lost_results{0};
    std::atomic<std::uint64_t> sessions{0};
    std::atomic<std::uint64_t> cancelled{0};
  };
  AtomicStats stats_;
};

}  // namespace pdc::lab
