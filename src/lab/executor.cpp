#include "lab/executor.hpp"

#include <chrono>
#include <functional>
#include <sstream>
#include <string>

#include "exemplars/drugdesign.hpp"
#include "exemplars/montecarlo.hpp"
#include "grade/grader.hpp"
#include "mp/runtime.hpp"
#include "net/harness.hpp"
#include "notebook/engine.hpp"
#include "patternlets/mpi_programs.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace pdc::lab {

using protocol::JobKind;
using protocol::Result;
using protocol::Submit;

const char* exec_mode_name(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::Inline: return "inline";
    case ExecMode::Socket: return "socket";
  }
  return "?";
}

namespace {

/// The exemplar kernels a Submit may name. Both consume Submit::seed, so
/// distinct seeds produce distinct outputs — the property the cache
/// distinctness test leans on.
std::function<void(mp::Communicator&)> exemplar_program(const Submit& submit) {
  if (submit.name == "pi") {
    const std::uint64_t seed = submit.seed == 0 ? 1 : submit.seed;
    return [seed](mp::Communicator& comm) {
      const int streams = 4 * comm.size();
      const std::int64_t darts = 2048 * streams;
      const auto estimate =
          exemplars::pi_rank(comm, darts, seed, streams);
      if (comm.rank() == 0) {
        comm.print("pi ~= " + std::to_string(estimate.value()) + " (" +
                   std::to_string(estimate.hits) + "/" +
                   std::to_string(estimate.darts) + " darts, seed " +
                   std::to_string(seed) + ")");
      }
    };
  }
  if (submit.name == "drug-design") {
    exemplars::DrugDesignConfig config;
    config.num_ligands = 24;  // the teaching-size screen, seconds not minutes
    config.seed = submit.seed == 0 ? 42 : submit.seed;
    return [config](mp::Communicator& comm) {
      const auto result = exemplars::screen_rank(comm, config);
      if (comm.rank() == 0) {
        std::string best;
        for (const auto& ligand : result.best_ligands) {
          best += (best.empty() ? "" : " ") + ligand;
        }
        comm.print("best score " + std::to_string(result.max_score) +
                   " by [" + best + "] (seed " +
                   std::to_string(config.seed) + ")");
      }
    };
  }
  throw NotFound("lab: unknown exemplar '" + submit.name +
                 "' (known: pi, drug-design)");
}

std::function<void(mp::Communicator&)> rank_program(const Submit& submit) {
  switch (submit.kind) {
    case JobKind::Patternlet:
      return patternlets::mpi_program(submit.name);  // throws NotFound
    case JobKind::Exemplar:
      return exemplar_program(submit);
    case JobKind::Notebook:
    case JobKind::Grade:
      break;
  }
  throw InvalidArgument("lab: job kind has no rank program");
}

/// Parses a value in [lo, hi] out of a grade option token.
int grade_option_value(const std::string& key, const std::string& text,
                       int lo, int hi) {
  int value = 0;
  std::size_t used = 0;
  try {
    value = std::stoi(text, &used);
  } catch (const std::exception&) {
    used = text.size() + 1;  // force the malformed path below
  }
  if (used != text.size() || text.empty()) {
    throw InvalidArgument("lab: grade option " + key + "='" + text +
                          "' is not an integer");
  }
  if (value < lo || value > hi) {
    throw InvalidArgument("lab: grade option " + key + "=" +
                          std::to_string(value) + " out of range [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]");
  }
  return value;
}

/// A grade Submit's options ride in `source` as whitespace-separated
/// "key=value" tokens: "k=N" (schedules explored) and "watchdog_ms=N".
/// `seed` is the schedule seed base (0 keeps the grader default). Throws
/// pdc::InvalidArgument on an unknown key or out-of-range value — at
/// admission time, so a bad request is a BadRequest, not a failed job.
grade::GraderConfig grade_config(const Submit& submit) {
  grade::GraderConfig cfg;
  cfg.workers = 1;  // one submission per job; the fleet is the lab's workers
  cfg.watchdog_ms = 1000;
  if (submit.seed != 0) cfg.seed_base = submit.seed;
  std::istringstream in(submit.source);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.substr(eq + 1);
    if (key == "k") {
      cfg.seeds = grade_option_value(key, value, 2, 64);
    } else if (key == "watchdog_ms") {
      cfg.watchdog_ms = grade_option_value(key, value, 1, 10000);
    } else {
      throw InvalidArgument("lab: unknown grade option '" + key +
                            "' (known: k, watchdog_ms)");
    }
  }
  return cfg;
}

}  // namespace

void Executor::validate(const Submit& submit) const {
  // np >= 1 holds for every kind, including the kinds that otherwise
  // ignore the field (Notebook runs the engine once, Grade reads its world
  // size from the MutantSpec): a non-positive np is always a malformed
  // request, and admission is where malformed requests are named.
  if (submit.np < 1) {
    throw InvalidArgument("lab: np " + std::to_string(submit.np) +
                          " out of range [1, " +
                          std::to_string(config_.max_np) + "]");
  }
  if (submit.kind == JobKind::Notebook) {
    if (submit.source.empty()) {
      throw InvalidArgument("lab: notebook submit carries no source");
    }
    return;
  }
  if (submit.kind == JobKind::Grade) {
    // `name` is a MutantSpec id; its embedded @npN is the world size (the
    // Submit::np field is ignored for grade jobs, like source is for
    // patternlets). Malformed spec / unknown base / bad option all reject
    // here so students see a BadRequest, not a burned queue slot.
    const grade::MutantSpec spec = grade::MutantSpec::parse(submit.name);
    if (spec.np > config_.max_np) {
      throw InvalidArgument("lab: grade np " + std::to_string(spec.np) +
                            " out of range [2, " +
                            std::to_string(config_.max_np) + "]");
    }
    (void)patternlets::mpi_program(spec.base);  // throws NotFound
    (void)grade_config(submit);
    return;
  }
  if (submit.np < 1 || submit.np > config_.max_np) {
    throw InvalidArgument("lab: np " + std::to_string(submit.np) +
                          " out of range [1, " +
                          std::to_string(config_.max_np) + "]");
  }
  (void)rank_program(submit);  // throws NotFound on an unknown name
}

Result Executor::execute(const Submit& submit, const LineSink& on_line) const {
  Result result;
  trace::Span span("lab.execute", "lab");
  const auto start = std::chrono::steady_clock::now();
  executions_.fetch_add(1, std::memory_order_relaxed);
  try {
    if (submit.kind == JobKind::Notebook) {
      // A fresh engine per job: the virtual filesystem and execution
      // counter start clean, so tenants can never see each other's files.
      notebook::ExecutionEngine engine(
          notebook::ProgramRegistry::mpi4py_standard());
      result.output = engine.execute_source(submit.source);
    } else if (submit.kind == JobKind::Grade) {
      // Grade the mutant inline regardless of ExecMode: the grader owns its
      // schedule exploration (bound chaos plans over mp::run), and its
      // canonical line is deterministic — exactly what the result cache
      // wants to share across a class re-running the same submission.
      const grade::MutantSpec spec = grade::MutantSpec::parse(submit.name);
      const grade::Grade graded = grade::grade_one(spec, grade_config(submit));
      result.output.push_back(graded.to_line());
      if (!graded.detail.empty()) {
        result.output.push_back("detail: " + graded.detail);
      }
    } else if (config_.mode == ExecMode::Inline) {
      mp::RunConfig run_config;
      run_config.num_procs = submit.np;
      run_config.on_output = on_line;
      result.output = mp::run(run_config, rank_program(submit)).output;
    } else {
      net::ClusterOptions options;
      options.np = submit.np;
      options.job = "lab-" + std::to_string(protocol::digest(submit));
      options.on_output = on_line;
      const net::ClusterResult cluster =
          net::run_socket_cluster(options, rank_program(submit));
      if (!cluster.ok()) {
        for (const auto& error : cluster.errors) {
          if (!error.empty()) {
            throw Error("rank failed: " + error);
          }
        }
      }
      result.output = cluster.merged();
    }
    result.exit_code = 0;
  } catch (const std::exception& error) {
    result.exit_code = 1;
    result.error = error.what();
    result.output.clear();
  }
  result.exec_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

}  // namespace pdc::lab
