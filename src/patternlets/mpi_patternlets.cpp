// The message-passing patternlets: the mpi4py examples from the paper's
// Colab notebook (Section III-B, Fig. 2), reproduced on the pdc::mp runtime.
//
// Each patternlet's protocol lives in a named *rank program* (also exposed
// through mpi_program(), so the notebook engine can bind it to a virtual
// .py file); `source_listing` holds the mpi4py Python the learner reads.

#include <algorithm>
#include <numeric>

#include "mp/ops.hpp"
#include "mp/runtime.hpp"
#include "patternlets/mpi_programs.hpp"
#include "patternlets/patternlets.hpp"
#include "support/error.hpp"

namespace pdc::patternlets {

using patterns::OutputLog;
using patterns::Paradigm;
using patterns::Pattern;
using patterns::Patternlet;
using patterns::PatternletInfo;
using patterns::RunOptions;

namespace {

PatternletInfo info(std::string id, std::string title,
                    std::vector<Pattern> patterns, std::string description,
                    std::string listing) {
  PatternletInfo out;
  out.id = std::move(id);
  out.title = std::move(title);
  out.paradigm = Paradigm::MessagePassing;
  out.patterns = std::move(patterns);
  out.description = std::move(description);
  out.source_listing = std::move(listing);
  return out;
}

// ---- rank programs -----------------------------------------------------

void spmd_program(mp::Communicator& comm) {
  comm.print("Greetings from process " + std::to_string(comm.rank()) + " of " +
             std::to_string(comm.size()) + " on " + comm.processor_name());
}

void send_receive_program(mp::Communicator& comm) {
  if (comm.size() < 2) {
    comm.print("Please run this program with at least 2 processes");
    return;
  }
  if (comm.rank() == 0) {
    for (int dest = 1; dest < comm.size(); ++dest) {
      comm.send(std::string("hello, process ") + std::to_string(dest), dest);
    }
    comm.print("Process 0 sent a greeting to every other process");
  } else {
    const auto message = comm.recv<std::string>(0);
    comm.print("Process " + std::to_string(comm.rank()) + " received: '" +
               message + "'");
  }
}

void pair_exchange_program(mp::Communicator& comm) {
  if (comm.size() % 2 != 0) {
    comm.print("Please run this program with an even number of processes");
    return;
  }
  // Evens exchange with their odd right neighbor. Because sends are
  // buffered, send-then-receive cannot deadlock.
  const int partner = comm.rank() % 2 == 0 ? comm.rank() + 1 : comm.rank() - 1;
  comm.send(comm.rank() * comm.rank(), partner);
  const int received = comm.recv<int>(partner);
  comm.print("Process " + std::to_string(comm.rank()) +
             " exchanged with process " + std::to_string(partner) +
             " and received " + std::to_string(received));
}

void master_worker_program(mp::Communicator& comm) {
  if (comm.rank() == 0) {
    comm.print("Greetings from the master, process 0 of " +
               std::to_string(comm.size()));
  } else {
    comm.print("Hello from worker process " + std::to_string(comm.rank()) +
               " of " + std::to_string(comm.size()));
  }
}

void loop_slices_program(mp::Communicator& comm) {
  constexpr int kIterations = 16;
  for (int i = comm.rank(); i < kIterations; i += comm.size()) {
    comm.print("Process " + std::to_string(comm.rank()) +
               " is performing iteration " + std::to_string(i));
  }
}

void loop_chunks_program(mp::Communicator& comm) {
  constexpr int kIterations = 16;
  const int base = kIterations / comm.size();
  const int extra = kIterations % comm.size();
  const int begin = comm.rank() * base + std::min(comm.rank(), extra);
  const int end = begin + base + (comm.rank() < extra ? 1 : 0);
  for (int i = begin; i < end; ++i) {
    comm.print("Process " + std::to_string(comm.rank()) +
               " is performing iteration " + std::to_string(i));
  }
}

void broadcast_program(mp::Communicator& comm) {
  std::vector<int> data;
  if (comm.rank() == 0) {
    data = {8, 19, 7, 24, 1, 16};  // the "input read by the conductor"
  }
  comm.bcast(data, 0);
  comm.print("Process " + std::to_string(comm.rank()) + " now has " +
             std::to_string(data.size()) + " values; first is " +
             std::to_string(data.at(0)));
}

void scatter_program(mp::Communicator& comm) {
  std::vector<int> whole;
  if (comm.rank() == 0) {
    whole.resize(static_cast<std::size_t>(comm.size()) * 3);
    std::iota(whole.begin(), whole.end(), 1);
  }
  const std::vector<int> mine = comm.scatter_chunks(whole, 0);
  std::string text;
  for (int v : mine) text += std::to_string(v) + " ";
  comm.print("Process " + std::to_string(comm.rank()) +
             " received chunk: " + text);
}

void gather_program(mp::Communicator& comm) {
  std::vector<int> part = {comm.rank() * 10, comm.rank() * 10 + 1};
  const std::vector<int> whole = comm.gather_chunks(part, 0);
  if (comm.rank() == 0) {
    std::string text;
    for (int v : whole) text += std::to_string(v) + " ";
    comm.print("Process 0 gathered: " + text);
  } else {
    comm.print("Process " + std::to_string(comm.rank()) +
               " contributed its part");
  }
}

void reduce_program(mp::Communicator& comm) {
  const int square = comm.rank() * comm.rank();
  const int sum = comm.reduce(square, mp::ops::Sum{}, 0);
  const int maximum = comm.reduce(square, mp::ops::Max{}, 0);
  if (comm.rank() == 0) {
    comm.print("Sum of squares of ranks:  " + std::to_string(sum));
    comm.print("Max of squares of ranks:  " + std::to_string(maximum));
  }
}

void allreduce_program(mp::Communicator& comm) {
  const int total = comm.allreduce(comm.rank() + 1, mp::ops::Sum{});
  comm.print("Process " + std::to_string(comm.rank()) +
             " knows the total is " + std::to_string(total));
}

void barrier_program(mp::Communicator& comm) {
  comm.print("Process " + std::to_string(comm.rank()) + " BEFORE the barrier");
  comm.barrier();
  comm.print("Process " + std::to_string(comm.rank()) + " AFTER the barrier");
}

void tags_program(mp::Communicator& comm) {
  constexpr int kDataTag = 1;
  constexpr int kControlTag = 2;
  if (comm.size() < 2) {
    comm.print("Please run this program with at least 2 processes");
    return;
  }
  if (comm.rank() == 0) {
    // Send data first, control second -- the worker receives them in the
    // opposite order by asking for the tags it wants.
    comm.send(std::string("the payload"), 1, kDataTag);
    comm.send(std::string("shut down"), 1, kControlTag);
  } else if (comm.rank() == 1) {
    const auto control = comm.recv<std::string>(0, kControlTag);
    const auto data = comm.recv<std::string>(0, kDataTag);
    comm.print("Worker got control message '" + control + "' first");
    comm.print("Worker then got data message '" + data + "'");
  }
}

void any_source_program(mp::Communicator& comm) {
  if (comm.rank() == 0) {
    // Collect one result from every worker, in whatever order they finish;
    // Status reveals who each message came from.
    for (int i = 1; i < comm.size(); ++i) {
      mp::Status status;
      const int value = comm.recv<int>(mp::kAnySource, mp::kAnyTag, &status);
      comm.print("Master received " + std::to_string(value) +
                 " from process " + std::to_string(status.source));
    }
  } else {
    comm.send(comm.rank() * 100, 0);
  }
}

void ring_program(mp::Communicator& comm) {
  const int right = (comm.rank() + 1) % comm.size();
  const int left = (comm.rank() - 1 + comm.size()) % comm.size();
  if (comm.rank() == 0) {
    comm.send(1, right);
    const int token = comm.recv<int>(left);
    comm.print("The token returned to process 0 with value " +
               std::to_string(token) + " after visiting all " +
               std::to_string(comm.size()) + " processes");
  } else {
    const int token = comm.recv<int>(left);
    comm.print("Process " + std::to_string(comm.rank()) + " passes token " +
               std::to_string(token + 1));
    comm.send(token + 1, right);
  }
}

struct NamedProgram {
  const char* name;
  void (*fn)(mp::Communicator&);
};

constexpr NamedProgram kPrograms[] = {
    {"spmd", spmd_program},
    {"send-receive", send_receive_program},
    {"pair-exchange", pair_exchange_program},
    {"master-worker", master_worker_program},
    {"loop-slices", loop_slices_program},
    {"loop-chunks", loop_chunks_program},
    {"broadcast", broadcast_program},
    {"scatter", scatter_program},
    {"gather", gather_program},
    {"reduce", reduce_program},
    {"allreduce", allreduce_program},
    {"barrier", barrier_program},
    {"tags", tags_program},
    {"any-source", any_source_program},
    {"ring", ring_program},
};

/// Patternlet body that launches the named rank program on
/// opts.num_procs ranks and copies the job log out.
Patternlet::Body body_of(const char* name) {
  MpProgram program = mpi_program(name);
  return [program = std::move(program)](const RunOptions& opts,
                                        OutputLog& log) {
    mp::RunResult result = mp::run(opts.num_procs, program);
    for (auto& line : result.output) log.println(std::move(line));
  };
}

}  // namespace

MpProgram mpi_program(const std::string& name) {
  for (const auto& entry : kPrograms) {
    if (name == entry.name) return MpProgram(entry.fn);
  }
  throw NotFound("mpi_program: no rank program named '" + name + "'");
}

std::vector<std::string> mpi_program_names() {
  std::vector<std::string> names;
  for (const auto& entry : kPrograms) names.emplace_back(entry.name);
  return names;
}

void register_mpi(patterns::Registry& registry) {
  registry.add(Patternlet(
      info("mpi/00-spmd", "SPMD: greetings from every process",
           {Pattern::SPMD, Pattern::MessagePassing},
           "The fundamental structure of message-passing programs: every "
           "process runs the same program and discovers its rank, the world "
           "size, and its host. This is the exact example in the paper's "
           "Fig. 2, run in the Colab with `mpirun -np 4`.",
           R"(from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    myHostName = MPI.Get_processor_name()
    print("Greetings from process {} of {} on {}"\
        .format(id, numProcesses, myHostName))

main())"),
      body_of("spmd")));

  registry.add(Patternlet(
      info("mpi/01-send-receive", "Send-receive",
           {Pattern::MessagePassing},
           "The conductor (rank 0) sends a personalized greeting to every "
           "other process, which receives and prints it: the two fundamental "
           "operations of the paradigm.",
           R"(if id == 0:
    for dest in range(1, numProcesses):
        comm.send("hello, process {}".format(dest), dest=dest)
else:
    message = comm.recv(source=0)
    print("Process {} received: '{}'".format(id, message)))"),
      body_of("send-receive")));

  registry.add(Patternlet(
      info("mpi/02-pair-exchange", "Pairwise exchange",
           {Pattern::MessagePassing},
           "Adjacent even/odd processes swap values. Requires an even number "
           "of processes; the send-then-receive order matters in real MPI, "
           "where unbuffered sends can deadlock.",
           R"(partner = id + 1 if id % 2 == 0 else id - 1
comm.send(id * id, dest=partner)
received = comm.recv(source=partner))"),
      body_of("pair-exchange")));

  registry.add(Patternlet(
      info("mpi/03-master-worker", "Master-worker",
           {Pattern::MasterWorker},
           "Rank 0 takes the coordinator role; all other ranks act as "
           "workers. The structure behind the forest-fire and drug-design "
           "exemplars' job distribution.",
           R"(if id == 0:
    print("Greetings from the master, process 0 of {}".format(n))
else:
    print("Hello from worker process {} of {}".format(id, n)))"),
      body_of("master-worker")));

  registry.add(Patternlet(
      info("mpi/04-parallel-loop-slices", "Parallel loop, slices",
           {Pattern::ParallelLoopChunksOf1},
           "Loop iterations dealt round-robin across processes: process r "
           "performs iterations r, r+P, r+2P, ...",
           R"(for i in range(id, ITERATIONS, numProcesses):
    print("Process {} is performing iteration {}".format(id, i)))"),
      body_of("loop-slices")));

  registry.add(Patternlet(
      info("mpi/05-parallel-loop-equal-chunks",
           "Parallel loop, equal chunks",
           {Pattern::ParallelLoopEqualChunks},
           "Each process computes its own contiguous block of the iteration "
           "space from its rank -- the owner-computes rule.",
           R"(chunk = ITERATIONS // numProcesses
start = id * chunk
for i in range(start, start + chunk):
    print("Process {} is performing iteration {}".format(id, i)))"),
      body_of("loop-chunks")));

  registry.add(Patternlet(
      info("mpi/06-broadcast", "Broadcast",
           {Pattern::Broadcast},
           "The conductor reads (here: creates) a data list and broadcasts "
           "it; afterwards every process holds the full list.",
           R"(if id == 0:
    data = readInput()
else:
    data = None
data = comm.bcast(data, root=0))"),
      body_of("broadcast")));

  registry.add(Patternlet(
      info("mpi/07-scatter", "Scatter",
           {Pattern::Scatter, Pattern::ParallelLoopEqualChunks},
           "The conductor splits an array into equal chunks and sends one to "
           "each process; each process works on only its own chunk.",
           R"(if id == 0:
    whole = list(range(1, 3 * numProcesses + 1))
else:
    whole = None
mine = comm.scatter(chunks(whole), root=0))"),
      body_of("scatter")));

  registry.add(Patternlet(
      info("mpi/08-gather", "Gather",
           {Pattern::Gather},
           "Each process contributes its partial array; the conductor "
           "reassembles them in rank order into the complete result.",
           R"(part = [id * 10, id * 10 + 1]
whole = comm.gather(part, root=0)
if id == 0:
    print("gathered:", flatten(whole)))"),
      body_of("gather")));

  registry.add(Patternlet(
      info("mpi/09-reduce", "Reduce",
           {Pattern::Reduction},
           "Every process contributes a value; the runtime combines them "
           "with an operator (sum, max, ...) delivering the result to the "
           "conductor.",
           R"(square = id * id
total = comm.reduce(square, op=MPI.SUM, root=0)
largest = comm.reduce(square, op=MPI.MAX, root=0))"),
      body_of("reduce")));

  registry.add(Patternlet(
      info("mpi/10-allreduce", "Reduce to all",
           {Pattern::Reduction, Pattern::Broadcast},
           "Like reduce, but every process receives the combined result -- a "
           "reduce fused with a broadcast.",
           R"(total = comm.allreduce(id + 1, op=MPI.SUM)
print("Process {} knows the total is {}".format(id, total)))"),
      body_of("allreduce")));

  registry.add(Patternlet(
      info("mpi/11-barrier", "Barrier",
           {Pattern::Barrier},
           "No process prints its AFTER line until every process has printed "
           "its BEFORE line: the barrier divides time into phases across "
           "separate machines.",
           R"(print("Process {} BEFORE the barrier".format(id))
comm.Barrier()
print("Process {} AFTER the barrier".format(id)))"),
      body_of("barrier")));

  registry.add(Patternlet(
      info("mpi/12-tags", "Tagged messages",
           {Pattern::TaggedMessages, Pattern::MessagePassing},
           "Tags let a receiver select which kind of message to take next, "
           "independent of arrival order: the worker here deliberately "
           "receives the control message before the earlier-sent data.",
           R"(comm.send(payload, dest=1, tag=DATA)
comm.send("shut down", dest=1, tag=CONTROL)
# worker:
ctrl = comm.recv(source=0, tag=CONTROL)
data = comm.recv(source=0, tag=DATA))"),
      body_of("tags")));

  registry.add(Patternlet(
      info("mpi/13-any-source", "Receive from any source",
           {Pattern::MessagePassing, Pattern::MasterWorker},
           "The master collects results in completion order using a wildcard "
           "source, then learns who sent each message from the Status "
           "object -- the key to responsive master-worker programs.",
           R"(status = MPI.Status()
value = comm.recv(source=MPI.ANY_SOURCE, status=status)
print("received", value, "from", status.Get_source()))"),
      body_of("any-source")));

  registry.add(Patternlet(
      info("mpi/14-ring", "Ring pass",
           {Pattern::RingPass, Pattern::MessagePassing},
           "A token travels around the ring of processes, incremented at "
           "each hop, returning to process 0 with value equal to the number "
           "of processes -- the communication skeleton of many iterative "
           "distributed algorithms.",
           R"(right = (id + 1) % numProcesses
left  = (id - 1) % numProcesses
if id == 0:
    comm.send(1, dest=right)
    token = comm.recv(source=left)
else:
    token = comm.recv(source=left)
    comm.send(token + 1, dest=right))"),
      body_of("ring")));
}

}  // namespace pdc::patternlets
